//! Fabric contention: two disks sharing one root link.
//!
//! PCI-Express is "a virtual point-to-point connection between a device
//! and a processor, enabling the processor to simultaneously communicate
//! with multiple devices" (paper §I) — but devices behind one switch
//! still share the root link. This example puts an IDE disk on each
//! switch downstream port and streams from both at once.
//!
//! ```text
//! cargo run --release --example fabric_contention
//! ```

use pcisim::kernel::tick::TICKS_PER_SEC;
use pcisim::pcie::params::{Generation, LinkConfig, LinkWidth};
use pcisim::system::builder::{build_dual_disk_system, build_system, SystemConfig};
use pcisim::system::workload::dd::DdConfig;

const BLOCK: u64 = 4 * 1024 * 1024;

fn solo(root_width: LinkWidth) -> f64 {
    let mut config = SystemConfig::validation();
    config.root_link = LinkConfig::new(Generation::Gen2, root_width);
    let mut built = build_system(config);
    let report = built.attach_dd(DdConfig { block_bytes: BLOCK, ..DdConfig::default() });
    built.sim.run(TICKS_PER_SEC, u64::MAX);
    let r = report.borrow();
    assert!(r.done);
    r.throughput_gbps()
}

fn dual(root_width: LinkWidth) -> (f64, f64) {
    let mut config = SystemConfig::validation();
    config.root_link = LinkConfig::new(Generation::Gen2, root_width);
    let mut sys = build_dual_disk_system(config);
    let r0 = sys.attach_dd(0, DdConfig { block_bytes: BLOCK, ..DdConfig::default() });
    let r1 = sys.attach_dd(1, DdConfig { block_bytes: BLOCK, ..DdConfig::default() });
    sys.sim.run(TICKS_PER_SEC, u64::MAX);
    assert!(r0.borrow().done && r1.borrow().done);
    let a = r0.borrow().throughput_gbps();
    let b = r1.borrow().throughput_gbps();
    (a, b)
}

fn main() {
    println!("two Gen 2 x1 disks behind one switch, root link width swept:\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "root link", "solo Gb/s", "disk0 Gb/s", "disk1 Gb/s", "aggregate"
    );
    for width in [LinkWidth::X1, LinkWidth::X2, LinkWidth::X4] {
        let s = solo(width);
        let (a, b) = dual(width);
        println!("{:>10} {:>12.3} {:>12.3} {:>12.3} {:>12.3}", width.to_string(), s, a, b, a + b);
    }
    println!("\nWith an x1 root link the two streams halve each other; from x2");
    println!("upward the root link stops being the shared bottleneck and each");
    println!("disk runs at its solo x1 rate — fan-out the old PCI bus could");
    println!("never offer.");
}
