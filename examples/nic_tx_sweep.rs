//! NIC transmit sweep: the 100 Gb/s-NIC motivation from the paper's
//! introduction, at small scale.
//!
//! The NIC fetches every frame over DMA reads through the PCI-Express
//! link; on narrow links the fabric is the bottleneck, on wide links the
//! network medium is. The crossover is exactly the kind of question the
//! paper's model exists to answer.
//!
//! ```text
//! cargo run --release --example nic_tx_sweep
//! cargo run --release --example nic_tx_sweep -- --trace [PATH]
//! ```
//!
//! With `--trace`, a small traced TX run dumps a Chrome/Perfetto trace
//! (loadable at <https://ui.perfetto.dev>) showing doorbells, DMA
//! descriptor/buffer fetches, link-layer traffic and the interrupt.

use pcisim::pcie::params::LinkWidth;
use pcisim::system::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("NIC TX of 256 x 1514 B frames, link width swept (Gen 2):\n");
    println!("{:>6} {:>12} {:>14} {:>12}", "width", "Gb/s", "frames/s", "DMA TLPs");
    for lanes in [1u8, 2, 4, 8, 16] {
        let out = run_nic_tx_experiment(&NicTxExperiment {
            width: LinkWidth::new(lanes),
            frames: 256,
            ..NicTxExperiment::default()
        });
        assert!(out.completed);
        println!(
            "{:>6} {:>12.3} {:>14.0} {:>12}",
            format!("x{lanes}"),
            out.throughput_gbps,
            out.frames_per_sec,
            out.dma_read_tlps
        );
    }
    println!("\nNarrow links starve the DMA engine. Beyond x4 the per-frame");
    println!("latency chain — descriptor fetch round trip, 1.2 us on the");
    println!("medium, status write-back, interrupt — dominates, and extra");
    println!("lanes buy almost nothing: the PCI-Express model exposes exactly");
    println!("where the crossover sits.");

    println!("\nNIC RX of 256 x 1514 B frames at ~5 Gb/s line rate:\n");
    println!("{:>6} {:>16} {:>10}", "width", "delivered Gb/s", "dropped");
    for lanes in [1u8, 2, 4, 8] {
        let out = run_nic_rx_experiment(&NicRxExperiment {
            width: LinkWidth::new(lanes),
            frames: 256,
            ..NicRxExperiment::default()
        });
        assert!(out.completed);
        let total = out.frames_delivered + out.frames_dropped;
        println!(
            "{:>6} {:>16.3} {:>9.1}%",
            format!("x{lanes}"),
            out.delivered_gbps,
            100.0 * out.frames_dropped as f64 / total as f64
        );
    }
    println!("\nInbound, the slot either sustains the medium or the NIC's");
    println!("internal FIFO overflows and frames are lost — a Gen 2 x1 slot");
    println!("cannot carry a 5 Gb/s stream, exactly the class of question the");
    println!("paper's interconnect model exists to answer.");

    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        let path = args.get(pos + 1).cloned().unwrap_or_else(|| "nic_tx_trace.json".into());
        let out = run_nic_tx_experiment(&NicTxExperiment {
            frames: 8,
            trace: true,
            ..NicTxExperiment::default()
        });
        assert!(out.completed);
        let log = out.trace.expect("trace requested");
        std::fs::write(&path, log.to_perfetto_json()).expect("write trace file");
        println!("\nPerfetto trace of an 8-frame x1 TX run written to {path}");
        println!("(open in ui.perfetto.dev: doorbell, descriptor and buffer");
        println!("DMA reads, the link-layer ACK stream, and the completion");
        println!("interrupt are all visible per component).");
    }
}
