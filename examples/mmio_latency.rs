//! MMIO latency exploration (the Table II experiment as an API example).
//!
//! Attaches the 8254x-pcie NIC directly to a root port, then times 4-byte
//! register reads from the CPU while sweeping the root-complex processing
//! latency — the kernel-module measurement of the paper's Table II.
//!
//! ```text
//! cargo run --release --example mmio_latency
//! ```

use pcisim::kernel::tick::ns;
use pcisim::system::prelude::*;

const PAPER: [(u64, f64); 5] = [(50, 318.0), (75, 358.0), (100, 398.0), (125, 438.0), (150, 517.0)];

fn main() {
    println!("4-byte MMIO read from a NIC register, root-complex latency swept:\n");
    println!("{:>16} {:>14} {:>12} {:>8}", "rc latency (ns)", "measured (ns)", "paper (ns)", "delta");
    for (lat, paper) in PAPER {
        let out = run_mmio_experiment(&MmioExperiment {
            rc_latency: ns(lat),
            reads: 64,
            ..MmioExperiment::default()
        });
        assert!(out.completed);
        println!("{:>16} {:>14.0} {:>12.0} {:>+8.0}", lat, out.mean_ns, paper, out.mean_ns - paper);
    }
    println!("\nEvery MMIO read crosses the root complex twice (request and");
    println!("response), so each 25 ns of root-complex latency costs ~50 ns of");
    println!("access latency — the paper measured ~40 ns per step.");
}
