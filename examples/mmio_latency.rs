//! MMIO latency exploration (the Table II experiment as an API example).
//!
//! Attaches the 8254x-pcie NIC directly to a root port, then times 4-byte
//! register reads from the CPU while sweeping the root-complex processing
//! latency — the kernel-module measurement of the paper's Table II.
//!
//! ```text
//! cargo run --release --example mmio_latency
//! cargo run --release --example mmio_latency -- --trace [PATH]
//! ```
//!
//! With `--trace`, one run is re-executed with full event tracing: a
//! Chrome/Perfetto trace (loadable at <https://ui.perfetto.dev>) is written
//! to PATH (default `mmio_trace.json`) and a per-stage latency-attribution
//! table is printed whose stages sum to the measured end-to-end latency.

use pcisim::kernel::tick::ns;
use pcisim::system::prelude::*;

const PAPER: [(u64, f64); 5] = [(50, 318.0), (75, 358.0), (100, 398.0), (125, 438.0), (150, 517.0)];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("4-byte MMIO read from a NIC register, root-complex latency swept:\n");
    println!(
        "{:>16} {:>14} {:>12} {:>8}",
        "rc latency (ns)", "measured (ns)", "paper (ns)", "delta"
    );
    for (lat, paper) in PAPER {
        let out = run_mmio_experiment(&MmioExperiment {
            rc_latency: ns(lat),
            reads: 64,
            ..MmioExperiment::default()
        });
        assert!(out.completed);
        println!("{:>16} {:>14.0} {:>12.0} {:>+8.0}", lat, out.mean_ns, paper, out.mean_ns - paper);
    }
    println!("\nEvery MMIO read crosses the root complex twice (request and");
    println!("response), so each 25 ns of root-complex latency costs ~50 ns of");
    println!("access latency — the paper measured ~40 ns per step.");

    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        let path = args.get(pos + 1).cloned().unwrap_or_else(|| "mmio_trace.json".into());
        trace_run(&path);
    }
}

/// Re-runs the 150 ns point with tracing on; dumps Perfetto JSON and the
/// per-stage attribution. `cpu_overhead` is zeroed so that the traced
/// stages partition the measured latency exactly.
fn trace_run(path: &str) {
    let out = run_mmio_experiment(&MmioExperiment {
        rc_latency: ns(150),
        reads: 8,
        cpu_overhead: 0,
        trace: true,
    });
    assert!(out.completed);
    let log = out.trace.expect("trace requested");
    std::fs::write(path, log.to_perfetto_json()).expect("write trace file");
    println!("\nPerfetto trace written to {path} (open in ui.perfetto.dev).");

    let attr = log.attribution();
    println!("\nWhere each MMIO read's {:.0} ns goes:\n", out.mean_ns);
    println!("{}", attr.render());
    let sum: f64 = Stage::ALL.iter().map(|&s| attr.mean_stage_ns(s)).sum();
    assert!(
        (sum - out.mean_ns).abs() < 0.5,
        "stage means ({sum:.1} ns) must sum to the measured latency ({:.1} ns)",
        out.mean_ns
    );
    println!("The stages sum to {sum:.0} ns — exactly the measured mean.");
}
