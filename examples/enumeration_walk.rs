//! Enumeration walkthrough: the §IV story, step by step.
//!
//! Builds a registry with the paper's devices (the 8254x-pcie NIC and the
//! IDE disk behind root ports and a switch), runs the depth-first
//! enumeration software, and shows what the e1000e driver probe sees —
//! including the forced fallback to a legacy interrupt because PM, MSI and
//! MSI-X are all disabled.
//!
//! ```text
//! cargo run --release --example enumeration_walk
//! ```

use pcisim::devices::driver::{e1000e_probe, ide_probe};
use pcisim::devices::ide::ide_config_space;
use pcisim::devices::nic::nic_config_space;
use pcisim::pci::caps::{walk_capabilities, PortType};
use pcisim::pci::prelude::*;
use pcisim::pcie::params::{Generation, LinkWidth};
use pcisim::pcie::router::make_vp2p;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = shared_registry();
    {
        let mut reg = registry.borrow_mut();
        // Three root ports on bus 0, as the paper's root complex has.
        for (i, dev_id) in [0x9c90u16, 0x9c92, 0x9c94].iter().enumerate() {
            reg.register(
                Bdf::new(0, (i + 1) as u8, 0),
                make_vp2p(0x8086, *dev_id, PortType::RootPort, Generation::Gen2, LinkWidth::X4),
            );
        }
        // A switch behind root port 1.
        reg.register(
            Bdf::new(1, 0, 0),
            make_vp2p(0x8086, 0xaa01, PortType::SwitchUpstream, Generation::Gen2, LinkWidth::X4),
        );
        reg.register(
            Bdf::new(2, 0, 0),
            make_vp2p(0x8086, 0xaa02, PortType::SwitchDownstream, Generation::Gen2, LinkWidth::X1),
        );
        reg.register(
            Bdf::new(2, 1, 0),
            make_vp2p(0x8086, 0xaa03, PortType::SwitchDownstream, Generation::Gen2, LinkWidth::X1),
        );
        // The disk behind switch downstream 0, the NIC behind downstream 1.
        reg.register(Bdf::new(3, 0, 0), shared(ide_config_space()));
        reg.register(Bdf::new(4, 0, 0), shared(nic_config_space()));
    }

    println!("running the enumeration software (depth-first bus walk)...\n");
    let report = enumerate(&mut registry.clone(), EnumerationConfig::vexpress_gem5_v1())?;
    println!("{report}");

    println!("capability chain of the NIC (the 82574l layout of §IV):");
    let nic = report.find(0x8086, 0x10d3).expect("NIC enumerated");
    let cs = registry.borrow().lookup(nic.bdf).expect("registered");
    for (offset, id) in walk_capabilities(&cs.borrow()) {
        let name = match id {
            0x01 => "power management (disabled)",
            0x05 => "MSI (enable bit wired to 0)",
            0x10 => "PCI-Express capability",
            0x11 => "MSI-X (disabled)",
            _ => "?",
        };
        println!("  {offset:#04x}: id {id:#04x} — {name}");
    }

    println!("\ne1000e probe:");
    let info = e1000e_probe(&mut registry.clone(), &report)?;
    println!(
        "  matched {:04x}:{:04x} at {} — BAR0 {:#x}, link {:?}, interrupt {:?}",
        0x8086, 0x10d3, info.bdf, info.bar0, info.link, info.interrupt
    );
    println!("  (MSI enable bounced off the disabled structure, hence the legacy IRQ)");

    let disk = ide_probe(&mut registry.clone(), &report)?;
    println!(
        "\nide probe: disk at {} BAR0 {:#x} interrupt {:?}",
        disk.bdf, disk.bar0, disk.interrupt
    );
    Ok(())
}
