//! Link-width exploration (the Fig. 9(b) experiment as an API example).
//!
//! Sweeps every link in the validation topology from x1 to x8 and prints
//! `dd` throughput plus the data-link-layer health counters that explain
//! the x8 behaviour: replays and replay-timeouts on the device's upstream
//! link.
//!
//! ```text
//! cargo run --release --example link_width_sweep [block_mb]
//! ```

use pcisim::pcie::params::LinkWidth;
use pcisim::system::prelude::*;

fn main() {
    let block_mb: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    println!("dd over the validation topology, {block_mb} MB block, all links swept:\n");
    println!(
        "{:>6} {:>12} {:>9} {:>10} {:>14}",
        "width", "dd (Gb/s)", "replay%", "timeout%", "upstream TLPs"
    );
    let mut previous: Option<f64> = None;
    for lanes in [1u8, 2, 4, 8] {
        let out = run_dd_experiment(&DdExperiment {
            block_bytes: block_mb * 1024 * 1024,
            width_all: Some(LinkWidth::new(lanes)),
            ..DdExperiment::default()
        });
        assert!(out.completed, "run must finish");
        let gain =
            previous.map(|p| format!("  ({:.2}x)", out.throughput_gbps / p)).unwrap_or_default();
        println!(
            "{:>6} {:>12.3} {:>8.1}% {:>9.1}% {:>14}{gain}",
            format!("x{lanes}"),
            out.throughput_gbps,
            out.replay_pct,
            out.timeout_pct,
            out.upstream_tlps,
        );
        previous = Some(out.throughput_gbps);
    }
    println!("\nNote how the x8 configuration stops gaining and starts replaying:");
    println!("the switch port cannot service TLPs as fast as the x8 link delivers");
    println!("them, its buffers fill, deliveries bounce, and the replay timer");
    println!("recovers them — the congestion behaviour of the paper's Fig. 9(b).");
}
