//! Posted-write ablation (the paper's future-work discussion, §VI-B).
//!
//! The paper's model (like gem5) answers every DMA write with a response;
//! the disk must collect a whole sector's responses before starting the
//! next sector. Real PCI-Express posts writes — no response, no barrier.
//! This example measures what that limitation costs across link widths.
//!
//! ```text
//! cargo run --release --example posted_writes
//! ```

use pcisim::pcie::params::LinkWidth;
use pcisim::system::prelude::*;

fn main() {
    println!("dd throughput with and without posted DMA writes (8 MB block):\n");
    println!("{:>6} {:>16} {:>13} {:>8}", "width", "non-posted Gb/s", "posted Gb/s", "gain");
    for lanes in [1u8, 2, 4, 8] {
        let base = DdExperiment {
            block_bytes: 8 * 1024 * 1024,
            width_all: Some(LinkWidth::new(lanes)),
            ..DdExperiment::default()
        };
        let nonposted = run_dd_experiment(&base);
        let posted = run_dd_experiment(&DdExperiment { posted_writes: true, ..base });
        assert!(nonposted.completed && posted.completed);
        println!(
            "{:>6} {:>16.3} {:>13.3} {:>7.1}%",
            format!("x{lanes}"),
            nonposted.throughput_gbps,
            posted.throughput_gbps,
            100.0 * (posted.throughput_gbps / nonposted.throughput_gbps - 1.0)
        );
    }
    println!("\nPosted writes remove the per-sector response barrier and the");
    println!("write-response TLPs themselves, which the paper identifies as one");
    println!("reason its gem5 model undershoots the physical link (§VI-B).");
}
