//! Quickstart: build the paper's validation system, run `dd`, print what
//! happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pcisim::system::builder::build_system;
use pcisim::system::prelude::*;

fn main() {
    // The validation topology of §VI-A: root complex —x4— switch —x1— IDE
    // disk, everything Gen 2, 150 ns routers, 16-deep port buffers.
    let mut built = build_system(SystemConfig::validation());

    println!("enumeration found:");
    println!("{}", built.report);
    println!(
        "driver probe: disk at {} BAR0={:#x} interrupt={:?}\n",
        built.probe.bdf, built.probe.bar0, built.probe.interrupt
    );

    // dd if=/dev/disk of=/dev/null bs=8M count=1 iflag=direct
    let report = built.attach_dd(DdConfig { block_bytes: 8 * 1024 * 1024, ..DdConfig::default() });

    let outcome = built.sim.run(pcisim::kernel::tick::TICKS_PER_SEC, u64::MAX);
    let r = report.borrow();
    assert!(r.done, "dd did not finish: {outcome:?}");

    println!(
        "dd read {} MB in {:.3} ms of simulated time: {:.3} Gb/s",
        r.bytes / (1024 * 1024),
        pcisim::kernel::tick::to_seconds(r.end - r.start) * 1e3,
        r.throughput_gbps()
    );
    println!(
        "simulator dispatched {} events ({} disk commands)",
        built.sim.events_processed(),
        r.commands
    );
}
