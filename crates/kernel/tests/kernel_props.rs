//! Property-based tests of the simulation kernel: address-map correctness,
//! event-ordering determinism, and crossbar conservation under arbitrary
//! traffic.

use proptest::prelude::*;

use pcisim_kernel::addr::{AddrMap, AddrRange};
use pcisim_kernel::packet::Command;
use pcisim_kernel::prelude::*;
use pcisim_kernel::testutil::{Requester, Responder, REQUESTER_PORT, RESPONDER_PORT};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An AddrMap built from disjoint ranges answers lookups exactly like
    /// a linear scan.
    #[test]
    fn addr_map_matches_linear_scan(
        spans in proptest::collection::vec((0u64..1 << 20, 1u64..1 << 12), 0..12),
        probes in proptest::collection::vec(0u64..1 << 21, 0..32),
    ) {
        let mut map = AddrMap::new();
        let mut accepted: Vec<(AddrRange, usize)> = Vec::new();
        for (i, (base, size)) in spans.iter().enumerate() {
            let range = AddrRange::with_size(*base, *size);
            if map.insert(range, i).is_ok() {
                accepted.push((range, i));
            }
        }
        prop_assert_eq!(map.len(), accepted.len());
        for p in probes {
            let linear = accepted.iter().find(|(r, _)| r.contains(p)).map(|(_, i)| i);
            prop_assert_eq!(map.lookup(p), linear, "probe {:#x}", p);
        }
    }

    /// Rejected (overlapping) inserts leave the map unchanged.
    #[test]
    fn addr_map_rejects_overlaps_atomically(
        base in 0u64..1000,
        size in 1u64..1000,
        delta in 0u64..999,
    ) {
        let mut map = AddrMap::new();
        let first = AddrRange::with_size(base, size);
        map.insert(first, "a").unwrap();
        // A range starting inside the first must be rejected.
        let overlapping = AddrRange::with_size(base + delta.min(size - 1), size);
        prop_assert!(map.insert(overlapping, "b").is_err());
        prop_assert_eq!(map.len(), 1);
        prop_assert_eq!(map.lookup(base), Some(&"a"));
    }

    /// Any scripted traffic through a crossbar with any queue depth
    /// completes fully, deterministically, twice over.
    #[test]
    fn crossbar_traffic_is_conserved_and_deterministic(
        n in 1u64..64,
        cap in 1usize..8,
        service_ns in 0u64..200,
        read_mix in any::<u64>(),
    ) {
        let run = || {
            let mut sim = Simulation::new();
            let script: Vec<_> = (0..n)
                .map(|i| {
                    let cmd = if (read_mix >> (i % 64)) & 1 == 0 {
                        Command::ReadReq
                    } else {
                        Command::WriteReq
                    };
                    (cmd, 0x1000 + (i % 16) * 64, 64u32)
                })
                .collect();
            let (req, done) = Requester::new("gen", script);
            let r = sim.add(Box::new(req));
            let x = sim.add(Box::new(
                Crossbar::builder("xbar")
                    .num_ports(2)
                    .queue_capacity(cap)
                    .route(AddrRange::new(0x1000, 0x2000), PortId(1))
                    .build(),
            ));
            let (resp, served) = Responder::new("dev", ns(service_ns));
            let d = sim.add(Box::new(resp));
            sim.connect((r, PortId(0)), (x, PortId(0)));
            sim.connect((x, PortId(1)), (d, PortId(0)));
            assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
            let completions = done.borrow().clone();
            let served = *served.borrow();
            (completions, served, sim.now(), sim.events_processed())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.1 as u64, n, "every packet must be served");
        prop_assert_eq!(a.0.len() as u64, n, "every packet must complete");
        prop_assert_eq!(a, b, "identical runs must be bit-identical");
    }

    /// For any monotone interleaving of pushes and pops, the calendar
    /// queue agrees exactly with a sorted reference model: items come out
    /// in (tick, order-stamp) order, including far-future ticks that
    /// live in the overflow heap and limit-bounded `pop_if_at_most` calls.
    #[test]
    fn calendar_queue_matches_reference_model(
        ops in proptest::collection::vec((any::<u8>(), 0u64..1 << 28), 1..256),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        use pcisim_kernel::calendar::CalendarQueue;

        let mut queue: CalendarQueue<u32> = CalendarQueue::new();
        let mut model: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for (i, &(op, delta)) in ops.iter().enumerate() {
            match op % 4 {
                // Push at `now + delta`; small deltas exercise the bucket
                // ring, large ones (>= bucket span) the overflow heap.
                0 | 1 => {
                    let delta = if op & 4 == 0 { delta % (1 << 12) } else { delta };
                    queue.push(now + delta, seq, i as u32);
                    model.push(Reverse((now + delta, seq, i as u32)));
                    seq += 1;
                }
                2 => {
                    let got = queue.pop();
                    let want = model.pop().map(|Reverse((t, _, v))| (t, v));
                    prop_assert_eq!(got, want);
                    if let Some((t, _)) = got {
                        now = t;
                    }
                }
                _ => {
                    let limit = now + delta % (1 << 13);
                    match queue.pop_if_at_most(limit) {
                        Ok(Some((t, o, v))) => {
                            let Reverse((mt, ms, mv)) = model.pop().expect("model nonempty");
                            prop_assert_eq!((t, o, v), (mt, ms, mv));
                            prop_assert!(t <= limit);
                            now = t;
                        }
                        Ok(None) => prop_assert!(model.is_empty()),
                        Err(head) => {
                            let &Reverse((mt, _, _)) = model.peek().expect("head beyond limit");
                            prop_assert_eq!(head, mt);
                            prop_assert!(head > limit);
                        }
                    }
                }
            }
            prop_assert_eq!(queue.len(), model.len());
        }
        // Drain: everything left must come out fully ordered.
        while let Some((t, v)) = queue.pop() {
            let Reverse((mt, _, mv)) = model.pop().expect("model tracks len");
            prop_assert_eq!((t, v), (mt, mv));
        }
        prop_assert!(model.is_empty());
    }

    /// Completions from a FIFO pipeline preserve issue order.
    #[test]
    fn bridge_preserves_order(n in 1u64..48, cap in 1usize..6) {
        use pcisim_kernel::bridge::{Bridge, BRIDGE_IO_SIDE, BRIDGE_MEM_SIDE};
        let mut sim = Simulation::new();
        let script: Vec<_> = (0..n).map(|i| (Command::ReadReq, 0x1000 + i * 4, 4u32)).collect();
        let (req, done) = Requester::new("gen", script);
        let r = sim.add(Box::new(req));
        let b = sim.add(Box::new(Bridge::builder("bridge").req_capacity(cap).build()));
        let (resp, _) = Responder::new("dev", ns(10));
        let d = sim.add(Box::new(resp));
        sim.connect((r, REQUESTER_PORT), (b, BRIDGE_MEM_SIDE));
        sim.connect((b, BRIDGE_IO_SIDE), (d, RESPONDER_PORT));
        prop_assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        let done = done.borrow();
        prop_assert_eq!(done.len() as u64, n);
        // PacketIds were allocated in issue order; completions must be
        // non-decreasing in time and in-order by id for a FIFO pipeline.
        for w in done.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "completion order must match issue order");
            prop_assert!(w[0].1 <= w[1].1);
        }
    }
}

/// Open-loop arrival scheduling at multi-second horizons: `now + delay`
/// must saturate at the end of simulated time rather than wrap u64 and
/// land an event in the past (which would corrupt causality or panic the
/// calendar queue). Regression test for the traffic-generator path.
#[test]
fn long_horizon_scheduling_saturates_instead_of_wrapping() {
    use std::cell::RefCell;
    use std::rc::Rc;

    struct FarFuture {
        fired: Rc<RefCell<Vec<Tick>>>,
    }
    impl Component for FarFuture {
        fn name(&self) -> &str {
            "far"
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            // Lands 5 ticks shy of the end of time.
            ctx.schedule(u64::MAX - 5, Event::Timer { kind: 0, data: 0 });
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            self.fired.borrow_mut().push(ctx.now());
            if let Event::Timer { kind: 0, .. } = ev {
                // now + delay overflows u64; must pin to u64::MAX, not wrap
                // to a tick before `now`.
                ctx.schedule(u64::MAX, Event::Timer { kind: 1, data: 0 });
            }
        }
    }

    let fired = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulation::new();
    sim.add(Box::new(FarFuture { fired: Rc::clone(&fired) }));
    assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
    let fired = fired.borrow();
    assert_eq!(*fired, vec![u64::MAX - 5, u64::MAX]);
}

/// Tick unit constructors saturate instead of wrapping: a pathological
/// `us(u64::MAX)` style conversion must stay at the end of time.
#[test]
fn tick_conversions_saturate_at_the_horizon() {
    use pcisim_kernel::tick::{ms, us};
    assert_eq!(ns(u64::MAX), u64::MAX);
    assert_eq!(us(u64::MAX / 2), u64::MAX);
    assert_eq!(ms(u64::MAX), u64::MAX);
    // Ordinary magnitudes are untouched.
    assert_eq!(ns(150), 150_000);
    assert_eq!(us(3), 3_000_000);
}
