//! Crossbar interconnect (gem5's `MemBus` / `IOBus`).
//!
//! A [`Crossbar`] routes request packets to one of its ports by address
//! range and routes responses back along the route stack recorded on the
//! request path. It models a forwarding (frontend) latency, payload
//! serialization bandwidth per egress port, and bounded per-port output
//! queues with the kernel's refusal/retry flow control — loosely following
//! the ARM AXI-style crossbar gem5 implements.

use std::collections::VecDeque;

use crate::addr::{AddrMap, AddrRange};
use crate::component::{Component, Event, PortId, RecvResult};
use crate::packet::{decode_packet_queue, encode_packet_queue, CompletionStatus, Packet};
use crate::sim::Ctx;
use crate::snapshot::{SnapshotError, StateReader, StateWriter};
use crate::stats::{Counter, StatsBuilder};
use crate::tick::{transfer_time, Tick};
use crate::trace::{TraceCategory, TraceKind};

/// Builder for [`Crossbar`]; see [`Crossbar::builder`].
#[derive(Debug)]
pub struct CrossbarBuilder {
    name: String,
    num_ports: usize,
    frontend_latency: Tick,
    bytes_per_sec: u64,
    queue_capacity: usize,
    routes: Vec<(AddrRange, PortId)>,
    default_route: Option<PortId>,
}

impl CrossbarBuilder {
    /// Sets the number of ports (ids `0..n`).
    pub fn num_ports(mut self, n: usize) -> Self {
        self.num_ports = n;
        self
    }

    /// Sets the forwarding-decision latency added to every packet.
    pub fn frontend_latency(mut self, t: Tick) -> Self {
        self.frontend_latency = t;
        self
    }

    /// Sets the payload serialization bandwidth per egress port
    /// (0 = infinite).
    pub fn bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bytes_per_sec = bytes_per_sec;
        self
    }

    /// Sets the per-port output queue capacity (requests and responses each
    /// get a queue of this depth).
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        self.queue_capacity = cap;
        self
    }

    /// Routes requests for `range` out of `port`.
    pub fn route(mut self, range: AddrRange, port: PortId) -> Self {
        self.routes.push((range, port));
        self
    }

    /// Routes requests matching no explicit range out of `port`.
    pub fn default_route(mut self, port: PortId) -> Self {
        self.default_route = Some(port);
        self
    }

    /// Builds the crossbar.
    ///
    /// # Panics
    ///
    /// Panics when a route targets a port outside `0..num_ports` or when
    /// route ranges overlap.
    pub fn build(self) -> Crossbar {
        let mut map = AddrMap::new();
        for (range, port) in self.routes {
            assert!(
                (port.0 as usize) < self.num_ports,
                "route target {port} out of range for {} ports",
                self.num_ports
            );
            map.insert(range, port).unwrap_or_else(|r| panic!("overlapping crossbar route {r:?}"));
        }
        if let Some(p) = self.default_route {
            assert!((p.0 as usize) < self.num_ports, "default route {p} out of range");
        }
        Crossbar {
            name: self.name,
            frontend_latency: self.frontend_latency,
            bytes_per_sec: self.bytes_per_sec,
            route: map,
            default_route: self.default_route,
            ports: (0..self.num_ports).map(|_| PortState::new(self.queue_capacity)).collect(),
            stats: XbarStats::default(),
        }
    }
}

#[derive(Debug)]
struct PortState {
    out_req: VecDeque<Packet>,
    out_resp: VecDeque<Packet>,
    capacity: usize,
    /// Packets accepted and in the latency pipe, destined for this egress.
    inflight_req: usize,
    inflight_resp: usize,
    /// Our send to the peer was refused; waiting for its retry.
    waiting_peer: bool,
    /// Egress serialization horizon.
    busy_until: Tick,
    /// Ingress ports refused because this egress was full; owed retries.
    waiting_req_ingress: Vec<PortId>,
    waiting_resp_ingress: Vec<PortId>,
}

impl PortState {
    fn new(capacity: usize) -> Self {
        Self {
            out_req: VecDeque::new(),
            out_resp: VecDeque::new(),
            capacity,
            inflight_req: 0,
            inflight_resp: 0,
            waiting_peer: false,
            busy_until: 0,
            waiting_req_ingress: Vec::new(),
            waiting_resp_ingress: Vec::new(),
        }
    }

    fn req_full(&self) -> bool {
        self.out_req.len() + self.inflight_req >= self.capacity
    }

    fn resp_full(&self) -> bool {
        self.out_resp.len() + self.inflight_resp >= self.capacity
    }
}

#[derive(Debug, Default)]
struct XbarStats {
    reqs: Counter,
    resps: Counter,
    refusals: Counter,
    bytes: Counter,
    /// Requests matching no route: answered with an Unsupported Request
    /// completion (master abort) instead of panicking.
    unrouted: Counter,
}

/// An address-routed crossbar with bounded per-port queues.
///
/// Tag conventions for self-scheduled events: the `DelayedPacket` tag is the
/// egress port index.
#[derive(Debug)]
pub struct Crossbar {
    name: String,
    frontend_latency: Tick,
    bytes_per_sec: u64,
    route: AddrMap<PortId>,
    default_route: Option<PortId>,
    ports: Vec<PortState>,
    stats: XbarStats,
}

impl Crossbar {
    /// Starts building a crossbar named `name`.
    pub fn builder(name: impl Into<String>) -> CrossbarBuilder {
        CrossbarBuilder {
            name: name.into(),
            num_ports: 2,
            frontend_latency: 0,
            bytes_per_sec: 0,
            queue_capacity: 4,
            routes: Vec::new(),
            default_route: None,
        }
    }

    /// The port a request for `addr` would leave through.
    pub fn route_for(&self, addr: u64) -> Option<PortId> {
        self.route.lookup(addr).copied().or(self.default_route)
    }

    /// Computes when a packet entering now finishes crossing the crossbar
    /// toward `egress`, updating the serialization horizon.
    fn pipe_delay(&mut self, now: Tick, egress: PortId, pkt: &Packet) -> Tick {
        let xfer = if self.bytes_per_sec == 0 {
            0
        } else {
            transfer_time(u64::from(pkt.payload_len()), self.bytes_per_sec)
        };
        let start = (now + self.frontend_latency).max(self.ports[egress.0 as usize].busy_until);
        let finish = start + xfer;
        self.ports[egress.0 as usize].busy_until = finish;
        finish - now
    }

    fn drain(&mut self, ctx: &mut Ctx<'_>, egress: PortId) {
        let idx = egress.0 as usize;
        loop {
            if self.ports[idx].waiting_peer {
                return;
            }
            // Responses first: response progress must never be blocked
            // behind requests or the fabric can deadlock.
            if let Some(pkt) = self.ports[idx].out_resp.pop_front() {
                match ctx.try_send_response(egress, pkt) {
                    Ok(()) => {
                        self.notify_waiters(ctx, egress);
                        continue;
                    }
                    Err(pkt) => {
                        self.ports[idx].out_resp.push_front(pkt);
                        self.ports[idx].waiting_peer = true;
                        return;
                    }
                }
            }
            if let Some(pkt) = self.ports[idx].out_req.pop_front() {
                match ctx.try_send_request(egress, pkt) {
                    Ok(()) => {
                        self.notify_waiters(ctx, egress);
                        continue;
                    }
                    Err(pkt) => {
                        self.ports[idx].out_req.push_front(pkt);
                        self.ports[idx].waiting_peer = true;
                        return;
                    }
                }
            }
            return;
        }
    }

    /// Space freed in `egress` queues: grant retries to refused ingress
    /// peers.
    fn notify_waiters(&mut self, ctx: &mut Ctx<'_>, egress: PortId) {
        let idx = egress.0 as usize;
        if !self.ports[idx].req_full() {
            for ingress in std::mem::take(&mut self.ports[idx].waiting_req_ingress) {
                ctx.send_retry(ingress);
            }
        }
        if !self.ports[idx].resp_full() {
            for ingress in std::mem::take(&mut self.ports[idx].waiting_resp_ingress) {
                ctx.send_retry(ingress);
            }
        }
    }
}

impl Component for Crossbar {
    fn name(&self) -> &str {
        &self.name
    }

    fn recv_request(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) -> RecvResult {
        let Some(egress) = self.route_for(pkt.addr()) else {
            // Master abort: no port claims this address. Posted requests
            // vanish silently (nobody is waiting); non-posted requests get
            // an Unsupported Request completion synthesized back out the
            // ingress port after the frontend latency — never synchronously,
            // which would re-enter the sender.
            self.stats.unrouted.inc();
            if ctx.tracing(TraceCategory::Fabric) {
                ctx.emit(
                    TraceCategory::Fabric,
                    TraceKind::FabricForward,
                    Some(pkt.id()),
                    Some(pkt.cmd()),
                    u64::MAX,
                );
            }
            if pkt.is_posted() {
                ctx.recycle_packet(pkt);
                return RecvResult::Accepted;
            }
            let resp = pkt.into_error_response(CompletionStatus::UnsupportedRequest);
            let idx = port.0 as usize;
            self.ports[idx].inflight_resp += 1;
            let delay = self.pipe_delay(ctx.now(), port, &resp);
            ctx.schedule(delay, Event::DelayedPacket { tag: u32::from(port.0), pkt: resp });
            return RecvResult::Accepted;
        };
        let idx = egress.0 as usize;
        if self.ports[idx].req_full() {
            self.stats.refusals.inc();
            if !self.ports[idx].waiting_req_ingress.contains(&port) {
                self.ports[idx].waiting_req_ingress.push(port);
            }
            return RecvResult::Refused(pkt);
        }
        self.stats.reqs.inc();
        self.stats.bytes.add(u64::from(pkt.payload_len()));
        if ctx.tracing(TraceCategory::Fabric) {
            ctx.emit(
                TraceCategory::Fabric,
                TraceKind::FabricForward,
                Some(pkt.id()),
                Some(pkt.cmd()),
                u64::from(egress.0),
            );
        }
        pkt.push_route(ctx.self_id(), port);
        self.ports[idx].inflight_req += 1;
        let delay = self.pipe_delay(ctx.now(), egress, &pkt);
        ctx.schedule(delay, Event::DelayedPacket { tag: u32::from(egress.0), pkt });
        RecvResult::Accepted
    }

    fn recv_response(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) -> RecvResult {
        let hop = pkt
            .peek_route()
            .copied()
            .unwrap_or_else(|| panic!("{}: response {} with empty route stack", self.name, pkt));
        assert_eq!(
            hop.component,
            ctx.self_id(),
            "{}: response routed to wrong crossbar",
            self.name
        );
        let egress = hop.port;
        let idx = egress.0 as usize;
        if self.ports[idx].resp_full() {
            self.stats.refusals.inc();
            if !self.ports[idx].waiting_resp_ingress.contains(&port) {
                self.ports[idx].waiting_resp_ingress.push(port);
            }
            return RecvResult::Refused(pkt);
        }
        pkt.pop_route();
        self.stats.resps.inc();
        self.stats.bytes.add(u64::from(pkt.payload_len()));
        if ctx.tracing(TraceCategory::Fabric) {
            ctx.emit(
                TraceCategory::Fabric,
                TraceKind::FabricForward,
                Some(pkt.id()),
                Some(pkt.cmd()),
                u64::from(egress.0),
            );
        }
        self.ports[idx].inflight_resp += 1;
        let delay = self.pipe_delay(ctx.now(), egress, &pkt);
        ctx.schedule(delay, Event::DelayedPacket { tag: u32::from(egress.0), pkt });
        RecvResult::Accepted
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        let Event::DelayedPacket { tag, pkt } = ev else {
            panic!("{}: unexpected timer", self.name);
        };
        let egress = PortId(tag as u16);
        let idx = egress.0 as usize;
        if pkt.is_request() {
            self.ports[idx].inflight_req -= 1;
            self.ports[idx].out_req.push_back(pkt);
        } else {
            self.ports[idx].inflight_resp -= 1;
            self.ports[idx].out_resp.push_back(pkt);
        }
        self.drain(ctx, egress);
    }

    fn retry_granted(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        self.ports[port.0 as usize].waiting_peer = false;
        self.drain(ctx, port);
    }

    fn report_stats(&self, out: &mut StatsBuilder) {
        out.counter("requests", &self.stats.reqs);
        out.counter("responses", &self.stats.resps);
        out.counter("refusals", &self.stats.refusals);
        out.counter("payload_bytes", &self.stats.bytes);
        out.counter("unsupported_requests", &self.stats.unrouted);
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.ports.len());
        for p in &self.ports {
            encode_packet_queue(w, &p.out_req);
            encode_packet_queue(w, &p.out_resp);
            w.usize(p.inflight_req);
            w.usize(p.inflight_resp);
            w.bool(p.waiting_peer);
            w.u64(p.busy_until);
            w.usize(p.waiting_req_ingress.len());
            for ingress in &p.waiting_req_ingress {
                w.u16(ingress.0);
            }
            w.usize(p.waiting_resp_ingress.len());
            for ingress in &p.waiting_resp_ingress {
                w.u16(ingress.0);
            }
        }
        self.stats.reqs.encode(w);
        self.stats.resps.encode(w);
        self.stats.refusals.encode(w);
        self.stats.bytes.encode(w);
        self.stats.unrouted.encode(w);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let n = r.usize()?;
        if n != self.ports.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{}: checkpoint has {n} ports, component has {}",
                self.name,
                self.ports.len()
            )));
        }
        for p in &mut self.ports {
            p.out_req = decode_packet_queue(r)?;
            p.out_resp = decode_packet_queue(r)?;
            p.inflight_req = r.usize()?;
            p.inflight_resp = r.usize()?;
            p.waiting_peer = r.bool()?;
            p.busy_until = r.u64()?;
            let n_req = r.usize()?;
            p.waiting_req_ingress =
                (0..n_req).map(|_| r.u16().map(PortId)).collect::<Result<_, _>>()?;
            let n_resp = r.usize()?;
            p.waiting_resp_ingress =
                (0..n_resp).map(|_| r.u16().map(PortId)).collect::<Result<_, _>>()?;
        }
        self.stats.reqs = Counter::decode(r)?;
        self.stats.resps = Counter::decode(r)?;
        self.stats.refusals = Counter::decode(r)?;
        self.stats.bytes = Counter::decode(r)?;
        self.stats.unrouted = Counter::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Command;
    use crate::sim::{RunOutcome, Simulation};
    use crate::testutil::{Requester, Responder};
    use crate::tick::ns;

    fn two_port_xbar() -> Crossbar {
        Crossbar::builder("xbar")
            .num_ports(2)
            .frontend_latency(ns(5))
            .route(AddrRange::new(0x1000, 0x2000), PortId(1))
            .build()
    }

    #[test]
    fn routes_by_address_and_returns_responses() {
        let mut sim = Simulation::new();
        let (req, done) = Requester::new("cpu", vec![(Command::ReadReq, 0x1800, 64)]);
        let r = sim.add(Box::new(req));
        let x = sim.add(Box::new(two_port_xbar()));
        let (resp, served) = Responder::new("dev", ns(100));
        let d = sim.add(Box::new(resp));
        sim.connect((r, PortId(0)), (x, PortId(0)));
        sim.connect((x, PortId(1)), (d, PortId(0)));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(done.borrow().len(), 1);
        assert_eq!(*served.borrow(), 1);
        // 5 ns each crossing (req + resp) + 100 ns service.
        assert_eq!(done.borrow()[0].1, ns(110));
    }

    #[test]
    fn unrouted_address_has_no_route() {
        let x = two_port_xbar();
        assert_eq!(x.route_for(0x1800), Some(PortId(1)));
        assert_eq!(x.route_for(0x5000), None);
    }

    /// Sends one scripted request and captures the full response packet,
    /// which [`Requester`] cannot (it recycles payloads on arrival).
    #[derive(Debug)]
    struct Probe {
        script: Vec<(Command, u64, u32, bool)>,
        got: std::rc::Rc<std::cell::RefCell<Vec<Packet>>>,
    }

    impl Component for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(0, Event::Timer { kind: 0, data: 0 });
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, _ev: Event) {
            for (cmd, addr, size, posted) in self.script.drain(..) {
                let id = ctx.alloc_packet_id();
                let mut pkt = Packet::request(id, cmd, addr, size, ctx.self_id());
                if cmd.is_write() {
                    pkt = pkt.with_payload(vec![0xab; size as usize]);
                }
                pkt.set_posted(posted);
                ctx.try_send_request(PortId(0), pkt).expect("probe send refused");
            }
        }
        fn recv_response(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) -> RecvResult {
            self.got.borrow_mut().push(pkt);
            RecvResult::Accepted
        }
    }

    #[test]
    fn unrouted_read_completes_with_unsupported_request_all_ones() {
        let mut sim = Simulation::new();
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let p = sim.add(Box::new(Probe {
            script: vec![(Command::ReadReq, 0x5000, 64, false)],
            got: got.clone(),
        }));
        let x = sim.add(Box::new(two_port_xbar()));
        let (resp, served) = Responder::new("dev", ns(100));
        let d = sim.add(Box::new(resp));
        sim.connect((p, PortId(0)), (x, PortId(0)));
        sim.connect((x, PortId(1)), (d, PortId(0)));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty, "no hang on master abort");
        assert_eq!(*served.borrow(), 0, "nothing reached the device");
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].cmd(), Command::ReadResp);
        assert_eq!(got[0].status(), crate::packet::CompletionStatus::UnsupportedRequest);
        assert!(
            got[0].payload().unwrap().iter().all(|&b| b == 0xff),
            "master abort reads all-ones"
        );
        assert_eq!(sim.stats().get("xbar.unsupported_requests"), Some(1.0));
    }

    #[test]
    fn unrouted_posted_write_is_dropped_silently() {
        let mut sim = Simulation::new();
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let p = sim.add(Box::new(Probe {
            script: vec![
                (Command::WriteReq, 0x5000, 64, true),
                (Command::ReadReq, 0x1800, 64, false),
            ],
            got: got.clone(),
        }));
        let x = sim.add(Box::new(two_port_xbar()));
        let (resp, served) = Responder::new("dev", ns(100));
        let d = sim.add(Box::new(resp));
        sim.connect((p, PortId(0)), (x, PortId(0)));
        sim.connect((x, PortId(1)), (d, PortId(0)));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        // The posted write vanished; the routed read still completed.
        assert_eq!(*served.borrow(), 1);
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert!(!got[0].is_error());
        assert_eq!(sim.stats().get("xbar.unsupported_requests"), Some(1.0));
    }

    #[test]
    fn default_route_catches_unmatched() {
        let x = Crossbar::builder("x")
            .num_ports(3)
            .route(AddrRange::new(0x1000, 0x2000), PortId(1))
            .default_route(PortId(2))
            .build();
        assert_eq!(x.route_for(0x1000), Some(PortId(1)));
        assert_eq!(x.route_for(0x9999_0000), Some(PortId(2)));
    }

    #[test]
    #[should_panic(expected = "overlapping crossbar route")]
    fn overlapping_routes_rejected() {
        let _ = Crossbar::builder("x")
            .num_ports(2)
            .route(AddrRange::new(0x1000, 0x2000), PortId(0))
            .route(AddrRange::new(0x1800, 0x2800), PortId(1))
            .build();
    }

    #[test]
    fn bandwidth_serializes_back_to_back_writes() {
        // Two 64 B writes at 64 B/us must finish 1 us apart at the device.
        let mut sim = Simulation::new();
        let (req, done) = Requester::new(
            "cpu",
            vec![(Command::WriteReq, 0x1000, 64), (Command::WriteReq, 0x1040, 64)],
        );
        let r = sim.add(Box::new(req));
        let x = sim.add(Box::new(
            Crossbar::builder("xbar")
                .num_ports(2)
                .bandwidth(64_000_000) // 64 B per microsecond
                .route(AddrRange::new(0x1000, 0x2000), PortId(1))
                .build(),
        ));
        let (resp, _served) = Responder::new("dev", 0);
        let d = sim.add(Box::new(resp));
        sim.connect((r, PortId(0)), (x, PortId(0)));
        sim.connect((x, PortId(1)), (d, PortId(0)));
        sim.run_to_quiesce();
        let done = done.borrow();
        assert_eq!(done.len(), 2);
        // Completions one serialization quantum apart.
        assert_eq!(done[1].1 - done[0].1, crate::tick::us(1));
    }

    #[test]
    fn full_queue_refuses_then_recovers() {
        // A slow responder with a 1-deep crossbar queue: all packets still
        // arrive, in order.
        let mut sim = Simulation::new();
        let pkts: Vec<_> = (0..8).map(|i| (Command::WriteReq, 0x1000 + i * 64, 64)).collect();
        let (req, done) = Requester::new("cpu", pkts);
        let r = sim.add(Box::new(req));
        let x = sim.add(Box::new(
            Crossbar::builder("xbar")
                .num_ports(2)
                .queue_capacity(1)
                .route(AddrRange::new(0x1000, 0x2000), PortId(1))
                .build(),
        ));
        let (resp, served) = Responder::new("dev", ns(50));
        let d = sim.add(Box::new(resp));
        sim.connect((r, PortId(0)), (x, PortId(0)));
        sim.connect((x, PortId(1)), (d, PortId(0)));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(*served.borrow(), 8);
        assert_eq!(done.borrow().len(), 8);
        let stats = sim.stats();
        assert!(stats.get("xbar.refusals").unwrap() > 0.0);
        assert_eq!(stats.get("xbar.requests"), Some(8.0));
        assert_eq!(stats.get("xbar.responses"), Some(8.0));
    }

    #[test]
    fn three_requesters_one_target_all_complete() {
        let mut sim = Simulation::new();
        let mut dones = Vec::new();
        let mut rs = Vec::new();
        for i in 0..3 {
            let (req, done) = Requester::new(
                format!("cpu{i}"),
                (0..4).map(|j| (Command::ReadReq, 0x1000 + j * 64, 64)).collect(),
            );
            dones.push(done);
            rs.push(sim.add(Box::new(req)));
        }
        let x = sim.add(Box::new(
            Crossbar::builder("xbar")
                .num_ports(4)
                .queue_capacity(2)
                .route(AddrRange::new(0x1000, 0x2000), PortId(3))
                .build(),
        ));
        let (resp, served) = Responder::new("dev", ns(20));
        let d = sim.add(Box::new(resp));
        for (i, r) in rs.iter().enumerate() {
            sim.connect((*r, PortId(0)), (x, PortId(i as u16)));
        }
        sim.connect((x, PortId(3)), (d, PortId(0)));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(*served.borrow(), 12);
        for done in &dones {
            assert_eq!(done.borrow().len(), 4);
        }
    }
}
