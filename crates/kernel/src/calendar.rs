//! A bucketed calendar queue for the simulation scheduler.
//!
//! The kernel's hot path schedules almost every event at `now + d` where
//! `d` is a small delay (link serialisation, switch latency, a timer a few
//! hundred nanoseconds out). A global binary heap pays `O(log n)` on every
//! push and pop for that pattern; a calendar queue pays `O(1)` amortised by
//! hashing ticks into a ring of per-window FIFO buckets and only falling
//! back to a heap for the (rare) far-future events.
//!
//! Layout:
//!
//! - time is divided into fixed windows of `2^BUCKET_BITS` ticks;
//! - a ring of [`NUM_BUCKETS`] buckets covers the windows immediately
//!   after the currently open one (`cur_window`);
//! - entries for the open window live in a small binary heap (`cur`) so
//!   same-window entries pop in exact `(tick, seq)` order;
//! - entries beyond the ring horizon go to an overflow heap and migrate
//!   into the ring as the calendar advances.
//!
//! Items themselves live in a slab and are addressed by slot index from
//! the ring/heaps, so bucket drains and heap sifts move 24-byte keys
//! instead of full event payloads (~128 bytes for a packet-carrying
//! action); each item is written and read exactly once.
//!
//! Determinism: every push is stamped with a monotonically increasing
//! sequence number, and [`CalendarQueue::pop`] always yields the globally
//! smallest `(tick, seq)` pair — bit-identical to the `BinaryHeap` ordering
//! it replaces. The invariants that make the window-jumping correct are
//! spelled out in DESIGN.md §"Scheduler internals".

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::snapshot::{SnapshotError, StateReader, StateWriter};
use crate::tick::Tick;

/// log2 of the bucket window size in ticks. With 1 tick = 1 ps this makes
/// each window 65,536 ps ≈ 65.5 ns — the same order as one PCIe link
/// serialisation step, so near-future events land a handful of buckets
/// ahead of the cursor.
pub const BUCKET_BITS: u32 = 16;

/// Number of ring buckets (must be a power of two). The ring spans
/// `NUM_BUCKETS << BUCKET_BITS` ticks ≈ 67 µs of simulated time; anything
/// scheduled further out overflows to the heap.
pub const NUM_BUCKETS: u64 = 1024;

const MASK: u64 = NUM_BUCKETS - 1;

/// Ordering key plus the slab slot holding the item. `seq` is unique, so
/// `slot` never participates in comparisons.
#[derive(Debug, Clone, Copy)]
struct Key {
    tick: Tick,
    seq: u64,
    slot: u32,
}

/// Names one queued entry so it can later be cancelled with
/// [`CalendarQueue::cancel`]. The sequence stamp makes handles single-use:
/// once the entry has popped (or been cancelled) the handle goes stale and
/// further cancels are no-ops, even if the slab slot has been reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHandle {
    slot: u32,
    seq: u64,
}

impl EventHandle {
    /// Serializes the handle for a checkpoint. Slab slots and sequence
    /// stamps survive [`CalendarQueue::restore`] verbatim, so a restored
    /// handle cancels the same queued entry it did before the checkpoint.
    pub fn encode(&self, w: &mut StateWriter) {
        w.u32(self.slot);
        w.u64(self.seq);
    }

    /// Deserializes a handle written by [`EventHandle::encode`].
    pub fn decode(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
        let slot = r.u32()?;
        let seq = r.u64()?;
        Ok(Self { slot, seq })
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.seq == other.seq
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.tick, self.seq).cmp(&(other.tick, other.seq))
    }
}

/// A priority queue over `(tick, insertion order)` optimised for
/// near-future pushes.
///
/// Invariants (checked in debug builds, argued in DESIGN.md):
///
/// 1. every ring-bucket entry has window `w` with
///    `cur_window < w < cur_window + NUM_BUCKETS`, so each bucket holds at
///    most one distinct window and can be drained wholesale when opened;
/// 2. every overflow entry has window `>= cur_window + NUM_BUCKETS`, so
///    the ring always contains the earliest pending window whenever it is
///    non-empty.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    buckets: Vec<Vec<Key>>,
    /// Entries belonging to the currently open window, ordered.
    cur: BinaryHeap<Reverse<Key>>,
    /// Entries at or beyond `cur_window + NUM_BUCKETS` windows.
    overflow: BinaryHeap<Reverse<Key>>,
    /// Item storage addressed by `Key::slot`, stamped with the sequence
    /// number of the push that filled it (`None` = cancelled tombstone or
    /// vacant).
    slab: Vec<(u64, Option<T>)>,
    /// Vacant slab slots available for reuse.
    free: Vec<u32>,
    cur_window: u64,
    /// Total keys held in the ring buckets (not `cur` / `overflow`),
    /// tombstones included.
    ring_len: usize,
    /// Live (non-cancelled) entries.
    len: usize,
    seq: u64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue with the calendar cursor at window 0.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            cur: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            cur_window: 0,
            ring_len: 0,
            len: 0,
            seq: 0,
        }
    }

    /// Number of queued entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `item` at `tick`, stamped with the next sequence number.
    /// Later pushes at the same tick pop later (FIFO within a tick).
    /// The returned handle can cancel the entry before it pops.
    #[inline]
    pub fn push(&mut self, tick: Tick, item: T) -> EventHandle {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = (seq, Some(item));
                slot
            }
            None => {
                let slot = self.slab.len() as u32;
                self.slab.push((seq, Some(item)));
                slot
            }
        };
        let key = Key { tick, seq, slot };
        let w = tick >> BUCKET_BITS;
        if w <= self.cur_window {
            self.cur.push(Reverse(key));
        } else if w - self.cur_window < NUM_BUCKETS {
            self.ring_len += 1;
            self.buckets[(w & MASK) as usize].push(key);
        } else {
            self.overflow.push(Reverse(key));
        }
        EventHandle { slot, seq }
    }

    /// Cancels the entry named by `handle`, returning its item; `None`
    /// when the entry has already popped or been cancelled (stale handle).
    ///
    /// The cancelled key stays where it physically sits (bucket or heap)
    /// as a tombstone and is reclaimed when the dispatch loop reaches it;
    /// tombstones are skipped silently, so a cancelled event never fires,
    /// never advances time, and never perturbs the order of live events.
    pub fn cancel(&mut self, handle: EventHandle) -> Option<T> {
        let (stamp, item) = self.slab.get_mut(handle.slot as usize)?;
        if *stamp != handle.seq {
            return None;
        }
        let item = item.take()?;
        self.len -= 1;
        // The slot is NOT freed here: its key still sits in a bucket or
        // heap, and a reused slot would make that stale key resurrect the
        // new occupant. The slot frees when the tombstone key pops.
        Some(item)
    }

    /// Advances the calendar until the open-window heap holds the globally
    /// earliest entry (no-op when it already does, or the queue is empty).
    fn settle(&mut self) {
        while self.cur.is_empty() && self.len > 0 {
            // Find the earliest occupied window. By invariant 2 the ring
            // (when non-empty) always beats the overflow heap, and by
            // invariant 1 the first non-empty bucket after the cursor
            // identifies its window exactly.
            let target = if self.ring_len > 0 {
                (1..NUM_BUCKETS)
                    .map(|i| self.cur_window + i)
                    .find(|w| !self.buckets[(w & MASK) as usize].is_empty())
                    .expect("ring_len > 0 implies an occupied bucket within the horizon")
            } else {
                let Reverse(head) = self.overflow.peek().expect("len > 0 with empty ring and cur");
                head.tick >> BUCKET_BITS
            };
            self.cur_window = target;
            // Re-establish invariant 2: migrate overflow entries that now
            // fall inside the ring horizon.
            while let Some(Reverse(head)) = self.overflow.peek() {
                let w = head.tick >> BUCKET_BITS;
                if w >= self.cur_window + NUM_BUCKETS {
                    break;
                }
                let Reverse(key) = self.overflow.pop().expect("peeked");
                if w <= self.cur_window {
                    self.cur.push(Reverse(key));
                } else {
                    self.ring_len += 1;
                    self.buckets[(w & MASK) as usize].push(key);
                }
            }
            // Open the bucket for the new cursor window.
            let bucket = &mut self.buckets[(self.cur_window & MASK) as usize];
            self.ring_len -= bucket.len();
            for key in bucket.drain(..) {
                debug_assert_eq!(key.tick >> BUCKET_BITS, self.cur_window);
                self.cur.push(Reverse(key));
            }
        }
    }

    /// Like [`CalendarQueue::settle`], but additionally discards cancelled
    /// tombstone keys at the head of the open-window heap (reclaiming their
    /// slab slots), so afterwards the head of `cur` — when present — is a
    /// live entry.
    fn settle_live(&mut self) {
        loop {
            self.settle();
            let Some(&Reverse(head)) = self.cur.peek() else { return };
            if self.slab[head.slot as usize].1.is_some() {
                return;
            }
            self.cur.pop();
            self.free.push(head.slot);
        }
    }

    /// The tick of the earliest queued (live) entry, if any.
    #[inline]
    pub fn next_tick(&mut self) -> Option<Tick> {
        self.settle_live();
        self.cur.peek().map(|&Reverse(key)| key.tick)
    }

    /// Removes and returns the entry with the smallest `(tick, seq)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(Tick, T)> {
        self.settle_live();
        let Reverse(key) = self.cur.pop()?;
        self.len -= 1;
        let item = self.slab[key.slot as usize].1.take().expect("live head after settle_live");
        self.free.push(key.slot);
        Some((key.tick, item))
    }

    /// Fused peek-and-pop for the dispatch loop: settles once, then pops
    /// the head only if its tick is `<= limit`. `Err(head_tick)` reports a
    /// head beyond the limit without disturbing it; `Ok(None)` means empty.
    #[inline]
    pub fn pop_if_at_most(&mut self, limit: Tick) -> Result<Option<(Tick, T)>, Tick> {
        self.settle_live();
        let Some(&Reverse(head)) = self.cur.peek() else { return Ok(None) };
        if head.tick > limit {
            return Err(head.tick);
        }
        let Reverse(key) = self.cur.pop().expect("peeked");
        self.len -= 1;
        let item = self.slab[key.slot as usize].1.take().expect("live head after settle_live");
        self.free.push(key.slot);
        Ok(Some((key.tick, item)))
    }

    /// Serializes the queue into a checkpoint: the sequence allocator, the
    /// slab free list, and every pending key — live entries *and* cancelled
    /// tombstones — as portable `(tick, seq, slot)` triples sorted by pop
    /// order. Slot indices and sequence stamps are preserved exactly so
    /// that [`EventHandle`]s held by components (e.g. armed completion
    /// timers) remain valid against the restored queue. Live items are
    /// encoded by `enc`.
    pub fn save(&self, w: &mut StateWriter, mut enc: impl FnMut(&mut StateWriter, &T)) {
        w.u64(self.seq);
        w.usize(self.slab.len());
        w.usize(self.free.len());
        for &slot in &self.free {
            w.u32(slot);
        }
        let mut keys: Vec<Key> =
            Vec::with_capacity(self.cur.len() + self.overflow.len() + self.ring_len);
        keys.extend(self.cur.iter().map(|&Reverse(k)| k));
        keys.extend(self.overflow.iter().map(|&Reverse(k)| k));
        for bucket in &self.buckets {
            keys.extend_from_slice(bucket);
        }
        keys.sort_by_key(|k| (k.tick, k.seq));
        w.usize(keys.len());
        for k in keys {
            w.u64(k.tick);
            w.u64(k.seq);
            w.u32(k.slot);
            match &self.slab[k.slot as usize].1 {
                Some(item) => {
                    w.bool(true);
                    enc(w, item);
                }
                None => w.bool(false),
            }
        }
    }

    /// Rebuilds a queue from [`CalendarQueue::save`] output, with the
    /// calendar cursor positioned for simulated time `now`. Items are
    /// decoded by `dec`. The rebuilt queue pops in the identical global
    /// `(tick, seq)` order, reuses the identical slab slots and free list,
    /// and continues the sequence counter — so post-restore scheduling is
    /// bit-identical to the uninterrupted original.
    pub fn restore(
        now: Tick,
        r: &mut StateReader<'_>,
        mut dec: impl FnMut(&mut StateReader<'_>) -> Result<T, SnapshotError>,
    ) -> Result<Self, SnapshotError> {
        let seq = r.u64()?;
        let slab_len = r.usize()?;
        let free_len = r.usize()?;
        let mut free = Vec::new();
        for _ in 0..free_len {
            free.push(r.u32()?);
        }
        let n_keys = r.usize()?;
        let mut entries = Vec::new();
        for _ in 0..n_keys {
            let tick = r.u64()?;
            let kseq = r.u64()?;
            let slot = r.u32()?;
            let item = if r.bool()? { Some(dec(r)?) } else { None };
            entries.push((tick, kseq, slot, item));
        }
        // Every slab slot is accounted for exactly once: vacant slots sit
        // in the free list, occupied ones carry exactly one pending key.
        if slab_len != free.len() + entries.len() {
            return Err(SnapshotError::Corrupt("slab population does not match its size".into()));
        }
        let mut q = Self::new();
        q.seq = seq;
        q.slab.resize_with(slab_len, || (0, None));
        q.cur_window = now >> BUCKET_BITS;
        let mut occupied = vec![false; slab_len];
        for &slot in &free {
            let i = slot as usize;
            if i >= slab_len || occupied[i] {
                return Err(SnapshotError::Corrupt("free-list slot invalid or duplicated".into()));
            }
            occupied[i] = true;
        }
        q.free = free;
        for (tick, kseq, slot, item) in entries {
            let i = slot as usize;
            if i >= slab_len || occupied[i] {
                return Err(SnapshotError::Corrupt("entry slot invalid or duplicated".into()));
            }
            occupied[i] = true;
            if tick < now {
                return Err(SnapshotError::Corrupt("queued entry is in the past".into()));
            }
            if kseq >= seq {
                return Err(SnapshotError::Corrupt("entry sequence beyond the allocator".into()));
            }
            let live = item.is_some();
            q.slab[i] = (kseq, item);
            let key = Key { tick, seq: kseq, slot };
            let w = tick >> BUCKET_BITS;
            if w <= q.cur_window {
                q.cur.push(Reverse(key));
            } else if w - q.cur_window < NUM_BUCKETS {
                q.ring_len += 1;
                q.buckets[(w & MASK) as usize].push(key);
            } else {
                q.overflow.push(Reverse(key));
            }
            if live {
                q.len += 1;
            }
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_behaves() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.next_tick(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pops_in_tick_then_insertion_order() {
        let mut q = CalendarQueue::new();
        q.push(50, "b");
        q.push(10, "a");
        q.push(50, "c");
        q.push(5, "z");
        assert_eq!(q.pop(), Some((5, "z")));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((50, "b")));
        assert_eq!(q.pop(), Some((50, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_entries_route_through_overflow() {
        let mut q = CalendarQueue::new();
        let far = (NUM_BUCKETS + 5) << BUCKET_BITS;
        q.push(far, "far");
        q.push(1, "near");
        assert_eq!(q.pop(), Some((1, "near")));
        assert_eq!(q.next_tick(), Some(far));
        // A push landing before the far entry, after the cursor advanced.
        q.push(far - 3, "nearer");
        assert_eq!(q.pop(), Some((far - 3, "nearer")));
        assert_eq!(q.pop(), Some((far, "far")));
        assert!(q.is_empty());
    }

    #[test]
    fn window_collisions_across_the_ring_stay_ordered() {
        // Two ticks whose windows map to the same ring bucket (w and
        // w + NUM_BUCKETS) must still pop in tick order.
        let mut q = CalendarQueue::new();
        let near = 3 << BUCKET_BITS;
        let colliding = (3 + NUM_BUCKETS) << BUCKET_BITS;
        q.push(colliding, "late");
        q.push(near, "early");
        assert_eq!(q.pop(), Some((near, "early")));
        assert_eq!(q.pop(), Some((colliding, "late")));
    }

    #[test]
    fn slab_slots_are_recycled_across_push_pop_cycles() {
        let mut q = CalendarQueue::new();
        for round in 0u64..1000 {
            q.push(round * 7, round);
            q.push(round * 7 + 3, round + 1_000_000);
            assert_eq!(q.pop(), Some((round * 7, round)));
            assert_eq!(q.pop(), Some((round * 7 + 3, round + 1_000_000)));
        }
        // Steady-state churn must not grow item storage past the high-water
        // mark of concurrently queued entries.
        assert!(q.slab.len() <= 4, "slab grew to {} slots", q.slab.len());
    }

    #[test]
    fn cancel_removes_an_entry_without_disturbing_the_rest() {
        let mut q = CalendarQueue::new();
        q.push(10, "a");
        let h = q.push(20, "b");
        q.push(30, "c");
        assert_eq!(q.cancel(h), Some("b"));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn stale_handles_are_noops() {
        let mut q = CalendarQueue::new();
        let h = q.push(5, "x");
        assert_eq!(q.pop(), Some((5, "x")));
        assert_eq!(q.cancel(h), None, "popped entry cannot be cancelled");
        let h2 = q.push(7, "y");
        assert_eq!(q.cancel(h2), Some("y"));
        assert_eq!(q.cancel(h2), None, "double cancel is a no-op");
        // The tombstone slot must not be resurrectable by the stale handle
        // after a new push reuses the slab.
        let h3 = q.push(9, "z");
        assert_eq!(q.cancel(h), None);
        assert_eq!(q.pop(), Some((9, "z")));
        assert_eq!(q.cancel(h3), None);
    }

    #[test]
    fn cancelled_head_does_not_gate_next_tick_or_pop_if_at_most() {
        let mut q = CalendarQueue::new();
        let h = q.push(10, "dead");
        q.push(500, "live");
        assert_eq!(q.cancel(h), Some("dead"));
        // The tombstone at tick 10 must be invisible: the head is 500.
        assert_eq!(q.next_tick(), Some(500));
        assert_eq!(q.pop_if_at_most(100), Err(500));
        assert_eq!(q.pop_if_at_most(500), Ok(Some((500, "live"))));
        assert_eq!(q.pop_if_at_most(u64::MAX), Ok(None));
    }

    #[test]
    fn cancel_in_far_future_windows_reclaims_on_reach() {
        let mut q = CalendarQueue::new();
        let ring = q.push(5 << BUCKET_BITS, "ring");
        let far = (NUM_BUCKETS + 9) << BUCKET_BITS;
        let over = q.push(far, "overflow");
        q.push(1, "now");
        assert_eq!(q.cancel(ring), Some("ring"));
        assert_eq!(q.cancel(over), Some("overflow"));
        assert_eq!(q.pop(), Some((1, "now")));
        assert_eq!(q.pop(), None, "tombstones across ring and overflow never surface");
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_cancel_matches_reference_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = CalendarQueue::new();
        let mut reference: BinaryHeap<Reverse<(Tick, u64)>> = BinaryHeap::new();
        let mut handles: Vec<(EventHandle, Tick, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut now: Tick = 0;
        let mut state = 0x1234_5678u64;
        for step in 0..5_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = state >> 33;
            match step % 4 {
                0 | 1 => {
                    let delay = match r % 10 {
                        0..=7 => r % 300_000,
                        _ => (NUM_BUCKETS << BUCKET_BITS) + r % 1_000_000,
                    };
                    let h = q.push(now + delay, seq);
                    reference.push(Reverse((now + delay, seq)));
                    handles.push((h, now + delay, seq));
                    seq += 1;
                }
                2 => {
                    if !handles.is_empty() {
                        let (h, tick, item) =
                            handles.swap_remove((r % handles.len() as u64) as usize);
                        // Only cancel entries still in the future of the cursor
                        // (the reference heap cannot express cancelling a
                        // popped entry, and the queue would refuse anyway).
                        if tick >= now && q.cancel(h).is_some() {
                            let mut rest: Vec<_> = reference.drain().collect();
                            rest.retain(|&Reverse((t, i))| (t, i) != (tick, item));
                            reference = rest.into_iter().collect();
                        }
                    }
                }
                _ => {
                    if let Some((tick, item)) = q.pop() {
                        let Reverse((rt, ri)) = reference.pop().expect("reference in sync");
                        assert_eq!((tick, item), (rt, ri), "divergence at step {step}");
                        now = tick;
                    }
                }
            }
        }
        while let Some((tick, item)) = q.pop() {
            let Reverse((rt, ri)) = reference.pop().expect("reference in sync");
            assert_eq!((tick, item), (rt, ri));
        }
        assert!(reference.is_empty());
    }

    #[test]
    fn interleaved_push_pop_matches_reference_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = CalendarQueue::new();
        let mut reference: BinaryHeap<Reverse<(Tick, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now: Tick = 0;
        // Deterministic pseudo-random walk: pushes clustered near `now`,
        // with occasional far-future outliers, interleaved with pops.
        let mut state = 0x9e37_79b9u64;
        for step in 0..5_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = state >> 33;
            if step % 3 != 2 {
                let delay = match r % 10 {
                    0..=6 => r % 300_000,                      // typical link/timer delays
                    7 | 8 => r % (NUM_BUCKETS << BUCKET_BITS), // across the ring
                    _ => (NUM_BUCKETS << BUCKET_BITS) * 3 + r % 1_000_000, // overflow
                };
                q.push(now + delay, seq);
                reference.push(Reverse((now + delay, seq)));
                seq += 1;
            } else if let Some((tick, item)) = q.pop() {
                let Reverse((rt, ri)) = reference.pop().expect("reference in sync");
                assert_eq!((tick, item), (rt, ri), "divergence at step {step}");
                now = tick;
            }
        }
        while let Some((tick, item)) = q.pop() {
            let Reverse((rt, ri)) = reference.pop().expect("reference in sync");
            assert_eq!((tick, item), (rt, ri));
        }
        assert!(reference.is_empty());
    }
}
