//! A bucketed calendar queue for the simulation scheduler.
//!
//! The kernel's hot path schedules almost every event at `now + d` where
//! `d` is a small delay (link serialisation, switch latency, a timer a few
//! hundred nanoseconds out). A global binary heap pays `O(log n)` on every
//! push and pop for that pattern; a calendar queue pays `O(1)` amortised by
//! hashing ticks into a ring of per-window FIFO buckets and only falling
//! back to a heap for the (rare) far-future events.
//!
//! Layout:
//!
//! - time is divided into fixed windows of `2^BUCKET_BITS` ticks;
//! - a ring of [`NUM_BUCKETS`] buckets covers the windows immediately
//!   after the currently open one (`cur_window`);
//! - entries for the open window live in a small binary heap (`cur`) so
//!   same-window entries pop in exact `(tick, order)` order;
//! - entries beyond the ring horizon go to an overflow heap and migrate
//!   into the ring as the calendar advances.
//!
//! Items themselves live in a slab and are addressed by slot index from
//! the ring/heaps, so bucket drains and heap sifts move small keys
//! instead of full event payloads (~128 bytes for a packet-carrying
//! action); each item is written and read exactly once.
//!
//! Determinism: every push carries a caller-supplied **order stamp**, and
//! [`CalendarQueue::pop`] always yields the globally smallest
//! `(tick, order)` pair. The simulation kernel derives the stamp from the
//! scheduling component's id and a per-component counter, which makes the
//! pop order *partition-independent*: a simulation split across shards
//! (see `crate::shard`) generates the identical stamp for every event it
//! would generate serially, so same-tick ties break identically no matter
//! how the component tree is divided. Order stamps must be unique among
//! concurrently queued entries — the kernel guarantees this by never
//! reusing a `(component, stream, counter)` triple. The invariants that
//! make the window-jumping correct are spelled out in DESIGN.md §"Scheduler
//! internals".

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use crate::snapshot::{SnapshotError, StateReader, StateWriter};
use crate::tick::Tick;

/// log2 of the bucket window size in ticks. With 1 tick = 1 ps this makes
/// each window 65,536 ps ≈ 65.5 ns — the same order as one PCIe link
/// serialisation step, so near-future events land a handful of buckets
/// ahead of the cursor.
pub const BUCKET_BITS: u32 = 16;

/// Number of ring buckets (must be a power of two). The ring spans
/// `NUM_BUCKETS << BUCKET_BITS` ticks ≈ 67 µs of simulated time; anything
/// scheduled further out overflows to the heap.
pub const NUM_BUCKETS: u64 = 1024;

const MASK: u64 = NUM_BUCKETS - 1;

/// Ordering key plus the slab slot holding the item. `order` is unique,
/// so `slot` never participates in comparisons.
#[derive(Debug, Clone, Copy)]
struct Key {
    tick: Tick,
    order: u64,
    slot: u32,
}

/// Names one queued entry so it can later be cancelled with
/// [`CalendarQueue::cancel`]. The order stamp makes handles single-use:
/// once the entry has popped (or been cancelled) the handle goes stale and
/// further cancels are no-ops, even if the slab slot has been reused. The
/// slot doubles as a *hint*: a handle that survived a checkpoint/restore
/// cycle may name a stale slot, in which case the cancel falls back to the
/// order-stamp side map built during [`CalendarQueue::restore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventHandle {
    slot: u32,
    order: u64,
}

impl EventHandle {
    /// Serializes the handle for a checkpoint. Order stamps are globally
    /// unique and never reused, so a restored handle cancels the same
    /// logical entry it did before the checkpoint even though slab slots
    /// are reassigned on restore.
    pub fn encode(&self, w: &mut StateWriter) {
        w.u32(self.slot);
        w.u64(self.order);
    }

    /// Deserializes a handle written by [`EventHandle::encode`].
    pub fn decode(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
        let slot = r.u32()?;
        let order = r.u64()?;
        Ok(Self { slot, order })
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.tick == other.tick && self.order == other.order
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.tick, self.order).cmp(&(other.tick, other.order))
    }
}

/// A priority queue over `(tick, order stamp)` optimised for near-future
/// pushes.
///
/// Invariants (checked in debug builds, argued in DESIGN.md):
///
/// 1. every ring-bucket entry has window `w` with
///    `cur_window < w < cur_window + NUM_BUCKETS`, so each bucket holds at
///    most one distinct window and can be drained wholesale when opened;
/// 2. every overflow entry has window `>= cur_window + NUM_BUCKETS`, so
///    the ring always contains the earliest pending window whenever it is
///    non-empty.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    buckets: Vec<Vec<Key>>,
    /// Entries belonging to the currently open window, ordered.
    cur: BinaryHeap<Reverse<Key>>,
    /// Entries at or beyond `cur_window + NUM_BUCKETS` windows.
    overflow: BinaryHeap<Reverse<Key>>,
    /// Item storage addressed by `Key::slot`, stamped with the order of
    /// the push that filled it (`None` = cancelled tombstone or vacant).
    slab: Vec<(u64, Option<T>)>,
    /// Vacant slab slots available for reuse.
    free: Vec<u32>,
    cur_window: u64,
    /// Total keys held in the ring buckets (not `cur` / `overflow`),
    /// tombstones included.
    ring_len: usize,
    /// Live (non-cancelled) entries.
    len: usize,
    /// Order-stamp → slot side map for entries rebuilt by
    /// [`CalendarQueue::restore`]: handles saved before the checkpoint
    /// carry slot hints from the *old* queue, so cancels resolve through
    /// this map when the hint misses. Entries are pruned lazily.
    restored: BTreeMap<u64, u32>,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue with the calendar cursor at window 0.
    pub fn new() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            cur: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            cur_window: 0,
            ring_len: 0,
            len: 0,
            restored: BTreeMap::new(),
        }
    }

    /// Number of queued entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `item` at `tick` with the caller-supplied `order` stamp.
    /// Entries pop in `(tick, order)` order; stamps must be unique among
    /// concurrently queued entries. The returned handle can cancel the
    /// entry before it pops.
    #[inline]
    pub fn push(&mut self, tick: Tick, order: u64, item: T) -> EventHandle {
        self.len += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = (order, Some(item));
                slot
            }
            None => {
                let slot = self.slab.len() as u32;
                self.slab.push((order, Some(item)));
                slot
            }
        };
        let key = Key { tick, order, slot };
        let w = tick >> BUCKET_BITS;
        if w <= self.cur_window {
            self.cur.push(Reverse(key));
        } else if w - self.cur_window < NUM_BUCKETS {
            self.ring_len += 1;
            self.buckets[(w & MASK) as usize].push(key);
        } else {
            self.overflow.push(Reverse(key));
        }
        EventHandle { slot, order }
    }

    /// Cancels the entry named by `handle`, returning its item; `None`
    /// when the entry has already popped or been cancelled (stale handle).
    ///
    /// The cancelled key stays where it physically sits (bucket or heap)
    /// as a tombstone and is reclaimed when the dispatch loop reaches it;
    /// tombstones are skipped silently, so a cancelled event never fires,
    /// never advances time, and never perturbs the order of live events.
    pub fn cancel(&mut self, handle: EventHandle) -> Option<T> {
        let slot = match self.slab.get(handle.slot as usize) {
            Some((stamp, _)) if *stamp == handle.order => handle.slot,
            _ => {
                // Slot hint misses: the handle may predate a restore. The
                // side map resolves the order stamp to the rebuilt slot;
                // stale map entries (entry already popped, slot reused)
                // are detected by the stamp check and pruned.
                let slot = self.restored.remove(&handle.order)?;
                match self.slab.get(slot as usize) {
                    Some((stamp, _)) if *stamp == handle.order => slot,
                    _ => return None,
                }
            }
        };
        let item = self.slab[slot as usize].1.take()?;
        self.len -= 1;
        // The slot is NOT freed here: its key still sits in a bucket or
        // heap, and a reused slot would make that stale key resurrect the
        // new occupant. The slot frees when the tombstone key pops.
        Some(item)
    }

    /// Advances the calendar until the open-window heap holds the globally
    /// earliest entry (no-op when it already does, or the queue is empty).
    fn settle(&mut self) {
        while self.cur.is_empty() && self.len > 0 {
            // Find the earliest occupied window. By invariant 2 the ring
            // (when non-empty) always beats the overflow heap, and by
            // invariant 1 the first non-empty bucket after the cursor
            // identifies its window exactly.
            let target = if self.ring_len > 0 {
                (1..NUM_BUCKETS)
                    .map(|i| self.cur_window + i)
                    .find(|w| !self.buckets[(w & MASK) as usize].is_empty())
                    .expect("ring_len > 0 implies an occupied bucket within the horizon")
            } else {
                let Reverse(head) = self.overflow.peek().expect("len > 0 with empty ring and cur");
                head.tick >> BUCKET_BITS
            };
            self.cur_window = target;
            // Re-establish invariant 2: migrate overflow entries that now
            // fall inside the ring horizon.
            while let Some(Reverse(head)) = self.overflow.peek() {
                let w = head.tick >> BUCKET_BITS;
                if w >= self.cur_window + NUM_BUCKETS {
                    break;
                }
                let Reverse(key) = self.overflow.pop().expect("peeked");
                if w <= self.cur_window {
                    self.cur.push(Reverse(key));
                } else {
                    self.ring_len += 1;
                    self.buckets[(w & MASK) as usize].push(key);
                }
            }
            // Open the bucket for the new cursor window.
            let bucket = &mut self.buckets[(self.cur_window & MASK) as usize];
            self.ring_len -= bucket.len();
            for key in bucket.drain(..) {
                debug_assert_eq!(key.tick >> BUCKET_BITS, self.cur_window);
                self.cur.push(Reverse(key));
            }
        }
    }

    /// Like [`CalendarQueue::settle`], but additionally discards cancelled
    /// tombstone keys at the head of the open-window heap (reclaiming their
    /// slab slots), so afterwards the head of `cur` — when present — is a
    /// live entry.
    fn settle_live(&mut self) {
        loop {
            self.settle();
            let Some(&Reverse(head)) = self.cur.peek() else { return };
            if self.slab[head.slot as usize].1.is_some() {
                return;
            }
            self.cur.pop();
            self.free.push(head.slot);
        }
    }

    /// The tick of the earliest queued (live) entry, if any.
    #[inline]
    pub fn next_tick(&mut self) -> Option<Tick> {
        self.settle_live();
        self.cur.peek().map(|&Reverse(key)| key.tick)
    }

    /// Removes and returns the entry with the smallest `(tick, order)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(Tick, T)> {
        self.settle_live();
        let Reverse(key) = self.cur.pop()?;
        self.len -= 1;
        let item = self.slab[key.slot as usize].1.take().expect("live head after settle_live");
        self.free.push(key.slot);
        Some((key.tick, item))
    }

    /// Like [`CalendarQueue::pop`], but also yields the popped entry's
    /// order stamp — the dispatch loop forwards it to the tracer so trace
    /// streams from different shards can be merged deterministically.
    #[inline]
    pub fn pop_stamped(&mut self) -> Option<(Tick, u64, T)> {
        self.settle_live();
        let Reverse(key) = self.cur.pop()?;
        self.len -= 1;
        let item = self.slab[key.slot as usize].1.take().expect("live head after settle_live");
        self.free.push(key.slot);
        Some((key.tick, key.order, item))
    }

    /// Fused peek-and-pop for the dispatch loop: settles once, then pops
    /// the head only if its tick is `<= limit`. `Err(head_tick)` reports a
    /// head beyond the limit without disturbing it; `Ok(None)` means empty.
    #[inline]
    pub fn pop_if_at_most(&mut self, limit: Tick) -> Result<Option<(Tick, u64, T)>, Tick> {
        self.settle_live();
        let Some(&Reverse(head)) = self.cur.peek() else { return Ok(None) };
        if head.tick > limit {
            return Err(head.tick);
        }
        let Reverse(key) = self.cur.pop().expect("peeked");
        self.len -= 1;
        let item = self.slab[key.slot as usize].1.take().expect("live head after settle_live");
        self.free.push(key.slot);
        Ok(Some((key.tick, key.order, item)))
    }

    /// Creates an empty queue with the calendar cursor positioned for
    /// simulated time `now` (purely a placement optimisation; pop order is
    /// independent of the cursor).
    pub(crate) fn with_cursor(now: Tick) -> Self {
        let mut q = Self::new();
        q.cur_window = now >> BUCKET_BITS;
        q
    }

    /// Pushes a checkpoint-restored entry and registers it in the
    /// order-stamp side map, so [`EventHandle`]s minted before the
    /// checkpoint can still cancel it.
    pub(crate) fn push_restored(&mut self, tick: Tick, order: u64, item: T) {
        let handle = self.push(tick, order, item);
        self.restored.insert(order, handle.slot);
    }

    /// Visits every live (non-cancelled) entry in arbitrary order. Used by
    /// checkpointing and by the sharded driver's global state gather.
    pub fn for_each_live(&self, mut f: impl FnMut(Tick, u64, &T)) {
        let mut visit = |key: &Key| {
            if let (stamp, Some(item)) = &self.slab[key.slot as usize] {
                debug_assert_eq!(*stamp, key.order);
                f(key.tick, key.order, item);
            }
        };
        for Reverse(k) in self.cur.iter() {
            visit(k);
        }
        for Reverse(k) in self.overflow.iter() {
            visit(k);
        }
        for bucket in &self.buckets {
            for k in bucket {
                visit(k);
            }
        }
    }

    /// Serializes the queue into a checkpoint as portable `(tick, order)`
    /// entries sorted by pop order. Cancelled tombstones are *not* saved —
    /// they are logically gone — and slab slots are not preserved: the
    /// format is independent of the physical layout, which is what lets a
    /// checkpoint taken by an N-shard run restore into an M-shard (or
    /// serial) run. Live items are encoded by `enc`.
    pub fn save(&self, w: &mut StateWriter, mut enc: impl FnMut(&mut StateWriter, &T)) {
        let mut keys: Vec<(Tick, u64)> = Vec::with_capacity(self.len);
        self.for_each_live(|tick, order, _| keys.push((tick, order)));
        keys.sort_unstable();
        w.usize(keys.len());
        // Entries are located slot-by-slot; build an order → slot index to
        // emit them in sorted order without cloning items.
        let mut slots: BTreeMap<u64, u32> = BTreeMap::new();
        for (slot, (stamp, item)) in self.slab.iter().enumerate() {
            if item.is_some() {
                slots.insert(*stamp, slot as u32);
            }
        }
        for (tick, order) in keys {
            w.u64(tick);
            w.u64(order);
            let slot = slots[&order];
            enc(w, self.slab[slot as usize].1.as_ref().expect("live entry"));
        }
    }

    /// Rebuilds a queue from [`CalendarQueue::save`] output, with the
    /// calendar cursor positioned for simulated time `now`. Items are
    /// decoded by `dec`. The rebuilt queue pops in the identical global
    /// `(tick, order)` order; [`EventHandle`]s saved before the checkpoint
    /// resolve through the order-stamp side map, so post-restore
    /// cancellation behaves exactly like the uninterrupted original.
    pub fn restore(
        now: Tick,
        r: &mut StateReader<'_>,
        mut dec: impl FnMut(&mut StateReader<'_>) -> Result<T, SnapshotError>,
    ) -> Result<Self, SnapshotError> {
        let n = r.usize()?;
        let mut q = Self::with_cursor(now);
        let mut last: Option<(Tick, u64)> = None;
        for _ in 0..n {
            let tick = r.u64()?;
            let order = r.u64()?;
            if tick < now {
                return Err(SnapshotError::Corrupt("queued entry is in the past".into()));
            }
            if let Some(prev) = last {
                if prev >= (tick, order) {
                    return Err(SnapshotError::Corrupt(
                        "queue entries out of order or duplicated".into(),
                    ));
                }
            }
            last = Some((tick, order));
            let item = dec(r)?;
            q.push_restored(tick, order, item);
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pushes with a test-local monotonically increasing order stamp, the
    /// way the simulation kernel's serial scheduler effectively behaves.
    struct Seq(u64);
    impl Seq {
        fn push<T>(&mut self, q: &mut CalendarQueue<T>, tick: Tick, item: T) -> EventHandle {
            let order = self.0;
            self.0 += 1;
            q.push(tick, order, item)
        }
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.next_tick(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pops_in_tick_then_order_stamp_order() {
        let mut q = CalendarQueue::new();
        let mut s = Seq(0);
        s.push(&mut q, 50, "b");
        s.push(&mut q, 10, "a");
        s.push(&mut q, 50, "c");
        s.push(&mut q, 5, "z");
        assert_eq!(q.pop(), Some((5, "z")));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((50, "b")));
        assert_eq!(q.pop(), Some((50, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_tick_ties_break_on_order_not_insertion() {
        // The stamp, not the push sequence, decides same-tick ordering —
        // the property that makes sharded execution order-identical.
        let mut q = CalendarQueue::new();
        q.push(40, 7, "late");
        q.push(40, 3, "early");
        assert_eq!(q.pop(), Some((40, "early")));
        assert_eq!(q.pop(), Some((40, "late")));
    }

    #[test]
    fn far_future_entries_route_through_overflow() {
        let mut q = CalendarQueue::new();
        let mut s = Seq(0);
        let far = (NUM_BUCKETS + 5) << BUCKET_BITS;
        s.push(&mut q, far, "far");
        s.push(&mut q, 1, "near");
        assert_eq!(q.pop(), Some((1, "near")));
        assert_eq!(q.next_tick(), Some(far));
        // A push landing before the far entry, after the cursor advanced.
        s.push(&mut q, far - 3, "nearer");
        assert_eq!(q.pop(), Some((far - 3, "nearer")));
        assert_eq!(q.pop(), Some((far, "far")));
        assert!(q.is_empty());
    }

    #[test]
    fn window_collisions_across_the_ring_stay_ordered() {
        // Two ticks whose windows map to the same ring bucket (w and
        // w + NUM_BUCKETS) must still pop in tick order.
        let mut q = CalendarQueue::new();
        let mut s = Seq(0);
        let near = 3 << BUCKET_BITS;
        let colliding = (3 + NUM_BUCKETS) << BUCKET_BITS;
        s.push(&mut q, colliding, "late");
        s.push(&mut q, near, "early");
        assert_eq!(q.pop(), Some((near, "early")));
        assert_eq!(q.pop(), Some((colliding, "late")));
    }

    #[test]
    fn slab_slots_are_recycled_across_push_pop_cycles() {
        let mut q = CalendarQueue::new();
        let mut s = Seq(0);
        for round in 0u64..1000 {
            s.push(&mut q, round * 7, round);
            s.push(&mut q, round * 7 + 3, round + 1_000_000);
            assert_eq!(q.pop(), Some((round * 7, round)));
            assert_eq!(q.pop(), Some((round * 7 + 3, round + 1_000_000)));
        }
        // Steady-state churn must not grow item storage past the high-water
        // mark of concurrently queued entries.
        assert!(q.slab.len() <= 4, "slab grew to {} slots", q.slab.len());
    }

    #[test]
    fn cancel_removes_an_entry_without_disturbing_the_rest() {
        let mut q = CalendarQueue::new();
        let mut s = Seq(0);
        s.push(&mut q, 10, "a");
        let h = s.push(&mut q, 20, "b");
        s.push(&mut q, 30, "c");
        assert_eq!(q.cancel(h), Some("b"));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn stale_handles_are_noops() {
        let mut q = CalendarQueue::new();
        let mut s = Seq(0);
        let h = s.push(&mut q, 5, "x");
        assert_eq!(q.pop(), Some((5, "x")));
        assert_eq!(q.cancel(h), None, "popped entry cannot be cancelled");
        let h2 = s.push(&mut q, 7, "y");
        assert_eq!(q.cancel(h2), Some("y"));
        assert_eq!(q.cancel(h2), None, "double cancel is a no-op");
        // The tombstone slot must not be resurrectable by the stale handle
        // after a new push reuses the slab.
        let h3 = s.push(&mut q, 9, "z");
        assert_eq!(q.cancel(h), None);
        assert_eq!(q.pop(), Some((9, "z")));
        assert_eq!(q.cancel(h3), None);
    }

    #[test]
    fn cancelled_head_does_not_gate_next_tick_or_pop_if_at_most() {
        let mut q = CalendarQueue::new();
        let mut s = Seq(0);
        let h = s.push(&mut q, 10, "dead");
        s.push(&mut q, 500, "live");
        assert_eq!(q.cancel(h), Some("dead"));
        // The tombstone at tick 10 must be invisible: the head is 500.
        assert_eq!(q.next_tick(), Some(500));
        assert_eq!(q.pop_if_at_most(100), Err(500));
        assert_eq!(q.pop_if_at_most(500), Ok(Some((500, 1, "live"))));
        assert_eq!(q.pop_if_at_most(u64::MAX), Ok(None));
    }

    #[test]
    fn cancel_in_far_future_windows_reclaims_on_reach() {
        let mut q = CalendarQueue::new();
        let mut s = Seq(0);
        let ring = s.push(&mut q, 5 << BUCKET_BITS, "ring");
        let far = (NUM_BUCKETS + 9) << BUCKET_BITS;
        let over = s.push(&mut q, far, "overflow");
        s.push(&mut q, 1, "now");
        assert_eq!(q.cancel(ring), Some("ring"));
        assert_eq!(q.cancel(over), Some("overflow"));
        assert_eq!(q.pop(), Some((1, "now")));
        assert_eq!(q.pop(), None, "tombstones across ring and overflow never surface");
        assert!(q.is_empty());
    }

    #[test]
    fn save_restore_round_trips_and_resolves_old_handles() {
        let mut q = CalendarQueue::new();
        let mut s = Seq(0);
        s.push(&mut q, 30, 300u64);
        let h_live = s.push(&mut q, 10, 100u64);
        let h_dead = s.push(&mut q, 20, 200u64);
        s.push(&mut q, (NUM_BUCKETS + 3) << BUCKET_BITS, 999u64);
        assert_eq!(q.cancel(h_dead), Some(200));
        let mut w = StateWriter::new();
        q.save(&mut w, |w, v| w.u64(*v));
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        let mut q2: CalendarQueue<u64> = CalendarQueue::restore(0, &mut r, |r| r.u64()).unwrap();
        assert!(r.is_empty());
        assert_eq!(q2.len(), 3, "tombstones are not saved");
        // A handle from the pre-restore queue cancels through the side map.
        assert_eq!(q2.cancel(h_live), Some(100));
        assert_eq!(q2.cancel(h_live), None);
        assert_eq!(q2.pop(), Some((30, 300)));
        assert_eq!(q2.pop(), Some(((NUM_BUCKETS + 3) << BUCKET_BITS, 999)));
        assert_eq!(q2.pop(), None);
    }

    #[test]
    fn restore_rejects_out_of_order_or_past_entries() {
        // Past entry.
        let mut w = StateWriter::new();
        w.usize(1);
        w.u64(5); // tick
        w.u64(0); // order
        w.u64(1); // item
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert!(CalendarQueue::<u64>::restore(10, &mut r, |r| r.u64()).is_err());
        // Duplicated key.
        let mut w = StateWriter::new();
        w.usize(2);
        w.u64(5);
        w.u64(7);
        w.u64(1);
        w.u64(5);
        w.u64(7);
        w.u64(2);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert!(CalendarQueue::<u64>::restore(0, &mut r, |r| r.u64()).is_err());
    }

    #[test]
    fn interleaved_cancel_matches_reference_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = CalendarQueue::new();
        let mut reference: BinaryHeap<Reverse<(Tick, u64)>> = BinaryHeap::new();
        let mut handles: Vec<(EventHandle, Tick, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut now: Tick = 0;
        let mut state = 0x1234_5678u64;
        for step in 0..5_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = state >> 33;
            match step % 4 {
                0 | 1 => {
                    let delay = match r % 10 {
                        0..=7 => r % 300_000,
                        _ => (NUM_BUCKETS << BUCKET_BITS) + r % 1_000_000,
                    };
                    let h = q.push(now + delay, seq, seq);
                    reference.push(Reverse((now + delay, seq)));
                    handles.push((h, now + delay, seq));
                    seq += 1;
                }
                2 => {
                    if !handles.is_empty() {
                        let (h, tick, item) =
                            handles.swap_remove((r % handles.len() as u64) as usize);
                        // Only cancel entries still in the future of the cursor
                        // (the reference heap cannot express cancelling a
                        // popped entry, and the queue would refuse anyway).
                        if tick >= now && q.cancel(h).is_some() {
                            let mut rest: Vec<_> = reference.drain().collect();
                            rest.retain(|&Reverse((t, i))| (t, i) != (tick, item));
                            reference = rest.into_iter().collect();
                        }
                    }
                }
                _ => {
                    if let Some((tick, item)) = q.pop() {
                        let Reverse((rt, ri)) = reference.pop().expect("reference in sync");
                        assert_eq!((tick, item), (rt, ri), "divergence at step {step}");
                        now = tick;
                    }
                }
            }
        }
        while let Some((tick, item)) = q.pop() {
            let Reverse((rt, ri)) = reference.pop().expect("reference in sync");
            assert_eq!((tick, item), (rt, ri));
        }
        assert!(reference.is_empty());
    }

    #[test]
    fn interleaved_push_pop_matches_reference_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = CalendarQueue::new();
        let mut reference: BinaryHeap<Reverse<(Tick, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now: Tick = 0;
        // Deterministic pseudo-random walk: pushes clustered near `now`,
        // with occasional far-future outliers, interleaved with pops.
        let mut state = 0x9e37_79b9u64;
        for step in 0..5_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = state >> 33;
            if step % 3 != 2 {
                let delay = match r % 10 {
                    0..=6 => r % 300_000,                      // typical link/timer delays
                    7 | 8 => r % (NUM_BUCKETS << BUCKET_BITS), // across the ring
                    _ => (NUM_BUCKETS << BUCKET_BITS) * 3 + r % 1_000_000, // overflow
                };
                q.push(now + delay, seq, seq);
                reference.push(Reverse((now + delay, seq)));
                seq += 1;
            } else if let Some((tick, item)) = q.pop() {
                let Reverse((rt, ri)) = reference.pop().expect("reference in sync");
                assert_eq!((tick, item), (rt, ri), "divergence at step {step}");
                now = tick;
            }
        }
        while let Some((tick, item)) = q.pop() {
            let Reverse((rt, ri)) = reference.pop().expect("reference in sync");
            assert_eq!((tick, item), (rt, ri));
        }
        assert!(reference.is_empty());
    }
}
