//! Physical address ranges and address maps.
//!
//! Crossbars, bridges and the PCI host route packets by matching the packet
//! address against the [`AddrRange`]s that downstream components claim,
//! mirroring gem5's `AddrRange`/`AddrRangeMap`.

use std::fmt;

/// A half-open physical address range `[start, end)`.
///
/// ```
/// use pcisim_kernel::addr::AddrRange;
/// let r = AddrRange::new(0x1000, 0x2000);
/// assert!(r.contains(0x1000));
/// assert!(!r.contains(0x2000));
/// assert_eq!(r.size(), 0x1000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AddrRange {
    start: u64,
    end: u64,
}

impl AddrRange {
    /// Creates the range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end >= start, "invalid address range {start:#x}..{end:#x}");
        Self { start, end }
    }

    /// Creates the range `[base, base + size)`.
    pub fn with_size(base: u64, size: u64) -> Self {
        Self::new(base, base.checked_add(size).expect("address range overflow"))
    }

    /// An empty range at address zero.
    pub const fn empty() -> Self {
        Self { start: 0, end: 0 }
    }

    /// First address in the range.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last address in the range.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the range covers no addresses.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `addr` falls inside the range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Whether the whole access `[addr, addr + size)` falls inside the range.
    pub fn contains_access(&self, addr: u64, size: u64) -> bool {
        self.contains(addr) && addr + size <= self.end
    }

    /// Whether any address is in both ranges.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Offset of `addr` from the start of the range.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not contained in the range.
    pub fn offset(&self, addr: u64) -> u64 {
        assert!(self.contains(addr), "{addr:#x} outside {self:?}");
        addr - self.start
    }
}

impl fmt::Debug for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start, self.end)
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}..{:#x}", self.start, self.end)
    }
}

/// An ordered collection mapping non-overlapping address ranges to values,
/// used by routing components to select an egress port for a packet.
#[derive(Debug, Clone, Default)]
pub struct AddrMap<T> {
    entries: Vec<(AddrRange, T)>,
}

impl<T> AddrMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self { entries: Vec::new() }
    }

    /// Inserts a range.
    ///
    /// # Errors
    ///
    /// Returns `Err(range)` when the new range overlaps an existing entry;
    /// the map is unchanged in that case.
    pub fn insert(&mut self, range: AddrRange, value: T) -> Result<(), AddrRange> {
        if range.is_empty() {
            return Ok(());
        }
        if self.entries.iter().any(|(r, _)| r.overlaps(&range)) {
            return Err(range);
        }
        let pos = self.entries.partition_point(|(r, _)| r.start() < range.start());
        self.entries.insert(pos, (range, value));
        Ok(())
    }

    /// Finds the value whose range contains `addr`.
    pub fn lookup(&self, addr: u64) -> Option<&T> {
        let idx = self.entries.partition_point(|(r, _)| r.end() <= addr);
        match self.entries.get(idx) {
            Some((r, v)) if r.contains(addr) => Some(v),
            _ => None,
        }
    }

    /// Iterates over `(range, value)` pairs in ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = (&AddrRange, &T)> {
        self.entries.iter().map(|(r, v)| (r, v))
    }

    /// Number of ranges in the map.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no ranges.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = AddrRange::with_size(0x3000_0000, 0x1000_0000);
        assert_eq!(r.start(), 0x3000_0000);
        assert_eq!(r.end(), 0x4000_0000);
        assert_eq!(r.size(), 0x1000_0000);
        assert!(r.contains(0x3fff_ffff));
        assert!(!r.contains(0x4000_0000));
        assert_eq!(r.offset(0x3000_0010), 0x10);
    }

    #[test]
    fn contains_access_checks_both_ends() {
        let r = AddrRange::new(0x100, 0x200);
        assert!(r.contains_access(0x1fc, 4));
        assert!(!r.contains_access(0x1fd, 4));
        assert!(!r.contains_access(0xfc, 8));
    }

    #[test]
    #[should_panic(expected = "invalid address range")]
    fn inverted_range_panics() {
        let _ = AddrRange::new(0x200, 0x100);
    }

    #[test]
    fn empty_range_contains_nothing() {
        let r = AddrRange::empty();
        assert!(r.is_empty());
        assert!(!r.contains(0));
    }

    #[test]
    fn overlap_detection() {
        let a = AddrRange::new(0x100, 0x200);
        assert!(a.overlaps(&AddrRange::new(0x1ff, 0x300)));
        assert!(a.overlaps(&AddrRange::new(0x0, 0x101)));
        assert!(a.overlaps(&AddrRange::new(0x140, 0x180)));
        assert!(!a.overlaps(&AddrRange::new(0x200, 0x300)));
        assert!(!a.overlaps(&AddrRange::new(0x0, 0x100)));
    }

    #[test]
    fn map_lookup_picks_the_right_entry() {
        let mut m = AddrMap::new();
        m.insert(AddrRange::new(0x100, 0x200), "a").unwrap();
        m.insert(AddrRange::new(0x300, 0x400), "b").unwrap();
        m.insert(AddrRange::new(0x200, 0x300), "c").unwrap();
        assert_eq!(m.lookup(0x150), Some(&"a"));
        assert_eq!(m.lookup(0x200), Some(&"c"));
        assert_eq!(m.lookup(0x3ff), Some(&"b"));
        assert_eq!(m.lookup(0x400), None);
        assert_eq!(m.lookup(0x50), None);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn map_rejects_overlap_and_stays_unchanged() {
        let mut m = AddrMap::new();
        m.insert(AddrRange::new(0x100, 0x200), 1).unwrap();
        let err = m.insert(AddrRange::new(0x180, 0x280), 2).unwrap_err();
        assert_eq!(err, AddrRange::new(0x180, 0x280));
        assert_eq!(m.len(), 1);
        assert_eq!(m.lookup(0x190), Some(&1));
    }

    #[test]
    fn map_accepts_empty_range_as_noop() {
        let mut m: AddrMap<u8> = AddrMap::new();
        m.insert(AddrRange::empty(), 9).unwrap();
        assert!(m.is_empty());
    }
}
