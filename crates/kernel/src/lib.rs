//! `pcisim-kernel` — a deterministic event-driven simulation kernel.
//!
//! This crate is the gem5-substitute substrate for the `pcisim` workspace,
//! which reproduces *Simulating PCI-Express Interconnect for Future System
//! Exploration* (Alian, Srinivasan, Kim — IISWC 2018). It provides:
//!
//! * [`tick`] — picosecond simulated time;
//! * [`packet`] — memory-system packets that double as PCIe TLPs, including
//!   the paper's PCI-bus-number response-routing field;
//! * [`component`]/[`sim`] — components, gem5-style timing ports with a
//!   refusal/retry flow-control handshake, and the deterministic event loop;
//! * [`addr`] — address ranges and routing maps;
//! * [`xbar`], [`bridge`], [`iocache`], [`dram`] — the stock gem5 fabric
//!   models the paper builds upon (MemBus/IOBus crossbars, the
//!   MemBus↔IOBus bridge, the DMA IOCache, and a DRAM terminator);
//! * [`stats`] — counters/histograms and snapshotting;
//! * [`snapshot`] — deterministic checkpoint/restore over a versioned,
//!   checksummed little-endian state codec.
//!
//! # Example
//!
//! ```
//! use pcisim_kernel::prelude::*;
//!
//! let mut sim = Simulation::new();
//! let dram = sim.add(Box::new(
//!     Dram::builder("dram", AddrRange::with_size(0x8000_0000, 0x1000_0000)).build(),
//! ));
//! // ... connect components, then:
//! let outcome = sim.run_to_quiesce();
//! assert_eq!(outcome, RunOutcome::QueueEmpty);
//! # let _ = dram;
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod bridge;
pub mod calendar;
pub mod component;
pub mod dram;
pub mod iocache;
pub mod packet;
pub mod shard;
pub mod sim;
pub mod snapshot;
pub mod stats;
pub mod testutil;
pub mod tick;
pub mod trace;
pub mod xbar;

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::addr::{AddrMap, AddrRange};
    pub use crate::bridge::Bridge;
    pub use crate::component::{Component, ComponentId, Event, PortId, RecvResult};
    pub use crate::dram::Dram;
    pub use crate::iocache::IoCache;
    pub use crate::packet::{Command, CompletionStatus, Packet, PacketId};
    pub use crate::sim::{Ctx, RunOutcome, Simulation};
    pub use crate::snapshot::{Snapshot, SnapshotError, StateReader, StateWriter};
    pub use crate::stats::{Counter, Histogram, StatsBuilder, StatsSnapshot};
    pub use crate::tick::{ns, ps, us, Tick};
    pub use crate::trace::{
        LatencyAttribution, Stage, TraceCategory, TraceEvent, TraceKind, TraceLog, Tracer,
    };
    pub use crate::xbar::Crossbar;
}
