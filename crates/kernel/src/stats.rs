//! Lightweight statistics: counters, histograms and a snapshot format.
//!
//! Components own their statistics as plain fields and export them through
//! [`Component::report_stats`](crate::component::Component::report_stats)
//! into a [`StatsBuilder`]; the simulation aggregates everything into a
//! [`StatsSnapshot`] that the benchmark harness prints.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing event counter.
///
/// ```
/// use pcisim_kernel::stats::Counter;
/// let mut c = Counter::default();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.value(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A streaming histogram that tracks count, sum, min and max of samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }
}

/// Collects named statistics from one component.
#[derive(Debug, Default)]
pub struct StatsBuilder {
    scope: String,
    values: BTreeMap<String, f64>,
}

impl StatsBuilder {
    /// Creates a builder scoped to a component name; every key is prefixed
    /// `scope.key`.
    pub fn new(scope: impl Into<String>) -> Self {
        Self { scope: scope.into(), values: BTreeMap::new() }
    }

    /// Records a scalar value.
    pub fn scalar(&mut self, key: &str, v: f64) {
        self.values.insert(format!("{}.{}", self.scope, key), v);
    }

    /// Records a counter.
    pub fn counter(&mut self, key: &str, c: &Counter) {
        self.scalar(key, c.value() as f64);
    }

    /// Records a histogram as `key.count/mean/min/max`.
    pub fn histogram(&mut self, key: &str, h: &Histogram) {
        self.scalar(&format!("{key}.count"), h.count() as f64);
        self.scalar(&format!("{key}.mean"), h.mean());
        if let Some(m) = h.min() {
            self.scalar(&format!("{key}.min"), m);
        }
        if let Some(m) = h.max() {
            self.scalar(&format!("{key}.max"), m);
        }
    }

    pub(crate) fn into_values(self) -> BTreeMap<String, f64> {
        self.values
    }
}

/// Aggregated statistics from every component in a simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    values: BTreeMap<String, f64>,
}

impl StatsSnapshot {
    pub(crate) fn from_values(values: BTreeMap<String, f64>) -> Self {
        Self { values }
    }

    /// Looks up a fully-qualified statistic (`component.key`).
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// Iterates over all `(key, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All keys whose name starts with `prefix`.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, f64)> + 'a {
        self.values
            .iter()
            .filter(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of statistics captured.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl StatsSnapshot {
    /// Serializes the snapshot as a flat JSON object (`{"key": value}`),
    /// for plotting pipelines. Non-finite values become `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Keys are component/stat names: no quotes or control chars.
            out.push('"');
            out.push_str(k);
            out.push_str("\":");
            if v.is_finite() {
                out.push_str(&format!("{v}"));
            } else {
                out.push_str("null");
            }
        }
        out.push('}');
        out
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k:60} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn histogram_tracks_extremes_and_mean() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        for v in [4.0, 2.0, 6.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 12.0);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min(), Some(2.0));
        assert_eq!(h.max(), Some(6.0));
    }

    #[test]
    fn builder_prefixes_scope() {
        let mut b = StatsBuilder::new("link0");
        b.scalar("tlps", 3.0);
        let mut c = Counter::new();
        c.add(7);
        b.counter("acks", &c);
        let snap = StatsSnapshot::from_values(b.into_values());
        assert_eq!(snap.get("link0.tlps"), Some(3.0));
        assert_eq!(snap.get("link0.acks"), Some(7.0));
        assert_eq!(snap.get("acks"), None);
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn snapshot_prefix_filter() {
        let mut b = StatsBuilder::new("sw");
        b.scalar("a", 1.0);
        b.scalar("b", 2.0);
        let snap = StatsSnapshot::from_values(b.into_values());
        let got: Vec<_> = snap.with_prefix("sw.").collect();
        assert_eq!(got.len(), 2);
        assert!(snap.with_prefix("zz").next().is_none());
    }

    #[test]
    fn snapshot_serializes_to_flat_json() {
        let mut b = StatsBuilder::new("c");
        b.scalar("a", 1.5);
        b.scalar("b", 2.0);
        let snap = StatsSnapshot::from_values(b.into_values());
        assert_eq!(snap.to_json(), r#"{"c.a":1.5,"c.b":2}"#);
        let empty = StatsSnapshot::default();
        assert_eq!(empty.to_json(), "{}");
    }

    #[test]
    fn json_maps_non_finite_to_null() {
        let mut b = StatsBuilder::new("c");
        b.scalar("nan", f64::NAN);
        let snap = StatsSnapshot::from_values(b.into_values());
        assert_eq!(snap.to_json(), r#"{"c.nan":null}"#);
    }

    #[test]
    fn histogram_in_builder_exports_summary_keys() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(3.0);
        let mut b = StatsBuilder::new("x");
        b.histogram("lat", &h);
        let snap = StatsSnapshot::from_values(b.into_values());
        assert_eq!(snap.get("x.lat.count"), Some(2.0));
        assert_eq!(snap.get("x.lat.mean"), Some(2.0));
        assert_eq!(snap.get("x.lat.min"), Some(1.0));
        assert_eq!(snap.get("x.lat.max"), Some(3.0));
    }
}
