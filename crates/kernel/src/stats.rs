//! Lightweight statistics: counters, histograms and a snapshot format.
//!
//! Components own their statistics as plain fields and export them through
//! [`Component::report_stats`](crate::component::Component::report_stats)
//! into a [`StatsBuilder`]; the simulation aggregates everything into a
//! [`StatsSnapshot`] that the benchmark harness prints.

use std::collections::BTreeMap;
use std::fmt;

use crate::snapshot::{SnapshotError, StateReader, StateWriter};

/// A monotonically increasing event counter.
///
/// ```
/// use pcisim_kernel::stats::Counter;
/// let mut c = Counter::default();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.value(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Serializes the counter into a checkpoint.
    pub fn encode(&self, w: &mut StateWriter) {
        w.u64(self.0);
    }

    /// Deserializes a counter from a checkpoint.
    pub fn decode(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self(r.u64()?))
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Number of log2 buckets a [`Histogram`] keeps; bucket `i >= 1` holds
/// samples in `[2^(i-1), 2^i)`, bucket 0 holds samples below 1.
const HIST_BUCKETS: usize = 64;

/// A streaming histogram: count, sum, min, max, plus log2-bucketed
/// sample counts for percentile estimation.
///
/// Percentiles carry at most one power-of-two bucket of error (and are
/// clamped to the observed min/max), which is plenty for latency
/// distributions spanning orders of magnitude.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: Option<f64>,
    max: Option<f64>,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self { count: 0, sum: 0.0, min: None, max: None, buckets: [0; HIST_BUCKETS] }
    }
}

/// The log2 bucket a sample falls in; NaN and everything below 1 land
/// in bucket 0.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < 1.0 {
        return 0;
    }
    let n = if v >= u64::MAX as f64 { u64::MAX } else { v as u64 };
    ((64 - n.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
        self.buckets[bucket_index(v)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Estimated `q`-quantile (`q` in 0..=1) from the log2 buckets:
    /// the upper edge of the bucket holding the rank-`ceil(q*count)`
    /// sample, clamped to the observed `[min, max]`. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX as f64 } else { (1u64 << i) as f64 };
                let lo = self.min.unwrap_or(0.0);
                let hi = self.max.unwrap_or(upper);
                return Some(upper.clamp(lo, hi));
            }
        }
        self.max
    }

    /// Estimated median.
    pub fn p50(&self) -> Option<f64> {
        self.percentile(0.50)
    }

    /// Estimated 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.percentile(0.95)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.percentile(0.99)
    }

    /// Serializes the histogram into a checkpoint. Floats travel as raw
    /// bit patterns so accumulated rounding state round-trips bit-exactly.
    pub fn encode(&self, w: &mut StateWriter) {
        w.u64(self.count);
        w.f64(self.sum);
        w.opt_f64(self.min);
        w.opt_f64(self.max);
        for &b in &self.buckets {
            w.u64(b);
        }
    }

    /// Deserializes a histogram from a checkpoint.
    pub fn decode(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
        let count = r.u64()?;
        let sum = r.f64()?;
        let min = r.opt_f64()?;
        let max = r.opt_f64()?;
        let mut buckets = [0u64; HIST_BUCKETS];
        for b in &mut buckets {
            *b = r.u64()?;
        }
        Ok(Self { count, sum, min, max, buckets })
    }
}

/// Collects named statistics from one component.
#[derive(Debug, Default)]
pub struct StatsBuilder {
    scope: String,
    values: BTreeMap<String, f64>,
}

impl StatsBuilder {
    /// Creates a builder scoped to a component name; every key is prefixed
    /// `scope.key`.
    pub fn new(scope: impl Into<String>) -> Self {
        Self { scope: scope.into(), values: BTreeMap::new() }
    }

    /// Records a scalar value.
    pub fn scalar(&mut self, key: &str, v: f64) {
        self.values.insert(format!("{}.{}", self.scope, key), v);
    }

    /// Records a counter.
    pub fn counter(&mut self, key: &str, c: &Counter) {
        self.scalar(key, c.value() as f64);
    }

    /// Records a histogram as `key.count/mean/min/max/p50/p95/p99`.
    pub fn histogram(&mut self, key: &str, h: &Histogram) {
        self.scalar(&format!("{key}.count"), h.count() as f64);
        self.scalar(&format!("{key}.mean"), h.mean());
        if let Some(m) = h.min() {
            self.scalar(&format!("{key}.min"), m);
        }
        if let Some(m) = h.max() {
            self.scalar(&format!("{key}.max"), m);
        }
        if let Some(p) = h.p50() {
            self.scalar(&format!("{key}.p50"), p);
        }
        if let Some(p) = h.p95() {
            self.scalar(&format!("{key}.p95"), p);
        }
        if let Some(p) = h.p99() {
            self.scalar(&format!("{key}.p99"), p);
        }
    }

    pub(crate) fn into_values(self) -> BTreeMap<String, f64> {
        self.values
    }
}

/// Aggregated statistics from every component in a simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    values: BTreeMap<String, f64>,
}

impl StatsSnapshot {
    pub(crate) fn from_values(values: BTreeMap<String, f64>) -> Self {
        Self { values }
    }

    pub(crate) fn into_values(self) -> BTreeMap<String, f64> {
        self.values
    }

    /// Looks up a fully-qualified statistic (`component.key`).
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// Iterates over all `(key, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All keys whose name starts with `prefix`.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, f64)> + 'a {
        self.values
            .iter()
            .filter(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of statistics captured.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Per-key difference `self - earlier`, for interval measurements
    /// (e.g. counters over just the steady-state phase of a run). Keys
    /// missing from `earlier` count from zero; keys only in `earlier`
    /// appear negated.
    pub fn diff(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut values = self.values.clone();
        for (k, v) in &earlier.values {
            *values.entry(k.clone()).or_insert(0.0) -= v;
        }
        StatsSnapshot::from_values(values)
    }
}

impl StatsSnapshot {
    /// Serializes the snapshot as a flat JSON object (`{"key": value}`),
    /// for plotting pipelines. Non-finite values become `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Keys are component/stat names: no quotes or control chars.
            out.push('"');
            out.push_str(k);
            out.push_str("\":");
            if v.is_finite() {
                out.push_str(&format!("{v}"));
            } else {
                out.push_str("null");
            }
        }
        out.push('}');
        out
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k:60} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn histogram_tracks_extremes_and_mean() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        for v in [4.0, 2.0, 6.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 12.0);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min(), Some(2.0));
        assert_eq!(h.max(), Some(6.0));
    }

    #[test]
    fn builder_prefixes_scope() {
        let mut b = StatsBuilder::new("link0");
        b.scalar("tlps", 3.0);
        let mut c = Counter::new();
        c.add(7);
        b.counter("acks", &c);
        let snap = StatsSnapshot::from_values(b.into_values());
        assert_eq!(snap.get("link0.tlps"), Some(3.0));
        assert_eq!(snap.get("link0.acks"), Some(7.0));
        assert_eq!(snap.get("acks"), None);
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn snapshot_prefix_filter() {
        let mut b = StatsBuilder::new("sw");
        b.scalar("a", 1.0);
        b.scalar("b", 2.0);
        let snap = StatsSnapshot::from_values(b.into_values());
        let got: Vec<_> = snap.with_prefix("sw.").collect();
        assert_eq!(got.len(), 2);
        assert!(snap.with_prefix("zz").next().is_none());
    }

    #[test]
    fn snapshot_serializes_to_flat_json() {
        let mut b = StatsBuilder::new("c");
        b.scalar("a", 1.5);
        b.scalar("b", 2.0);
        let snap = StatsSnapshot::from_values(b.into_values());
        assert_eq!(snap.to_json(), r#"{"c.a":1.5,"c.b":2}"#);
        let empty = StatsSnapshot::default();
        assert_eq!(empty.to_json(), "{}");
    }

    #[test]
    fn json_maps_non_finite_to_null() {
        let mut b = StatsBuilder::new("c");
        b.scalar("nan", f64::NAN);
        let snap = StatsSnapshot::from_values(b.into_values());
        assert_eq!(snap.to_json(), r#"{"c.nan":null}"#);
    }

    #[test]
    fn histogram_in_builder_exports_summary_keys() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(3.0);
        let mut b = StatsBuilder::new("x");
        b.histogram("lat", &h);
        let snap = StatsSnapshot::from_values(b.into_values());
        assert_eq!(snap.get("x.lat.count"), Some(2.0));
        assert_eq!(snap.get("x.lat.mean"), Some(2.0));
        assert_eq!(snap.get("x.lat.min"), Some(1.0));
        assert_eq!(snap.get("x.lat.max"), Some(3.0));
        assert!(snap.get("x.lat.p50").is_some());
        assert!(snap.get("x.lat.p95").is_some());
        assert!(snap.get("x.lat.p99").is_some());
    }

    #[test]
    fn percentiles_of_identical_samples_are_exact() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(300.0);
        }
        // The [256, 512) bucket's upper edge is clamped to the max.
        assert_eq!(h.p50(), Some(300.0));
        assert_eq!(h.p99(), Some(300.0));
    }

    #[test]
    fn percentiles_track_the_tail_within_a_bucket() {
        let mut h = Histogram::new();
        // 95 samples near 100, 5 outliers near 10_000.
        for _ in 0..95 {
            h.record(100.0);
        }
        for _ in 0..5 {
            h.record(10_000.0);
        }
        let p50 = h.p50().unwrap();
        assert!((100.0..=128.0).contains(&p50), "p50 {p50}");
        let p99 = h.p99().unwrap();
        assert!((8192.0..=10_000.0).contains(&p99), "p99 {p99}");
        assert_eq!(h.percentile(1.0), Some(10_000.0));
    }

    #[test]
    fn percentiles_of_empty_histogram_are_none() {
        let h = Histogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.percentile(0.0), None);
    }

    #[test]
    fn sub_unit_and_negative_samples_share_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0.25);
        h.record(-3.0);
        let p = h.percentile(1.0).unwrap();
        assert!((-3.0..=0.25).contains(&p), "clamped to observed range, got {p}");
    }

    #[test]
    fn snapshot_diff_subtracts_per_key() {
        let mut b = StatsBuilder::new("c");
        b.scalar("a", 10.0);
        b.scalar("b", 5.0);
        let earlier = StatsSnapshot::from_values(b.into_values());
        let mut b = StatsBuilder::new("c");
        b.scalar("a", 25.0);
        b.scalar("n", 7.0);
        let later = StatsSnapshot::from_values(b.into_values());
        let d = later.diff(&earlier);
        assert_eq!(d.get("c.a"), Some(15.0));
        assert_eq!(d.get("c.n"), Some(7.0), "new keys count from zero");
        assert_eq!(d.get("c.b"), Some(-5.0), "vanished keys appear negated");
    }
}
