//! Simulation components and the timing-port protocol.
//!
//! A [`Component`] is the unit of modelling: a crossbar, a bridge, a PCIe
//! link, a disk. Components communicate exclusively through **ports** wired
//! together by [`Simulation::connect`](crate::sim::Simulation::connect).
//! The protocol mirrors gem5's timing ports:
//!
//! * a component sends a packet with
//!   [`Ctx::try_send_request`](crate::sim::Ctx::try_send_request) or
//!   [`Ctx::try_send_response`](crate::sim::Ctx::try_send_response); the
//!   peer's [`Component::recv_request`]/[`Component::recv_response`] runs
//!   immediately and either accepts the packet or **refuses** it
//!   ([`RecvResult::Refused`]), modelling full buffers — the refused packet
//!   comes straight back to the sender as `Err(pkt)`;
//! * a refused sender holds the packet and waits;
//! * when the busy receiver frees space it calls
//!   [`Ctx::send_retry`](crate::sim::Ctx::send_retry), which delivers
//!   [`Component::retry_granted`] to the stalled peer so it can resend.
//!
//! This refusal/retry handshake is what lets the PCI-Express model exhibit
//! the paper's congestion behaviour (filled switch buffers → unacknowledged
//! TLPs → replay timeouts).
//!
//! Receive handlers run nested inside the sender's call, so a receiver must
//! never synchronously send back toward the component that is calling it —
//! schedule a zero-delay [`Event`] instead. The kernel panics on such
//! re-entrancy rather than deadlocking silently.

use std::fmt;

use crate::packet::Packet;
use crate::sim::Ctx;
use crate::snapshot::{SnapshotError, StateReader, StateWriter};
use crate::stats::StatsBuilder;
use crate::tick::Tick;

/// Identifies a component within a [`Simulation`](crate::sim::Simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub u32);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies a port local to one component. Port numbering is a private
/// convention of each component (e.g. "port 0 is the PIO port").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u16);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Outcome of delivering a packet to a component port.
#[derive(Debug)]
pub enum RecvResult {
    /// The packet was accepted; the receiver now owns it.
    Accepted,
    /// The receiver has no buffer space; the packet is handed back to the
    /// sender, which must hold it until [`Component::retry_granted`].
    Refused(Packet),
}

/// A self-scheduled occurrence delivered back to the component that
/// scheduled it.
#[derive(Debug)]
pub enum Event {
    /// A plain timer. `kind` and `data` are private conventions of the
    /// scheduling component (e.g. "kind 2 = replay timeout").
    Timer {
        /// Component-private discriminator.
        kind: u32,
        /// Component-private argument.
        data: u64,
    },
    /// A packet the component handed to itself for later processing, e.g. a
    /// crossbar modelling its forward latency. `tag` disambiguates multiple
    /// uses within one component.
    DelayedPacket {
        /// Component-private discriminator.
        tag: u32,
        /// The packet being delayed.
        pkt: Packet,
    },
    /// A delayed packet that also carries an origin timestamp — used by the
    /// link layer to ship a TLP's admission tick along the wire, so the
    /// receiving end can attribute delivery latency without reaching into
    /// the transmitting end's state (the two ends may live in different
    /// shards).
    StampedPacket {
        /// Component-private discriminator.
        tag: u32,
        /// The tick the origin stamped on the packet (e.g. link admission).
        stamp: Tick,
        /// The packet being delayed.
        pkt: Packet,
    },
}

/// A simulation model: reacts to packets arriving on its ports and to its
/// own timers. All methods receive a [`Ctx`] for scheduling and sending.
pub trait Component {
    /// Human-readable instance name used in statistics and traces.
    fn name(&self) -> &str;

    /// Called once at the start of simulation, before any event runs.
    fn init(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Handles a self-scheduled [`Event`].
    fn handle(&mut self, _ctx: &mut Ctx<'_>, _ev: Event) {
        panic!("{}: received unexpected event", self.name());
    }

    /// A request packet arrives on `port`. Runs nested inside the sender's
    /// `try_send_request`; do not send back toward the caller from here.
    fn recv_request(&mut self, _ctx: &mut Ctx<'_>, port: PortId, _pkt: Packet) -> RecvResult {
        panic!("{}: unexpected request on {port}", self.name());
    }

    /// A response packet arrives on `port`. Same nesting rule as
    /// [`Component::recv_request`].
    fn recv_response(&mut self, _ctx: &mut Ctx<'_>, port: PortId, _pkt: Packet) -> RecvResult {
        panic!("{}: unexpected response on {port}", self.name());
    }

    /// The peer on `port` has freed buffer space; a previously refused send
    /// may now be repeated.
    fn retry_granted(&mut self, _ctx: &mut Ctx<'_>, _port: PortId) {}

    /// Reports statistics into `out`. Called after the simulation stops.
    fn report_stats(&self, _out: &mut StatsBuilder) {}

    /// Appends this component's dynamic state to a checkpoint. Stateless
    /// components keep the default (write nothing). Stateful components
    /// must save every field that evolves with simulated time — and only
    /// those: configuration belongs to the freshly built tree a checkpoint
    /// is restored into, not to the checkpoint.
    fn save_state(&self, _w: &mut StateWriter) {}

    /// Overwrites this component's dynamic state from a checkpoint,
    /// consuming exactly the bytes [`Component::save_state`] wrote. The
    /// default matches the stateless default of `save_state`.
    fn restore_state(&mut self, _r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Bare;
    impl Component for Bare {
        fn name(&self) -> &str {
            "bare"
        }
    }

    #[test]
    fn ids_format_compactly() {
        assert_eq!(ComponentId(4).to_string(), "c4");
        assert_eq!(PortId(2).to_string(), "p2");
    }

    #[test]
    fn trait_objects_are_usable() {
        let c: Box<dyn Component> = Box::new(Bare);
        assert_eq!(c.name(), "bare");
    }
}
