//! The event-driven simulation driver.
//!
//! [`Simulation`] owns every [`Component`], the global event queue and the
//! port wiring. Packet delivery is synchronous (gem5-style): the receiver's
//! handler runs nested inside the sender's `try_send_*` call and returns an
//! accept/refuse outcome immediately. Timers and retry notifications are
//! queued and fire in strict `(tick, order stamp)` order, where the stamp
//! is derived from the *scheduling* component's id and a per-component
//! counter — never from global insertion order. That makes the dispatch
//! order **partition-independent**: a simulation split across shards (see
//! [`crate::shard`]) stamps every event exactly as the serial run would,
//! so sharded execution is bit-identical to serial execution.
//!
//! ```
//! use pcisim_kernel::sim::Simulation;
//! let mut sim = Simulation::new();
//! assert_eq!(sim.now(), 0);
//! ```

use std::cell::{Cell, RefCell};

use crate::calendar::{CalendarQueue, EventHandle};
use crate::component::{Component, ComponentId, Event, PortId, RecvResult};
use crate::packet::{Packet, PacketId};
use crate::snapshot::{
    fnv1a, SnapshotError, StateReader, StateWriter, FNV_OFFSET, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
use crate::stats::{StatsBuilder, StatsSnapshot};
use crate::tick::Tick;
use crate::trace::{TraceCategory, TraceEvent, TraceKind, TraceLog, Tracer};

/// Why [`Simulation::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// No events remain; the system is quiescent.
    QueueEmpty,
    /// Simulated time reached the requested limit.
    TimeLimit,
    /// A component called [`Ctx::stop`].
    Stopped,
    /// The event-count safety valve tripped (likely livelock).
    EventLimit,
}

#[derive(Debug)]
pub(crate) enum ActionBody {
    Event(Event),
    Retry { port: PortId },
}

/// A queued dispatch: which component to call and with what. Ordering
/// (tick, order stamp) is owned by the [`CalendarQueue`].
pub(crate) struct Action {
    pub(crate) target: ComponentId,
    pub(crate) body: ActionBody,
}

type Endpoint = (ComponentId, PortId);

/// Cap on recycled payload buffers held by the pool; beyond this, returned
/// buffers are simply dropped. Bounds steady-state memory while covering
/// every in-flight DMA burst the experiments produce.
const PAYLOAD_POOL_CAP: usize = 256;

/// Bit layout of the order stamp: `gid:16 | stream:8 | counter:40`.
/// The stamp is a pure function of *which component* scheduled the event,
/// on *which stream*, for the *how-many-th* time — all quantities every
/// shard computes identically — so same-tick ties break the same way no
/// matter how the component tree is partitioned.
pub(crate) const ORDER_GID_SHIFT: u32 = 48;
pub(crate) const ORDER_STREAM_SHIFT: u32 = 40;
pub(crate) const ORDER_COUNTER_MASK: u64 = (1 << ORDER_STREAM_SHIFT) - 1;

/// Number of independent scheduling streams per component. Stream 0 is the
/// default; the split-capable link layer uses one stream per physical link
/// end so each half of a cut link burns its own counter sequence.
pub(crate) const NUM_STREAMS: usize = 2;

/// Bit layout of a [`PacketId`]: `gid:24 | counter:40`, allocated per
/// component rather than from a global cursor for the same
/// partition-independence reason as the order stamp.
pub(crate) const PKT_GID_SHIFT: u32 = 40;
pub(crate) const PKT_COUNTER_MASK: u64 = (1 << PKT_GID_SHIFT) - 1;

/// One event bound for a component in another shard, recorded by
/// [`Ctx::remote_schedule`] and drained by the sharded driver at the next
/// window barrier. `edge` indexes the shard plan's directed cut-edge
/// table; `tick` and `order` are final — the receiving shard queues the
/// event with exactly this key, so it dispatches precisely when and where
/// the serial run would have dispatched it.
#[derive(Debug)]
pub struct OutboundMsg {
    /// Index into the shard plan's edge table.
    pub edge: u32,
    /// Absolute delivery tick (schedule tick + delay).
    pub tick: Tick,
    /// Global order stamp minted by the sender at staging time.
    pub order: u64,
    /// The event to dispatch into the edge's destination component.
    pub ev: Event,
}

/// Shared mutable simulation state reachable from nested dispatches.
pub(crate) struct Shared {
    pub(crate) arena: Vec<RefCell<Option<Box<dyn Component>>>>,
    pub(crate) names: Vec<String>,
    /// Dense routing table: `conns[component][port]` is the wired peer.
    /// Built at `connect` time so `try_send_*` is two array loads, no hash.
    conns: Vec<Vec<Option<Endpoint>>>,
    pub(crate) queue: RefCell<CalendarQueue<Action>>,
    pub(crate) now: Cell<Tick>,
    /// Per-component packet-id counters (`PacketId` = gid | counter).
    pub(crate) pkt_counters: RefCell<Vec<u64>>,
    /// Per-(component, stream) order-stamp counters.
    pub(crate) push_counters: RefCell<Vec<[u64; NUM_STREAMS]>>,
    pub(crate) stop_requested: Cell<bool>,
    pub(crate) events_processed: Cell<u64>,
    /// Tick of the most recently dispatched event — the quiesce time of a
    /// drained shard, aggregated across shards by the sharded driver.
    pub(crate) last_event_tick: Cell<Tick>,
    /// Events bound for other shards, staged until the window barrier.
    pub(crate) outbox: RefCell<Vec<OutboundMsg>>,
    trace: Cell<bool>,
    pub(crate) tracer: Tracer,
    /// Free list of payload buffers recycled across DMA bursts.
    payload_pool: RefCell<Vec<Vec<u8>>>,
}

impl Shared {
    /// Mints the next order stamp for (`gid`, `stream`).
    #[inline]
    fn order_key(&self, gid: u32, stream: u8) -> u64 {
        debug_assert!((stream as usize) < NUM_STREAMS);
        let mut counters = self.push_counters.borrow_mut();
        let c = &mut counters[gid as usize][stream as usize];
        let counter = *c;
        *c += 1;
        debug_assert!(counter <= ORDER_COUNTER_MASK, "order counter overflow");
        (u64::from(gid) << ORDER_GID_SHIFT) | (u64::from(stream) << ORDER_STREAM_SHIFT) | counter
    }

    #[inline]
    fn push(
        &self,
        tick: Tick,
        source: ComponentId,
        stream: u8,
        target: ComponentId,
        body: ActionBody,
    ) -> EventHandle {
        let order = self.order_key(source.0, stream);
        self.queue.borrow_mut().push(tick, order, Action { target, body })
    }

    #[inline]
    fn lookup_peer(&self, ep: Endpoint) -> Option<Endpoint> {
        self.conns.get(ep.0 .0 as usize)?.get(ep.1 .0 as usize).copied().flatten()
    }

    pub(crate) fn with_component<R>(
        &self,
        id: ComponentId,
        f: impl FnOnce(&mut dyn Component, &mut Ctx<'_>) -> R,
    ) -> R {
        let cell = &self.arena[id.0 as usize];
        let mut slot = cell.try_borrow_mut().unwrap_or_else(|_| {
            panic!(
                "re-entrant dispatch into {:?}: a receiver must not synchronously \
                 send back toward its caller; schedule a zero-delay event instead",
                self.names[id.0 as usize]
            )
        });
        let comp = slot.as_mut().unwrap_or_else(|| {
            panic!(
                "dispatch into {:?}, which lives in another shard: a cut must \
                 only be crossed through the link layer's mailbox stubs",
                self.names[id.0 as usize]
            )
        });
        let mut ctx = Ctx { shared: self, self_id: id };
        f(comp.as_mut(), &mut ctx)
    }
}

/// The execution context handed to every component callback.
///
/// All interaction with the rest of the system goes through this type:
/// scheduling timers, sending packets over connected ports, granting
/// retries, allocating packet ids, and stopping the simulation.
pub struct Ctx<'a> {
    shared: &'a Shared,
    self_id: ComponentId,
}

impl Ctx<'_> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Tick {
        self.shared.now.get()
    }

    /// The id of the component being called.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Allocates a fresh packet id, unique across the whole simulation.
    /// Ids are minted from a per-component counter (`gid | counter`), so
    /// every shard of a partitioned run allocates exactly the ids the
    /// serial run would.
    #[inline]
    pub fn alloc_packet_id(&mut self) -> PacketId {
        let gid = self.self_id.0;
        let mut counters = self.shared.pkt_counters.borrow_mut();
        let c = &mut counters[gid as usize];
        let counter = *c;
        *c += 1;
        debug_assert!(counter <= PKT_COUNTER_MASK, "packet-id counter overflow");
        PacketId((u64::from(gid) << PKT_GID_SHIFT) | counter)
    }

    /// Hands out a zeroed payload buffer of `len` bytes, reusing a
    /// recycled allocation when one is available. Pair with
    /// [`Ctx::recycle_payload`] at the point the payload is consumed.
    #[inline]
    pub fn alloc_payload(&mut self, len: usize) -> Vec<u8> {
        let mut buf = self.shared.payload_pool.borrow_mut().pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Returns a payload buffer to the free list for reuse by a later
    /// [`Ctx::alloc_payload`]. Dropping the buffer instead is always safe —
    /// recycling is purely an allocation-traffic optimisation.
    #[inline]
    pub fn recycle_payload(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        let mut pool = self.shared.payload_pool.borrow_mut();
        if pool.len() < PAYLOAD_POOL_CAP {
            pool.push(buf);
        }
    }

    /// Clones `pkt` with its payload copied into a pooled buffer instead of
    /// a fresh allocation — the data-link layer uses this to put a wire copy
    /// of a replay-buffer TLP on the link without per-transmission mallocs.
    #[inline]
    pub fn clone_packet(&mut self, pkt: &Packet) -> Packet {
        let payload = pkt.payload().map(|src| {
            let mut buf = self.shared.payload_pool.borrow_mut().pop().unwrap_or_default();
            buf.clear();
            buf.extend_from_slice(src);
            buf
        });
        pkt.clone_with_payload(payload)
    }

    /// Recycles every owned buffer of a packet that has reached the end of
    /// its life (delivered, acknowledged, or absorbed), then drops it.
    #[inline]
    pub fn recycle_packet(&mut self, mut pkt: Packet) {
        if let Some(buf) = pkt.take_payload() {
            self.recycle_payload(buf);
        }
    }

    #[inline]
    fn peer(&self, port: PortId) -> Endpoint {
        self.shared
            .lookup_peer((self.self_id, port))
            .unwrap_or_else(|| panic!("{} {port} is not connected", self.self_id))
    }

    /// Whether `port` is wired to a peer.
    #[inline]
    pub fn is_connected(&self, port: PortId) -> bool {
        self.shared.lookup_peer((self.self_id, port)).is_some()
    }

    /// Schedules `ev` for delivery to this component after `delay` ticks.
    /// The returned handle can cancel the event with
    /// [`Ctx::cancel_scheduled`] any time before it fires; callers with no
    /// cancellation need simply ignore it.
    #[inline]
    pub fn schedule(&mut self, delay: Tick, ev: Event) -> EventHandle {
        self.schedule_stream(delay, 0, ev)
    }

    /// Like [`Ctx::schedule`], but stamps the event from scheduling stream
    /// `stream` instead of the default stream 0. A component whose state
    /// can be split across shards (the link layer) gives each splittable
    /// half its own stream, so the half runs through the identical counter
    /// sequence whether it executes fused with its peer or alone.
    #[inline]
    pub fn schedule_stream(&mut self, delay: Tick, stream: u8, ev: Event) -> EventHandle {
        // Saturating: an open-loop arrival process running for simulated
        // hours can push `now + delay` past u64::MAX picoseconds; a wrapped
        // tick would land the event in the past and corrupt causality, so
        // pin it to the end of time instead.
        self.shared.push(
            self.now().saturating_add(delay),
            self.self_id,
            stream,
            self.self_id,
            ActionBody::Event(ev),
        )
    }

    /// Schedules `ev` for delivery to the component at the far side of
    /// directed cut edge `edge` (a shard-plan index), after `delay` ticks.
    /// The event is staged in this shard's outbox and injected into the
    /// destination shard's queue at the next window barrier; its tick and
    /// order stamp are computed *now*, on the sending side, so it fires
    /// exactly as if [`Ctx::schedule_stream`] had queued it locally.
    /// `delay` must be at least the edge's lookahead horizon — the sharded
    /// driver asserts it lands beyond the current window.
    #[inline]
    pub fn remote_schedule(&mut self, edge: u32, delay: Tick, stream: u8, ev: Event) {
        let tick = self.now().saturating_add(delay);
        let order = self.shared.order_key(self.self_id.0, stream);
        self.shared.outbox.borrow_mut().push(OutboundMsg { edge, tick, order, ev });
    }

    /// Cancels an event previously scheduled by this component, returning
    /// it so the caller can reclaim any packet it carries. `None` when the
    /// event has already fired or been cancelled (stale handle — always
    /// safe). A cancelled event is skipped silently by the dispatch loop:
    /// it never advances time, never counts as processed, and never
    /// perturbs the order of live events — which is what lets per-request
    /// timeout timers be armed pervasively without disturbing quiesce
    /// times on the happy path.
    pub fn cancel_scheduled(&mut self, handle: EventHandle) -> Option<Event> {
        match self.shared.queue.borrow_mut().cancel(handle) {
            Some(Action { body: ActionBody::Event(ev), .. }) => Some(ev),
            Some(_) => None, // retries are not cancellable; treat as stale
            None => None,
        }
    }

    /// Sends a request packet out of `port`. The peer's
    /// [`Component::recv_request`] runs immediately.
    ///
    /// # Errors
    ///
    /// Returns `Err(pkt)` when the peer refused the packet; the caller must
    /// hold it and resend after [`Component::retry_granted`].
    ///
    /// # Panics
    ///
    /// Panics if `port` is not connected or `pkt` is not a request.
    pub fn try_send_request(&mut self, port: PortId, pkt: Packet) -> Result<(), Packet> {
        assert!(pkt.is_request(), "try_send_request with {:?}", pkt.cmd());
        let (peer, peer_port) = self.peer(port);
        self.trace(|| format!("-> req {} to {peer}/{peer_port}", pkt));
        // Custody tracepoint: snapshot the identity fields before the packet
        // moves into the receiver, record only on an accepted delivery.
        let custody = self.shared.tracer.wants(TraceCategory::Hop).then(|| (pkt.id(), pkt.cmd()));
        match self.shared.with_component(peer, |c, ctx| c.recv_request(ctx, peer_port, pkt)) {
            RecvResult::Accepted => {
                if let Some((id, cmd)) = custody {
                    self.record_hop(peer, peer_port, TraceKind::HopRequest, id, cmd);
                }
                Ok(())
            }
            RecvResult::Refused(pkt) => {
                if custody.is_some() {
                    self.record_hop(peer, peer_port, TraceKind::HopRefused, pkt.id(), pkt.cmd());
                }
                Err(pkt)
            }
        }
    }

    /// Sends a response packet out of `port`; same contract as
    /// [`Ctx::try_send_request`].
    ///
    /// # Errors
    ///
    /// Returns `Err(pkt)` when the peer refused the packet.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not connected or `pkt` is not a response.
    pub fn try_send_response(&mut self, port: PortId, pkt: Packet) -> Result<(), Packet> {
        assert!(pkt.is_response(), "try_send_response with {:?}", pkt.cmd());
        let (peer, peer_port) = self.peer(port);
        self.trace(|| format!("-> resp {} to {peer}/{peer_port}", pkt));
        let custody = self.shared.tracer.wants(TraceCategory::Hop).then(|| (pkt.id(), pkt.cmd()));
        match self.shared.with_component(peer, |c, ctx| c.recv_response(ctx, peer_port, pkt)) {
            RecvResult::Accepted => {
                if let Some((id, cmd)) = custody {
                    self.record_hop(peer, peer_port, TraceKind::HopResponse, id, cmd);
                }
                Ok(())
            }
            RecvResult::Refused(pkt) => {
                if custody.is_some() {
                    self.record_hop(peer, peer_port, TraceKind::HopRefused, pkt.id(), pkt.cmd());
                }
                Err(pkt)
            }
        }
    }

    fn record_hop(
        &self,
        peer: ComponentId,
        peer_port: PortId,
        kind: TraceKind,
        id: PacketId,
        cmd: crate::packet::Command,
    ) {
        self.shared.tracer.record(TraceEvent {
            at: self.now(),
            component: peer,
            category: TraceCategory::Hop,
            kind,
            packet: Some(id),
            cmd: Some(cmd),
            arg: u64::from(peer_port.0),
        });
    }

    /// Notifies the peer of `port` that buffer space freed up. Delivered
    /// from the event queue (never nested), at the current tick.
    #[inline]
    pub fn send_retry(&mut self, port: PortId) {
        self.send_retry_stream(port, 0);
    }

    /// Like [`Ctx::send_retry`], but mints the retry's order stamp from
    /// scheduling stream `stream`. A splittable component (the link layer)
    /// must stamp retries from the owning half's stream, or the stamp
    /// counters of a split run drift from the fused run's.
    #[inline]
    pub fn send_retry_stream(&mut self, port: PortId, stream: u8) {
        let (peer, peer_port) = self.peer(port);
        self.shared.push(
            self.now(),
            self.self_id,
            stream,
            peer,
            ActionBody::Retry { port: peer_port },
        );
    }

    /// Requests the simulation loop to stop after the current event.
    #[inline]
    pub fn stop(&mut self) {
        self.shared.stop_requested.set(true);
    }

    /// Emits a trace line when tracing is enabled; the closure only runs
    /// when needed.
    #[inline]
    pub fn trace(&self, f: impl FnOnce() -> String) {
        if self.shared.trace.get() {
            eprintln!(
                "[{:>12}] {} {}",
                self.now(),
                self.shared.names[self.self_id.0 as usize],
                f()
            );
        }
    }

    /// Whether structured tracing is enabled for `cat`. Tracepoints should
    /// gate any event construction on this; when disabled it is a single
    /// flag load.
    #[inline]
    pub fn tracing(&self, cat: TraceCategory) -> bool {
        self.shared.tracer.wants(cat)
    }

    /// Records a structured [`TraceEvent`] attributed to this component at
    /// the current tick. No-op unless `cat` is enabled — but callers on hot
    /// paths should still check [`Ctx::tracing`] first to skip argument
    /// evaluation.
    #[inline]
    pub fn emit(
        &self,
        cat: TraceCategory,
        kind: TraceKind,
        packet: Option<PacketId>,
        cmd: Option<crate::packet::Command>,
        arg: u64,
    ) {
        if self.shared.tracer.wants(cat) {
            self.shared.tracer.record(TraceEvent {
                at: self.now(),
                component: self.self_id,
                category: cat,
                kind,
                packet,
                cmd,
                arg,
            });
        }
    }
}

/// Owns components, wiring and the event queue; drives simulated time.
pub struct Simulation {
    pub(crate) shared: Shared,
    pub(crate) initialized: bool,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at tick 0.
    pub fn new() -> Self {
        Self {
            shared: Shared {
                arena: Vec::new(),
                names: Vec::new(),
                conns: Vec::new(),
                queue: RefCell::new(CalendarQueue::new()),
                now: Cell::new(0),
                pkt_counters: RefCell::new(Vec::new()),
                push_counters: RefCell::new(Vec::new()),
                stop_requested: Cell::new(false),
                events_processed: Cell::new(0),
                last_event_tick: Cell::new(0),
                outbox: RefCell::new(Vec::new()),
                trace: Cell::new(false),
                tracer: Tracer::new(),
                payload_pool: RefCell::new(Vec::new()),
            },
            initialized: false,
        }
    }

    /// Enables or disables per-event tracing to stderr.
    pub fn set_trace(&mut self, on: bool) {
        self.shared.trace.set(on);
    }

    /// Enables structured tracing for the categories in `mask` (a bit-or
    /// of [`TraceCategory::bit`] values, or [`TraceCategory::ALL`]).
    /// Passing `0` disables tracing, which is the default.
    pub fn set_trace_mask(&mut self, mask: u32) {
        self.shared.tracer.set_mask(mask);
    }

    /// The current structured-trace category mask.
    pub fn trace_mask(&self) -> u32 {
        self.shared.tracer.mask()
    }

    /// Caps the structured-trace ring buffer at `capacity` events.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.shared.tracer.set_capacity(capacity);
    }

    /// Drains the structured-trace ring into a self-contained [`TraceLog`]
    /// (events plus component names) ready for export.
    pub fn take_trace(&mut self) -> TraceLog {
        TraceLog {
            events: self.shared.tracer.drain(),
            names: self.shared.names.clone(),
            dropped: self.shared.tracer.dropped(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Tick {
        self.shared.now.get()
    }

    /// Number of queued actions dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.shared.events_processed.get()
    }

    /// Tick of the most recently dispatched event (0 before any dispatch).
    pub fn last_event_tick(&self) -> Tick {
        self.shared.last_event_tick.get()
    }

    /// Number of events still queued.
    pub fn pending_events(&self) -> usize {
        self.shared.queue.borrow().len()
    }

    /// Adds a component and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if another component already uses the same name or the
    /// simulation has started.
    pub fn add(&mut self, component: Box<dyn Component>) -> ComponentId {
        let name = component.name().to_owned();
        self.add_slot(name, Some(component))
    }

    /// Reserves the next component id for a component that lives in
    /// *another shard* of a partitioned run. The slot keeps the global
    /// name and id (so wiring, fingerprints and checkpoints line up with
    /// the serial build) but holds no component; dispatching into it
    /// panics, which is how misrouted cross-shard events fail loudly.
    pub fn add_remote(&mut self, name: &str) -> ComponentId {
        self.add_slot(name.to_owned(), None)
    }

    fn add_slot(&mut self, name: String, component: Option<Box<dyn Component>>) -> ComponentId {
        assert!(!self.shared.names.contains(&name), "duplicate component name {name:?}");
        assert!(!self.initialized, "cannot add components after the simulation started");
        let id = ComponentId(self.shared.arena.len() as u32);
        assert!(u64::from(id.0) < (1 << (64 - ORDER_GID_SHIFT)), "component id overflows stamp");
        self.shared.arena.push(RefCell::new(component));
        self.shared.names.push(name);
        self.shared.pkt_counters.borrow_mut().push(0);
        self.shared.push_counters.borrow_mut().push([0; NUM_STREAMS]);
        id
    }

    /// Name of component `id`.
    pub fn name_of(&self, id: ComponentId) -> &str {
        &self.shared.names[id.0 as usize]
    }

    /// Wires two ports together bidirectionally: requests flow either way,
    /// responses travel back along the same pair.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is already connected or if the two
    /// endpoints are the same.
    pub fn connect(&mut self, a: (ComponentId, PortId), b: (ComponentId, PortId)) {
        assert_ne!(a, b, "cannot connect a port to itself");
        assert!(self.shared.lookup_peer(a).is_none(), "{} {} already connected", a.0, a.1);
        assert!(self.shared.lookup_peer(b).is_none(), "{} {} already connected", b.0, b.1);
        for &((comp, port), peer) in &[(a, b), (b, a)] {
            let ci = comp.0 as usize;
            if self.shared.conns.len() <= ci {
                self.shared.conns.resize_with(ci + 1, Vec::new);
            }
            let ports = &mut self.shared.conns[ci];
            let pi = port.0 as usize;
            if ports.len() <= pi {
                ports.resize(pi + 1, None);
            }
            ports[pi] = Some(peer);
        }
    }

    /// The endpoint wired to `ep`, if any.
    pub fn peer_of(&self, ep: (ComponentId, PortId)) -> Option<(ComponentId, PortId)> {
        self.shared.lookup_peer(ep)
    }

    pub(crate) fn ensure_init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for i in 0..self.shared.arena.len() {
            // Remote slots init in the shard that owns them.
            if self.shared.arena[i].borrow().is_some() {
                // Init runs before any dispatch; stamp its trace records
                // with the component's minimal order key so per-shard init
                // records merge back in global component order.
                self.shared.tracer.set_stamp((i as u64) << ORDER_GID_SHIFT);
                self.shared.with_component(ComponentId(i as u32), |c, ctx| c.init(ctx));
            }
        }
        self.shared.tracer.set_stamp(0);
    }

    #[inline]
    fn dispatch(&self, tick: Tick, order: u64, action: Action) {
        debug_assert!(tick >= self.now(), "time went backwards");
        self.shared.now.set(tick);
        self.shared.last_event_tick.set(tick);
        self.shared.events_processed.set(self.shared.events_processed.get() + 1);
        // Stamp the tracer so records emitted during this dispatch carry
        // the event's global order — the key that merges per-shard traces
        // back into the exact serial stream.
        self.shared.tracer.set_stamp(order);
        self.shared.with_component(action.target, |c, ctx| match action.body {
            ActionBody::Event(ev) => c.handle(ctx, ev),
            ActionBody::Retry { port } => c.retry_granted(ctx, port),
        });
    }

    /// Runs until the queue drains, `until` is reached, a component stops
    /// the simulation, or `max_events` dispatches have happened.
    pub fn run(&mut self, until: Tick, max_events: u64) -> RunOutcome {
        self.ensure_init();
        let budget_end = self.events_processed().saturating_add(max_events);
        loop {
            if self.shared.stop_requested.get() {
                self.shared.stop_requested.set(false);
                return RunOutcome::Stopped;
            }
            // Budget and time limits are checked before the pop, so the head
            // action stays queued (with its original order stamp) and the
            // caller can resume exactly where it left off. The fused
            // peek-and-pop settles the queue once per event.
            let popped = {
                let mut queue = self.shared.queue.borrow_mut();
                if self.events_processed() >= budget_end {
                    match queue.next_tick() {
                        None => return RunOutcome::QueueEmpty,
                        Some(tick) if tick > until => {
                            self.shared.now.set(until);
                            return RunOutcome::TimeLimit;
                        }
                        Some(_) => return RunOutcome::EventLimit,
                    }
                }
                match queue.pop_if_at_most(until) {
                    Ok(None) => return RunOutcome::QueueEmpty,
                    Err(_head) => {
                        self.shared.now.set(until);
                        return RunOutcome::TimeLimit;
                    }
                    Ok(Some(popped)) => popped,
                }
            };
            self.dispatch(popped.0, popped.1, popped.2);
        }
    }

    /// Runs every queued event with tick strictly below `end`, leaving
    /// `now` at `end - 1` (the same place [`Simulation::run`]`(end - 1, _)`
    /// would leave it). This is the sharded driver's inner loop: within a
    /// window no event at or beyond the barrier may exist that this shard
    /// hasn't yet been told about, so draining below the barrier is safe.
    ///
    /// Unlike [`Simulation::run`], stop requests and event budgets are
    /// *not* checked here — the driver enforces both at window
    /// granularity — and a [`Ctx::stop`] flag is left set for the driver
    /// to read.
    pub fn run_window(&mut self, end: Tick) {
        self.ensure_init();
        debug_assert!(end > self.now() || self.now() == 0);
        loop {
            let popped = { self.shared.queue.borrow_mut().pop_if_at_most(end - 1) };
            match popped {
                Ok(Some((tick, order, action))) => self.dispatch(tick, order, action),
                Ok(None) | Err(_) => break,
            }
        }
        self.shared.now.set(end - 1);
    }

    /// Tick of the earliest queued event, if any — the sharded driver's
    /// input for computing the next window barrier.
    pub fn next_event_tick(&self) -> Option<Tick> {
        self.shared.queue.borrow_mut().next_tick()
    }

    /// Drains the staged cross-shard messages recorded by
    /// [`Ctx::remote_schedule`] since the last call.
    pub fn take_outbox(&mut self) -> Vec<OutboundMsg> {
        std::mem::take(&mut *self.shared.outbox.borrow_mut())
    }

    /// Whether a component requested a stop that has not been consumed.
    pub fn take_stop_request(&mut self) -> bool {
        self.shared.stop_requested.replace(false)
    }

    /// Queues `ev` for `target` with an explicit `(tick, order)` key —
    /// the receiving half of the inter-shard mailbox. The key was minted
    /// by [`Ctx::remote_schedule`] on the sending shard.
    pub fn push_keyed(&self, tick: Tick, order: u64, target: ComponentId, ev: Event) {
        self.shared.queue.borrow_mut().push(
            tick,
            order,
            Action { target, body: ActionBody::Event(ev) },
        );
    }

    /// Runs until the event queue is empty or a component stops the run.
    pub fn run_to_quiesce(&mut self) -> RunOutcome {
        self.run(Tick::MAX, u64::MAX)
    }

    /// Total packet ids allocated so far, summed over components. Exposed
    /// so tests can audit PacketId continuity across checkpoint/restore.
    pub fn packet_ids_allocated(&self) -> u64 {
        self.shared.pkt_counters.borrow().iter().sum()
    }

    /// FNV-1a fingerprint of the component tree's *shape*: component names
    /// (in id order) and the complete port wiring. Configuration values are
    /// deliberately excluded, so a checkpoint taken on one tree restores
    /// into an identically shaped tree built with different parameters —
    /// which is what makes warm-started parameter sweeps possible. Remote
    /// slots carry the same name as the component they stand in for, so a
    /// sharded build fingerprints identically to the serial build.
    pub fn topology_fingerprint(&self) -> u64 {
        let mut w = StateWriter::new();
        w.usize(self.shared.names.len());
        for name in &self.shared.names {
            w.str(name);
        }
        w.usize(self.shared.conns.len());
        for row in &self.shared.conns {
            w.usize(row.len());
            for ep in row {
                match ep {
                    Some((c, p)) => {
                        w.bool(true);
                        w.u32(c.0);
                        w.u16(p.0);
                    }
                    None => w.bool(false),
                }
            }
        }
        fnv1a(FNV_OFFSET, &w.into_bytes())
    }

    /// Serializes the complete dynamic state — simulated time, the event
    /// queue (armed timers and all, as portable `(tick, order)` entries),
    /// the per-component PacketId and order-stamp counters, the trace
    /// ring, and every component's [`Component::save_state`] section —
    /// into a self-contained, checksummed checkpoint. Runs `init` first if
    /// the simulation has never run, so a restored simulation never
    /// re-runs it. The format is independent of how (or whether) the run
    /// was sharded; `kernel::shard` assembles the identical bytes from a
    /// partitioned run.
    pub fn checkpoint(&mut self) -> Vec<u8> {
        self.ensure_init();
        let mut body = StateWriter::new();
        body.u64(self.topology_fingerprint());
        body.u64(self.now());
        body.u64(self.shared.events_processed.get());
        for &c in self.shared.pkt_counters.borrow().iter() {
            body.u64(c);
        }
        for row in self.shared.push_counters.borrow().iter() {
            for &c in row {
                body.u64(c);
            }
        }
        self.shared.queue.borrow().save(&mut body, encode_action);
        self.shared.tracer.save_ring(&mut body);
        body.usize(self.shared.arena.len());
        for (i, cell) in self.shared.arena.iter().enumerate() {
            let slot = cell.borrow();
            let comp = slot.as_ref().expect("component missing during checkpoint");
            body.str(&self.shared.names[i]);
            let mut section = StateWriter::new();
            comp.save_state(&mut section);
            body.bytes(&section.into_bytes());
        }
        let body = body.into_bytes();
        seal_checkpoint(body)
    }

    /// Applies a [`Simulation::checkpoint`] to this simulation, which must
    /// be a freshly built tree with the same topology fingerprint (same
    /// component names and wiring; configuration may differ). Afterwards
    /// the simulation continues bit-for-bit like the one that was saved:
    /// same event order, same packet ids, same statistics.
    ///
    /// # Errors
    ///
    /// Any malformed, truncated, corrupted, version-skewed or
    /// wrong-topology input yields a typed [`SnapshotError`]; decoding
    /// never panics. On error the simulation may be partially overwritten
    /// and must be discarded.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let body = open_checkpoint(bytes)?;
        let mut r = StateReader::new(body);
        let fingerprint = r.u64()?;
        let expected = self.topology_fingerprint();
        if fingerprint != expected {
            return Err(SnapshotError::TopologyMismatch { stored: fingerprint, expected });
        }
        let now = r.u64()?;
        let events_processed = r.u64()?;
        let n = self.shared.arena.len();
        let mut pkt_counters = Vec::with_capacity(n);
        for _ in 0..n {
            pkt_counters.push(r.u64()?);
        }
        let mut push_counters = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = [0u64; NUM_STREAMS];
            for c in &mut row {
                *c = r.u64()?;
            }
            push_counters.push(row);
        }
        let queue = CalendarQueue::restore(now, &mut r, |r| {
            decode_action(r, &pkt_counters, &push_counters)
        })?;
        self.shared.tracer.restore_ring(&mut r)?;
        let count = r.usize()?;
        if count != self.shared.arena.len() {
            return Err(SnapshotError::Corrupt(format!(
                "checkpoint has {count} components, tree has {}",
                self.shared.arena.len()
            )));
        }
        for (i, cell) in self.shared.arena.iter().enumerate() {
            let name = r.str()?;
            if name != self.shared.names[i] {
                return Err(SnapshotError::Corrupt(format!(
                    "section {name:?} does not match component {:?}",
                    self.shared.names[i]
                )));
            }
            let section = r.bytes()?;
            let mut sr = StateReader::new(section);
            let mut slot = cell.borrow_mut();
            let comp = slot.as_mut().expect("component slot empty");
            comp.restore_state(&mut sr)?;
            sr.finish(&name)?;
        }
        r.finish("simulation")?;
        *self.shared.queue.borrow_mut() = queue;
        self.shared.now.set(now);
        self.shared.last_event_tick.set(now);
        *self.shared.pkt_counters.borrow_mut() = pkt_counters;
        *self.shared.push_counters.borrow_mut() = push_counters;
        self.shared.events_processed.set(events_processed);
        self.shared.stop_requested.set(false);
        // `init` already ran in the simulation that produced the
        // checkpoint; it must never run again here.
        self.initialized = true;
        Ok(())
    }

    /// Collects statistics from every component (remote slots excluded —
    /// their shard reports them).
    pub fn stats(&self) -> StatsSnapshot {
        let mut all = std::collections::BTreeMap::new();
        for (i, cell) in self.shared.arena.iter().enumerate() {
            let slot = cell.borrow();
            let Some(comp) = slot.as_ref() else { continue };
            let mut b = StatsBuilder::new(self.shared.names[i].clone());
            comp.report_stats(&mut b);
            all.extend(b.into_values());
        }
        StatsSnapshot::from_values(all)
    }
}

/// Wraps a checkpoint body in the magic/version/checksum header.
pub(crate) fn seal_checkpoint(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&fnv1a(FNV_OFFSET, &body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Validates the header of `bytes` and returns the checkpoint body.
pub(crate) fn open_checkpoint(bytes: &[u8]) -> Result<&[u8], SnapshotError> {
    let mut header = StateReader::new(bytes);
    let magic = header.u32()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic { found: magic });
    }
    let version = header.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::VersionMismatch { found: version, expected: SNAPSHOT_VERSION });
    }
    let stored = header.u64()?;
    let body = &bytes[16..];
    let computed = fnv1a(FNV_OFFSET, body);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    Ok(body)
}

pub(crate) fn encode_action(w: &mut StateWriter, a: &Action) {
    w.u32(a.target.0);
    match &a.body {
        ActionBody::Event(Event::Timer { kind, data }) => {
            w.u8(0);
            w.u32(*kind);
            w.u64(*data);
        }
        ActionBody::Event(Event::DelayedPacket { tag, pkt }) => {
            w.u8(1);
            w.u32(*tag);
            pkt.encode(w);
        }
        ActionBody::Retry { port } => {
            w.u8(2);
            w.u16(port.0);
        }
        ActionBody::Event(Event::StampedPacket { tag, stamp, pkt }) => {
            w.u8(3);
            w.u32(*tag);
            w.u64(*stamp);
            pkt.encode(w);
        }
    }
}

pub(crate) fn decode_action(
    r: &mut StateReader<'_>,
    pkt_counters: &[u64],
    push_counters: &[[u64; NUM_STREAMS]],
) -> Result<Action, SnapshotError> {
    let target = r.u32()?;
    if target as usize >= pkt_counters.len() {
        return Err(SnapshotError::Corrupt(format!("event target c{target} out of range")));
    }
    let _ = push_counters;
    // Continuity audit: a queued packet must predate its owning
    // component's restored allocator cursor, or future allocations
    // would collide.
    let audit = |pkt: &Packet| -> Result<(), SnapshotError> {
        let id = pkt.id().0;
        let gid = (id >> PKT_GID_SHIFT) as usize;
        let counter = id & PKT_COUNTER_MASK;
        if gid >= pkt_counters.len() || counter >= pkt_counters[gid] {
            return Err(SnapshotError::Corrupt(format!(
                "queued {} is beyond component {gid}'s packet-id allocator",
                pkt.id()
            )));
        }
        Ok(())
    };
    let body = match r.u8()? {
        0 => ActionBody::Event(Event::Timer { kind: r.u32()?, data: r.u64()? }),
        1 => {
            let tag = r.u32()?;
            let pkt = Packet::decode(r)?;
            audit(&pkt)?;
            ActionBody::Event(Event::DelayedPacket { tag, pkt })
        }
        2 => ActionBody::Retry { port: PortId(r.u16()?) },
        3 => {
            let tag = r.u32()?;
            let stamp = r.u64()?;
            let pkt = Packet::decode(r)?;
            audit(&pkt)?;
            ActionBody::Event(Event::StampedPacket { tag, stamp, pkt })
        }
        other => return Err(SnapshotError::Corrupt(format!("action tag {other}"))),
    };
    Ok(Action { target: ComponentId(target), body })
}

// Components that need post-run inspection share state with the harness via
// `Rc<RefCell<...>>` handles created before `Simulation::add` (see the
// `pcisim-system` workloads); the kernel deliberately offers no downcasting.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Event;
    use crate::packet::Command;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Fires a chain of timers and records their arrival times.
    struct TimerChain {
        name: String,
        fired: Rc<RefCell<Vec<(Tick, u64)>>>,
        remaining: u64,
        period: Tick,
    }
    impl Component for TimerChain {
        fn name(&self) -> &str {
            &self.name
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(self.period, Event::Timer { kind: 0, data: self.remaining });
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            let Event::Timer { data, .. } = ev else { panic!() };
            self.fired.borrow_mut().push((ctx.now(), data));
            if data > 1 {
                ctx.schedule(self.period, Event::Timer { kind: 0, data: data - 1 });
            }
        }
    }

    #[test]
    fn timers_fire_in_order_and_queue_drains() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.add(Box::new(TimerChain {
            name: "t".into(),
            fired: fired.clone(),
            remaining: 3,
            period: 10,
        }));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(*fired.borrow(), vec![(10, 3), (20, 2), (30, 1)]);
        assert_eq!(sim.now(), 30);
        assert_eq!(sim.events_processed(), 3);
        assert_eq!(sim.last_event_tick(), 30);
    }

    #[test]
    fn run_respects_time_limit_and_resumes() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.add(Box::new(TimerChain {
            name: "t".into(),
            fired: fired.clone(),
            remaining: 100,
            period: 10,
        }));
        assert_eq!(sim.run(25, u64::MAX), RunOutcome::TimeLimit);
        assert_eq!(fired.borrow().len(), 2);
        assert_eq!(sim.now(), 25);
        assert_eq!(sim.run(45, u64::MAX), RunOutcome::TimeLimit);
        assert_eq!(fired.borrow().len(), 4);
    }

    #[test]
    fn run_window_matches_inclusive_run() {
        // run_window(end) must be exactly run(end - 1, MAX) minus the
        // stop/budget checks: same events fired, same final clock.
        let fired_a = Rc::new(RefCell::new(Vec::new()));
        let mut a = Simulation::new();
        a.add(Box::new(TimerChain {
            name: "t".into(),
            fired: fired_a.clone(),
            remaining: 100,
            period: 10,
        }));
        assert_eq!(a.run(25, u64::MAX), RunOutcome::TimeLimit);
        let fired_b = Rc::new(RefCell::new(Vec::new()));
        let mut b = Simulation::new();
        b.add(Box::new(TimerChain {
            name: "t".into(),
            fired: fired_b.clone(),
            remaining: 100,
            period: 10,
        }));
        b.run_window(26);
        assert_eq!(*fired_a.borrow(), *fired_b.borrow());
        assert_eq!(a.now(), b.now());
        assert_eq!(a.events_processed(), b.events_processed());
        assert_eq!(b.next_event_tick(), Some(30));
    }

    #[test]
    fn run_respects_event_limit_without_losing_events() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.add(Box::new(TimerChain {
            name: "t".into(),
            fired: fired.clone(),
            remaining: 10,
            period: 1,
        }));
        assert_eq!(sim.run(Tick::MAX, 5), RunOutcome::EventLimit);
        assert_eq!(sim.events_processed(), 5);
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(fired.borrow().len(), 10);
    }

    /// Sends `count` requests to its peer as fast as allowed, honouring the
    /// refusal/retry protocol.
    struct Producer {
        name: String,
        to_send: u32,
        stalled: Option<Packet>,
        acked: Rc<RefCell<u32>>,
    }
    const P_OUT: PortId = PortId(0);
    impl Producer {
        fn pump(&mut self, ctx: &mut Ctx<'_>) {
            while self.stalled.is_none() && self.to_send > 0 {
                self.to_send -= 1;
                let id = ctx.alloc_packet_id();
                let pkt = Packet::request(id, Command::ReadReq, 0x1000, 4, ctx.self_id());
                if let Err(back) = ctx.try_send_request(P_OUT, pkt) {
                    self.stalled = Some(back);
                }
            }
        }
    }
    impl Component for Producer {
        fn name(&self) -> &str {
            &self.name
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(0, Event::Timer { kind: 0, data: 0 });
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, _ev: Event) {
            self.pump(ctx);
        }
        fn recv_response(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) -> RecvResult {
            *self.acked.borrow_mut() += 1;
            RecvResult::Accepted
        }
        fn retry_granted(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
            assert_eq!(port, P_OUT);
            if let Some(pkt) = self.stalled.take() {
                if let Err(back) = ctx.try_send_request(P_OUT, pkt) {
                    self.stalled = Some(back);
                    return;
                }
            }
            self.pump(ctx);
        }
    }

    /// Accepts one request at a time; responds after a service delay, then
    /// grants a retry.
    struct Server {
        name: String,
        busy_with: Option<Packet>,
        refused: bool,
        served: Rc<RefCell<u32>>,
        delay: Tick,
    }
    const S_IN: PortId = PortId(0);
    impl Component for Server {
        fn name(&self) -> &str {
            &self.name
        }
        fn recv_request(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) -> RecvResult {
            assert_eq!(port, S_IN);
            if self.busy_with.is_some() {
                self.refused = true;
                return RecvResult::Refused(pkt);
            }
            self.busy_with = Some(pkt);
            ctx.schedule(self.delay, Event::Timer { kind: 1, data: 0 });
            RecvResult::Accepted
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, _ev: Event) {
            let pkt = self.busy_with.take().expect("service timer without packet");
            *self.served.borrow_mut() += 1;
            ctx.try_send_response(S_IN, pkt.into_read_response(vec![0; 4]))
                .expect("producer never refuses responses");
            if self.refused {
                self.refused = false;
                ctx.send_retry(S_IN);
            }
        }
    }

    #[test]
    fn request_response_with_backpressure_delivers_everything() {
        let acked = Rc::new(RefCell::new(0));
        let served = Rc::new(RefCell::new(0));
        let mut sim = Simulation::new();
        let p = sim.add(Box::new(Producer {
            name: "prod".into(),
            to_send: 10,
            stalled: None,
            acked: acked.clone(),
        }));
        let s = sim.add(Box::new(Server {
            name: "serv".into(),
            busy_with: None,
            refused: false,
            served: served.clone(),
            delay: 100,
        }));
        sim.connect((p, P_OUT), (s, S_IN));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(*acked.borrow(), 10);
        assert_eq!(*served.borrow(), 10);
        // One packet is in service at a time, 100 ticks each.
        assert_eq!(sim.now(), 1000);
    }

    #[test]
    fn packet_ids_are_unique_and_component_scoped() {
        let acked = Rc::new(RefCell::new(0));
        let served = Rc::new(RefCell::new(0));
        let mut sim = Simulation::new();
        let p = sim.add(Box::new(Producer {
            name: "prod".into(),
            to_send: 3,
            stalled: None,
            acked: acked.clone(),
        }));
        let s = sim.add(Box::new(Server {
            name: "serv".into(),
            busy_with: None,
            refused: false,
            served: served.clone(),
            delay: 10,
        }));
        sim.connect((p, P_OUT), (s, S_IN));
        sim.run_to_quiesce();
        // Producer is component 0: its ids are counters 0, 1, 2 under gid 0.
        assert_eq!(sim.packet_ids_allocated(), 3);
        assert_eq!(sim.shared.pkt_counters.borrow()[p.0 as usize], 3);
        assert_eq!(sim.shared.pkt_counters.borrow()[s.0 as usize], 0);
    }

    #[test]
    fn cancelled_timer_never_fires_and_does_not_stretch_the_run() {
        /// Arms a short work timer and a long watchdog; cancels the
        /// watchdog when the work timer fires.
        struct Guarded {
            fired: Rc<RefCell<Vec<(Tick, u32)>>>,
            watchdog: Option<crate::calendar::EventHandle>,
        }
        impl Component for Guarded {
            fn name(&self) -> &str {
                "guarded"
            }
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                self.watchdog = Some(ctx.schedule(1_000_000, Event::Timer { kind: 9, data: 0 }));
                ctx.schedule(50, Event::Timer { kind: 1, data: 0 });
            }
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                let Event::Timer { kind, .. } = ev else { panic!() };
                self.fired.borrow_mut().push((ctx.now(), kind));
                if kind == 1 {
                    let cancelled = ctx.cancel_scheduled(self.watchdog.take().unwrap());
                    assert!(matches!(cancelled, Some(Event::Timer { kind: 9, .. })));
                }
            }
        }
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.add(Box::new(Guarded { fired: fired.clone(), watchdog: None }));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(*fired.borrow(), vec![(50, 1)], "watchdog must never fire");
        assert_eq!(sim.now(), 50, "cancelled timer must not advance quiesce time");
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn stop_request_halts_the_loop_and_can_resume() {
        struct Stopper;
        impl Component for Stopper {
            fn name(&self) -> &str {
                "stopper"
            }
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(5, Event::Timer { kind: 0, data: 0 });
                ctx.schedule(10, Event::Timer { kind: 0, data: 0 });
            }
            fn handle(&mut self, ctx: &mut Ctx<'_>, _: Event) {
                ctx.stop();
            }
        }
        let mut sim = Simulation::new();
        sim.add(Box::new(Stopper));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::Stopped);
        assert_eq!(sim.now(), 5);
        assert_eq!(sim.run_to_quiesce(), RunOutcome::Stopped);
        assert_eq!(sim.now(), 10);
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
    }

    struct Stub(&'static str);
    impl Component for Stub {
        fn name(&self) -> &str {
            self.0
        }
    }

    #[test]
    #[should_panic(expected = "duplicate component name")]
    fn duplicate_names_are_rejected() {
        let mut sim = Simulation::new();
        sim.add(Box::new(Stub("x")));
        sim.add(Box::new(Stub("x")));
    }

    #[test]
    #[should_panic(expected = "lives in another shard")]
    fn dispatch_into_a_remote_slot_panics() {
        struct Poker;
        impl Component for Poker {
            fn name(&self) -> &str {
                "poker"
            }
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                let id = ctx.alloc_packet_id();
                let pkt = Packet::request(id, Command::ReadReq, 0, 4, ctx.self_id());
                let _ = ctx.try_send_request(PortId(0), pkt);
            }
        }
        let mut sim = Simulation::new();
        let p = sim.add(Box::new(Poker));
        let ghost = sim.add_remote("elsewhere");
        sim.connect((p, PortId(0)), (ghost, PortId(0)));
        sim.run_to_quiesce();
    }

    #[test]
    fn remote_slots_share_the_fingerprint_and_name_space() {
        let mut a = Simulation::new();
        a.add(Box::new(Stub("x")));
        a.add(Box::new(Stub("y")));
        a.connect((ComponentId(0), PortId(0)), (ComponentId(1), PortId(0)));
        let mut b = Simulation::new();
        b.add(Box::new(Stub("x")));
        b.add_remote("y");
        b.connect((ComponentId(0), PortId(0)), (ComponentId(1), PortId(0)));
        assert_eq!(a.topology_fingerprint(), b.topology_fingerprint());
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_is_rejected() {
        let mut sim = Simulation::new();
        let a = sim.add(Box::new(Stub("a")));
        let b = sim.add(Box::new(Stub("b")));
        let c = sim.add(Box::new(Stub("c")));
        sim.connect((a, PortId(0)), (b, PortId(0)));
        sim.connect((a, PortId(0)), (c, PortId(0)));
    }

    #[test]
    fn peer_lookup_is_symmetric() {
        let mut sim = Simulation::new();
        let a = sim.add(Box::new(Stub("a")));
        let b = sim.add(Box::new(Stub("b")));
        sim.connect((a, PortId(3)), (b, PortId(7)));
        assert_eq!(sim.peer_of((a, PortId(3))), Some((b, PortId(7))));
        assert_eq!(sim.peer_of((b, PortId(7))), Some((a, PortId(3))));
        assert_eq!(sim.peer_of((a, PortId(0))), None);
        assert_eq!(sim.name_of(a), "a");
    }

    #[test]
    fn same_tick_events_fire_in_insertion_order() {
        struct Recorder {
            name: String,
            log: Rc<RefCell<Vec<u64>>>,
        }
        impl Component for Recorder {
            fn name(&self) -> &str {
                &self.name
            }
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                for i in 0..5 {
                    ctx.schedule(10, Event::Timer { kind: 0, data: i });
                }
            }
            fn handle(&mut self, _ctx: &mut Ctx<'_>, ev: Event) {
                let Event::Timer { data, .. } = ev else { panic!() };
                self.log.borrow_mut().push(data);
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.add(Box::new(Recorder { name: "r".into(), log: log.clone() }));
        sim.run_to_quiesce();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn same_tick_cross_component_order_is_by_id_not_insertion() {
        // Two components arm timers for the same tick; the lower component
        // id fires first regardless of which `schedule` call ran first.
        // This is the partition-independent tiebreak: a shard that never
        // saw the other component's push still agrees on the order.
        struct One {
            name: String,
            log: Rc<RefCell<Vec<String>>>,
        }
        impl Component for One {
            fn name(&self) -> &str {
                &self.name
            }
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(10, Event::Timer { kind: 0, data: 0 });
            }
            fn handle(&mut self, _ctx: &mut Ctx<'_>, _ev: Event) {
                self.log.borrow_mut().push(self.name.clone());
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        // "b" is added first (lower id) — init order follows component id,
        // but even if "z" had scheduled first the order would hold.
        sim.add(Box::new(One { name: "b".into(), log: log.clone() }));
        sim.add(Box::new(One { name: "z".into(), log: log.clone() }));
        sim.run_to_quiesce();
        assert_eq!(*log.borrow(), vec!["b".to_owned(), "z".to_owned()]);
    }

    #[test]
    #[should_panic(expected = "re-entrant dispatch")]
    fn synchronous_call_cycles_panic() {
        struct Echo {
            name: String,
        }
        impl Component for Echo {
            fn name(&self) -> &str {
                &self.name
            }
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                if self.name == "e0" {
                    ctx.schedule(0, Event::Timer { kind: 0, data: 0 });
                }
            }
            fn handle(&mut self, ctx: &mut Ctx<'_>, _: Event) {
                let id = ctx.alloc_packet_id();
                let pkt = Packet::request(id, Command::ReadReq, 0, 4, ctx.self_id());
                let _ = ctx.try_send_request(PortId(0), pkt);
            }
            fn recv_request(&mut self, ctx: &mut Ctx<'_>, _p: PortId, pkt: Packet) -> RecvResult {
                // Illegal: synchronously answer toward the caller.
                let _ = ctx.try_send_response(PortId(0), pkt.into_read_response(vec![0; 4]));
                RecvResult::Accepted
            }
        }
        let mut sim = Simulation::new();
        let a = sim.add(Box::new(Echo { name: "e0".into() }));
        let b = sim.add(Box::new(Echo { name: "e1".into() }));
        sim.connect((a, PortId(0)), (b, PortId(0)));
        sim.run_to_quiesce();
    }
}
