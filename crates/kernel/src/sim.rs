//! The event-driven simulation driver.
//!
//! [`Simulation`] owns every [`Component`], the global event queue and the
//! port wiring. Packet delivery is synchronous (gem5-style): the receiver's
//! handler runs nested inside the sender's `try_send_*` call and returns an
//! accept/refuse outcome immediately. Timers and retry notifications are
//! queued and fire in strict `(tick, insertion order)` order, so execution
//! is fully deterministic.
//!
//! ```
//! use pcisim_kernel::sim::Simulation;
//! let mut sim = Simulation::new();
//! assert_eq!(sim.now(), 0);
//! ```

use std::cell::{Cell, RefCell};

use crate::calendar::{CalendarQueue, EventHandle};
use crate::component::{Component, ComponentId, Event, PortId, RecvResult};
use crate::packet::{Packet, PacketId};
use crate::snapshot::{
    fnv1a, SnapshotError, StateReader, StateWriter, FNV_OFFSET, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
use crate::stats::{StatsBuilder, StatsSnapshot};
use crate::tick::Tick;
use crate::trace::{TraceCategory, TraceEvent, TraceKind, TraceLog, Tracer};

/// Why [`Simulation::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// No events remain; the system is quiescent.
    QueueEmpty,
    /// Simulated time reached the requested limit.
    TimeLimit,
    /// A component called [`Ctx::stop`].
    Stopped,
    /// The event-count safety valve tripped (likely livelock).
    EventLimit,
}

#[derive(Debug)]
enum ActionBody {
    Event(Event),
    Retry { port: PortId },
}

/// A queued dispatch: which component to call and with what. Ordering
/// (tick, insertion sequence) is owned by the [`CalendarQueue`].
struct Action {
    target: ComponentId,
    body: ActionBody,
}

type Endpoint = (ComponentId, PortId);

/// Cap on recycled payload buffers held by the pool; beyond this, returned
/// buffers are simply dropped. Bounds steady-state memory while covering
/// every in-flight DMA burst the experiments produce.
const PAYLOAD_POOL_CAP: usize = 256;

/// Shared mutable simulation state reachable from nested dispatches.
struct Shared {
    arena: Vec<RefCell<Option<Box<dyn Component>>>>,
    names: Vec<String>,
    /// Dense routing table: `conns[component][port]` is the wired peer.
    /// Built at `connect` time so `try_send_*` is two array loads, no hash.
    conns: Vec<Vec<Option<Endpoint>>>,
    queue: RefCell<CalendarQueue<Action>>,
    now: Cell<Tick>,
    next_packet_id: Cell<u64>,
    stop_requested: Cell<bool>,
    events_processed: Cell<u64>,
    trace: Cell<bool>,
    tracer: Tracer,
    /// Free list of payload buffers recycled across DMA bursts.
    payload_pool: RefCell<Vec<Vec<u8>>>,
}

impl Shared {
    #[inline]
    fn push(&self, tick: Tick, target: ComponentId, body: ActionBody) -> EventHandle {
        self.queue.borrow_mut().push(tick, Action { target, body })
    }

    #[inline]
    fn lookup_peer(&self, ep: Endpoint) -> Option<Endpoint> {
        self.conns.get(ep.0 .0 as usize)?.get(ep.1 .0 as usize).copied().flatten()
    }

    fn with_component<R>(
        &self,
        id: ComponentId,
        f: impl FnOnce(&mut dyn Component, &mut Ctx<'_>) -> R,
    ) -> R {
        let cell = &self.arena[id.0 as usize];
        let mut slot = cell.try_borrow_mut().unwrap_or_else(|_| {
            panic!(
                "re-entrant dispatch into {:?}: a receiver must not synchronously \
                 send back toward its caller; schedule a zero-delay event instead",
                self.names[id.0 as usize]
            )
        });
        let comp = slot.as_mut().expect("component slot empty");
        let mut ctx = Ctx { shared: self, self_id: id };
        f(comp.as_mut(), &mut ctx)
    }
}

/// The execution context handed to every component callback.
///
/// All interaction with the rest of the system goes through this type:
/// scheduling timers, sending packets over connected ports, granting
/// retries, allocating packet ids, and stopping the simulation.
pub struct Ctx<'a> {
    shared: &'a Shared,
    self_id: ComponentId,
}

impl Ctx<'_> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Tick {
        self.shared.now.get()
    }

    /// The id of the component being called.
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Allocates a fresh, globally unique packet id.
    #[inline]
    pub fn alloc_packet_id(&mut self) -> PacketId {
        let id = self.shared.next_packet_id.get();
        self.shared.next_packet_id.set(id + 1);
        PacketId(id)
    }

    /// Hands out a zeroed payload buffer of `len` bytes, reusing a
    /// recycled allocation when one is available. Pair with
    /// [`Ctx::recycle_payload`] at the point the payload is consumed.
    #[inline]
    pub fn alloc_payload(&mut self, len: usize) -> Vec<u8> {
        let mut buf = self.shared.payload_pool.borrow_mut().pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Returns a payload buffer to the free list for reuse by a later
    /// [`Ctx::alloc_payload`]. Dropping the buffer instead is always safe —
    /// recycling is purely an allocation-traffic optimisation.
    #[inline]
    pub fn recycle_payload(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        let mut pool = self.shared.payload_pool.borrow_mut();
        if pool.len() < PAYLOAD_POOL_CAP {
            pool.push(buf);
        }
    }

    /// Clones `pkt` with its payload copied into a pooled buffer instead of
    /// a fresh allocation — the data-link layer uses this to put a wire copy
    /// of a replay-buffer TLP on the link without per-transmission mallocs.
    #[inline]
    pub fn clone_packet(&mut self, pkt: &Packet) -> Packet {
        let payload = pkt.payload().map(|src| {
            let mut buf = self.shared.payload_pool.borrow_mut().pop().unwrap_or_default();
            buf.clear();
            buf.extend_from_slice(src);
            buf
        });
        pkt.clone_with_payload(payload)
    }

    /// Recycles every owned buffer of a packet that has reached the end of
    /// its life (delivered, acknowledged, or absorbed), then drops it.
    #[inline]
    pub fn recycle_packet(&mut self, mut pkt: Packet) {
        if let Some(buf) = pkt.take_payload() {
            self.recycle_payload(buf);
        }
    }

    #[inline]
    fn peer(&self, port: PortId) -> Endpoint {
        self.shared
            .lookup_peer((self.self_id, port))
            .unwrap_or_else(|| panic!("{} {port} is not connected", self.self_id))
    }

    /// Whether `port` is wired to a peer.
    #[inline]
    pub fn is_connected(&self, port: PortId) -> bool {
        self.shared.lookup_peer((self.self_id, port)).is_some()
    }

    /// Schedules `ev` for delivery to this component after `delay` ticks.
    /// The returned handle can cancel the event with
    /// [`Ctx::cancel_scheduled`] any time before it fires; callers with no
    /// cancellation need simply ignore it.
    #[inline]
    pub fn schedule(&mut self, delay: Tick, ev: Event) -> EventHandle {
        self.shared.push(self.now() + delay, self.self_id, ActionBody::Event(ev))
    }

    /// Cancels an event previously scheduled by this component, returning
    /// it so the caller can reclaim any packet it carries. `None` when the
    /// event has already fired or been cancelled (stale handle — always
    /// safe). A cancelled event is skipped silently by the dispatch loop:
    /// it never advances time, never counts as processed, and never
    /// perturbs the order of live events — which is what lets per-request
    /// timeout timers be armed pervasively without disturbing quiesce
    /// times on the happy path.
    pub fn cancel_scheduled(&mut self, handle: EventHandle) -> Option<Event> {
        match self.shared.queue.borrow_mut().cancel(handle) {
            Some(Action { body: ActionBody::Event(ev), .. }) => Some(ev),
            Some(_) => None, // retries are not cancellable; treat as stale
            None => None,
        }
    }

    /// Sends a request packet out of `port`. The peer's
    /// [`Component::recv_request`] runs immediately.
    ///
    /// # Errors
    ///
    /// Returns `Err(pkt)` when the peer refused the packet; the caller must
    /// hold it and resend after [`Component::retry_granted`].
    ///
    /// # Panics
    ///
    /// Panics if `port` is not connected or `pkt` is not a request.
    pub fn try_send_request(&mut self, port: PortId, pkt: Packet) -> Result<(), Packet> {
        assert!(pkt.is_request(), "try_send_request with {:?}", pkt.cmd());
        let (peer, peer_port) = self.peer(port);
        self.trace(|| format!("-> req {} to {peer}/{peer_port}", pkt));
        // Custody tracepoint: snapshot the identity fields before the packet
        // moves into the receiver, record only on an accepted delivery.
        let custody = self.shared.tracer.wants(TraceCategory::Hop).then(|| (pkt.id(), pkt.cmd()));
        match self.shared.with_component(peer, |c, ctx| c.recv_request(ctx, peer_port, pkt)) {
            RecvResult::Accepted => {
                if let Some((id, cmd)) = custody {
                    self.record_hop(peer, peer_port, TraceKind::HopRequest, id, cmd);
                }
                Ok(())
            }
            RecvResult::Refused(pkt) => {
                if custody.is_some() {
                    self.record_hop(peer, peer_port, TraceKind::HopRefused, pkt.id(), pkt.cmd());
                }
                Err(pkt)
            }
        }
    }

    /// Sends a response packet out of `port`; same contract as
    /// [`Ctx::try_send_request`].
    ///
    /// # Errors
    ///
    /// Returns `Err(pkt)` when the peer refused the packet.
    ///
    /// # Panics
    ///
    /// Panics if `port` is not connected or `pkt` is not a response.
    pub fn try_send_response(&mut self, port: PortId, pkt: Packet) -> Result<(), Packet> {
        assert!(pkt.is_response(), "try_send_response with {:?}", pkt.cmd());
        let (peer, peer_port) = self.peer(port);
        self.trace(|| format!("-> resp {} to {peer}/{peer_port}", pkt));
        let custody = self.shared.tracer.wants(TraceCategory::Hop).then(|| (pkt.id(), pkt.cmd()));
        match self.shared.with_component(peer, |c, ctx| c.recv_response(ctx, peer_port, pkt)) {
            RecvResult::Accepted => {
                if let Some((id, cmd)) = custody {
                    self.record_hop(peer, peer_port, TraceKind::HopResponse, id, cmd);
                }
                Ok(())
            }
            RecvResult::Refused(pkt) => {
                if custody.is_some() {
                    self.record_hop(peer, peer_port, TraceKind::HopRefused, pkt.id(), pkt.cmd());
                }
                Err(pkt)
            }
        }
    }

    fn record_hop(
        &self,
        peer: ComponentId,
        peer_port: PortId,
        kind: TraceKind,
        id: PacketId,
        cmd: crate::packet::Command,
    ) {
        self.shared.tracer.record(TraceEvent {
            at: self.now(),
            component: peer,
            category: TraceCategory::Hop,
            kind,
            packet: Some(id),
            cmd: Some(cmd),
            arg: u64::from(peer_port.0),
        });
    }

    /// Notifies the peer of `port` that buffer space freed up. Delivered
    /// from the event queue (never nested), at the current tick.
    #[inline]
    pub fn send_retry(&mut self, port: PortId) {
        let (peer, peer_port) = self.peer(port);
        self.shared.push(self.now(), peer, ActionBody::Retry { port: peer_port });
    }

    /// Requests the simulation loop to stop after the current event.
    #[inline]
    pub fn stop(&mut self) {
        self.shared.stop_requested.set(true);
    }

    /// Emits a trace line when tracing is enabled; the closure only runs
    /// when needed.
    #[inline]
    pub fn trace(&self, f: impl FnOnce() -> String) {
        if self.shared.trace.get() {
            eprintln!(
                "[{:>12}] {} {}",
                self.now(),
                self.shared.names[self.self_id.0 as usize],
                f()
            );
        }
    }

    /// Whether structured tracing is enabled for `cat`. Tracepoints should
    /// gate any event construction on this; when disabled it is a single
    /// flag load.
    #[inline]
    pub fn tracing(&self, cat: TraceCategory) -> bool {
        self.shared.tracer.wants(cat)
    }

    /// Records a structured [`TraceEvent`] attributed to this component at
    /// the current tick. No-op unless `cat` is enabled — but callers on hot
    /// paths should still check [`Ctx::tracing`] first to skip argument
    /// evaluation.
    #[inline]
    pub fn emit(
        &self,
        cat: TraceCategory,
        kind: TraceKind,
        packet: Option<PacketId>,
        cmd: Option<crate::packet::Command>,
        arg: u64,
    ) {
        if self.shared.tracer.wants(cat) {
            self.shared.tracer.record(TraceEvent {
                at: self.now(),
                component: self.self_id,
                category: cat,
                kind,
                packet,
                cmd,
                arg,
            });
        }
    }
}

/// Owns components, wiring and the event queue; drives simulated time.
pub struct Simulation {
    shared: Shared,
    initialized: bool,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// Creates an empty simulation at tick 0.
    pub fn new() -> Self {
        Self {
            shared: Shared {
                arena: Vec::new(),
                names: Vec::new(),
                conns: Vec::new(),
                queue: RefCell::new(CalendarQueue::new()),
                now: Cell::new(0),
                next_packet_id: Cell::new(0),
                stop_requested: Cell::new(false),
                events_processed: Cell::new(0),
                trace: Cell::new(false),
                tracer: Tracer::new(),
                payload_pool: RefCell::new(Vec::new()),
            },
            initialized: false,
        }
    }

    /// Enables or disables per-event tracing to stderr.
    pub fn set_trace(&mut self, on: bool) {
        self.shared.trace.set(on);
    }

    /// Enables structured tracing for the categories in `mask` (a bit-or
    /// of [`TraceCategory::bit`] values, or [`TraceCategory::ALL`]).
    /// Passing `0` disables tracing, which is the default.
    pub fn set_trace_mask(&mut self, mask: u32) {
        self.shared.tracer.set_mask(mask);
    }

    /// The current structured-trace category mask.
    pub fn trace_mask(&self) -> u32 {
        self.shared.tracer.mask()
    }

    /// Caps the structured-trace ring buffer at `capacity` events.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.shared.tracer.set_capacity(capacity);
    }

    /// Drains the structured-trace ring into a self-contained [`TraceLog`]
    /// (events plus component names) ready for export.
    pub fn take_trace(&mut self) -> TraceLog {
        TraceLog {
            events: self.shared.tracer.drain(),
            names: self.shared.names.clone(),
            dropped: self.shared.tracer.dropped(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Tick {
        self.shared.now.get()
    }

    /// Number of queued actions dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.shared.events_processed.get()
    }

    /// Number of events still queued.
    pub fn pending_events(&self) -> usize {
        self.shared.queue.borrow().len()
    }

    /// Adds a component and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if another component already uses the same name or the
    /// simulation has started.
    pub fn add(&mut self, component: Box<dyn Component>) -> ComponentId {
        let name = component.name().to_owned();
        assert!(!self.shared.names.contains(&name), "duplicate component name {name:?}");
        assert!(!self.initialized, "cannot add components after the simulation started");
        let id = ComponentId(self.shared.arena.len() as u32);
        self.shared.arena.push(RefCell::new(Some(component)));
        self.shared.names.push(name);
        id
    }

    /// Name of component `id`.
    pub fn name_of(&self, id: ComponentId) -> &str {
        &self.shared.names[id.0 as usize]
    }

    /// Wires two ports together bidirectionally: requests flow either way,
    /// responses travel back along the same pair.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is already connected or if the two
    /// endpoints are the same.
    pub fn connect(&mut self, a: (ComponentId, PortId), b: (ComponentId, PortId)) {
        assert_ne!(a, b, "cannot connect a port to itself");
        assert!(self.shared.lookup_peer(a).is_none(), "{} {} already connected", a.0, a.1);
        assert!(self.shared.lookup_peer(b).is_none(), "{} {} already connected", b.0, b.1);
        for &((comp, port), peer) in &[(a, b), (b, a)] {
            let ci = comp.0 as usize;
            if self.shared.conns.len() <= ci {
                self.shared.conns.resize_with(ci + 1, Vec::new);
            }
            let ports = &mut self.shared.conns[ci];
            let pi = port.0 as usize;
            if ports.len() <= pi {
                ports.resize(pi + 1, None);
            }
            ports[pi] = Some(peer);
        }
    }

    /// The endpoint wired to `ep`, if any.
    pub fn peer_of(&self, ep: (ComponentId, PortId)) -> Option<(ComponentId, PortId)> {
        self.shared.lookup_peer(ep)
    }

    fn ensure_init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for i in 0..self.shared.arena.len() {
            self.shared.with_component(ComponentId(i as u32), |c, ctx| c.init(ctx));
        }
    }

    /// Runs until the queue drains, `until` is reached, a component stops
    /// the simulation, or `max_events` dispatches have happened.
    pub fn run(&mut self, until: Tick, max_events: u64) -> RunOutcome {
        self.ensure_init();
        let budget_end = self.events_processed().saturating_add(max_events);
        loop {
            if self.shared.stop_requested.get() {
                self.shared.stop_requested.set(false);
                return RunOutcome::Stopped;
            }
            // Budget and time limits are checked before the pop, so the head
            // action stays queued (with its original sequence stamp) and the
            // caller can resume exactly where it left off. The fused
            // peek-and-pop settles the queue once per event.
            let (tick, action) = {
                let mut queue = self.shared.queue.borrow_mut();
                if self.events_processed() >= budget_end {
                    match queue.next_tick() {
                        None => return RunOutcome::QueueEmpty,
                        Some(tick) if tick > until => {
                            self.shared.now.set(until);
                            return RunOutcome::TimeLimit;
                        }
                        Some(_) => return RunOutcome::EventLimit,
                    }
                }
                match queue.pop_if_at_most(until) {
                    Ok(None) => return RunOutcome::QueueEmpty,
                    Err(_head) => {
                        self.shared.now.set(until);
                        return RunOutcome::TimeLimit;
                    }
                    Ok(Some(popped)) => popped,
                }
            };
            debug_assert!(tick >= self.now(), "time went backwards");
            self.shared.now.set(tick);
            self.shared.events_processed.set(self.events_processed() + 1);
            self.shared.with_component(action.target, |c, ctx| match action.body {
                ActionBody::Event(ev) => c.handle(ctx, ev),
                ActionBody::Retry { port } => c.retry_granted(ctx, port),
            });
        }
    }

    /// Runs until the event queue is empty or a component stops the run.
    pub fn run_to_quiesce(&mut self) -> RunOutcome {
        self.run(Tick::MAX, u64::MAX)
    }

    /// Value the next [`Ctx::alloc_packet_id`] will hand out. Exposed so
    /// tests can audit PacketId continuity across checkpoint/restore.
    pub fn next_packet_id(&self) -> u64 {
        self.shared.next_packet_id.get()
    }

    /// FNV-1a fingerprint of the component tree's *shape*: component names
    /// (in id order) and the complete port wiring. Configuration values are
    /// deliberately excluded, so a checkpoint taken on one tree restores
    /// into an identically shaped tree built with different parameters —
    /// which is what makes warm-started parameter sweeps possible.
    pub fn topology_fingerprint(&self) -> u64 {
        let mut w = StateWriter::new();
        w.usize(self.shared.names.len());
        for name in &self.shared.names {
            w.str(name);
        }
        w.usize(self.shared.conns.len());
        for row in &self.shared.conns {
            w.usize(row.len());
            for ep in row {
                match ep {
                    Some((c, p)) => {
                        w.bool(true);
                        w.u32(c.0);
                        w.u16(p.0);
                    }
                    None => w.bool(false),
                }
            }
        }
        fnv1a(FNV_OFFSET, &w.into_bytes())
    }

    /// Serializes the complete dynamic state — simulated time, the event
    /// queue (armed timers and all, with slab slots preserved so
    /// outstanding [`EventHandle`]s stay valid), the PacketId allocator,
    /// the trace ring, and every component's
    /// [`Component::save_state`] section — into a self-contained,
    /// checksummed checkpoint. Runs `init` first if the simulation has
    /// never run, so a restored simulation never re-runs it.
    pub fn checkpoint(&mut self) -> Vec<u8> {
        self.ensure_init();
        let mut body = StateWriter::new();
        body.u64(self.topology_fingerprint());
        body.u64(self.now());
        body.u64(self.shared.next_packet_id.get());
        body.u64(self.shared.events_processed.get());
        self.shared.queue.borrow().save(&mut body, encode_action);
        self.shared.tracer.save_ring(&mut body);
        body.usize(self.shared.arena.len());
        for (i, cell) in self.shared.arena.iter().enumerate() {
            let slot = cell.borrow();
            let comp = slot.as_ref().expect("component missing during checkpoint");
            body.str(&self.shared.names[i]);
            let mut section = StateWriter::new();
            comp.save_state(&mut section);
            body.bytes(&section.into_bytes());
        }
        let body = body.into_bytes();
        let mut out = Vec::with_capacity(body.len() + 16);
        out.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a(FNV_OFFSET, &body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Applies a [`Simulation::checkpoint`] to this simulation, which must
    /// be a freshly built tree with the same topology fingerprint (same
    /// component names and wiring; configuration may differ). Afterwards
    /// the simulation continues bit-for-bit like the one that was saved:
    /// same event order, same packet ids, same statistics.
    ///
    /// # Errors
    ///
    /// Any malformed, truncated, corrupted, version-skewed or
    /// wrong-topology input yields a typed [`SnapshotError`]; decoding
    /// never panics. On error the simulation may be partially overwritten
    /// and must be discarded.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut header = StateReader::new(bytes);
        let magic = header.u32()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic { found: magic });
        }
        let version = header.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let stored = header.u64()?;
        let body = &bytes[16..];
        let computed = fnv1a(FNV_OFFSET, body);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let mut r = StateReader::new(body);
        let fingerprint = r.u64()?;
        let expected = self.topology_fingerprint();
        if fingerprint != expected {
            return Err(SnapshotError::TopologyMismatch { stored: fingerprint, expected });
        }
        let now = r.u64()?;
        let next_packet_id = r.u64()?;
        let events_processed = r.u64()?;
        let n_components = self.shared.arena.len() as u32;
        let queue = CalendarQueue::restore(now, &mut r, |r| {
            decode_action(r, n_components, next_packet_id)
        })?;
        self.shared.tracer.restore_ring(&mut r)?;
        let count = r.usize()?;
        if count != self.shared.arena.len() {
            return Err(SnapshotError::Corrupt(format!(
                "checkpoint has {count} components, tree has {}",
                self.shared.arena.len()
            )));
        }
        for (i, cell) in self.shared.arena.iter().enumerate() {
            let name = r.str()?;
            if name != self.shared.names[i] {
                return Err(SnapshotError::Corrupt(format!(
                    "section {name:?} does not match component {:?}",
                    self.shared.names[i]
                )));
            }
            let section = r.bytes()?;
            let mut sr = StateReader::new(section);
            let mut slot = cell.borrow_mut();
            let comp = slot.as_mut().expect("component slot empty");
            comp.restore_state(&mut sr)?;
            sr.finish(&name)?;
        }
        r.finish("simulation")?;
        *self.shared.queue.borrow_mut() = queue;
        self.shared.now.set(now);
        self.shared.next_packet_id.set(next_packet_id);
        self.shared.events_processed.set(events_processed);
        self.shared.stop_requested.set(false);
        // `init` already ran in the simulation that produced the
        // checkpoint; it must never run again here.
        self.initialized = true;
        Ok(())
    }

    /// Collects statistics from every component.
    pub fn stats(&self) -> StatsSnapshot {
        let mut all = std::collections::BTreeMap::new();
        for (i, cell) in self.shared.arena.iter().enumerate() {
            let slot = cell.borrow();
            let comp = slot.as_ref().expect("component missing during stats");
            let mut b = StatsBuilder::new(self.shared.names[i].clone());
            comp.report_stats(&mut b);
            all.extend(b.into_values());
        }
        StatsSnapshot::from_values(all)
    }
}

fn encode_action(w: &mut StateWriter, a: &Action) {
    w.u32(a.target.0);
    match &a.body {
        ActionBody::Event(Event::Timer { kind, data }) => {
            w.u8(0);
            w.u32(*kind);
            w.u64(*data);
        }
        ActionBody::Event(Event::DelayedPacket { tag, pkt }) => {
            w.u8(1);
            w.u32(*tag);
            pkt.encode(w);
        }
        ActionBody::Retry { port } => {
            w.u8(2);
            w.u16(port.0);
        }
    }
}

fn decode_action(
    r: &mut StateReader<'_>,
    n_components: u32,
    next_packet_id: u64,
) -> Result<Action, SnapshotError> {
    let target = r.u32()?;
    if target >= n_components {
        return Err(SnapshotError::Corrupt(format!("event target c{target} out of range")));
    }
    let body = match r.u8()? {
        0 => ActionBody::Event(Event::Timer { kind: r.u32()?, data: r.u64()? }),
        1 => {
            let tag = r.u32()?;
            let pkt = Packet::decode(r)?;
            // Continuity audit: a queued packet must predate the restored
            // allocator cursor, or future allocations would collide.
            if pkt.id().0 >= next_packet_id {
                return Err(SnapshotError::Corrupt(format!(
                    "queued {} is beyond the packet-id allocator ({next_packet_id})",
                    pkt.id()
                )));
            }
            ActionBody::Event(Event::DelayedPacket { tag, pkt })
        }
        2 => ActionBody::Retry { port: PortId(r.u16()?) },
        other => return Err(SnapshotError::Corrupt(format!("action tag {other}"))),
    };
    Ok(Action { target: ComponentId(target), body })
}

// Components that need post-run inspection share state with the harness via
// `Rc<RefCell<...>>` handles created before `Simulation::add` (see the
// `pcisim-system` workloads); the kernel deliberately offers no downcasting.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::Event;
    use crate::packet::Command;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Fires a chain of timers and records their arrival times.
    struct TimerChain {
        name: String,
        fired: Rc<RefCell<Vec<(Tick, u64)>>>,
        remaining: u64,
        period: Tick,
    }
    impl Component for TimerChain {
        fn name(&self) -> &str {
            &self.name
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(self.period, Event::Timer { kind: 0, data: self.remaining });
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            let Event::Timer { data, .. } = ev else { panic!() };
            self.fired.borrow_mut().push((ctx.now(), data));
            if data > 1 {
                ctx.schedule(self.period, Event::Timer { kind: 0, data: data - 1 });
            }
        }
    }

    #[test]
    fn timers_fire_in_order_and_queue_drains() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.add(Box::new(TimerChain {
            name: "t".into(),
            fired: fired.clone(),
            remaining: 3,
            period: 10,
        }));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(*fired.borrow(), vec![(10, 3), (20, 2), (30, 1)]);
        assert_eq!(sim.now(), 30);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn run_respects_time_limit_and_resumes() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.add(Box::new(TimerChain {
            name: "t".into(),
            fired: fired.clone(),
            remaining: 100,
            period: 10,
        }));
        assert_eq!(sim.run(25, u64::MAX), RunOutcome::TimeLimit);
        assert_eq!(fired.borrow().len(), 2);
        assert_eq!(sim.now(), 25);
        assert_eq!(sim.run(45, u64::MAX), RunOutcome::TimeLimit);
        assert_eq!(fired.borrow().len(), 4);
    }

    #[test]
    fn run_respects_event_limit_without_losing_events() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.add(Box::new(TimerChain {
            name: "t".into(),
            fired: fired.clone(),
            remaining: 10,
            period: 1,
        }));
        assert_eq!(sim.run(Tick::MAX, 5), RunOutcome::EventLimit);
        assert_eq!(sim.events_processed(), 5);
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(fired.borrow().len(), 10);
    }

    /// Sends `count` requests to its peer as fast as allowed, honouring the
    /// refusal/retry protocol.
    struct Producer {
        name: String,
        to_send: u32,
        stalled: Option<Packet>,
        acked: Rc<RefCell<u32>>,
    }
    const P_OUT: PortId = PortId(0);
    impl Producer {
        fn pump(&mut self, ctx: &mut Ctx<'_>) {
            while self.stalled.is_none() && self.to_send > 0 {
                self.to_send -= 1;
                let id = ctx.alloc_packet_id();
                let pkt = Packet::request(id, Command::ReadReq, 0x1000, 4, ctx.self_id());
                if let Err(back) = ctx.try_send_request(P_OUT, pkt) {
                    self.stalled = Some(back);
                }
            }
        }
    }
    impl Component for Producer {
        fn name(&self) -> &str {
            &self.name
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(0, Event::Timer { kind: 0, data: 0 });
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, _ev: Event) {
            self.pump(ctx);
        }
        fn recv_response(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) -> RecvResult {
            *self.acked.borrow_mut() += 1;
            RecvResult::Accepted
        }
        fn retry_granted(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
            assert_eq!(port, P_OUT);
            if let Some(pkt) = self.stalled.take() {
                if let Err(back) = ctx.try_send_request(P_OUT, pkt) {
                    self.stalled = Some(back);
                    return;
                }
            }
            self.pump(ctx);
        }
    }

    /// Accepts one request at a time; responds after a service delay, then
    /// grants a retry.
    struct Server {
        name: String,
        busy_with: Option<Packet>,
        refused: bool,
        served: Rc<RefCell<u32>>,
        delay: Tick,
    }
    const S_IN: PortId = PortId(0);
    impl Component for Server {
        fn name(&self) -> &str {
            &self.name
        }
        fn recv_request(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) -> RecvResult {
            assert_eq!(port, S_IN);
            if self.busy_with.is_some() {
                self.refused = true;
                return RecvResult::Refused(pkt);
            }
            self.busy_with = Some(pkt);
            ctx.schedule(self.delay, Event::Timer { kind: 1, data: 0 });
            RecvResult::Accepted
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, _ev: Event) {
            let pkt = self.busy_with.take().expect("service timer without packet");
            *self.served.borrow_mut() += 1;
            ctx.try_send_response(S_IN, pkt.into_read_response(vec![0; 4]))
                .expect("producer never refuses responses");
            if self.refused {
                self.refused = false;
                ctx.send_retry(S_IN);
            }
        }
    }

    #[test]
    fn request_response_with_backpressure_delivers_everything() {
        let acked = Rc::new(RefCell::new(0));
        let served = Rc::new(RefCell::new(0));
        let mut sim = Simulation::new();
        let p = sim.add(Box::new(Producer {
            name: "prod".into(),
            to_send: 10,
            stalled: None,
            acked: acked.clone(),
        }));
        let s = sim.add(Box::new(Server {
            name: "serv".into(),
            busy_with: None,
            refused: false,
            served: served.clone(),
            delay: 100,
        }));
        sim.connect((p, P_OUT), (s, S_IN));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(*acked.borrow(), 10);
        assert_eq!(*served.borrow(), 10);
        // One packet is in service at a time, 100 ticks each.
        assert_eq!(sim.now(), 1000);
    }

    #[test]
    fn cancelled_timer_never_fires_and_does_not_stretch_the_run() {
        /// Arms a short work timer and a long watchdog; cancels the
        /// watchdog when the work timer fires.
        struct Guarded {
            fired: Rc<RefCell<Vec<(Tick, u32)>>>,
            watchdog: Option<crate::calendar::EventHandle>,
        }
        impl Component for Guarded {
            fn name(&self) -> &str {
                "guarded"
            }
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                self.watchdog = Some(ctx.schedule(1_000_000, Event::Timer { kind: 9, data: 0 }));
                ctx.schedule(50, Event::Timer { kind: 1, data: 0 });
            }
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                let Event::Timer { kind, .. } = ev else { panic!() };
                self.fired.borrow_mut().push((ctx.now(), kind));
                if kind == 1 {
                    let cancelled = ctx.cancel_scheduled(self.watchdog.take().unwrap());
                    assert!(matches!(cancelled, Some(Event::Timer { kind: 9, .. })));
                }
            }
        }
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.add(Box::new(Guarded { fired: fired.clone(), watchdog: None }));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(*fired.borrow(), vec![(50, 1)], "watchdog must never fire");
        assert_eq!(sim.now(), 50, "cancelled timer must not advance quiesce time");
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn stop_request_halts_the_loop_and_can_resume() {
        struct Stopper;
        impl Component for Stopper {
            fn name(&self) -> &str {
                "stopper"
            }
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(5, Event::Timer { kind: 0, data: 0 });
                ctx.schedule(10, Event::Timer { kind: 0, data: 0 });
            }
            fn handle(&mut self, ctx: &mut Ctx<'_>, _: Event) {
                ctx.stop();
            }
        }
        let mut sim = Simulation::new();
        sim.add(Box::new(Stopper));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::Stopped);
        assert_eq!(sim.now(), 5);
        assert_eq!(sim.run_to_quiesce(), RunOutcome::Stopped);
        assert_eq!(sim.now(), 10);
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
    }

    struct Stub(&'static str);
    impl Component for Stub {
        fn name(&self) -> &str {
            self.0
        }
    }

    #[test]
    #[should_panic(expected = "duplicate component name")]
    fn duplicate_names_are_rejected() {
        let mut sim = Simulation::new();
        sim.add(Box::new(Stub("x")));
        sim.add(Box::new(Stub("x")));
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_is_rejected() {
        let mut sim = Simulation::new();
        let a = sim.add(Box::new(Stub("a")));
        let b = sim.add(Box::new(Stub("b")));
        let c = sim.add(Box::new(Stub("c")));
        sim.connect((a, PortId(0)), (b, PortId(0)));
        sim.connect((a, PortId(0)), (c, PortId(0)));
    }

    #[test]
    fn peer_lookup_is_symmetric() {
        let mut sim = Simulation::new();
        let a = sim.add(Box::new(Stub("a")));
        let b = sim.add(Box::new(Stub("b")));
        sim.connect((a, PortId(3)), (b, PortId(7)));
        assert_eq!(sim.peer_of((a, PortId(3))), Some((b, PortId(7))));
        assert_eq!(sim.peer_of((b, PortId(7))), Some((a, PortId(3))));
        assert_eq!(sim.peer_of((a, PortId(0))), None);
        assert_eq!(sim.name_of(a), "a");
    }

    #[test]
    fn same_tick_events_fire_in_insertion_order() {
        struct Recorder {
            name: String,
            log: Rc<RefCell<Vec<u64>>>,
        }
        impl Component for Recorder {
            fn name(&self) -> &str {
                &self.name
            }
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                for i in 0..5 {
                    ctx.schedule(10, Event::Timer { kind: 0, data: i });
                }
            }
            fn handle(&mut self, _ctx: &mut Ctx<'_>, ev: Event) {
                let Event::Timer { data, .. } = ev else { panic!() };
                self.log.borrow_mut().push(data);
            }
        }
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.add(Box::new(Recorder { name: "r".into(), log: log.clone() }));
        sim.run_to_quiesce();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "re-entrant dispatch")]
    fn synchronous_call_cycles_panic() {
        struct Echo {
            name: String,
        }
        impl Component for Echo {
            fn name(&self) -> &str {
                &self.name
            }
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                if self.name == "e0" {
                    ctx.schedule(0, Event::Timer { kind: 0, data: 0 });
                }
            }
            fn handle(&mut self, ctx: &mut Ctx<'_>, _: Event) {
                let id = ctx.alloc_packet_id();
                let pkt = Packet::request(id, Command::ReadReq, 0, 4, ctx.self_id());
                let _ = ctx.try_send_request(PortId(0), pkt);
            }
            fn recv_request(&mut self, ctx: &mut Ctx<'_>, _p: PortId, pkt: Packet) -> RecvResult {
                // Illegal: synchronously answer toward the caller.
                let _ = ctx.try_send_response(PortId(0), pkt.into_read_response(vec![0; 4]));
                RecvResult::Accepted
            }
        }
        let mut sim = Simulation::new();
        let a = sim.add(Box::new(Echo { name: "e0".into() }));
        let b = sim.add(Box::new(Echo { name: "e1".into() }));
        sim.connect((a, PortId(0)), (b, PortId(0)));
        sim.run_to_quiesce();
    }
}
