//! Deterministic checkpoint/restore: the versioned state codec.
//!
//! A checkpoint captures the *dynamic* state of a simulation — queued
//! events, link replay buffers, router windows, device registers — but not
//! its *configuration* (latencies, widths, buffer capacities). Restore
//! therefore targets a freshly built, identically shaped tree: the builder
//! recreates every component with its (possibly different) configuration,
//! and [`restore_state`](Snapshot::restore_state) overwrites just the parts
//! that evolve with simulated time. That split is what makes warm-started
//! parameter sweeps sound: one warmed-up snapshot forks into many sweep
//! points that differ only in configuration (gem5 restores checkpoints
//! "with a different CPU model" for the same reason).
//!
//! The codec is little-endian throughout, length-prefixed where variable,
//! and deliberately dumb: no compression, no schema evolution beyond a
//! whole-file version number. Every multi-byte read is bounds-checked and
//! every error is a typed [`SnapshotError`] — corrupt or truncated input
//! must never panic.
//!
//! File layout (see DESIGN.md §12 for the full invariant catalogue):
//!
//! ```text
//! offset  size  field
//! 0       4     magic "PCSN"
//! 4       4     format version (little-endian u32)
//! 8       8     FNV-1a checksum of everything after this field
//! 16      ...   body: topology fingerprint, kernel state, per-component
//!               length-prefixed sections
//! ```

use std::fmt;

/// Magic number opening every checkpoint: `PCSN` ("PCi-sim SNapshot").
pub const SNAPSHOT_MAGIC: u32 = u32::from_le_bytes(*b"PCSN");

/// Current checkpoint format version. Bump on any layout change; old
/// files are rejected with [`SnapshotError::VersionMismatch`].
pub const SNAPSHOT_VERSION: u32 = 2;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Folds `bytes` into an FNV-1a hash (same parameters the determinism
/// suite uses for stats fingerprints).
pub fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Why a checkpoint could not be decoded or applied. Every failure mode
/// of a hostile input maps to a variant here; decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ended before a field could be read in full.
    Truncated {
        /// Bytes the pending read needed.
        needed: u64,
        /// Bytes actually remaining.
        available: u64,
    },
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic {
        /// The four bytes found instead, as a little-endian u32.
        found: u32,
    },
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// Version recorded in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The body does not hash to the checksum recorded in the header
    /// (bit rot, truncation past the header, or a corrupted write).
    ChecksumMismatch {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum computed over the body.
        computed: u64,
    },
    /// The checkpoint was taken on a differently shaped component tree
    /// and cannot be applied to this one.
    TopologyMismatch {
        /// Fingerprint recorded in the checkpoint.
        stored: u64,
        /// Fingerprint of the tree being restored into.
        expected: u64,
    },
    /// A component section was not consumed exactly: the restoring
    /// component read fewer bytes than its saving counterpart wrote.
    TrailingBytes {
        /// Name of the section (component) with leftover bytes.
        section: String,
        /// How many bytes were left unread.
        remaining: u64,
    },
    /// A decoded value is structurally impossible (bad discriminant,
    /// out-of-range index, inconsistent length).
    Corrupt(String),
    /// Reading or writing the checkpoint file failed.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, available } => {
                write!(f, "checkpoint truncated: needed {needed} bytes, {available} available")
            }
            SnapshotError::BadMagic { found } => {
                write!(f, "not a checkpoint file (magic {found:#010x})")
            }
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "checkpoint format version {found} (this build reads {expected})")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: header {stored:#018x}, body hashes to {computed:#018x}"
                )
            }
            SnapshotError::TopologyMismatch { stored, expected } => write!(
                f,
                "topology fingerprint mismatch: checkpoint {stored:#018x}, tree {expected:#018x}"
            ),
            SnapshotError::TrailingBytes { section, remaining } => {
                write!(f, "section {section:?} left {remaining} bytes unread")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            SnapshotError::Io(what) => write!(f, "checkpoint i/o failed: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serializes state into the little-endian checkpoint codec.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends already-encoded bytes verbatim (no length prefix).
    pub(crate) fn append_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Writes a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a usize as a u64 (the codec is 64-bit regardless of host).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes an f64 as its raw IEEE-754 bit pattern, so NaNs and signed
    /// zeros round-trip bit-exactly.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes an optional u8 (presence byte + value).
    pub fn opt_u8(&mut self, v: Option<u8>) {
        match v {
            Some(v) => {
                self.bool(true);
                self.u8(v);
            }
            None => self.bool(false),
        }
    }

    /// Writes an optional u64 (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.bool(true);
                self.u64(v);
            }
            None => self.bool(false),
        }
    }

    /// Writes an optional f64 (presence byte + raw bits).
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(v) => {
                self.bool(true);
                self.f64(v);
            }
            None => self.bool(false),
        }
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Bounds-checked reader over the checkpoint codec; the mirror of
/// [`StateWriter`]. Every method fails with a typed error instead of
/// panicking when the input is short or malformed.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated {
                needed: n as u64,
                available: self.remaining() as u64,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("sized take")))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("sized take")))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("sized take")))
    }

    /// Reads a usize (stored as u64); fails on 32-bit overflow.
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Corrupt("length exceeds address space".into()))
    }

    /// Reads a bool; any byte other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!("bool byte {other:#04x}"))),
        }
    }

    /// Reads an f64 from its raw bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an optional u8.
    pub fn opt_u8(&mut self) -> Result<Option<u8>, SnapshotError> {
        Ok(if self.bool()? { Some(self.u8()?) } else { None })
    }

    /// Reads an optional u64.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }

    /// Reads an optional f64.
    pub fn opt_f64(&mut self) -> Result<Option<f64>, SnapshotError> {
        Ok(if self.bool()? { Some(self.f64()?) } else { None })
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| SnapshotError::Corrupt("string is not UTF-8".into()))
    }

    /// Asserts the reader is fully consumed, attributing leftovers to
    /// `section` (a component name) for the error message.
    pub fn finish(&self, section: &str) -> Result<(), SnapshotError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes {
                section: section.to_owned(),
                remaining: self.remaining() as u64,
            })
        }
    }
}

/// Serializable dynamic state. Every [`Component`](crate::component::Component)
/// implements this automatically (via the blanket impl below) by overriding
/// the trait's `save_state`/`restore_state` hooks; leaf state types
/// (counters, histograms, packets) expose inherent `encode`/`decode`
/// methods instead so they can nest inside component sections.
///
/// Contract: `restore_state` must consume exactly the bytes `save_state`
/// wrote, and must leave the component behaviourally identical to the one
/// that was saved — a restored simulation continues bit-for-bit like the
/// uninterrupted original (enforced by `tests/snapshot_equivalence.rs`).
pub trait Snapshot {
    /// Appends this object's dynamic state to `w`.
    fn save_state(&self, w: &mut StateWriter);

    /// Overwrites this object's dynamic state from `r`. Configuration
    /// (latencies, capacities) is untouched: it belongs to the freshly
    /// built object, not the checkpoint.
    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError>;
}

impl<T: crate::component::Component + ?Sized> Snapshot for T {
    fn save_state(&self, w: &mut StateWriter) {
        crate::component::Component::save_state(self, w);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        crate::component::Component::restore_state(self, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = StateWriter::new();
        w.u8(0xab);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(0x0123_4567_89ab_cdef);
        w.usize(42);
        w.bool(true);
        w.bool(false);
        w.f64(-0.0);
        w.f64(f64::NAN);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.usize().unwrap(), 42);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert!(r.finish("t").is_ok());
    }

    #[test]
    fn options_strings_and_bytes_round_trip() {
        let mut w = StateWriter::new();
        w.opt_u8(Some(7));
        w.opt_u8(None);
        w.opt_u64(Some(u64::MAX));
        w.opt_u64(None);
        w.opt_f64(Some(1.5));
        w.opt_f64(None);
        w.bytes(b"abc");
        w.bytes(b"");
        w.str("link0");
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.opt_u8().unwrap(), Some(7));
        assert_eq!(r.opt_u8().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(u64::MAX));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap(), Some(1.5));
        assert_eq!(r.opt_f64().unwrap(), None);
        assert_eq!(r.bytes().unwrap(), b"abc");
        assert_eq!(r.bytes().unwrap(), b"");
        assert_eq!(r.str().unwrap(), "link0");
        assert!(r.finish("t").is_ok());
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = StateWriter::new();
        w.u64(5);
        let mut bytes = w.into_bytes();
        bytes.truncate(3);
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.u64(), Err(SnapshotError::Truncated { needed: 8, available: 3 }));
    }

    #[test]
    fn oversized_length_prefix_is_truncation_not_allocation() {
        let mut w = StateWriter::new();
        w.u64(u64::MAX); // claims ~18EB of payload
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        match r.bytes() {
            Err(SnapshotError::Corrupt(_)) | Err(SnapshotError::Truncated { .. }) => {}
            other => panic!("expected typed failure, got {other:?}"),
        }
    }

    #[test]
    fn bad_bool_byte_is_corrupt() {
        let mut r = StateReader::new(&[2]);
        assert!(matches!(r.bool(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn non_utf8_string_is_corrupt() {
        let mut w = StateWriter::new();
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert!(matches!(r.str(), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn unread_bytes_are_reported_with_the_section_name() {
        let mut w = StateWriter::new();
        w.u32(1);
        let bytes = w.into_bytes();
        let r = StateReader::new(&bytes);
        assert_eq!(
            r.finish("disk0"),
            Err(SnapshotError::TrailingBytes { section: "disk0".into(), remaining: 4 })
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(FNV_OFFSET, b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn errors_render_useful_messages() {
        let cases: Vec<SnapshotError> = vec![
            SnapshotError::Truncated { needed: 8, available: 2 },
            SnapshotError::BadMagic { found: 0x1234 },
            SnapshotError::VersionMismatch { found: 9, expected: 1 },
            SnapshotError::ChecksumMismatch { stored: 1, computed: 2 },
            SnapshotError::TopologyMismatch { stored: 3, expected: 4 },
            SnapshotError::TrailingBytes { section: "x".into(), remaining: 5 },
            SnapshotError::Corrupt("bad".into()),
            SnapshotError::Io("denied".into()),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
