//! Structured event tracing with per-TLP lifecycle spans.
//!
//! The kernel's statistics ([`crate::stats`]) aggregate over a whole run;
//! this module records *individual* events so a run can be explored after
//! the fact: where a TLP spent its time, when a link replayed, how full a
//! port buffer was. Three pieces:
//!
//! * [`Tracer`] — a bounded ring buffer of typed [`TraceEvent`] records
//!   with a per-[`TraceCategory`] enable mask. When no category is
//!   enabled a tracepoint is a single relaxed flag load — effectively
//!   free — so instrumented components pay nothing in normal runs.
//! * Custody ("hop") events — the simulation kernel itself records every
//!   accepted packet delivery (see
//!   [`Ctx::try_send_request`](crate::sim::Ctx::try_send_request)), so a
//!   packet's position in the fabric is known at every instant without
//!   any component cooperation. Consecutive hops partition a request's
//!   end-to-end latency exactly, which is what makes the
//!   [latency attribution](TraceLog::attribution) sum to the measured
//!   round trip.
//! * Exporters — [`TraceLog::to_perfetto_json`] renders the Chrome
//!   trace-event format that <https://ui.perfetto.dev> loads (one track
//!   per component, duration slices per custody interval, instants for
//!   protocol events, counter tracks for buffer occupancy), and
//!   [`TraceLog::attribution`] reconstructs each request's lifecycle as a
//!   per-stage latency breakdown in the shape of the paper's Table II.
//!
//! ```
//! use pcisim_kernel::trace::{TraceCategory, Tracer};
//! let tracer = Tracer::new();
//! assert!(!tracer.wants(TraceCategory::Link)); // disabled by default
//! tracer.set_mask(TraceCategory::ALL);
//! assert!(tracer.wants(TraceCategory::Link));
//! ```

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

use crate::component::ComponentId;
use crate::packet::{Command, PacketId};
use crate::snapshot::{SnapshotError, StateReader, StateWriter};
use crate::tick::{to_ns, Tick};

/// Coarse event classes, individually enabled in the [`Tracer`] mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum TraceCategory {
    /// Custody transfers recorded by the kernel on every accepted packet
    /// delivery; the backbone of lifecycle reconstruction.
    Hop = 1 << 0,
    /// Data-link-layer events: admissions, wire transmissions, ACK/NAK,
    /// replays, drops.
    Link = 1 << 1,
    /// Root-complex/switch events: routing decisions, buffer occupancy,
    /// service completions.
    Router = 1 << 2,
    /// Host-fabric events: crossbar forwards, bridge crossings, DRAM
    /// accesses.
    Fabric = 1 << 3,
    /// Device events: DMA, doorbells, interrupts.
    Device = 1 << 4,
}

impl TraceCategory {
    /// Mask enabling every category.
    pub const ALL: u32 = (1 << 5) - 1;

    /// This category's bit in the enable mask.
    #[inline]
    pub fn bit(self) -> u32 {
        self as u32
    }

    /// Stable lowercase name (used as the Perfetto `cat` field).
    pub fn name(self) -> &'static str {
        match self {
            TraceCategory::Hop => "hop",
            TraceCategory::Link => "link",
            TraceCategory::Router => "router",
            TraceCategory::Fabric => "fabric",
            TraceCategory::Device => "device",
        }
    }

    /// Stable wire encoding for checkpoints.
    pub fn encode(self) -> u8 {
        match self {
            TraceCategory::Hop => 0,
            TraceCategory::Link => 1,
            TraceCategory::Router => 2,
            TraceCategory::Fabric => 3,
            TraceCategory::Device => 4,
        }
    }

    /// Decodes a checkpoint byte back into a category.
    pub fn decode(b: u8) -> Result<Self, SnapshotError> {
        Ok(match b {
            0 => TraceCategory::Hop,
            1 => TraceCategory::Link,
            2 => TraceCategory::Router,
            3 => TraceCategory::Fabric,
            4 => TraceCategory::Device,
            other => return Err(SnapshotError::Corrupt(format!("trace category {other}"))),
        })
    }
}

/// What a [`TraceEvent`] records. The `arg` field of the event carries
/// the kind-specific detail named in each variant's doc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A request was delivered into `component` (arg = ingress port).
    HopRequest,
    /// A response was delivered into `component` (arg = ingress port).
    HopResponse,
    /// A delivery was refused by `component` (arg = ingress port).
    HopRefused,
    /// A TLP entered a link interface's transmit queue (arg = sequence
    /// number it was assigned).
    LinkAdmit,
    /// A TLP began serializing onto the wire (arg = on-wire bytes).
    LinkTxStart,
    /// A TLP was delivered by the link receiver (arg = sequence number).
    LinkDeliver,
    /// An ACK DLLP was scheduled (arg = acknowledged sequence number).
    LinkAck,
    /// A NAK DLLP was scheduled after a corrupt arrival (arg = last good
    /// sequence number).
    LinkNak,
    /// A received NAK rewound the replay buffer (arg = TLPs queued for
    /// retransmission).
    LinkReplay,
    /// The replay timer expired (arg = TLPs queued for retransmission).
    LinkReplayTimeout,
    /// The receiver dropped a TLP (arg = sequence number; the drop reason
    /// lives in the link's statistics).
    LinkDrop,
    /// A router chose an egress for a TLP (arg = egress port).
    RouteDecision,
    /// Ingress-buffer occupancy after an admission (arg = occupancy).
    BufferOccupancy,
    /// A router finished servicing a TLP and forwarded it
    /// (arg = egress port).
    ServiceDone,
    /// A crossbar or bridge forwarded a packet (arg = egress port).
    FabricForward,
    /// DRAM serviced an access (arg = bytes).
    DramAccess,
    /// A device issued a DMA read (arg = bytes requested).
    DmaRead,
    /// A device issued a DMA write (arg = bytes written).
    DmaWrite,
    /// A doorbell/MMIO register write reached a device (arg = register
    /// offset).
    Doorbell,
    /// A device raised an interrupt (arg = interrupt message address).
    Interrupt,
    /// A virtqueue doorbell fired (arg = queue index).
    VirtqueueNotify,
    /// A descriptor chain was retired to the used ring (arg = head
    /// descriptor index).
    VirtqueueUsed,
}

impl TraceKind {
    /// Stable label (used as the Perfetto instant-event name).
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::HopRequest => "hop_req",
            TraceKind::HopResponse => "hop_resp",
            TraceKind::HopRefused => "hop_refused",
            TraceKind::LinkAdmit => "tlp_admit",
            TraceKind::LinkTxStart => "tlp_tx",
            TraceKind::LinkDeliver => "tlp_deliver",
            TraceKind::LinkAck => "ack",
            TraceKind::LinkNak => "nak",
            TraceKind::LinkReplay => "replay",
            TraceKind::LinkReplayTimeout => "replay_timeout",
            TraceKind::LinkDrop => "tlp_drop",
            TraceKind::RouteDecision => "route",
            TraceKind::BufferOccupancy => "occupancy",
            TraceKind::ServiceDone => "service_done",
            TraceKind::FabricForward => "forward",
            TraceKind::DramAccess => "dram_access",
            TraceKind::DmaRead => "dma_read",
            TraceKind::DmaWrite => "dma_write",
            TraceKind::Doorbell => "doorbell",
            TraceKind::Interrupt => "interrupt",
            TraceKind::VirtqueueNotify => "vq_notify",
            TraceKind::VirtqueueUsed => "vq_used",
        }
    }

    const ALL_KINDS: [TraceKind; 22] = [
        TraceKind::HopRequest,
        TraceKind::HopResponse,
        TraceKind::HopRefused,
        TraceKind::LinkAdmit,
        TraceKind::LinkTxStart,
        TraceKind::LinkDeliver,
        TraceKind::LinkAck,
        TraceKind::LinkNak,
        TraceKind::LinkReplay,
        TraceKind::LinkReplayTimeout,
        TraceKind::LinkDrop,
        TraceKind::RouteDecision,
        TraceKind::BufferOccupancy,
        TraceKind::ServiceDone,
        TraceKind::FabricForward,
        TraceKind::DramAccess,
        TraceKind::DmaRead,
        TraceKind::DmaWrite,
        TraceKind::Doorbell,
        TraceKind::Interrupt,
        TraceKind::VirtqueueNotify,
        TraceKind::VirtqueueUsed,
    ];

    /// Stable wire encoding for checkpoints.
    pub fn encode(self) -> u8 {
        Self::ALL_KINDS.iter().position(|&k| k == self).expect("kind in table") as u8
    }

    /// Decodes a checkpoint byte back into a kind.
    pub fn decode(b: u8) -> Result<Self, SnapshotError> {
        Self::ALL_KINDS
            .get(b as usize)
            .copied()
            .ok_or_else(|| SnapshotError::Corrupt(format!("trace kind {b}")))
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: Tick,
    /// The component it happened at (for hop events: the receiver).
    pub component: ComponentId,
    /// Coarse class; must have been enabled for the event to exist.
    pub category: TraceCategory,
    /// What happened.
    pub kind: TraceKind,
    /// The packet involved, when the event concerns one.
    pub packet: Option<PacketId>,
    /// The packet's command, when known (names Perfetto slices).
    pub cmd: Option<Command>,
    /// Kind-specific detail; see [`TraceKind`].
    pub arg: u64,
}

impl TraceEvent {
    /// Serializes the event into a checkpoint.
    pub fn encode(&self, w: &mut StateWriter) {
        w.u64(self.at);
        w.u32(self.component.0);
        w.u8(self.category.encode());
        w.u8(self.kind.encode());
        w.opt_u64(self.packet.map(|p| p.0));
        w.opt_u8(self.cmd.map(Command::encode));
        w.u64(self.arg);
    }

    /// Deserializes an event from a checkpoint.
    pub fn decode(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            at: r.u64()?,
            component: ComponentId(r.u32()?),
            category: TraceCategory::decode(r.u8()?)?,
            kind: TraceKind::decode(r.u8()?)?,
            packet: r.opt_u64()?.map(PacketId),
            cmd: r.opt_u8()?.map(Command::decode).transpose()?,
            arg: r.u64()?,
        })
    }
}

/// Default ring capacity: enough for several million-event runs of the
/// paper's workloads without unbounded memory growth.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// A bounded ring buffer of [`TraceEvent`]s with a category enable mask.
///
/// All methods take `&self` (interior mutability) so the tracer can be
/// reached from nested dispatch contexts exactly like the rest of the
/// kernel's shared state.
pub struct Tracer {
    mask: Cell<u32>,
    capacity: Cell<usize>,
    /// Each event is stored with the order stamp of the dispatch that
    /// recorded it (see [`Tracer::set_stamp`]) — invisible to [`drain`]
    /// and the checkpoint format, but the merge key that lets per-shard
    /// traces interleave back into the exact serial record sequence.
    ///
    /// [`drain`]: Tracer::drain
    buf: RefCell<VecDeque<(TraceEvent, u64)>>,
    dropped: Cell<u64>,
    stamp: Cell<u64>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A disabled tracer with the default capacity.
    pub fn new() -> Self {
        Self {
            mask: Cell::new(0),
            capacity: Cell::new(DEFAULT_TRACE_CAPACITY),
            buf: RefCell::new(VecDeque::new()),
            dropped: Cell::new(0),
            stamp: Cell::new(0),
        }
    }

    /// Sets the order stamp attached to subsequently recorded events. The
    /// dispatch loop calls this with each popped event's global order
    /// before running its handler, so every trace record carries the
    /// dispatch it was emitted under.
    #[inline]
    pub fn set_stamp(&self, stamp: u64) {
        self.stamp.set(stamp);
    }

    /// Enables exactly the categories in `mask` (a bit-or of
    /// [`TraceCategory::bit`] values, or [`TraceCategory::ALL`]).
    pub fn set_mask(&self, mask: u32) {
        self.mask.set(mask);
    }

    /// The current enable mask.
    pub fn mask(&self) -> u32 {
        self.mask.get()
    }

    /// Whether `cat` is enabled. This is the tracepoint fast path: one
    /// flag load and a bit test.
    #[inline]
    pub fn wants(&self, cat: TraceCategory) -> bool {
        self.mask.get() & cat.bit() != 0
    }

    /// Caps the ring at `capacity` events; the oldest are evicted first.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.set(capacity.max(1));
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }

    /// Appends `ev`, evicting the oldest event when the ring is full.
    /// Callers are expected to have checked [`Tracer::wants`] first.
    pub fn record(&self, ev: TraceEvent) {
        let mut buf = self.buf.borrow_mut();
        if buf.len() >= self.capacity.get() {
            buf.pop_front();
            self.dropped.set(self.dropped.get() + 1);
        }
        buf.push_back((ev, self.stamp.get()));
    }

    /// Drains every buffered event, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.buf.borrow_mut().drain(..).map(|(ev, _)| ev).collect()
    }

    /// Drains every buffered event with its dispatch order stamp, oldest
    /// first. The sharded driver merges these streams by
    /// `(at, stamp, record index)` to reconstruct the serial record order.
    pub fn drain_stamped(&self) -> Vec<(TraceEvent, u64)> {
        self.buf.borrow_mut().drain(..).collect()
    }

    /// Appends a pre-stamped event, evicting the oldest when full — the
    /// global-ring half of the sharded trace merge. Eviction accounting
    /// matches [`Tracer::record`], so a merged sharded ring drops exactly
    /// the events the serial ring would have dropped.
    pub fn record_stamped(&self, ev: TraceEvent, stamp: u64) {
        let mut buf = self.buf.borrow_mut();
        if buf.len() >= self.capacity.get() {
            buf.pop_front();
            self.dropped.set(self.dropped.get() + 1);
        }
        buf.push_back((ev, stamp));
    }

    /// Adds `n` to the eviction counter (used when a restored global ring
    /// carries eviction history from before a shard-count change).
    pub fn add_dropped(&self, n: u64) {
        self.dropped.set(self.dropped.get() + n);
    }

    /// Serializes the ring contents (oldest first) and the eviction count
    /// into a checkpoint, without draining. The enable mask and capacity
    /// are configuration and are *not* saved: they belong to the tree a
    /// checkpoint restores into. Order stamps are not saved either — a
    /// restored prefix is already merged, and any events recorded after
    /// the restore happen at later ticks, so plain concatenation keeps
    /// record order.
    pub fn save_ring(&self, w: &mut StateWriter) {
        let buf = self.buf.borrow();
        w.u64(self.dropped.get());
        w.usize(buf.len());
        for (ev, _) in buf.iter() {
            ev.encode(w);
        }
    }

    /// Replaces the ring contents and eviction count from a checkpoint, so
    /// a restored run's drained trace equals prefix + suffix of the
    /// uninterrupted run's. Restored events carry stamp 0: they are a
    /// fully merged prefix, strictly older than anything recorded after.
    pub fn restore_ring(&self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let dropped = r.u64()?;
        let n = r.usize()?;
        let mut buf = VecDeque::new();
        for _ in 0..n {
            buf.push_back((TraceEvent::decode(r)?, 0));
        }
        self.dropped.set(dropped);
        *self.buf.borrow_mut() = buf;
        Ok(())
    }
}

/// A drained trace together with the component-name table, self-contained
/// for export.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Events in record order (which is time order).
    pub events: Vec<TraceEvent>,
    /// Component names indexed by [`ComponentId`].
    pub names: Vec<String>,
    /// Events lost to ring eviction before the drain.
    pub dropped: u64,
}

impl TraceLog {
    fn name_of(&self, id: ComponentId) -> &str {
        self.names.get(id.0 as usize).map_or("?", |s| s.as_str())
    }

    /// Renders the Chrome trace-event JSON (the `traceEvents` array form)
    /// understood by <https://ui.perfetto.dev> and `chrome://tracing`.
    ///
    /// * every component is a named thread (track);
    /// * each custody interval becomes a `ph:"X"` duration slice on the
    ///   holding component's track, named after the packet;
    /// * protocol events become `ph:"i"` thread-scoped instants;
    /// * [`TraceKind::BufferOccupancy`] events become a `ph:"C"` counter
    ///   track per component.
    ///
    /// Timestamps are microseconds (fractional), as the format requires.
    pub fn to_perfetto_json(&self) -> String {
        let us = |t: Tick| t as f64 / 1e6;
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, ev: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&ev);
        };

        for (i, name) in self.names.iter().enumerate() {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":{}}}}}",
                    json_string(name)
                ),
            );
        }

        // Custody slices: a packet is "at" the component that last
        // accepted it, until the next component accepts it.
        for (_, chain) in self.custody_chains() {
            for pair in chain.windows(2) {
                let (a, b) = (&self.events[pair[0]], &self.events[pair[1]]);
                let name = match a.cmd {
                    Some(cmd) => format!("{} {}", cmd, a.packet.map(|p| p.0).unwrap_or(0)),
                    None => a.kind.label().to_owned(),
                };
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                         \"name\":{},\"cat\":\"hop\",\"args\":{{\"packet\":{}}}}}",
                        a.component.0,
                        fmt_f64(us(a.at)),
                        fmt_f64(us(b.at - a.at)),
                        json_string(&name),
                        a.packet.map(|p| p.0).unwrap_or(0),
                    ),
                );
            }
        }

        for ev in &self.events {
            match ev.kind {
                TraceKind::HopRequest | TraceKind::HopResponse => {}
                TraceKind::BufferOccupancy => {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"C\",\"pid\":1,\"ts\":{},\"name\":{},\
                             \"args\":{{\"occupancy\":{}}}}}",
                            fmt_f64(us(ev.at)),
                            json_string(&format!("{}.occupancy", self.name_of(ev.component))),
                            ev.arg,
                        ),
                    );
                }
                _ => {
                    push(
                        &mut out,
                        &mut first,
                        format!(
                            "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\"s\":\"t\",\
                             \"name\":{},\"cat\":\"{}\",\"args\":{{\"packet\":{},\"arg\":{}}}}}",
                            ev.component.0,
                            fmt_f64(us(ev.at)),
                            json_string(ev.kind.label()),
                            ev.category.name(),
                            ev.packet.map(|p| p.0).unwrap_or(0),
                            ev.arg,
                        ),
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Indices of custody (hop) events per packet, in time order.
    fn custody_chains(&self) -> BTreeMap<PacketId, Vec<usize>> {
        let mut chains: BTreeMap<PacketId, Vec<usize>> = BTreeMap::new();
        for (i, ev) in self.events.iter().enumerate() {
            if matches!(ev.kind, TraceKind::HopRequest | TraceKind::HopResponse) {
                if let Some(p) = ev.packet {
                    chains.entry(p).or_default().push(i);
                }
            }
        }
        chains
    }

    /// Reconstructs each request's lifecycle from its custody chain and
    /// attributes every nanosecond to a pipeline [`Stage`], using the
    /// default component-name classification (see [`Stage::classify`]).
    pub fn attribution(&self) -> LatencyAttribution {
        self.attribution_with(Stage::classify)
    }

    /// [`TraceLog::attribution`] with a custom component→stage mapping.
    pub fn attribution_with(&self, classify: impl Fn(&str) -> Stage) -> LatencyAttribution {
        let stage_of: Vec<Stage> = self.names.iter().map(|n| classify(n)).collect();
        let mut lifecycles = Vec::new();
        for (packet, chain) in self.custody_chains() {
            if chain.len() < 2 {
                continue;
            }
            let mut per_stage = [0 as Tick; Stage::COUNT];
            for pair in chain.windows(2) {
                let (a, b) = (&self.events[pair[0]], &self.events[pair[1]]);
                let stage = stage_of.get(a.component.0 as usize).copied().unwrap_or(Stage::Other);
                per_stage[stage as usize] += b.at - a.at;
            }
            let first = &self.events[chain[0]];
            let last = &self.events[*chain.last().expect("non-empty chain")];
            lifecycles.push(PacketLifecycle {
                packet,
                cmd: first.cmd,
                start: first.at,
                end: last.at,
                per_stage,
            });
        }
        LatencyAttribution { lifecycles }
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a non-negative microsecond value without scientific notation.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() {
        format!("{}", v as u64)
    } else {
        format!("{v}")
    }
}

/// Pipeline stage a component belongs to, for latency attribution. The
/// stages mirror the decomposition behind the paper's Table II: the CPU
/// side of the fabric, the root complex, the switch, the links' wire and
/// data-link protocol, and the device itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// CPU-side fabric: memory bus, DRAM, IOCache, bridge, PCI host,
    /// interrupt controller, and the workload components themselves.
    Host = 0,
    /// The root complex.
    RootComplex = 1,
    /// The PCI-Express switch.
    Switch = 2,
    /// PCI-Express links (serialization, data-link protocol).
    Link = 3,
    /// The endpoint device.
    Device = 4,
    /// Anything unrecognized.
    Other = 5,
}

impl Stage {
    /// Number of stages (sizes the per-stage arrays).
    pub const COUNT: usize = 6;

    /// Every stage, in report order.
    pub const ALL: [Stage; Stage::COUNT] =
        [Stage::Host, Stage::RootComplex, Stage::Switch, Stage::Link, Stage::Device, Stage::Other];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Host => "host fabric",
            Stage::RootComplex => "root complex",
            Stage::Switch => "switch",
            Stage::Link => "link",
            Stage::Device => "device",
            Stage::Other => "other",
        }
    }

    /// Default component-name → stage mapping, matching the names the
    /// system builder assigns (`rc`, `switch`, `root_link`, `dev_link`,
    /// `membus`, `dram`, `nic`, `disk`, …).
    pub fn classify(name: &str) -> Stage {
        if name.contains("link") {
            Stage::Link
        } else if name == "rc" || name.contains("root_complex") {
            Stage::RootComplex
        } else if name.contains("switch") {
            Stage::Switch
        } else if name.contains("nic")
            || name.contains("disk")
            || name.contains("vblk")
            || name.contains("vnet")
        {
            Stage::Device
        } else if name.contains("membus")
            || name.contains("iobus")
            || name.contains("dram")
            || name.contains("iocache")
            || name.contains("bridge")
            || name.contains("pcihost")
            || name.contains("gic")
            || name.contains("dd")
            || name.contains("probe")
        {
            Stage::Host
        } else {
            Stage::Other
        }
    }
}

/// One request's reconstructed lifecycle.
#[derive(Debug, Clone, Copy)]
pub struct PacketLifecycle {
    /// The packet (request and response share the id).
    pub packet: PacketId,
    /// Command of the first recorded hop (normally the request).
    pub cmd: Option<Command>,
    /// First custody transfer (issue into the fabric).
    pub start: Tick,
    /// Last custody transfer (delivery of the response to the issuer).
    pub end: Tick,
    /// Time attributed to each stage, indexed by `Stage as usize`. The
    /// entries sum to exactly `end - start`.
    pub per_stage: [Tick; Stage::COUNT],
}

impl PacketLifecycle {
    /// End-to-end latency of this lifecycle.
    pub fn total(&self) -> Tick {
        self.end - self.start
    }
}

/// Per-stage latency attribution over every traced request.
#[derive(Debug, Clone, Default)]
pub struct LatencyAttribution {
    /// One entry per packet that made at least two hops.
    pub lifecycles: Vec<PacketLifecycle>,
}

impl LatencyAttribution {
    /// Mean time spent in `stage` per lifecycle, in nanoseconds.
    pub fn mean_stage_ns(&self, stage: Stage) -> f64 {
        if self.lifecycles.is_empty() {
            return 0.0;
        }
        let sum: Tick = self.lifecycles.iter().map(|l| l.per_stage[stage as usize]).sum();
        to_ns(sum) / self.lifecycles.len() as f64
    }

    /// Mean end-to-end latency per lifecycle, in nanoseconds.
    pub fn mean_total_ns(&self) -> f64 {
        if self.lifecycles.is_empty() {
            return 0.0;
        }
        let sum: Tick = self.lifecycles.iter().map(|l| l.total()).sum();
        to_ns(sum) / self.lifecycles.len() as f64
    }

    /// Renders the per-stage breakdown as an aligned text table; the
    /// stage rows sum to the total row by construction.
    pub fn render(&self) -> String {
        let total = self.mean_total_ns();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>8}   ({} lifecycles)",
            "stage",
            "mean ns",
            "share",
            self.lifecycles.len()
        );
        for stage in Stage::ALL {
            let ns = self.mean_stage_ns(stage);
            if ns == 0.0 {
                continue;
            }
            let share = if total > 0.0 { 100.0 * ns / total } else { 0.0 };
            let _ = writeln!(out, "{:<14} {:>12.1} {:>7.1}%", stage.label(), ns, share);
        }
        let _ = writeln!(out, "{:<14} {:>12.1} {:>7.1}%", "total", total, 100.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(at: Tick, comp: u32, kind: TraceKind, pkt: u64) -> TraceEvent {
        TraceEvent {
            at,
            component: ComponentId(comp),
            category: TraceCategory::Hop,
            kind,
            packet: Some(PacketId(pkt)),
            cmd: Some(Command::ReadReq),
            arg: 0,
        }
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let t = Tracer::new();
        t.set_capacity(2);
        t.set_mask(TraceCategory::ALL);
        for i in 0..5 {
            t.record(hop(i, 0, TraceKind::HopRequest, 0));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let drained = t.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].at, 3);
        assert!(t.is_empty());
    }

    #[test]
    fn mask_gates_categories_independently() {
        let t = Tracer::new();
        assert!(!t.wants(TraceCategory::Hop));
        t.set_mask(TraceCategory::Link.bit() | TraceCategory::Device.bit());
        assert!(t.wants(TraceCategory::Link));
        assert!(t.wants(TraceCategory::Device));
        assert!(!t.wants(TraceCategory::Hop));
        assert_eq!(t.mask(), TraceCategory::Link.bit() | TraceCategory::Device.bit());
    }

    #[test]
    fn attribution_partitions_end_to_end_exactly() {
        // pkt 0: enters membus at 0, rc at 100, link at 250, nic at 400,
        // response back into rc at 700, membus at 850, probe at 900.
        let log = TraceLog {
            events: vec![
                hop(0, 0, TraceKind::HopRequest, 0),
                hop(100, 1, TraceKind::HopRequest, 0),
                hop(250, 2, TraceKind::HopRequest, 0),
                hop(400, 3, TraceKind::HopRequest, 0),
                hop(700, 1, TraceKind::HopResponse, 0),
                hop(850, 0, TraceKind::HopResponse, 0),
                hop(900, 4, TraceKind::HopResponse, 0),
            ],
            names: vec![
                "membus".into(),
                "rc".into(),
                "root_link".into(),
                "nic".into(),
                "mmio_probe".into(),
            ],
            dropped: 0,
        };
        let attr = log.attribution();
        assert_eq!(attr.lifecycles.len(), 1);
        let l = &attr.lifecycles[0];
        assert_eq!(l.total(), 900);
        assert_eq!(l.per_stage.iter().sum::<Tick>(), l.total());
        assert_eq!(l.per_stage[Stage::Host as usize], 100 + 50);
        assert_eq!(l.per_stage[Stage::RootComplex as usize], 150 + 150);
        assert_eq!(l.per_stage[Stage::Link as usize], 150);
        assert_eq!(l.per_stage[Stage::Device as usize], 300);
        assert!((attr.mean_total_ns() - 0.9).abs() < 1e-12);
        let rendered = attr.render();
        assert!(rendered.contains("root complex"));
        assert!(rendered.contains("total"));
    }

    #[test]
    fn single_hop_packets_are_ignored() {
        let log = TraceLog {
            events: vec![hop(5, 0, TraceKind::HopRequest, 7)],
            names: vec!["membus".into()],
            dropped: 0,
        };
        assert!(log.attribution().lifecycles.is_empty());
    }

    #[test]
    fn perfetto_export_is_wellformed() {
        let mut events =
            vec![hop(0, 0, TraceKind::HopRequest, 0), hop(1_000, 1, TraceKind::HopRequest, 0)];
        events.push(TraceEvent {
            at: 500,
            component: ComponentId(1),
            category: TraceCategory::Router,
            kind: TraceKind::BufferOccupancy,
            packet: None,
            cmd: None,
            arg: 3,
        });
        events.push(TraceEvent {
            at: 700,
            component: ComponentId(1),
            category: TraceCategory::Link,
            kind: TraceKind::LinkAck,
            packet: Some(PacketId(0)),
            cmd: None,
            arg: 1,
        });
        let log = TraceLog { events, names: vec!["a".into(), "b".into()], dropped: 0 };
        let json = log.to_perfetto_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"ack\""));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn perfetto_export_matches_golden() {
        // A two-component, one-packet trace with one of every phase; the
        // expected string pins the exporter's exact output format.
        let log = TraceLog {
            events: vec![
                hop(1_000_000, 1, TraceKind::HopRequest, 7),
                TraceEvent {
                    at: 1_000_000,
                    component: ComponentId(0),
                    category: TraceCategory::Router,
                    kind: TraceKind::BufferOccupancy,
                    packet: None,
                    cmd: None,
                    arg: 2,
                },
                TraceEvent {
                    at: 2_000_000,
                    component: ComponentId(1),
                    category: TraceCategory::Link,
                    kind: TraceKind::LinkAck,
                    packet: None,
                    cmd: None,
                    arg: 5,
                },
                hop(3_000_000, 0, TraceKind::HopResponse, 7),
            ],
            names: vec!["cpu".into(), "nic".into()],
            dropped: 0,
        };
        let golden = concat!(
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\
             \"args\":{\"name\":\"cpu\"}},",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\
             \"args\":{\"name\":\"nic\"}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1,\"dur\":2,\
             \"name\":\"ReadReq 7\",\"cat\":\"hop\",\"args\":{\"packet\":7}},",
            "{\"ph\":\"C\",\"pid\":1,\"ts\":1,\"name\":\"cpu.occupancy\",\
             \"args\":{\"occupancy\":2}},",
            "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":2,\"s\":\"t\",\
             \"name\":\"ack\",\"cat\":\"link\",\"args\":{\"packet\":0,\"arg\":5}}",
            "]}"
        );
        assert_eq!(log.to_perfetto_json(), golden);
    }

    #[test]
    fn classification_covers_builder_names() {
        assert_eq!(Stage::classify("rc"), Stage::RootComplex);
        assert_eq!(Stage::classify("switch"), Stage::Switch);
        assert_eq!(Stage::classify("root_link"), Stage::Link);
        assert_eq!(Stage::classify("dev_link1"), Stage::Link);
        assert_eq!(Stage::classify("membus"), Stage::Host);
        assert_eq!(Stage::classify("iocache"), Stage::Host);
        assert_eq!(Stage::classify("nic"), Stage::Device);
        assert_eq!(Stage::classify("disk0"), Stage::Device);
        assert_eq!(Stage::classify("mmio_probe"), Stage::Host);
        assert_eq!(Stage::classify("mystery"), Stage::Other);
    }
}
