//! Simulation time.
//!
//! Like gem5, the simulator counts time in integer **ticks**, where one tick
//! is one picosecond. All latencies and delays in the workspace are expressed
//! as ticks; the helpers in this module convert from human units.
//!
//! ```
//! use pcisim_kernel::tick::{ns, us, TICKS_PER_NS};
//! assert_eq!(ns(150), 150 * TICKS_PER_NS);
//! assert_eq!(us(1), ns(1000));
//! ```

/// A point in simulated time or a duration, in picoseconds.
pub type Tick = u64;

/// Number of ticks in one picosecond (the base unit).
pub const TICKS_PER_PS: Tick = 1;
/// Number of ticks in one nanosecond.
pub const TICKS_PER_NS: Tick = 1_000;
/// Number of ticks in one microsecond.
pub const TICKS_PER_US: Tick = 1_000_000;
/// Number of ticks in one millisecond.
pub const TICKS_PER_MS: Tick = 1_000_000_000;
/// Number of ticks in one second.
pub const TICKS_PER_SEC: Tick = 1_000_000_000_000;

/// Converts picoseconds to ticks.
#[inline]
pub const fn ps(v: u64) -> Tick {
    v * TICKS_PER_PS
}

/// Converts nanoseconds to ticks, saturating at the end of simulated time.
#[inline]
pub const fn ns(v: u64) -> Tick {
    v.saturating_mul(TICKS_PER_NS)
}

/// Converts microseconds to ticks, saturating at the end of simulated time.
#[inline]
pub const fn us(v: u64) -> Tick {
    v.saturating_mul(TICKS_PER_US)
}

/// Converts milliseconds to ticks, saturating at the end of simulated time.
#[inline]
pub const fn ms(v: u64) -> Tick {
    v.saturating_mul(TICKS_PER_MS)
}

/// Converts a tick count to fractional seconds.
#[inline]
pub fn to_seconds(t: Tick) -> f64 {
    t as f64 / TICKS_PER_SEC as f64
}

/// Converts a tick count to fractional nanoseconds.
#[inline]
pub fn to_ns(t: Tick) -> f64 {
    t as f64 / TICKS_PER_NS as f64
}

/// Computes an achieved bandwidth in gigabits per second.
///
/// Returns zero when `elapsed` is zero so callers do not need to special-case
/// empty measurements.
///
/// ```
/// use pcisim_kernel::tick::{gbps, us};
/// // 500 bytes in 1 us = 4 Gbps.
/// assert!((gbps(500, us(1)) - 4.0).abs() < 1e-9);
/// ```
#[inline]
pub fn gbps(bytes: u64, elapsed: Tick) -> f64 {
    if elapsed == 0 {
        return 0.0;
    }
    (bytes as f64 * 8.0) / to_seconds(elapsed) / 1e9
}

/// Time to move `bytes` at a rate of `bytes_per_sec`, rounded up to a whole
/// tick so that back-to-back transfers never under-account time.
#[inline]
pub fn transfer_time(bytes: u64, bytes_per_sec: u64) -> Tick {
    if bytes_per_sec == 0 {
        return 0;
    }
    // Packet-sized transfers fit 64-bit arithmetic; the u128 division (a
    // libcall) is only needed when `bytes * TICKS_PER_SEC` overflows.
    if let Some(num) = bytes.checked_mul(TICKS_PER_SEC) {
        num.div_ceil(bytes_per_sec)
    } else {
        let num = bytes as u128 * TICKS_PER_SEC as u128;
        num.div_ceil(bytes_per_sec as u128) as Tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_compose() {
        assert_eq!(ns(1), 1_000);
        assert_eq!(us(1), ns(1_000));
        assert_eq!(ms(1), us(1_000));
        assert_eq!(TICKS_PER_SEC, ms(1_000));
        assert_eq!(ps(7), 7);
    }

    #[test]
    fn to_ns_round_trips() {
        assert_eq!(to_ns(ns(150)), 150.0);
        assert_eq!(to_seconds(TICKS_PER_SEC), 1.0);
    }

    #[test]
    fn gbps_of_zero_elapsed_is_zero() {
        assert_eq!(gbps(100, 0), 0.0);
    }

    #[test]
    fn gbps_matches_hand_computation() {
        // 1 GB in 1 second = 8 Gbps.
        let one_gb = 1_000_000_000;
        assert!((gbps(one_gb, TICKS_PER_SEC) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 3 bytes at 2 B/s takes 1.5 s -> rounds up to exactly 1.5 s in ticks.
        assert_eq!(transfer_time(3, 2), TICKS_PER_SEC + TICKS_PER_SEC / 2);
        // 1 byte at 3 B/s is a non-terminating fraction; must round up.
        assert_eq!(transfer_time(1, 3), TICKS_PER_SEC / 3 + 1);
        assert_eq!(transfer_time(5, 0), 0);
    }
}
