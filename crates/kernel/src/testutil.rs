//! Reusable traffic-generation components for tests and examples.
//!
//! [`Requester`] pumps a scripted list of requests through a port as fast as
//! flow control allows and records completion times; [`Responder`] answers
//! every request after a fixed service delay. Both follow the kernel's
//! refusal/retry protocol, so they are safe to wire to any fabric component.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::component::{Component, Event, PortId, RecvResult};
use crate::packet::{Command, Packet, PacketId};
use crate::sim::Ctx;
use crate::tick::Tick;

/// Completion log shared between a [`Requester`] and the test harness:
/// `(packet id, completion tick)` in completion order.
pub type CompletionLog = Rc<RefCell<Vec<(PacketId, Tick)>>>;

/// Scripted request generator. Issues its requests in order, pipelining as
/// deep as the peer accepts; posted requests complete at send time.
#[derive(Debug)]
pub struct Requester {
    name: String,
    script: VecDeque<(Command, u64, u32)>,
    stalled: Option<Packet>,
    completions: CompletionLog,
}

/// The single port a [`Requester`] sends through.
pub const REQUESTER_PORT: PortId = PortId(0);

impl Requester {
    /// Creates a requester that will issue `script` (command, addr, size)
    /// triples; returns the component and its completion log.
    pub fn new(name: impl Into<String>, script: Vec<(Command, u64, u32)>) -> (Self, CompletionLog) {
        let completions: CompletionLog = Rc::new(RefCell::new(Vec::new()));
        (
            Self {
                name: name.into(),
                script: script.into(),
                stalled: None,
                completions: completions.clone(),
            },
            completions,
        )
    }

    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        while self.stalled.is_none() {
            let Some((cmd, addr, size)) = self.script.pop_front() else { return };
            let id = ctx.alloc_packet_id();
            let mut pkt = Packet::request(id, cmd, addr, size, ctx.self_id());
            if cmd.is_write() || cmd == Command::Message {
                pkt = pkt.with_payload(ctx.alloc_payload(size as usize));
            }
            let posted = pkt.is_posted();
            match ctx.try_send_request(REQUESTER_PORT, pkt) {
                Ok(()) => {
                    if posted {
                        self.completions.borrow_mut().push((id, ctx.now()));
                    }
                }
                Err(back) => {
                    self.stalled = Some(back);
                    return;
                }
            }
        }
    }
}

impl Component for Requester {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        ctx.schedule(0, Event::Timer { kind: 0, data: 0 });
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, _ev: Event) {
        self.pump(ctx);
    }

    fn recv_response(&mut self, ctx: &mut Ctx<'_>, _port: PortId, mut pkt: Packet) -> RecvResult {
        if let Some(buf) = pkt.take_payload() {
            ctx.recycle_payload(buf);
        }
        self.completions.borrow_mut().push((pkt.id(), ctx.now()));
        RecvResult::Accepted
    }

    fn retry_granted(&mut self, ctx: &mut Ctx<'_>, _port: PortId) {
        if let Some(pkt) = self.stalled.take() {
            let posted = pkt.is_posted();
            let id = pkt.id();
            match ctx.try_send_request(REQUESTER_PORT, pkt) {
                Ok(()) => {
                    if posted {
                        self.completions.borrow_mut().push((id, ctx.now()));
                    }
                }
                Err(back) => {
                    self.stalled = Some(back);
                    return;
                }
            }
        }
        self.pump(ctx);
    }
}

/// Served-request counter shared between a [`Responder`] and the harness.
pub type ServeCount = Rc<RefCell<u32>>;

/// Answers every incoming request after a fixed service delay; unlimited
/// concurrency. Read responses carry zero-filled data.
#[derive(Debug)]
pub struct Responder {
    name: String,
    delay: Tick,
    served: ServeCount,
    blocked: VecDeque<Packet>,
    waiting_retry: bool,
}

/// The single port a [`Responder`] listens on.
pub const RESPONDER_PORT: PortId = PortId(0);

impl Responder {
    /// Creates a responder with the given service delay; returns the
    /// component and its served counter.
    pub fn new(name: impl Into<String>, delay: Tick) -> (Self, ServeCount) {
        let served: ServeCount = Rc::new(RefCell::new(0));
        (
            Self {
                name: name.into(),
                delay,
                served: served.clone(),
                blocked: VecDeque::new(),
                waiting_retry: false,
            },
            served,
        )
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        while !self.waiting_retry {
            let Some(pkt) = self.blocked.pop_front() else { return };
            match ctx.try_send_response(RESPONDER_PORT, pkt) {
                Ok(()) => {}
                Err(back) => {
                    self.blocked.push_front(back);
                    self.waiting_retry = true;
                }
            }
        }
    }
}

impl Component for Responder {
    fn name(&self) -> &str {
        &self.name
    }

    fn recv_request(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) -> RecvResult {
        ctx.schedule(self.delay, Event::DelayedPacket { tag: 0, pkt });
        RecvResult::Accepted
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        let Event::DelayedPacket { mut pkt, .. } = ev else {
            panic!("{}: unexpected timer", self.name)
        };
        *self.served.borrow_mut() += 1;
        if pkt.cmd().is_write() {
            if let Some(buf) = pkt.take_payload() {
                ctx.recycle_payload(buf);
            }
        }
        if pkt.is_posted() {
            return;
        }
        let resp = if pkt.cmd().is_read() {
            let size = pkt.size() as usize;
            let data = ctx.alloc_payload(size);
            pkt.into_read_response(data)
        } else {
            pkt.into_response()
        };
        self.blocked.push_back(resp);
        self.flush(ctx);
    }

    fn retry_granted(&mut self, ctx: &mut Ctx<'_>, _port: PortId) {
        self.waiting_retry = false;
        self.flush(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{RunOutcome, Simulation};
    use crate::tick::ns;

    #[test]
    fn requester_and_responder_direct_wire() {
        let mut sim = Simulation::new();
        let (req, done) = Requester::new(
            "gen",
            vec![(Command::ReadReq, 0x100, 4), (Command::WriteReq, 0x200, 8)],
        );
        let r = sim.add(Box::new(req));
        let (resp, served) = Responder::new("sink", ns(10));
        let s = sim.add(Box::new(resp));
        sim.connect((r, REQUESTER_PORT), (s, RESPONDER_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(*served.borrow(), 2);
        let done = done.borrow();
        assert_eq!(done.len(), 2);
        // Pipelined: both issued at t=0, both complete at t=10ns.
        assert_eq!(done[0].1, ns(10));
        assert_eq!(done[1].1, ns(10));
    }

    #[test]
    fn posted_message_completes_at_send() {
        let mut sim = Simulation::new();
        let (req, done) = Requester::new("gen", vec![(Command::Message, 0xfee0_0000, 4)]);
        let r = sim.add(Box::new(req));
        let (resp, served) = Responder::new("sink", ns(10));
        let s = sim.add(Box::new(resp));
        sim.connect((r, REQUESTER_PORT), (s, RESPONDER_PORT));
        sim.run_to_quiesce();
        assert_eq!(done.borrow().len(), 1);
        assert_eq!(done.borrow()[0].1, 0);
        assert_eq!(*served.borrow(), 1);
    }
}
