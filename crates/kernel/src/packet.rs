//! Memory-system packets.
//!
//! Every transaction in the simulator — MMIO reads, configuration accesses,
//! DMA writes — is carried by a [`Packet`], just as in gem5. The PCI-Express
//! model reuses these packets as its transaction layer packets (TLPs): the
//! packet already carries the information a TLP header needs (requester,
//! address, size, command) plus the **PCI bus number** field the paper adds
//! to gem5's packet class for response routing (§V-A).

use std::fmt;

use crate::component::{ComponentId, PortId};
use crate::snapshot::{SnapshotError, StateReader, StateWriter};

/// The transaction a packet performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Read request; carries no payload, expects [`Command::ReadResp`].
    ReadReq,
    /// Read response; carries the read payload.
    ReadResp,
    /// Write request; carries the write payload, expects [`Command::WriteResp`]
    /// unless the packet is posted (see [`Packet::set_posted`]).
    WriteReq,
    /// Write completion; carries no payload.
    WriteResp,
    /// Configuration-space read request (ECAM window).
    ConfigRead,
    /// Configuration-space read response.
    ConfigReadResp,
    /// Configuration-space write request.
    ConfigWrite,
    /// Configuration-space write completion.
    ConfigWriteResp,
    /// Message request (posted); used for message-signaled interrupts.
    Message,
    /// CXL.mem master-to-subordinate read request (M2S Req, MemRd). Carried
    /// over the same link + ACK-NAK machinery as PCIe TLPs but a distinct
    /// transaction class: it targets an HDM window, not a BAR.
    CxlMemRd,
    /// CXL.mem master-to-subordinate write request (M2S RwD, MemWr);
    /// carries the store payload.
    CxlMemWr,
    /// CXL.mem subordinate-to-master data response (S2M DRS); carries the
    /// read payload back to the host.
    CxlMemDrs,
    /// CXL.mem subordinate-to-master no-data response (S2M NDR); completes
    /// a write.
    CxlMemNdr,
}

impl Command {
    /// Whether this command travels requester → completer.
    pub fn is_request(self) -> bool {
        matches!(
            self,
            Command::ReadReq
                | Command::WriteReq
                | Command::ConfigRead
                | Command::ConfigWrite
                | Command::Message
                | Command::CxlMemRd
                | Command::CxlMemWr
        )
    }

    /// Whether this command travels completer → requester.
    pub fn is_response(self) -> bool {
        !self.is_request()
    }

    /// Whether this is a read-flavoured command.
    pub fn is_read(self) -> bool {
        matches!(
            self,
            Command::ReadReq
                | Command::ReadResp
                | Command::ConfigRead
                | Command::ConfigReadResp
                | Command::CxlMemRd
                | Command::CxlMemDrs
        )
    }

    /// Whether this is a write-flavoured command.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            Command::WriteReq
                | Command::WriteResp
                | Command::ConfigWrite
                | Command::ConfigWriteResp
                | Command::CxlMemWr
                | Command::CxlMemNdr
        )
    }

    /// The response command paired with this request.
    ///
    /// # Panics
    ///
    /// Panics when called on a response or on [`Command::Message`], which is
    /// posted and never answered.
    pub fn response(self) -> Command {
        match self {
            Command::ReadReq => Command::ReadResp,
            Command::WriteReq => Command::WriteResp,
            Command::ConfigRead => Command::ConfigReadResp,
            Command::ConfigWrite => Command::ConfigWriteResp,
            Command::CxlMemRd => Command::CxlMemDrs,
            Command::CxlMemWr => Command::CxlMemNdr,
            other => panic!("{other:?} has no response command"),
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Command {
    /// Stable wire encoding for checkpoints.
    pub fn encode(self) -> u8 {
        match self {
            Command::ReadReq => 0,
            Command::ReadResp => 1,
            Command::WriteReq => 2,
            Command::WriteResp => 3,
            Command::ConfigRead => 4,
            Command::ConfigReadResp => 5,
            Command::ConfigWrite => 6,
            Command::ConfigWriteResp => 7,
            Command::Message => 8,
            Command::CxlMemRd => 9,
            Command::CxlMemWr => 10,
            Command::CxlMemDrs => 11,
            Command::CxlMemNdr => 12,
        }
    }

    /// Decodes a checkpoint byte back into a command.
    pub fn decode(b: u8) -> Result<Self, SnapshotError> {
        Ok(match b {
            0 => Command::ReadReq,
            1 => Command::ReadResp,
            2 => Command::WriteReq,
            3 => Command::WriteResp,
            4 => Command::ConfigRead,
            5 => Command::ConfigReadResp,
            6 => Command::ConfigWrite,
            7 => Command::ConfigWriteResp,
            8 => Command::Message,
            9 => Command::CxlMemRd,
            10 => Command::CxlMemWr,
            11 => Command::CxlMemDrs,
            12 => Command::CxlMemNdr,
            other => return Err(SnapshotError::Corrupt(format!("command byte {other:#04x}"))),
        })
    }
}

/// Completion status carried by a response packet — the TLP completion
/// status field of the PCI-Express transaction layer, reduced to the
/// statuses the fabric can actually produce. Requests always carry
/// [`CompletionStatus::SuccessfulCompletion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompletionStatus {
    /// The completer serviced the request (SC).
    #[default]
    SuccessfulCompletion,
    /// No completer claimed the request — master abort (UR). Reads return
    /// all-ones data, as on a real root complex.
    UnsupportedRequest,
    /// The completer claimed but could not service the request (CA).
    CompleterAbort,
    /// No completion arrived before the requester's completion timeout;
    /// the requester synthesized this completion itself.
    CompletionTimeout,
}

impl CompletionStatus {
    /// Whether this status reports an error.
    pub fn is_error(self) -> bool {
        self != CompletionStatus::SuccessfulCompletion
    }

    /// Stable wire encoding for checkpoints.
    pub fn encode(self) -> u8 {
        match self {
            CompletionStatus::SuccessfulCompletion => 0,
            CompletionStatus::UnsupportedRequest => 1,
            CompletionStatus::CompleterAbort => 2,
            CompletionStatus::CompletionTimeout => 3,
        }
    }

    /// Decodes a checkpoint byte back into a completion status.
    pub fn decode(b: u8) -> Result<Self, SnapshotError> {
        Ok(match b {
            0 => CompletionStatus::SuccessfulCompletion,
            1 => CompletionStatus::UnsupportedRequest,
            2 => CompletionStatus::CompleterAbort,
            3 => CompletionStatus::CompletionTimeout,
            other => return Err(SnapshotError::Corrupt(format!("status byte {other:#04x}"))),
        })
    }
}

/// Unique identity of a packet, preserved from request to response so that
/// components can match completions to outstanding transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt#{}", self.0)
    }
}

/// One hop recorded on a packet's route, used by crossbars and bridges to
/// steer the response back to the port the request came in on (gem5's
/// "sender state" stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteHop {
    /// Component that forwarded the request.
    pub component: ComponentId,
    /// Ingress port on that component.
    pub port: PortId,
}

/// Number of route hops stored inline in every packet. Fabric paths in
/// this simulator cross at most a couple of crossbars, so the inline
/// capacity covers every real topology; deeper stacks spill to the heap.
const INLINE_HOPS: usize = 4;

const NO_HOP: RouteHop = RouteHop { component: ComponentId(0), port: PortId(0) };

/// LIFO hop stack with inline storage for the common shallow case, so
/// creating, forwarding and dropping a packet performs no heap allocation.
#[derive(Debug, Clone)]
struct RouteStack {
    inline: [RouteHop; INLINE_HOPS],
    len: u8,
    /// Hops beyond the inline capacity, oldest first (rarely allocated).
    /// Boxed so the never-spilling common case pays one pointer, not an
    /// inline `Vec` — this keeps `Packet` a cache line smaller.
    #[allow(clippy::box_collection)]
    spill: Option<Box<Vec<RouteHop>>>,
}

impl RouteStack {
    const fn new() -> Self {
        Self { inline: [NO_HOP; INLINE_HOPS], len: 0, spill: None }
    }

    fn depth(&self) -> usize {
        self.len as usize + self.spill.as_ref().map_or(0, |s| s.len())
    }

    #[inline]
    fn push(&mut self, hop: RouteHop) {
        if (self.len as usize) < INLINE_HOPS {
            self.inline[self.len as usize] = hop;
            self.len += 1;
        } else {
            self.spill.get_or_insert_with(Default::default).push(hop);
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<RouteHop> {
        if let Some(spill) = &mut self.spill {
            if let Some(hop) = spill.pop() {
                return Some(hop);
            }
        }
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(self.inline[self.len as usize])
    }

    #[inline]
    fn last(&self) -> Option<&RouteHop> {
        if let Some(spill) = &self.spill {
            if let Some(hop) = spill.last() {
                return Some(hop);
            }
        }
        if self.len == 0 {
            None
        } else {
            Some(&self.inline[self.len as usize - 1])
        }
    }
}

impl PartialEq for RouteStack {
    fn eq(&self, other: &Self) -> bool {
        // Logical comparison: only the live hops count, not the storage.
        self.depth() == other.depth()
            && (0..self.len as usize).all(|i| self.inline[i] == other.inline[i])
            && self.spill.as_ref().map_or(&[] as &[RouteHop], |s| s)
                == other.spill.as_ref().map_or(&[] as &[RouteHop], |s| s)
    }
}
impl Eq for RouteStack {}

/// A memory-system packet.
///
/// Construct requests with [`Packet::request`] and turn them into responses
/// with [`Packet::into_response`], which preserves identity, route and the
/// PCI bus number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    id: PacketId,
    cmd: Command,
    addr: u64,
    size: u32,
    requester: ComponentId,
    /// PCI bus number stamped by the first root-complex/switch slave port the
    /// request crosses (`None` models the paper's `-1` initial value).
    pci_bus: Option<u8>,
    posted: bool,
    payload: Option<Vec<u8>>,
    route: RouteStack,
    status: CompletionStatus,
}

impl Packet {
    /// Creates a request packet.
    ///
    /// # Panics
    ///
    /// Panics if `cmd` is not a request command.
    pub fn request(
        id: PacketId,
        cmd: Command,
        addr: u64,
        size: u32,
        requester: ComponentId,
    ) -> Self {
        assert!(cmd.is_request(), "{cmd:?} is not a request command");
        Self {
            id,
            cmd,
            addr,
            size,
            requester,
            pci_bus: None,
            posted: matches!(cmd, Command::Message),
            payload: None,
            route: RouteStack::new(),
            status: CompletionStatus::SuccessfulCompletion,
        }
    }

    /// Completion status of the packet. Meaningful on responses; requests
    /// always report [`CompletionStatus::SuccessfulCompletion`].
    pub fn status(&self) -> CompletionStatus {
        self.status
    }

    /// Shorthand for `status().is_error()`.
    pub fn is_error(&self) -> bool {
        self.status.is_error()
    }

    /// Packet identity (preserved across request/response).
    pub fn id(&self) -> PacketId {
        self.id
    }

    /// The packet's command.
    pub fn cmd(&self) -> Command {
        self.cmd
    }

    /// Target physical address.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Access size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The component that originated the request.
    pub fn requester(&self) -> ComponentId {
        self.requester
    }

    /// Shorthand for `cmd().is_request()`.
    pub fn is_request(&self) -> bool {
        self.cmd.is_request()
    }

    /// Shorthand for `cmd().is_response()`.
    pub fn is_response(&self) -> bool {
        self.cmd.is_response()
    }

    /// PCI bus number recorded on the packet, if any (the paper's new packet
    /// field, initialised to -1 / `None`).
    pub fn pci_bus(&self) -> Option<u8> {
        self.pci_bus
    }

    /// Stamps the PCI bus number. Only the first stamp sticks, matching the
    /// paper: a slave port sets the field only when it is still -1.
    pub fn stamp_pci_bus(&mut self, bus: u8) {
        if self.pci_bus.is_none() {
            self.pci_bus = Some(bus);
        }
    }

    /// Clears the PCI bus number (used by tests and by the root complex when
    /// a response leaves the PCI-Express fabric).
    pub fn clear_pci_bus(&mut self) {
        self.pci_bus = None;
    }

    /// Whether this request needs no response (posted write/message).
    pub fn is_posted(&self) -> bool {
        self.posted
    }

    /// Marks a write request as posted (no completion expected). Models the
    /// posted-write extension discussed in the paper's evaluation.
    pub fn set_posted(&mut self, posted: bool) {
        self.posted = posted;
    }

    /// The data carried by the packet, if any.
    pub fn payload(&self) -> Option<&[u8]> {
        self.payload.as_deref()
    }

    /// Attaches a payload; builder-style.
    ///
    /// # Panics
    ///
    /// Panics if the payload length does not match the packet size.
    pub fn with_payload(mut self, payload: Vec<u8>) -> Self {
        assert_eq!(payload.len() as u32, self.size, "payload length must equal packet size");
        self.payload = Some(payload);
        self
    }

    /// Number of payload bytes on the wire (0 when no payload is attached).
    pub fn payload_len(&self) -> u32 {
        match self.cmd {
            // Reads carry no data in the request direction; writes carry the
            // full access size even when the simulator elides the bytes.
            Command::ReadReq | Command::ConfigRead | Command::CxlMemRd => 0,
            Command::WriteReq | Command::ConfigWrite | Command::Message | Command::CxlMemWr => {
                self.size
            }
            Command::ReadResp | Command::ConfigReadResp | Command::CxlMemDrs => self.size,
            Command::WriteResp | Command::ConfigWriteResp | Command::CxlMemNdr => 0,
        }
    }

    /// Detaches and returns the payload buffer, leaving the packet without
    /// data. Components that consume a payload should hand the buffer back
    /// to [`crate::sim::Ctx::recycle_payload`] so DMA bursts reuse
    /// allocations instead of hitting the heap per TLP.
    pub fn take_payload(&mut self) -> Option<Vec<u8>> {
        self.payload.take()
    }

    /// Clones the packet, carrying its data in `payload` (a buffer already
    /// filled with a copy of this packet's payload bytes — typically drawn
    /// from the scheduler's recycled-buffer pool via
    /// [`crate::sim::Ctx::clone_packet`] rather than a fresh allocation).
    ///
    /// # Panics
    ///
    /// Panics if `payload` presence or length disagrees with this packet.
    pub fn clone_with_payload(&self, payload: Option<Vec<u8>>) -> Packet {
        assert_eq!(
            payload.as_ref().map(Vec::len),
            self.payload.as_ref().map(Vec::len),
            "clone payload must mirror the original"
        );
        Packet {
            id: self.id,
            cmd: self.cmd,
            addr: self.addr,
            size: self.size,
            requester: self.requester,
            pci_bus: self.pci_bus,
            posted: self.posted,
            payload,
            route: self.route.clone(),
            status: self.status,
        }
    }

    /// Pushes a routing hop (done by a forwarding component on the request
    /// path so it can route the response back).
    #[inline]
    pub fn push_route(&mut self, component: ComponentId, port: PortId) {
        self.route.push(RouteHop { component, port });
    }

    /// Pops the most recent routing hop (done on the response path).
    #[inline]
    pub fn pop_route(&mut self) -> Option<RouteHop> {
        self.route.pop()
    }

    /// Most recent routing hop without removing it.
    #[inline]
    pub fn peek_route(&self) -> Option<&RouteHop> {
        self.route.last()
    }

    /// Depth of the route stack.
    pub fn route_depth(&self) -> usize {
        self.route.depth()
    }

    /// Converts this request into its response, preserving id, address,
    /// size, requester, route stack and PCI bus number.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not a request or is posted.
    pub fn into_response(mut self) -> Packet {
        assert!(self.is_request(), "cannot respond to a response");
        assert!(!self.posted, "posted requests take no response");
        self.cmd = self.cmd.response();
        if self.cmd.is_write() {
            self.payload = None;
        }
        self
    }

    /// Converts this request into a read response carrying `data`.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not a read request or the data length differs
    /// from the request size.
    pub fn into_read_response(mut self, data: Vec<u8>) -> Packet {
        assert!(
            matches!(self.cmd, Command::ReadReq | Command::ConfigRead | Command::CxlMemRd),
            "into_read_response on {:?}",
            self.cmd
        );
        assert_eq!(data.len() as u32, self.size, "response data length must equal request size");
        self.cmd = self.cmd.response();
        self.payload = Some(data);
        self
    }

    /// Converts this non-posted request into an **error completion** with the
    /// given status, preserving id, address, size, requester, route stack and
    /// PCI bus number so the completion retraces the request's path home.
    ///
    /// Read-flavoured requests return all-ones data — the value a real root
    /// complex forwards to the CPU on a master abort — while write-flavoured
    /// requests complete with no payload.
    ///
    /// # Panics
    ///
    /// Panics if the packet is not a request, is posted, or `status` is
    /// [`CompletionStatus::SuccessfulCompletion`].
    pub fn into_error_response(mut self, status: CompletionStatus) -> Packet {
        assert!(self.is_request(), "cannot synthesize a completion for a response");
        assert!(!self.posted, "posted requests take no completion");
        assert!(status.is_error(), "error completions must carry an error status");
        self.status = status;
        match self.cmd {
            Command::ReadReq | Command::ConfigRead | Command::CxlMemRd => {
                self.cmd = self.cmd.response();
                self.payload = Some(vec![0xff; self.size as usize]);
            }
            _ => {
                self.cmd = self.cmd.response();
                self.payload = None;
            }
        }
        self
    }

    /// Serializes the packet — identity, header fields, payload and the
    /// full route stack — into a checkpoint.
    pub fn encode(&self, w: &mut StateWriter) {
        w.u64(self.id.0);
        w.u8(self.cmd.encode());
        w.u64(self.addr);
        w.u32(self.size);
        w.u32(self.requester.0);
        w.opt_u8(self.pci_bus);
        w.bool(self.posted);
        match &self.payload {
            Some(p) => {
                w.bool(true);
                w.bytes(p);
            }
            None => w.bool(false),
        }
        w.usize(self.route.depth());
        // Oldest hop first, so decode can push in order.
        let spill: &[RouteHop] = self.route.spill.as_ref().map_or(&[], |s| s);
        for hop in self.route.inline[..self.route.len as usize].iter().chain(spill) {
            w.u32(hop.component.0);
            w.u16(hop.port.0);
        }
        w.u8(self.status.encode());
    }

    /// Deserializes a packet from a checkpoint.
    pub fn decode(r: &mut StateReader<'_>) -> Result<Self, SnapshotError> {
        let id = PacketId(r.u64()?);
        let cmd = Command::decode(r.u8()?)?;
        let addr = r.u64()?;
        let size = r.u32()?;
        let requester = ComponentId(r.u32()?);
        let pci_bus = r.opt_u8()?;
        let posted = r.bool()?;
        let payload = if r.bool()? { Some(r.bytes()?.to_vec()) } else { None };
        let depth = r.usize()?;
        let mut route = RouteStack::new();
        for _ in 0..depth {
            let component = ComponentId(r.u32()?);
            let port = PortId(r.u16()?);
            route.push(RouteHop { component, port });
        }
        let status = CompletionStatus::decode(r.u8()?)?;
        Ok(Self { id, cmd, addr, size, requester, pci_bus, posted, payload, route, status })
    }
}

/// Serializes a packet queue oldest-first for a checkpoint.
pub fn encode_packet_queue(w: &mut StateWriter, q: &std::collections::VecDeque<Packet>) {
    w.usize(q.len());
    for pkt in q {
        pkt.encode(w);
    }
}

/// Deserializes a packet queue written by [`encode_packet_queue`].
pub fn decode_packet_queue(
    r: &mut StateReader<'_>,
) -> Result<std::collections::VecDeque<Packet>, SnapshotError> {
    let n = r.usize()?;
    let mut q = std::collections::VecDeque::with_capacity(n.min(4096));
    for _ in 0..n {
        q.push_back(Packet::decode(r)?);
    }
    Ok(q)
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:?} addr={:#x} size={}", self.id, self.cmd, self.addr, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(cmd: Command) -> Packet {
        Packet::request(PacketId(1), cmd, 0x4000_0000, 64, ComponentId(3))
    }

    #[test]
    fn command_direction_classification() {
        assert!(Command::ReadReq.is_request());
        assert!(Command::WriteReq.is_request());
        assert!(Command::ConfigRead.is_request());
        assert!(Command::Message.is_request());
        assert!(Command::ReadResp.is_response());
        assert!(Command::WriteResp.is_response());
        assert!(Command::ConfigWriteResp.is_response());
    }

    #[test]
    fn command_read_write_classification() {
        assert!(Command::ReadReq.is_read());
        assert!(Command::ConfigReadResp.is_read());
        assert!(Command::WriteReq.is_write());
        assert!(Command::ConfigWrite.is_write());
        assert!(!Command::Message.is_read());
        assert!(!Command::Message.is_write());
    }

    #[test]
    fn response_pairs() {
        assert_eq!(Command::ReadReq.response(), Command::ReadResp);
        assert_eq!(Command::WriteReq.response(), Command::WriteResp);
        assert_eq!(Command::ConfigRead.response(), Command::ConfigReadResp);
        assert_eq!(Command::ConfigWrite.response(), Command::ConfigWriteResp);
    }

    #[test]
    #[should_panic(expected = "no response command")]
    fn message_has_no_response() {
        let _ = Command::Message.response();
    }

    #[test]
    fn request_to_response_preserves_identity() {
        let mut r = req(Command::ReadReq);
        r.stamp_pci_bus(2);
        r.push_route(ComponentId(9), PortId(1));
        let resp = r.into_read_response(vec![0xab; 64]);
        assert_eq!(resp.id(), PacketId(1));
        assert_eq!(resp.cmd(), Command::ReadResp);
        assert_eq!(resp.addr(), 0x4000_0000);
        assert_eq!(resp.pci_bus(), Some(2));
        assert_eq!(resp.requester(), ComponentId(3));
        assert_eq!(
            resp.peek_route(),
            Some(&RouteHop { component: ComponentId(9), port: PortId(1) })
        );
        assert_eq!(resp.payload().unwrap().len(), 64);
    }

    #[test]
    fn write_response_drops_payload() {
        let r = req(Command::WriteReq).with_payload(vec![0u8; 64]);
        let resp = r.into_response();
        assert_eq!(resp.cmd(), Command::WriteResp);
        assert!(resp.payload().is_none());
        assert_eq!(resp.payload_len(), 0);
    }

    #[test]
    fn pci_bus_stamp_only_sticks_once() {
        let mut r = req(Command::ReadReq);
        assert_eq!(r.pci_bus(), None);
        r.stamp_pci_bus(1);
        r.stamp_pci_bus(7);
        assert_eq!(r.pci_bus(), Some(1));
        r.clear_pci_bus();
        assert_eq!(r.pci_bus(), None);
    }

    #[test]
    fn payload_len_follows_command_semantics() {
        assert_eq!(req(Command::ReadReq).payload_len(), 0);
        assert_eq!(req(Command::WriteReq).payload_len(), 64);
        let resp = req(Command::ReadReq).into_read_response(vec![0; 64]);
        assert_eq!(resp.payload_len(), 64);
    }

    #[test]
    fn route_stack_is_lifo() {
        let mut r = req(Command::ReadReq);
        r.push_route(ComponentId(1), PortId(0));
        r.push_route(ComponentId(2), PortId(5));
        assert_eq!(r.route_depth(), 2);
        assert_eq!(r.pop_route().unwrap().component, ComponentId(2));
        assert_eq!(r.pop_route().unwrap().component, ComponentId(1));
        assert_eq!(r.pop_route(), None);
    }

    #[test]
    #[should_panic(expected = "posted requests take no response")]
    fn posted_write_cannot_be_answered() {
        let mut r = req(Command::WriteReq);
        r.set_posted(true);
        let _ = r.into_response();
    }

    #[test]
    #[should_panic(expected = "is not a request command")]
    fn cannot_construct_request_from_response_command() {
        let _ = req(Command::ReadResp);
    }

    #[test]
    #[should_panic(expected = "payload length must equal packet size")]
    fn payload_size_mismatch_panics() {
        let _ = req(Command::WriteReq).with_payload(vec![0u8; 3]);
    }

    #[test]
    fn error_read_completion_returns_all_ones() {
        let mut r = req(Command::ReadReq);
        r.stamp_pci_bus(4);
        r.push_route(ComponentId(9), PortId(1));
        let resp = r.into_error_response(CompletionStatus::UnsupportedRequest);
        assert_eq!(resp.cmd(), Command::ReadResp);
        assert_eq!(resp.status(), CompletionStatus::UnsupportedRequest);
        assert!(resp.is_error());
        assert_eq!(resp.id(), PacketId(1));
        assert_eq!(resp.pci_bus(), Some(4));
        assert_eq!(resp.route_depth(), 1);
        assert!(resp.payload().unwrap().iter().all(|&b| b == 0xff));
        assert_eq!(resp.payload_len(), 64);
    }

    #[test]
    fn error_write_completion_carries_no_payload() {
        let r = req(Command::WriteReq).with_payload(vec![0u8; 64]);
        let resp = r.into_error_response(CompletionStatus::CompletionTimeout);
        assert_eq!(resp.cmd(), Command::WriteResp);
        assert_eq!(resp.status(), CompletionStatus::CompletionTimeout);
        assert!(resp.payload().is_none());
    }

    #[test]
    fn successful_requests_report_no_error() {
        let r = req(Command::ReadReq);
        assert_eq!(r.status(), CompletionStatus::SuccessfulCompletion);
        assert!(!r.is_error());
        let resp = r.into_read_response(vec![0; 64]);
        assert!(!resp.is_error());
    }

    #[test]
    #[should_panic(expected = "posted requests take no completion")]
    fn posted_request_cannot_error_complete() {
        let mut r = req(Command::WriteReq);
        r.set_posted(true);
        let _ = r.into_error_response(CompletionStatus::UnsupportedRequest);
    }

    #[test]
    #[should_panic(expected = "must carry an error status")]
    fn error_completion_rejects_success_status() {
        let _ = req(Command::ReadReq).into_error_response(CompletionStatus::SuccessfulCompletion);
    }

    #[test]
    fn cxl_command_classification() {
        assert!(Command::CxlMemRd.is_request());
        assert!(Command::CxlMemWr.is_request());
        assert!(Command::CxlMemDrs.is_response());
        assert!(Command::CxlMemNdr.is_response());
        assert!(Command::CxlMemRd.is_read());
        assert!(Command::CxlMemDrs.is_read());
        assert!(Command::CxlMemWr.is_write());
        assert!(Command::CxlMemNdr.is_write());
        assert_eq!(Command::CxlMemRd.response(), Command::CxlMemDrs);
        assert_eq!(Command::CxlMemWr.response(), Command::CxlMemNdr);
    }

    #[test]
    fn cxl_requests_are_non_posted_by_default() {
        assert!(!req(Command::CxlMemRd).is_posted());
        assert!(!req(Command::CxlMemWr).is_posted());
    }

    #[test]
    fn cxl_payload_len_follows_direction() {
        assert_eq!(req(Command::CxlMemRd).payload_len(), 0);
        assert_eq!(req(Command::CxlMemWr).payload_len(), 64);
        let drs = req(Command::CxlMemRd).into_read_response(vec![0; 64]);
        assert_eq!(drs.cmd(), Command::CxlMemDrs);
        assert_eq!(drs.payload_len(), 64);
        let ndr = req(Command::CxlMemWr).with_payload(vec![0; 64]).into_response();
        assert_eq!(ndr.cmd(), Command::CxlMemNdr);
        assert_eq!(ndr.payload_len(), 0);
        assert!(ndr.payload().is_none());
    }

    #[test]
    fn cxl_error_read_completion_returns_all_ones() {
        let resp = req(Command::CxlMemRd).into_error_response(CompletionStatus::UnsupportedRequest);
        assert_eq!(resp.cmd(), Command::CxlMemDrs);
        assert!(resp.payload().unwrap().iter().all(|&b| b == 0xff));
    }

    #[test]
    fn cxl_commands_roundtrip_the_checkpoint_codec() {
        for cmd in [Command::CxlMemRd, Command::CxlMemWr, Command::CxlMemDrs, Command::CxlMemNdr] {
            assert_eq!(Command::decode(cmd.encode()).unwrap(), cmd);
        }
        // Pre-CXL encodings are untouched: old checkpoints stay readable.
        assert_eq!(Command::Message.encode(), 8);
        assert_eq!(Command::CxlMemRd.encode(), 9);
    }
}
