//! The DMA IOCache (gem5's `IOCache`).
//!
//! gem5 inserts a small cache between off-chip DMA masters and the memory
//! bus "to ensure the coherency of DMA accesses from the off-chip devices as
//! well as act as a bandwidth buffer between connections of different
//! widths" (§III). This model captures the timing-relevant behaviour: a
//! lookup latency on the request path, a fill latency on the response path,
//! and an MSHR-style bound on outstanding misses that backpressures the
//! device side when memory is slow.

use std::collections::VecDeque;

use crate::component::{Component, Event, PortId, RecvResult};
use crate::packet::{decode_packet_queue, encode_packet_queue, Packet};
use crate::sim::Ctx;
use crate::snapshot::{SnapshotError, StateReader, StateWriter};
use crate::stats::{Counter, StatsBuilder};
use crate::tick::Tick;

/// Port facing the device/root-complex side (receives DMA requests).
pub const IOCACHE_DEV_SIDE: PortId = PortId(0);
/// Port facing the memory bus (sends requests onward).
pub const IOCACHE_MEM_SIDE: PortId = PortId(1);

const TAG_REQ: u32 = 0;
const TAG_RESP: u32 = 1;

/// Builder for [`IoCache`]; see [`IoCache::builder`].
#[derive(Debug)]
pub struct IoCacheBuilder {
    name: String,
    lookup_latency: Tick,
    fill_latency: Tick,
    mshrs: usize,
}

impl IoCacheBuilder {
    /// Sets the tag-lookup latency added on the request path.
    pub fn lookup_latency(mut self, t: Tick) -> Self {
        self.lookup_latency = t;
        self
    }

    /// Sets the fill latency added on the response path.
    pub fn fill_latency(mut self, t: Tick) -> Self {
        self.fill_latency = t;
        self
    }

    /// Sets the maximum number of outstanding misses.
    pub fn mshrs(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one MSHR");
        self.mshrs = n;
        self
    }

    /// Builds the cache.
    pub fn build(self) -> IoCache {
        IoCache {
            name: self.name,
            lookup_latency: self.lookup_latency,
            fill_latency: self.fill_latency,
            mshrs: self.mshrs,
            outstanding: 0,
            req_q: VecDeque::new(),
            resp_q: VecDeque::new(),
            req_waiting_peer: false,
            resp_waiting_peer: false,
            owe_dev_retry: false,
            accesses: Counter::new(),
            refusals: Counter::new(),
        }
    }
}

/// Timing model of the DMA IOCache.
#[derive(Debug)]
pub struct IoCache {
    name: String,
    lookup_latency: Tick,
    fill_latency: Tick,
    mshrs: usize,
    /// Requests accepted and not yet answered (delayed, queued or at
    /// memory).
    outstanding: usize,
    req_q: VecDeque<Packet>,
    resp_q: VecDeque<Packet>,
    req_waiting_peer: bool,
    resp_waiting_peer: bool,
    owe_dev_retry: bool,
    accesses: Counter,
    refusals: Counter,
}

impl IoCache {
    /// Starts building an IOCache with gem5-like defaults (2 ns lookup,
    /// 2 ns fill, 16 MSHRs).
    pub fn builder(name: impl Into<String>) -> IoCacheBuilder {
        IoCacheBuilder {
            name: name.into(),
            lookup_latency: crate::tick::ns(2),
            fill_latency: crate::tick::ns(2),
            mshrs: 16,
        }
    }

    fn drain_req(&mut self, ctx: &mut Ctx<'_>) {
        while !self.req_waiting_peer {
            let Some(pkt) = self.req_q.pop_front() else { return };
            let posted = pkt.is_posted();
            match ctx.try_send_request(IOCACHE_MEM_SIDE, pkt) {
                Ok(()) => {
                    // Posted requests get no response; release the MSHR at
                    // forward time.
                    if posted {
                        self.outstanding -= 1;
                        if self.owe_dev_retry {
                            self.owe_dev_retry = false;
                            ctx.send_retry(IOCACHE_DEV_SIDE);
                        }
                    }
                }
                Err(back) => {
                    self.req_q.push_front(back);
                    self.req_waiting_peer = true;
                }
            }
        }
    }

    fn drain_resp(&mut self, ctx: &mut Ctx<'_>) {
        while !self.resp_waiting_peer {
            let Some(pkt) = self.resp_q.pop_front() else { return };
            match ctx.try_send_response(IOCACHE_DEV_SIDE, pkt) {
                Ok(()) => {
                    self.outstanding -= 1;
                    if self.owe_dev_retry {
                        self.owe_dev_retry = false;
                        ctx.send_retry(IOCACHE_DEV_SIDE);
                    }
                }
                Err(back) => {
                    self.resp_q.push_front(back);
                    self.resp_waiting_peer = true;
                }
            }
        }
    }
}

impl Component for IoCache {
    fn name(&self) -> &str {
        &self.name
    }

    fn recv_request(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) -> RecvResult {
        assert_eq!(port, IOCACHE_DEV_SIDE, "{}: DMA requests enter on the device side", self.name);
        if self.outstanding >= self.mshrs {
            self.refusals.inc();
            self.owe_dev_retry = true;
            return RecvResult::Refused(pkt);
        }
        self.outstanding += 1;
        self.accesses.inc();
        ctx.schedule(self.lookup_latency, Event::DelayedPacket { tag: TAG_REQ, pkt });
        RecvResult::Accepted
    }

    fn recv_response(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) -> RecvResult {
        assert_eq!(port, IOCACHE_MEM_SIDE, "{}: memory responses enter on the mem side", self.name);
        ctx.schedule(self.fill_latency, Event::DelayedPacket { tag: TAG_RESP, pkt });
        RecvResult::Accepted
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        let Event::DelayedPacket { tag, pkt } = ev else {
            panic!("{}: unexpected timer", self.name)
        };
        match tag {
            TAG_REQ => {
                self.req_q.push_back(pkt);
                self.drain_req(ctx);
            }
            TAG_RESP => {
                self.resp_q.push_back(pkt);
                self.drain_resp(ctx);
            }
            other => panic!("{}: unknown tag {other}", self.name),
        }
    }

    fn retry_granted(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        match port {
            IOCACHE_MEM_SIDE => {
                self.req_waiting_peer = false;
                self.drain_req(ctx);
            }
            IOCACHE_DEV_SIDE => {
                self.resp_waiting_peer = false;
                self.drain_resp(ctx);
            }
            other => panic!("{}: retry on unknown port {other}", self.name),
        }
    }

    fn report_stats(&self, out: &mut StatsBuilder) {
        out.counter("accesses", &self.accesses);
        out.counter("refusals", &self.refusals);
        out.scalar("outstanding", self.outstanding as f64);
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.outstanding);
        encode_packet_queue(w, &self.req_q);
        encode_packet_queue(w, &self.resp_q);
        w.bool(self.req_waiting_peer);
        w.bool(self.resp_waiting_peer);
        w.bool(self.owe_dev_retry);
        self.accesses.encode(w);
        self.refusals.encode(w);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.outstanding = r.usize()?;
        self.req_q = decode_packet_queue(r)?;
        self.resp_q = decode_packet_queue(r)?;
        self.req_waiting_peer = r.bool()?;
        self.resp_waiting_peer = r.bool()?;
        self.owe_dev_retry = r.bool()?;
        self.accesses = Counter::decode(r)?;
        self.refusals = Counter::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Command;
    use crate::sim::{RunOutcome, Simulation};
    use crate::testutil::{Requester, Responder, REQUESTER_PORT, RESPONDER_PORT};
    use crate::tick::ns;

    fn run_iocache(n: u64, mshrs: usize, service: Tick) -> (usize, Tick, f64) {
        let mut sim = Simulation::new();
        let script = (0..n).map(|i| (Command::WriteReq, 0x8000_0000 + i * 64, 64)).collect();
        let (req, done) = Requester::new("dma", script);
        let r = sim.add(Box::new(req));
        let c = sim.add(Box::new(
            IoCache::builder("iocache")
                .lookup_latency(ns(2))
                .fill_latency(ns(2))
                .mshrs(mshrs)
                .build(),
        ));
        let (resp, _) = Responder::new("mem", service);
        let m = sim.add(Box::new(resp));
        sim.connect((r, REQUESTER_PORT), (c, IOCACHE_DEV_SIDE));
        sim.connect((c, IOCACHE_MEM_SIDE), (m, RESPONDER_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        let completions = done.borrow().len();
        let refusals = sim.stats().get("iocache.refusals").unwrap();
        (completions, sim.now(), refusals)
    }

    #[test]
    fn adds_lookup_and_fill_latency() {
        let (n, end, _) = run_iocache(1, 16, ns(30));
        assert_eq!(n, 1);
        // 2 ns lookup + 30 ns memory + 2 ns fill.
        assert_eq!(end, ns(34));
    }

    #[test]
    fn mshr_limit_backpressures_but_loses_nothing() {
        let (n, _, refusals) = run_iocache(64, 2, ns(30));
        assert_eq!(n, 64);
        assert!(refusals > 0.0, "a 2-MSHR cache must refuse a 64-deep burst");
    }

    #[test]
    fn wide_mshrs_never_refuse_small_bursts() {
        let (n, _, refusals) = run_iocache(8, 16, ns(30));
        assert_eq!(n, 8);
        assert_eq!(refusals, 0.0);
    }
}
