//! MemBus ↔ IOBus bridge (gem5's `Bridge`).
//!
//! A [`Bridge`] is a slave on the memory bus and a master on the I/O bus: it
//! accepts requests destined for the off-chip address range, delays them by
//! a configurable latency through bounded request/response queues, and
//! forwards them. Responses travel the opposite way. The paper builds its
//! root complex and switch on top of this component's structure (§III).

use std::collections::VecDeque;

use crate::component::{Component, Event, PortId, RecvResult};
use crate::packet::{decode_packet_queue, encode_packet_queue, Packet};
use crate::sim::Ctx;
use crate::snapshot::{SnapshotError, StateReader, StateWriter};
use crate::stats::{Counter, StatsBuilder};
use crate::tick::Tick;
use crate::trace::{TraceCategory, TraceKind};

/// Port facing the memory bus (receives requests, emits responses).
pub const BRIDGE_MEM_SIDE: PortId = PortId(0);
/// Port facing the I/O bus (emits requests, receives responses).
pub const BRIDGE_IO_SIDE: PortId = PortId(1);

const TAG_REQ: u32 = 0;
const TAG_RESP: u32 = 1;

/// Builder for [`Bridge`]; see [`Bridge::builder`].
#[derive(Debug)]
pub struct BridgeBuilder {
    name: String,
    delay: Tick,
    req_capacity: usize,
    resp_capacity: usize,
}

impl BridgeBuilder {
    /// Sets the one-way forwarding delay.
    pub fn delay(mut self, t: Tick) -> Self {
        self.delay = t;
        self
    }

    /// Sets the request queue depth.
    pub fn req_capacity(mut self, n: usize) -> Self {
        assert!(n > 0, "request queue must hold at least one packet");
        self.req_capacity = n;
        self
    }

    /// Sets the response queue depth.
    pub fn resp_capacity(mut self, n: usize) -> Self {
        assert!(n > 0, "response queue must hold at least one packet");
        self.resp_capacity = n;
        self
    }

    /// Builds the bridge.
    pub fn build(self) -> Bridge {
        Bridge {
            name: self.name,
            delay: self.delay,
            req_capacity: self.req_capacity,
            resp_capacity: self.resp_capacity,
            req_inflight: 0,
            resp_inflight: 0,
            req_q: VecDeque::new(),
            resp_q: VecDeque::new(),
            req_waiting_peer: false,
            resp_waiting_peer: false,
            owe_mem_retry: false,
            owe_io_retry: false,
            forwarded: Counter::new(),
            refusals: Counter::new(),
        }
    }
}

/// Unidirectional request bridge with bounded queues in both directions.
#[derive(Debug)]
pub struct Bridge {
    name: String,
    delay: Tick,
    req_capacity: usize,
    resp_capacity: usize,
    req_inflight: usize,
    resp_inflight: usize,
    req_q: VecDeque<Packet>,
    resp_q: VecDeque<Packet>,
    req_waiting_peer: bool,
    resp_waiting_peer: bool,
    owe_mem_retry: bool,
    owe_io_retry: bool,
    forwarded: Counter,
    refusals: Counter,
}

impl Bridge {
    /// Starts building a bridge named `name` with a 50 ns delay and 16-deep
    /// queues (gem5's defaults are of this order).
    pub fn builder(name: impl Into<String>) -> BridgeBuilder {
        BridgeBuilder {
            name: name.into(),
            delay: crate::tick::ns(50),
            req_capacity: 16,
            resp_capacity: 16,
        }
    }

    fn drain_req(&mut self, ctx: &mut Ctx<'_>) {
        while !self.req_waiting_peer {
            let Some(pkt) = self.req_q.pop_front() else { return };
            match ctx.try_send_request(BRIDGE_IO_SIDE, pkt) {
                Ok(()) => {
                    self.forwarded.inc();
                    if self.owe_mem_retry && !self.req_full() {
                        self.owe_mem_retry = false;
                        ctx.send_retry(BRIDGE_MEM_SIDE);
                    }
                }
                Err(back) => {
                    self.req_q.push_front(back);
                    self.req_waiting_peer = true;
                }
            }
        }
    }

    fn drain_resp(&mut self, ctx: &mut Ctx<'_>) {
        while !self.resp_waiting_peer {
            let Some(pkt) = self.resp_q.pop_front() else { return };
            match ctx.try_send_response(BRIDGE_MEM_SIDE, pkt) {
                Ok(()) => {
                    if self.owe_io_retry && !self.resp_full() {
                        self.owe_io_retry = false;
                        ctx.send_retry(BRIDGE_IO_SIDE);
                    }
                }
                Err(back) => {
                    self.resp_q.push_front(back);
                    self.resp_waiting_peer = true;
                }
            }
        }
    }

    fn req_full(&self) -> bool {
        self.req_q.len() + self.req_inflight >= self.req_capacity
    }

    fn resp_full(&self) -> bool {
        self.resp_q.len() + self.resp_inflight >= self.resp_capacity
    }
}

impl Component for Bridge {
    fn name(&self) -> &str {
        &self.name
    }

    fn recv_request(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) -> RecvResult {
        assert_eq!(port, BRIDGE_MEM_SIDE, "{}: requests only cross mem→io", self.name);
        if self.req_full() {
            self.refusals.inc();
            self.owe_mem_retry = true;
            return RecvResult::Refused(pkt);
        }
        if ctx.tracing(TraceCategory::Fabric) {
            ctx.emit(
                TraceCategory::Fabric,
                TraceKind::FabricForward,
                Some(pkt.id()),
                Some(pkt.cmd()),
                u64::from(BRIDGE_IO_SIDE.0),
            );
        }
        self.req_inflight += 1;
        ctx.schedule(self.delay, Event::DelayedPacket { tag: TAG_REQ, pkt });
        RecvResult::Accepted
    }

    fn recv_response(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) -> RecvResult {
        assert_eq!(port, BRIDGE_IO_SIDE, "{}: responses only cross io→mem", self.name);
        if self.resp_full() {
            self.refusals.inc();
            self.owe_io_retry = true;
            return RecvResult::Refused(pkt);
        }
        if ctx.tracing(TraceCategory::Fabric) {
            ctx.emit(
                TraceCategory::Fabric,
                TraceKind::FabricForward,
                Some(pkt.id()),
                Some(pkt.cmd()),
                u64::from(BRIDGE_MEM_SIDE.0),
            );
        }
        self.resp_inflight += 1;
        ctx.schedule(self.delay, Event::DelayedPacket { tag: TAG_RESP, pkt });
        RecvResult::Accepted
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        let Event::DelayedPacket { tag, pkt } = ev else {
            panic!("{}: unexpected timer", self.name)
        };
        match tag {
            TAG_REQ => {
                self.req_inflight -= 1;
                self.req_q.push_back(pkt);
                self.drain_req(ctx);
            }
            TAG_RESP => {
                self.resp_inflight -= 1;
                self.resp_q.push_back(pkt);
                self.drain_resp(ctx);
            }
            other => panic!("{}: unknown tag {other}", self.name),
        }
    }

    fn retry_granted(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        match port {
            BRIDGE_IO_SIDE => {
                self.req_waiting_peer = false;
                self.drain_req(ctx);
            }
            BRIDGE_MEM_SIDE => {
                self.resp_waiting_peer = false;
                self.drain_resp(ctx);
            }
            other => panic!("{}: retry on unknown port {other}", self.name),
        }
    }

    fn report_stats(&self, out: &mut StatsBuilder) {
        out.counter("forwarded", &self.forwarded);
        out.counter("refusals", &self.refusals);
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.req_inflight);
        w.usize(self.resp_inflight);
        encode_packet_queue(w, &self.req_q);
        encode_packet_queue(w, &self.resp_q);
        w.bool(self.req_waiting_peer);
        w.bool(self.resp_waiting_peer);
        w.bool(self.owe_mem_retry);
        w.bool(self.owe_io_retry);
        self.forwarded.encode(w);
        self.refusals.encode(w);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.req_inflight = r.usize()?;
        self.resp_inflight = r.usize()?;
        self.req_q = decode_packet_queue(r)?;
        self.resp_q = decode_packet_queue(r)?;
        self.req_waiting_peer = r.bool()?;
        self.resp_waiting_peer = r.bool()?;
        self.owe_mem_retry = r.bool()?;
        self.owe_io_retry = r.bool()?;
        self.forwarded = Counter::decode(r)?;
        self.refusals = Counter::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Command;
    use crate::sim::{RunOutcome, Simulation};
    use crate::testutil::{Requester, Responder, REQUESTER_PORT, RESPONDER_PORT};
    use crate::tick::ns;

    fn run_bridge(
        n_pkts: u64,
        delay: Tick,
        req_cap: usize,
        service: Tick,
    ) -> (Vec<(crate::packet::PacketId, Tick)>, crate::stats::StatsSnapshot) {
        let mut sim = Simulation::new();
        let script = (0..n_pkts).map(|i| (Command::ReadReq, 0x1000 + i * 64, 64)).collect();
        let (req, done) = Requester::new("cpu", script);
        let r = sim.add(Box::new(req));
        let b =
            sim.add(Box::new(Bridge::builder("bridge").delay(delay).req_capacity(req_cap).build()));
        let (resp, _) = Responder::new("dev", service);
        let d = sim.add(Box::new(resp));
        sim.connect((r, REQUESTER_PORT), (b, BRIDGE_MEM_SIDE));
        sim.connect((b, BRIDGE_IO_SIDE), (d, RESPONDER_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        let out = done.borrow().clone();
        (out, sim.stats())
    }

    #[test]
    fn single_request_sees_two_crossings() {
        let (done, _) = run_bridge(1, ns(50), 16, ns(100));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, ns(200));
    }

    #[test]
    fn all_packets_survive_a_shallow_queue() {
        let (done, stats) = run_bridge(32, ns(50), 2, ns(10));
        assert_eq!(done.len(), 32);
        assert_eq!(stats.get("bridge.forwarded"), Some(32.0));
    }

    #[test]
    fn zero_delay_bridge_is_transparent() {
        let (done, _) = run_bridge(1, 0, 16, ns(100));
        assert_eq!(done[0].1, ns(100));
    }

    #[test]
    #[should_panic(expected = "requests only cross mem")]
    fn request_on_io_side_panics() {
        let mut sim = Simulation::new();
        let (req, _) = Requester::new("cpu", vec![(Command::ReadReq, 0, 4)]);
        let r = sim.add(Box::new(req));
        let b = sim.add(Box::new(Bridge::builder("bridge").build()));
        // Wired backwards on purpose.
        sim.connect((r, REQUESTER_PORT), (b, BRIDGE_IO_SIDE));
        sim.run_to_quiesce();
    }
}
