//! Conservative parallel execution of one simulation across N shards.
//!
//! The topology tree is partitioned at *link* boundaries: every PCIe link
//! has nonzero serialization + propagation latency, so a TLP (or DLLP)
//! that crosses a cut cannot arrive sooner than that link's **lookahead
//! horizon** `h = tx_time(min wire unit) + propagation`. That bound is
//! what makes conservative synchronization possible (MGSim-style null
//! messages degenerate to a global window here because the fabric is a
//! tree): if every shard has processed all events below tick `T`, no
//! cross-shard message can be pending for any tick below `T + Δ`, where
//! `Δ = min h` over all cut edges. So the driver repeatedly:
//!
//! 1. computes `T = min` next-event tick over all shards;
//! 2. lets every shard run `[T, T + Δ)` in parallel ([`Simulation::run_window`]);
//! 3. at the barrier, drains each shard's outbox
//!    ([`Ctx::remote_schedule`](crate::sim::Ctx::remote_schedule)) and
//!    injects every message into its destination shard's queue with the
//!    `(tick, order)` key minted on the sending side.
//!
//! **Bit-identity.** Events are globally ordered by `(tick, order stamp)`
//! where the stamp is a pure function of the scheduling component — see
//! [`crate::sim`] — so each shard's calendar pops its *subset* of the
//! serial sequence in the serial relative order, and mailbox injection
//! preserves the stamps. Every component therefore observes the identical
//! event sequence it would observe serially: same quiesce time, same
//! statistics, same packet ids. Trace records carry their dispatch stamp
//! and are k-way merged by `(at, stamp)` into one global ring whose
//! eviction matches the serial ring, so even the trace stream (and its
//! drop count) is bit-identical. DESIGN.md §14 gives the full argument.
//!
//! **Threading.** Plain `std::thread::scope` workers — one per shard —
//! plus a generation-counting spin barrier; no async runtime. Workers
//! only ever run inside `run_window`; the coordinator owns everything
//! between barriers. `Simulation` is not `Send` (components hold `Rc`
//! harness handles), so shards live in [`ShardCell`]s whose safety
//! invariant is documented below.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::calendar::CalendarQueue;
use crate::component::{ComponentId, Event, PortId};
use crate::sim::{
    decode_action, encode_action, open_checkpoint, seal_checkpoint, Action, ActionBody, RunOutcome,
    Simulation, NUM_STREAMS,
};
use crate::snapshot::{SnapshotError, StateReader, StateWriter};
use crate::stats::StatsSnapshot;
use crate::tick::Tick;
use crate::trace::{TraceEvent, TraceLog, Tracer};

/// One directed cut edge: events staged on `from_shard`'s outbox under
/// this edge's index are injected into `to_shard`'s queue targeting
/// `dest` (the far half of the cut link). `horizon` is the minimum delay
/// any message on this edge can carry — the link's smallest wire
/// serialization time plus its propagation delay.
#[derive(Debug, Clone, Copy)]
pub struct EdgeSpec {
    /// Shard whose outbox carries this edge's messages.
    pub from_shard: u32,
    /// Shard whose queue receives them.
    pub to_shard: u32,
    /// The component the messages are dispatched into.
    pub dest: ComponentId,
    /// Conservative lower bound on message delay, in ticks (must be > 0).
    pub horizon: Tick,
}

/// Where a global component id lives in a partitioned run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The component lives whole in one shard.
    Shard(u32),
    /// A cut link, split into two half-components sharing the gid:
    /// physical end 0 (the upstream/parent side) lives in `end0`, end 1
    /// (the downstream/child side) in `end1`.
    Split {
        /// Shard owning physical end 0.
        end0: u32,
        /// Shard owning physical end 1.
        end1: u32,
    },
}

/// A queued action bound for a split component, shown to [`RouteEndFn`]
/// so the link layer can say which physical end it belongs to.
#[derive(Debug)]
pub enum QueuedFor<'a> {
    /// A timer or delayed-packet event.
    Event(&'a Event),
    /// A retry grant arriving on `port`.
    Retry {
        /// The port the retry is granted on.
        port: PortId,
    },
}

/// Maps a queued action for a split component to the physical end
/// (0 or 1) that handles it. Provided by the link layer — the only
/// component kind that can be split — and used when a checkpoint is
/// restored under a different shard count to route each queue entry to
/// the shard owning the right half.
pub type RouteEndFn = fn(&QueuedFor<'_>) -> u8;

/// How a simulation is divided: a placement per global component id, the
/// directed cut edges, and the split-event router.
pub struct ShardPlan {
    /// Placement of each global component id, indexed by gid.
    pub placements: Vec<Placement>,
    /// Every directed cut edge; [`Ctx::remote_schedule`] indexes this
    /// table.
    ///
    /// [`Ctx::remote_schedule`]: crate::sim::Ctx::remote_schedule
    pub edges: Vec<EdgeSpec>,
    /// Routes split-component queue entries on restore.
    pub route_end: RouteEndFn,
}

/// A `Simulation` slot shared between the coordinator and one worker.
///
/// # Safety invariant
///
/// `Simulation` is `!Send`/`!Sync` (components hold `Rc` handles shared
/// with the build-time harness, and all kernel state is `Cell`/`RefCell`).
/// The driver upholds exclusive access by construction:
///
/// * between barriers, *only* shard `i`'s worker touches shard `i` (and
///   only via `run_window`);
/// * outside the worker phase, *only* the coordinator thread touches any
///   shard;
/// * the spin barrier's acquire/release pairs order those phases, so all
///   writes made by one side are visible to the other;
/// * `Rc` clones held by harness code (workload handles, config spaces)
///   are only dereferenced by the shard that owns their components —
///   the partitioner places every component of such a cluster in one
///   shard — or by the coordinator outside `run`.
struct ShardCell(UnsafeCell<Simulation>);

// SAFETY: see the invariant above — access is phase-exclusive, never
// actually concurrent, and the barrier provides the happens-before edges.
unsafe impl Sync for ShardCell {}

/// A generation-counting hybrid barrier for `parties` threads. Windows
/// are typically tens of microseconds of work, so each waiter spins a
/// bounded number of iterations first (near-free rendezvous when every
/// thread has its own core), then parks on a condvar. Parking matters
/// when threads outnumber cores: a spinner — even one yielding its
/// timeslice — can burn whole scheduler quanta before the thread it
/// waits on runs, turning microsecond windows into millisecond ones; a
/// parked waiter instead guarantees an immediate handoff. On an
/// oversubscribed host the spin phase is pointless by construction, so
/// it is skipped entirely (`spin_limit` 0).
struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    /// Iterations to busy-wait before parking; 0 when `parties` exceeds
    /// the host's core count.
    spin_limit: u32,
    lock: Mutex<()>,
    cv: Condvar,
}

impl SpinBarrier {
    /// Spins this many iterations before parking (when cores suffice).
    const SPIN_LIMIT: u32 = 1 << 12;

    fn new(parties: usize) -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            spin_limit: if cores >= parties { Self::SPIN_LIMIT } else { 0 },
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            self.arrived.store(0, Ordering::Relaxed);
            // Publish the new generation under the lock so a waiter that
            // checked it just before parking cannot miss the wakeup.
            let guard = self.lock.lock().expect("barrier lock");
            self.generation.store(gen.wrapping_add(1), Ordering::Release);
            drop(guard);
            self.cv.notify_all();
        } else {
            let mut spins = 0u32;
            loop {
                if self.generation.load(Ordering::Acquire) != gen {
                    return;
                }
                if spins < self.spin_limit {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    let mut guard = self.lock.lock().expect("barrier lock");
                    while self.generation.load(Ordering::Acquire) == gen {
                        guard = self.cv.wait(guard).expect("barrier condvar");
                    }
                    return;
                }
            }
        }
    }
}

/// Drives one logical simulation split across N [`Simulation`] shards,
/// bit-identical to running it serially.
pub struct ShardedSimulator {
    shards: Vec<ShardCell>,
    plan: ShardPlan,
    /// Global window width: the minimum lookahead horizon over all cut
    /// edges (`Tick::MAX` when nothing is cut).
    delta: Tick,
    /// Global clock frontier, maintained like [`Simulation::now`].
    now: Tick,
    /// The merged trace ring; per-shard tracers are unbounded staging
    /// buffers drained into this ring (with serial-faithful eviction)
    /// every window.
    tracer: Tracer,
    names: Vec<String>,
}

impl ShardedSimulator {
    /// Assembles a driver from per-shard simulations and the plan that
    /// partitioned them. Every shard must carry the full-length arena
    /// (remote slots included) so component ids and fingerprints are
    /// global.
    ///
    /// # Panics
    ///
    /// Panics if the shards disagree on topology fingerprint, the plan's
    /// placement table length doesn't match the arena, or an edge has a
    /// zero horizon.
    pub fn new(shards: Vec<Simulation>, plan: ShardPlan) -> Self {
        assert!(!shards.is_empty(), "at least one shard required");
        let fp = shards[0].topology_fingerprint();
        for s in &shards[1..] {
            assert_eq!(s.topology_fingerprint(), fp, "shards must share the topology");
        }
        let n = shards[0].shared.arena.len();
        assert_eq!(plan.placements.len(), n, "one placement per component");
        let mut delta = Tick::MAX;
        for e in &plan.edges {
            assert!(e.horizon > 0, "cut edge with zero lookahead cannot be synchronized");
            assert!((e.from_shard as usize) < shards.len() && (e.to_shard as usize) < shards.len());
            delta = delta.min(e.horizon);
        }
        let names = shards[0].shared.names.clone();
        // Per-shard tracers are staging buffers: they must never evict on
        // their own, or the merged stream would diverge from the serial
        // ring. Eviction happens once, at the global ring.
        for s in &shards {
            s.shared.tracer.set_capacity(usize::MAX);
        }
        Self {
            shards: shards.into_iter().map(|s| ShardCell(UnsafeCell::new(s))).collect(),
            plan,
            delta,
            now: 0,
            tracer: Tracer::new(),
            names,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Exclusive access to shard `i`'s simulation, for pre-run
    /// attachment and post-run inspection. (`&mut self` proves no worker
    /// is active.)
    pub fn shard_mut(&mut self, i: usize) -> &mut Simulation {
        self.shards[i].0.get_mut()
    }

    fn shard(&self, i: usize) -> &Simulation {
        // SAFETY: `&self` methods are only called from the coordinator
        // while no worker phase is active (see ShardCell invariant).
        unsafe { &*self.shards[i].0.get() }
    }

    #[allow(clippy::mut_from_ref)]
    /// # Safety
    ///
    /// Caller must be the coordinator between worker phases, and must not
    /// hold another reference to the same shard.
    unsafe fn shard_raw(&self, i: usize) -> &mut Simulation {
        unsafe { &mut *self.shards[i].0.get() }
    }

    /// Current simulated time (global frontier).
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Total events dispatched, summed over shards. Cancelled tombstones
    /// never count, so this equals the serial run's number.
    pub fn events_processed(&self) -> u64 {
        (0..self.shards.len()).map(|i| self.shard(i).events_processed()).sum()
    }

    /// Total events still queued across shards.
    pub fn pending_events(&self) -> usize {
        (0..self.shards.len()).map(|i| self.shard(i).pending_events()).sum()
    }

    /// Enables structured tracing on every shard (see
    /// [`Simulation::set_trace_mask`]).
    pub fn set_trace_mask(&mut self, mask: u32) {
        self.tracer.set_mask(mask);
        for i in 0..self.shards.len() {
            self.shard_mut(i).set_trace_mask(mask);
        }
    }

    /// Caps the *merged* trace ring at `capacity` events — the same bound
    /// [`Simulation::set_trace_capacity`] would apply serially.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.tracer.set_capacity(capacity);
    }

    /// Drains the merged trace ring, exactly the serial run's
    /// [`Simulation::take_trace`].
    pub fn take_trace(&mut self) -> TraceLog {
        TraceLog {
            events: self.tracer.drain(),
            names: self.names.clone(),
            dropped: self.tracer.dropped(),
        }
    }

    /// Merged statistics from every component, keyed identically to the
    /// serial run (each key is reported by exactly one shard; split links
    /// report disjoint per-end key sets under the shared name).
    pub fn stats(&self) -> StatsSnapshot {
        let mut all = std::collections::BTreeMap::new();
        for i in 0..self.shards.len() {
            all.extend(self.shard(i).stats().into_values());
        }
        StatsSnapshot::from_values(all)
    }

    /// Runs until every queue drains, `until` is reached, a component
    /// requests a stop, or `max_events` dispatches happen. Semantics
    /// match [`Simulation::run`] except that stop requests and the event
    /// budget are honoured at window granularity (a stop or overrun
    /// inside a window is noticed at its barrier).
    pub fn run(&mut self, until: Tick, max_events: u64) -> RunOutcome {
        if self.shards.len() == 1 {
            // Single shard: plain serial semantics, including exact stop
            // and budget behaviour.
            let outcome = self.shard_mut(0).run(until, max_events);
            self.drain_shard_traces();
            self.now = match outcome {
                RunOutcome::TimeLimit => until,
                _ => self.shard(0).now(),
            };
            return outcome;
        }
        let budget_end = self.events_processed().saturating_add(max_events);
        // Init every shard on the coordinator thread, before any worker
        // exists — keeps all Rc-held harness state single-threaded here.
        for i in 0..self.shards.len() {
            self.shard_mut(i).ensure_init();
        }
        // `init` may already have staged cross-shard messages; deliver
        // them before the first window's t_min scan.
        let init_stopped = self.exchange_outboxes(0);
        let barrier = SpinBarrier::new(self.shards.len() + 1);
        let window_end = AtomicU64::new(0);
        let outcome = std::thread::scope(|scope| {
            for cell in &self.shards {
                let barrier = &barrier;
                let window_end = &window_end;
                scope.spawn(move || loop {
                    barrier.wait();
                    let end = window_end.load(Ordering::Acquire);
                    if end == 0 {
                        break;
                    }
                    // SAFETY: between the two barrier crossings this
                    // worker is the only thread touching this shard.
                    unsafe { (*cell.0.get()).run_window(end) };
                    barrier.wait();
                });
            }
            let result = loop {
                // All shard access below is coordinator-exclusive: the
                // workers are parked on the start barrier.
                if init_stopped {
                    break RunOutcome::Stopped;
                }
                let mut t_min: Option<Tick> = None;
                let mut total_events = 0u64;
                for i in 0..self.shards.len() {
                    // SAFETY: coordinator phase; workers are parked.
                    let sim = unsafe { self.shard_raw(i) };
                    if let Some(t) = sim.next_event_tick() {
                        t_min = Some(t_min.map_or(t, |m| m.min(t)));
                    }
                    total_events += sim.events_processed();
                }
                let Some(t_min) = t_min else {
                    break RunOutcome::QueueEmpty;
                };
                if t_min > until {
                    break RunOutcome::TimeLimit;
                }
                if total_events >= budget_end {
                    break RunOutcome::EventLimit;
                }
                let end = t_min.saturating_add(self.delta).min(until.saturating_add(1));
                window_end.store(end, Ordering::Release);
                barrier.wait(); // release the workers into [t_min, end)
                barrier.wait(); // wait for every shard to drain the window
                let stopped = self.exchange_outboxes(end);
                if self.tracer.mask() != 0 {
                    self.merge_window_traces();
                }
                if stopped {
                    break RunOutcome::Stopped;
                }
            };
            window_end.store(0, Ordering::Release);
            barrier.wait(); // let the workers observe the exit sentinel
            result
        });
        // A final merge catches records from init or a stop/limit exit.
        self.drain_shard_traces();
        self.now = match outcome {
            RunOutcome::TimeLimit => until,
            _ => (0..self.shards.len()).map(|i| self.shard(i).last_event_tick()).max().unwrap_or(0),
        };
        outcome
    }

    /// Runs until every queue is empty or a component stops the run.
    pub fn run_to_quiesce(&mut self) -> RunOutcome {
        self.run(Tick::MAX, u64::MAX)
    }

    /// Drains every shard's outbox, injecting each cross-cut message
    /// into its destination shard's queue with the `(tick, order)` key
    /// minted by its sender, and collects pending stop requests. Must
    /// only be called from the coordinator between worker phases.
    /// `window_end` is the just-finished window's end tick (0 for the
    /// pre-run init exchange): a message landing below it means a cut
    /// edge's lookahead horizon was overstated.
    fn exchange_outboxes(&self, window_end: Tick) -> bool {
        let mut stopped = false;
        for i in 0..self.shards.len() {
            // SAFETY: coordinator phase; workers are parked.
            let sim = unsafe { self.shard_raw(i) };
            stopped |= sim.take_stop_request();
            for msg in sim.take_outbox() {
                let edge = self.plan.edges[msg.edge as usize];
                debug_assert_eq!(edge.from_shard as usize, i, "edge staged on wrong shard");
                assert!(
                    msg.tick >= window_end,
                    "cross-shard message at tick {} inside window ending at {}: \
                     the edge's lookahead horizon is wrong",
                    msg.tick,
                    window_end
                );
                self.shard(edge.to_shard as usize)
                    .push_keyed(msg.tick, msg.order, edge.dest, msg.ev);
            }
        }
        stopped
    }

    /// K-way-merges the shards' staged trace records into the global ring
    /// in serial record order. Each shard's stream is already in its local
    /// dispatch order, and the fused run's dispatch order restricted to one
    /// shard's events *is* that local order — so the merge must never
    /// reorder within a stream. It only picks between the streams' current
    /// heads by `(at, stamp)`, exactly the fused calendar's pop key.
    ///
    /// A global sort by `(at, stamp)` would be wrong: a zero-delay push
    /// minted mid-tick can carry a numerically smaller stamp (another
    /// component's counter) than a dispatch that already ran at that tick.
    /// The serial run pops it later — it was not in the calendar yet — but
    /// a sort would move it earlier. Head-only comparison is immune: the
    /// late push sits behind its pusher in the same shard's stream.
    ///
    /// Head ties are broken by the recording component id; across shards
    /// they only occur for stamp-0 `init` records, which the serial run
    /// emits in component order.
    fn merge_window_traces(&self) {
        let mut streams: Vec<std::vec::IntoIter<(TraceEvent, u64)>> = (0..self.shards.len())
            .map(|i| self.shard(i).shared.tracer.drain_stamped().into_iter())
            .collect();
        let mut heads: Vec<Option<(TraceEvent, u64)>> =
            streams.iter_mut().map(|s| s.next()).collect();
        loop {
            let mut best: Option<usize> = None;
            for (i, head) in heads.iter().enumerate() {
                let Some((ev, stamp)) = head else { continue };
                let better = match best {
                    None => true,
                    Some(b) => {
                        let (bev, bstamp) = heads[b].as_ref().unwrap();
                        (ev.at, *stamp, ev.component.0) < (bev.at, *bstamp, bev.component.0)
                    }
                };
                if better {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            let (ev, stamp) = heads[i].take().unwrap();
            self.tracer.record_stamped(ev, stamp);
            heads[i] = streams[i].next();
        }
    }

    fn drain_shard_traces(&self) {
        // Per-shard rings never evict (unbounded), so any straggler drop
        // counts would indicate a bug; fold them in defensively anyway.
        let mut dropped = 0;
        for i in 0..self.shards.len() {
            dropped += self.shard(i).shared.tracer.dropped();
        }
        self.tracer.add_dropped(dropped);
        self.merge_window_traces();
    }

    /// Serializes the complete dynamic state into the *same* checkpoint
    /// format [`Simulation::checkpoint`] writes — byte-identical to the
    /// checkpoint the serial run would take at this point — by gathering
    /// counters, queue entries, the merged trace ring and component
    /// sections from their owning shards.
    pub fn checkpoint(&mut self) -> Vec<u8> {
        for i in 0..self.shards.len() {
            self.shard_mut(i).ensure_init();
        }
        let n = self.plan.placements.len();
        let mut body = StateWriter::new();
        body.u64(self.shard(0).topology_fingerprint());
        body.u64(self.now);
        body.u64(self.events_processed());
        // Per-component counters: each is incremented by exactly one
        // shard (split links increment disjoint streams per end), so the
        // cross-shard sum reconstructs the serial counter.
        for gid in 0..n {
            let total: u64 = (0..self.shards.len())
                .map(|i| self.shard(i).shared.pkt_counters.borrow()[gid])
                .sum();
            body.u64(total);
        }
        for gid in 0..n {
            for stream in 0..NUM_STREAMS {
                let total: u64 = (0..self.shards.len())
                    .map(|i| self.shard(i).shared.push_counters.borrow()[gid][stream])
                    .sum();
                body.u64(total);
            }
        }
        // Queue entries, globally sorted — the serial calendar's save
        // order. Outboxes are empty between runs, so the shard queues
        // hold every pending event.
        for i in 0..self.shards.len() {
            assert!(
                self.shard(i).shared.outbox.borrow().is_empty(),
                "checkpoint with undelivered cross-shard messages"
            );
        }
        let mut entries: Vec<(Tick, u64, Vec<u8>)> = Vec::new();
        for i in 0..self.shards.len() {
            self.shard(i).shared.queue.borrow().for_each_live(|tick, order, action| {
                let mut w = StateWriter::new();
                encode_action(&mut w, action);
                entries.push((tick, order, w.into_bytes()));
            });
        }
        entries.sort_by_key(|&(tick, order, _)| (tick, order));
        body.usize(entries.len());
        for (tick, order, bytes) in &entries {
            body.u64(*tick);
            body.u64(*order);
            body.append_raw(bytes);
        }
        self.tracer.save_ring(&mut body);
        // Component sections from their owning shards; a split link's
        // section is its two ends' blobs, length-prefixed in end order —
        // exactly what the fused link writes.
        body.usize(n);
        for gid in 0..n {
            body.str(&self.names[gid]);
            let mut section = StateWriter::new();
            match self.plan.placements[gid] {
                Placement::Shard(s) => {
                    let cell = &self.shard(s as usize).shared.arena[gid];
                    let slot = cell.borrow();
                    let comp = slot.as_ref().expect("placement names an empty slot");
                    comp.save_state(&mut section);
                }
                Placement::Split { end0, end1 } => {
                    for s in [end0, end1] {
                        let cell = &self.shard(s as usize).shared.arena[gid];
                        let slot = cell.borrow();
                        let comp = slot.as_ref().expect("split placement names an empty slot");
                        let mut half = StateWriter::new();
                        comp.save_state(&mut half);
                        section.bytes(&half.into_bytes());
                    }
                }
            }
            body.bytes(&section.into_bytes());
        }
        seal_checkpoint(body.into_bytes())
    }

    /// Applies a checkpoint written by [`Simulation::checkpoint`] or
    /// [`ShardedSimulator::checkpoint`] — under *any* shard count — to
    /// this driver's freshly built shards. Queue entries, counters and
    /// component sections are routed to the shards that own them, so the
    /// run continues bit-for-bit like the saved one.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulation::restore`]; on error the driver must
    /// be discarded.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let body = open_checkpoint(bytes)?;
        let mut r = StateReader::new(body);
        let fingerprint = r.u64()?;
        let expected = self.shard(0).topology_fingerprint();
        if fingerprint != expected {
            return Err(SnapshotError::TopologyMismatch { stored: fingerprint, expected });
        }
        let now = r.u64()?;
        let events_processed = r.u64()?;
        let n = self.plan.placements.len();
        let mut pkt_counters = Vec::with_capacity(n);
        for _ in 0..n {
            pkt_counters.push(r.u64()?);
        }
        let mut push_counters: Vec<[u64; NUM_STREAMS]> = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = [0u64; NUM_STREAMS];
            for c in &mut row {
                *c = r.u64()?;
            }
            push_counters.push(row);
        }
        // Queue entries: decode with the global counter audit, then route
        // each to the shard that dispatches it.
        let n_entries = r.usize()?;
        let mut queues: Vec<CalendarQueue<Action>> =
            (0..self.shards.len()).map(|_| CalendarQueue::with_cursor(now)).collect();
        let mut last: Option<(Tick, u64)> = None;
        for _ in 0..n_entries {
            let tick = r.u64()?;
            let order = r.u64()?;
            if tick < now {
                return Err(SnapshotError::Corrupt("queued entry is in the past".into()));
            }
            if let Some(prev) = last {
                if prev >= (tick, order) {
                    return Err(SnapshotError::Corrupt(
                        "queue entries out of order or duplicated".into(),
                    ));
                }
            }
            last = Some((tick, order));
            let action = decode_action(&mut r, &pkt_counters, &push_counters)?;
            let shard = self.route_action(&action)?;
            queues[shard].push_restored(tick, order, action);
        }
        self.tracer.restore_ring(&mut r)?;
        let count = r.usize()?;
        if count != n {
            return Err(SnapshotError::Corrupt(format!(
                "checkpoint has {count} components, tree has {n}"
            )));
        }
        for gid in 0..n {
            let name = r.str()?;
            if name != self.names[gid] {
                return Err(SnapshotError::Corrupt(format!(
                    "section {name:?} does not match component {:?}",
                    self.names[gid]
                )));
            }
            let section = r.bytes()?;
            let mut sr = StateReader::new(section);
            match self.plan.placements[gid] {
                Placement::Shard(s) => {
                    self.restore_component(s as usize, gid, &mut sr, &name)?;
                }
                Placement::Split { end0, end1 } => {
                    for s in [end0, end1] {
                        let half = sr.bytes()?;
                        let mut hr = StateReader::new(half);
                        self.restore_component(s as usize, gid, &mut hr, &name)?;
                    }
                }
            }
            sr.finish(&name)?;
        }
        r.finish("sharded simulation")?;
        for (i, queue) in queues.into_iter().enumerate() {
            let sim = self.shard_mut(i);
            *sim.shared.queue.borrow_mut() = queue;
            sim.shared.now.set(now);
            sim.shared.last_event_tick.set(now);
            // The global totals live on shard 0; sums stay correct.
            sim.shared.events_processed.set(if i == 0 { events_processed } else { 0 });
            sim.shared.stop_requested.set(false);
            sim.initialized = true;
        }
        self.distribute_counters(&pkt_counters, &push_counters);
        self.now = now;
        Ok(())
    }

    /// Routes a decoded queue entry to the shard that will dispatch it.
    fn route_action(&self, action: &Action) -> Result<usize, SnapshotError> {
        let gid = action.target.0 as usize;
        let placement = self.plan.placements.get(gid).ok_or_else(|| {
            SnapshotError::Corrupt(format!("event target c{gid} has no placement"))
        })?;
        Ok(match *placement {
            Placement::Shard(s) => s as usize,
            Placement::Split { end0, end1 } => {
                let view = match &action.body {
                    ActionBody::Event(ev) => QueuedFor::Event(ev),
                    ActionBody::Retry { port } => QueuedFor::Retry { port: *port },
                };
                match (self.plan.route_end)(&view) {
                    0 => end0 as usize,
                    _ => end1 as usize,
                }
            }
        })
    }

    fn restore_component(
        &mut self,
        shard: usize,
        gid: usize,
        r: &mut StateReader<'_>,
        name: &str,
    ) -> Result<(), SnapshotError> {
        let sim = self.shard_mut(shard);
        let cell = &sim.shared.arena[gid];
        let mut slot = cell.borrow_mut();
        let comp = slot.as_mut().ok_or_else(|| {
            SnapshotError::Corrupt(format!("placement for {name:?} names an empty slot"))
        })?;
        comp.restore_state(r)?;
        r.finish(name)?;
        Ok(())
    }

    /// Hands each shard the counter values for the components (or split
    /// ends) it owns, zero elsewhere, so future stamps continue the
    /// serial sequences.
    fn distribute_counters(&mut self, pkt: &[u64], push: &[[u64; NUM_STREAMS]]) {
        for i in 0..self.shards.len() {
            let n = pkt.len();
            let sim = self.shard_mut(i);
            let mut pk = sim.shared.pkt_counters.borrow_mut();
            let mut ps = sim.shared.push_counters.borrow_mut();
            pk.clear();
            ps.clear();
            pk.resize(n, 0);
            ps.resize(n, [0; NUM_STREAMS]);
        }
        for gid in 0..pkt.len() {
            match self.plan.placements[gid] {
                Placement::Shard(s) => {
                    let sim = self.shard_mut(s as usize);
                    sim.shared.pkt_counters.borrow_mut()[gid] = pkt[gid];
                    sim.shared.push_counters.borrow_mut()[gid] = push[gid];
                }
                Placement::Split { end0, end1 } => {
                    // Stream `k` belongs to physical end `k`; packet-id
                    // allocation from a link would be ambiguous, so the
                    // link layer never allocates ids (end 0 carries any
                    // residue defensively).
                    let s0 = self.shard_mut(end0 as usize);
                    s0.shared.pkt_counters.borrow_mut()[gid] = pkt[gid];
                    s0.shared.push_counters.borrow_mut()[gid][0] = push[gid][0];
                    let s1 = self.shard_mut(end1 as usize);
                    s1.shared.push_counters.borrow_mut()[gid][1] = push[gid][1];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Component, RecvResult};
    use crate::packet::Packet;
    use crate::sim::Ctx;
    use crate::trace::TraceCategory;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Fires `remaining` timers `period` apart, emitting a Device trace
    /// record per firing.
    struct Ticker {
        name: String,
        fired: Rc<RefCell<Vec<(Tick, String)>>>,
        remaining: u64,
        period: Tick,
    }
    impl Component for Ticker {
        fn name(&self) -> &str {
            &self.name
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(self.period, Event::Timer { kind: 0, data: self.remaining });
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            let Event::Timer { data, .. } = ev else { panic!() };
            self.fired.borrow_mut().push((ctx.now(), self.name.clone()));
            ctx.emit(TraceCategory::Device, crate::trace::TraceKind::DmaRead, None, None, data);
            if data > 1 {
                ctx.schedule(self.period, Event::Timer { kind: 0, data: data - 1 });
            }
        }
        fn recv_request(&mut self, _: &mut Ctx<'_>, _: PortId, pkt: Packet) -> RecvResult {
            RecvResult::Refused(pkt)
        }
    }

    fn trivial_route(_: &QueuedFor<'_>) -> u8 {
        0
    }

    type FiredLog = Rc<RefCell<Vec<(Tick, String)>>>;

    /// Serial reference: both tickers in one simulation.
    fn serial_pair() -> (Simulation, FiredLog) {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.add(Box::new(Ticker {
            name: "a".into(),
            fired: fired.clone(),
            remaining: 4,
            period: 7,
        }));
        sim.add(Box::new(Ticker {
            name: "b".into(),
            fired: fired.clone(),
            remaining: 6,
            period: 7,
        }));
        (sim, fired)
    }

    /// Sharded build: each ticker in its own shard, remote slot for the
    /// other, no cut edges (they never talk). Each shard gets its *own*
    /// log — harness `Rc` state must never be shared across shards.
    type SharedLog = Rc<RefCell<Vec<(Tick, String)>>>;

    fn sharded_pair() -> (ShardedSimulator, SharedLog, SharedLog) {
        let fired_a: SharedLog = Rc::new(RefCell::new(Vec::new()));
        let fired_b: SharedLog = Rc::new(RefCell::new(Vec::new()));
        let mut s0 = Simulation::new();
        s0.add(Box::new(Ticker {
            name: "a".into(),
            fired: fired_a.clone(),
            remaining: 4,
            period: 7,
        }));
        s0.add_remote("b");
        let mut s1 = Simulation::new();
        s1.add_remote("a");
        s1.add(Box::new(Ticker {
            name: "b".into(),
            fired: fired_b.clone(),
            remaining: 6,
            period: 7,
        }));
        let plan = ShardPlan {
            placements: vec![Placement::Shard(0), Placement::Shard(1)],
            edges: vec![],
            route_end: trivial_route,
        };
        (ShardedSimulator::new(vec![s0, s1], plan), fired_a, fired_b)
    }

    /// The serial log restricted to one component's firings.
    fn only(log: &SharedLog, name: &str) -> Vec<(Tick, String)> {
        log.borrow().iter().filter(|(_, n)| n == name).cloned().collect()
    }

    #[test]
    fn independent_shards_match_the_serial_run() {
        let (mut serial, _fired_s) = serial_pair();
        serial.set_trace_mask(TraceCategory::ALL);
        assert_eq!(serial.run_to_quiesce(), RunOutcome::QueueEmpty);

        let (mut sharded, _fa, _fb) = sharded_pair();
        sharded.set_trace_mask(TraceCategory::ALL);
        assert_eq!(sharded.run_to_quiesce(), RunOutcome::QueueEmpty);

        assert_eq!(sharded.now(), serial.now());
        assert_eq!(sharded.events_processed(), serial.events_processed());
        let st = serial.take_trace();
        let sh = sharded.take_trace();
        assert_eq!(st.events, sh.events, "merged trace must equal the serial stream");
        assert_eq!(st.dropped, sh.dropped);
        let a: Vec<_> = serial.stats().iter().map(|(k, v)| (k.to_owned(), v)).collect();
        let b: Vec<_> = sharded.stats().iter().map(|(k, v)| (k.to_owned(), v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn time_limited_windows_resume_exactly() {
        let (mut serial, fired_s) = serial_pair();
        let (mut sharded, fired_a, fired_b) = sharded_pair();
        assert_eq!(serial.run(20, u64::MAX), RunOutcome::TimeLimit);
        assert_eq!(sharded.run(20, u64::MAX), RunOutcome::TimeLimit);
        assert_eq!(sharded.now(), serial.now());
        assert_eq!(only(&fired_s, "a"), *fired_a.borrow());
        assert_eq!(only(&fired_s, "b"), *fired_b.borrow());
        assert_eq!(serial.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(sharded.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(sharded.now(), serial.now());
        assert_eq!(only(&fired_s, "a"), *fired_a.borrow());
        assert_eq!(only(&fired_s, "b"), *fired_b.borrow());
    }

    /// A pair of components that volley a counter across a cut through
    /// remote_schedule — the kernel-level skeleton of a split link.
    struct Volley {
        name: String,
        edge: u32,
        horizon: Tick,
        log: Rc<RefCell<Vec<(Tick, u64)>>>,
        serve: bool,
    }
    impl Component for Volley {
        fn name(&self) -> &str {
            &self.name
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            if self.serve {
                ctx.remote_schedule(self.edge, self.horizon, 0, Event::Timer { kind: 0, data: 8 });
            }
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            let Event::Timer { data, .. } = ev else { panic!() };
            self.log.borrow_mut().push((ctx.now(), data));
            if data > 0 {
                ctx.remote_schedule(
                    self.edge,
                    self.horizon,
                    0,
                    Event::Timer { kind: 0, data: data - 1 },
                );
            }
        }
    }

    #[test]
    fn mailbox_volley_crosses_cuts_at_exact_ticks() {
        let log_e = Rc::new(RefCell::new(Vec::new()));
        let log_w = Rc::new(RefCell::new(Vec::new()));
        let h: Tick = 13;
        let mut s0 = Simulation::new();
        s0.add(Box::new(Volley {
            name: "east".into(),
            edge: 0,
            horizon: h,
            log: log_e.clone(),
            serve: true,
        }));
        s0.add_remote("west");
        let mut s1 = Simulation::new();
        s1.add_remote("east");
        s1.add(Box::new(Volley {
            name: "west".into(),
            edge: 1,
            horizon: h,
            log: log_w.clone(),
            serve: false,
        }));
        let plan = ShardPlan {
            placements: vec![Placement::Shard(0), Placement::Shard(1)],
            edges: vec![
                EdgeSpec { from_shard: 0, to_shard: 1, dest: ComponentId(1), horizon: h },
                EdgeSpec { from_shard: 1, to_shard: 0, dest: ComponentId(0), horizon: h },
            ],
            route_end: trivial_route,
        };
        let mut sharded = ShardedSimulator::new(vec![s0, s1], plan);
        assert_eq!(sharded.run_to_quiesce(), RunOutcome::QueueEmpty);
        let mut got: Vec<(Tick, u64)> = log_e.borrow().clone();
        got.extend(log_w.borrow().iter().copied());
        got.sort_unstable();
        let want: Vec<(Tick, u64)> = (0..9).map(|i| ((i + 1) * h, 8 - i)).collect();
        assert_eq!(got, want, "each hop lands exactly one horizon later");
        assert_eq!(sharded.now(), 9 * h);
        assert_eq!(sharded.events_processed(), 9);
    }

    #[test]
    fn sharded_checkpoint_round_trips_through_serial_format() {
        // Checkpoint an independent-pair sharded run mid-flight and
        // restore it into a *serial* simulation: the bytes must be
        // accepted and the continuation must match.
        let (mut sharded, _fa, _fb) = sharded_pair();
        assert_eq!(sharded.run(20, u64::MAX), RunOutcome::TimeLimit);
        let snap = sharded.checkpoint();

        let (mut serial, fired_s) = serial_pair();
        serial.restore(&snap).expect("serial restore of a sharded checkpoint");
        assert_eq!(serial.run_to_quiesce(), RunOutcome::QueueEmpty);

        let (mut reference, fired_r) = serial_pair();
        assert_eq!(reference.run(20, u64::MAX), RunOutcome::TimeLimit);
        fired_r.borrow_mut().clear();
        assert_eq!(reference.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(*fired_s.borrow(), *fired_r.borrow());
        assert_eq!(serial.now(), reference.now());
        assert_eq!(serial.events_processed(), reference.events_processed());

        // And the serial checkpoint at the same point is byte-identical.
        let (mut serial2, _f) = serial_pair();
        assert_eq!(serial2.run(20, u64::MAX), RunOutcome::TimeLimit);
        assert_eq!(serial2.checkpoint(), snap, "sharded checkpoint must match serial bytes");
    }

    #[test]
    fn restore_routes_entries_to_owning_shards() {
        let (mut serial, _f) = serial_pair();
        assert_eq!(serial.run(20, u64::MAX), RunOutcome::TimeLimit);
        let snap = serial.checkpoint();

        let (mut sharded, fired_a, fired_b) = sharded_pair();
        sharded.restore(&snap).expect("sharded restore of a serial checkpoint");
        assert_eq!(sharded.run_to_quiesce(), RunOutcome::QueueEmpty);

        let (mut reference, fired_r) = serial_pair();
        assert_eq!(reference.run(20, u64::MAX), RunOutcome::TimeLimit);
        assert_eq!(reference.run_to_quiesce(), RunOutcome::QueueEmpty);
        let tail = |name: &str| -> Vec<(Tick, String)> {
            only(&fired_r, name).into_iter().filter(|(t, _)| *t > 20).collect()
        };
        assert_eq!(*fired_a.borrow(), tail("a"));
        assert_eq!(*fired_b.borrow(), tail("b"));
        assert_eq!(sharded.now(), reference.now());
        assert_eq!(sharded.events_processed(), reference.events_processed());
    }
}
