//! A simple DRAM / memory-controller terminator.
//!
//! [`Dram`] answers every read/write request that falls in its address range
//! after a fixed access latency plus a bandwidth-serialization term, and
//! bounds the number of in-flight accesses (refusing above it). It stands in
//! for gem5's memory controller + DRAM models: the paper's experiments only
//! need memory to be fast enough never to be the bottleneck, which the
//! defaults guarantee.

use std::collections::{BTreeMap, VecDeque};

use crate::addr::AddrRange;
use crate::component::{Component, Event, PortId, RecvResult};
use crate::packet::{decode_packet_queue, encode_packet_queue, Packet};
use crate::sim::Ctx;
use crate::snapshot::{SnapshotError, StateReader, StateWriter};
use crate::stats::{Counter, StatsBuilder};
use crate::tick::{transfer_time, Tick};
use crate::trace::{TraceCategory, TraceKind};

/// The single port of a [`Dram`].
pub const DRAM_PORT: PortId = PortId(0);

/// Builder for [`Dram`]; see [`Dram::builder`].
#[derive(Debug)]
pub struct DramBuilder {
    name: String,
    range: AddrRange,
    latency: Tick,
    bytes_per_sec: u64,
    max_outstanding: usize,
    functional: bool,
}

impl DramBuilder {
    /// Sets the fixed access latency.
    pub fn latency(mut self, t: Tick) -> Self {
        self.latency = t;
        self
    }

    /// Sets the sustained bandwidth in bytes per second (0 = infinite).
    pub fn bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bytes_per_sec = bytes_per_sec;
        self
    }

    /// Sets the number of simultaneously in-flight accesses.
    pub fn max_outstanding(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one outstanding access");
        self.max_outstanding = n;
        self
    }

    /// Makes the memory functional: write payloads are retained in a
    /// sparse block store and reads return them. The default (timing-only)
    /// memory discards writes and reads back zeroes, which is all the
    /// bandwidth experiments need; virtqueues, whose descriptor rings are
    /// genuinely walked through DMA, require the contents to survive.
    pub fn functional(mut self, yes: bool) -> Self {
        self.functional = yes;
        self
    }

    /// Builds the memory model.
    pub fn build(self) -> Dram {
        Dram {
            name: self.name,
            range: self.range,
            latency: self.latency,
            bytes_per_sec: self.bytes_per_sec,
            max_outstanding: self.max_outstanding,
            outstanding: 0,
            busy_until: 0,
            blocked_resp: VecDeque::new(),
            waiting_retry: false,
            owe_retry: false,
            functional: self.functional,
            store: BTreeMap::new(),
            reads: Counter::new(),
            writes: Counter::new(),
            bytes: Counter::new(),
        }
    }
}

/// Granularity of the sparse functional store.
const STORE_BLOCK: u64 = 64;

/// Fixed-latency, bandwidth-limited memory.
#[derive(Debug)]
pub struct Dram {
    name: String,
    range: AddrRange,
    latency: Tick,
    bytes_per_sec: u64,
    max_outstanding: usize,
    outstanding: usize,
    busy_until: Tick,
    blocked_resp: VecDeque<Packet>,
    waiting_retry: bool,
    owe_retry: bool,
    functional: bool,
    store: BTreeMap<u64, Vec<u8>>,
    reads: Counter,
    writes: Counter,
    bytes: Counter,
}

impl Dram {
    /// Starts building a DRAM covering `range`, with a 30 ns latency,
    /// 25.6 GB/s of bandwidth and 32 outstanding accesses.
    pub fn builder(name: impl Into<String>, range: AddrRange) -> DramBuilder {
        DramBuilder {
            name: name.into(),
            range,
            latency: crate::tick::ns(30),
            bytes_per_sec: 25_600_000_000,
            max_outstanding: 32,
            functional: false,
        }
    }

    /// The address range this memory claims.
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// Whether write payloads are retained (see [`DramBuilder::functional`]).
    pub fn is_functional(&self) -> bool {
        self.functional
    }

    fn store_write(&mut self, addr: u64, data: &[u8]) {
        let mut pos = 0;
        while pos < data.len() {
            let at = addr + pos as u64;
            let block = at / STORE_BLOCK * STORE_BLOCK;
            let off = (at - block) as usize;
            let n = data.len().min(pos + (STORE_BLOCK as usize - off)) - pos;
            let buf = self.store.entry(block).or_insert_with(|| vec![0; STORE_BLOCK as usize]);
            buf[off..off + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    fn store_read(&self, addr: u64, out: &mut [u8]) {
        let mut pos = 0;
        while pos < out.len() {
            let at = addr + pos as u64;
            let block = at / STORE_BLOCK * STORE_BLOCK;
            let off = (at - block) as usize;
            let n = out.len().min(pos + (STORE_BLOCK as usize - off)) - pos;
            match self.store.get(&block) {
                Some(buf) => out[pos..pos + n].copy_from_slice(&buf[off..off + n]),
                None => out[pos..pos + n].fill(0),
            }
            pos += n;
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        while !self.waiting_retry {
            let Some(pkt) = self.blocked_resp.pop_front() else { return };
            match ctx.try_send_response(DRAM_PORT, pkt) {
                Ok(()) => {
                    self.outstanding -= 1;
                    if self.owe_retry {
                        self.owe_retry = false;
                        ctx.send_retry(DRAM_PORT);
                    }
                }
                Err(back) => {
                    self.blocked_resp.push_front(back);
                    self.waiting_retry = true;
                }
            }
        }
    }
}

impl Component for Dram {
    fn name(&self) -> &str {
        &self.name
    }

    fn recv_request(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) -> RecvResult {
        assert_eq!(port, DRAM_PORT);
        assert!(
            self.range.contains(pkt.addr()),
            "{}: {:#x} outside memory range {}",
            self.name,
            pkt.addr(),
            self.range
        );
        if self.outstanding >= self.max_outstanding {
            self.owe_retry = true;
            return RecvResult::Refused(pkt);
        }
        self.outstanding += 1;
        if pkt.cmd().is_read() {
            self.reads.inc();
        } else {
            self.writes.inc();
        }
        self.bytes.add(u64::from(pkt.size()));
        if ctx.tracing(TraceCategory::Fabric) {
            ctx.emit(
                TraceCategory::Fabric,
                TraceKind::DramAccess,
                Some(pkt.id()),
                Some(pkt.cmd()),
                u64::from(pkt.size()),
            );
        }
        let xfer = if self.bytes_per_sec == 0 {
            0
        } else {
            transfer_time(u64::from(pkt.size()), self.bytes_per_sec)
        };
        let start = ctx.now().max(self.busy_until);
        let finish = start + xfer;
        self.busy_until = finish;
        let done_at = finish + self.latency;
        ctx.schedule(done_at - ctx.now(), Event::DelayedPacket { tag: 0, pkt });
        RecvResult::Accepted
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        let Event::DelayedPacket { mut pkt, .. } = ev else {
            panic!("{}: unexpected timer", self.name)
        };
        // The terminator consumes write payloads here; hand the buffers back
        // to the pool so the next DMA burst reuses them.
        if pkt.cmd().is_write() {
            if let Some(buf) = pkt.take_payload() {
                if self.functional {
                    self.store_write(pkt.addr(), &buf);
                }
                ctx.recycle_payload(buf);
            }
        }
        if pkt.is_posted() {
            self.outstanding -= 1;
            return;
        }
        let resp = if pkt.cmd().is_read() {
            let size = pkt.size() as usize;
            let mut data = ctx.alloc_payload(size);
            if self.functional {
                let addr = pkt.addr();
                self.store_read(addr, &mut data);
            }
            pkt.into_read_response(data)
        } else {
            pkt.into_response()
        };
        self.blocked_resp.push_back(resp);
        self.flush(ctx);
    }

    fn retry_granted(&mut self, ctx: &mut Ctx<'_>, _port: PortId) {
        self.waiting_retry = false;
        self.flush(ctx);
    }

    fn report_stats(&self, out: &mut StatsBuilder) {
        out.counter("reads", &self.reads);
        out.counter("writes", &self.writes);
        out.counter("bytes", &self.bytes);
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.outstanding);
        w.u64(self.busy_until);
        encode_packet_queue(w, &self.blocked_resp);
        w.bool(self.waiting_retry);
        w.bool(self.owe_retry);
        self.reads.encode(w);
        self.writes.encode(w);
        self.bytes.encode(w);
        // The store is appended only for functional memories, so timing-only
        // checkpoints keep their pre-existing byte layout.
        if self.functional {
            w.usize(self.store.len());
            for (&block, buf) in &self.store {
                w.u64(block);
                w.bytes(buf);
            }
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.outstanding = r.usize()?;
        self.busy_until = r.u64()?;
        self.blocked_resp = decode_packet_queue(r)?;
        self.waiting_retry = r.bool()?;
        self.owe_retry = r.bool()?;
        self.reads = Counter::decode(r)?;
        self.writes = Counter::decode(r)?;
        self.bytes = Counter::decode(r)?;
        if self.functional {
            self.store.clear();
            let n = r.usize()?;
            for _ in 0..n {
                let block = r.u64()?;
                let buf = r.bytes()?.to_vec();
                if buf.len() != STORE_BLOCK as usize {
                    return Err(SnapshotError::Corrupt(format!(
                        "dram store block of {} bytes",
                        buf.len()
                    )));
                }
                self.store.insert(block, buf);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Command;
    use crate::sim::{RunOutcome, Simulation};
    use crate::testutil::{Requester, REQUESTER_PORT};
    use crate::tick::{ns, us};

    const BASE: u64 = 0x8000_0000;

    fn run_dram(
        script: Vec<(Command, u64, u32)>,
        latency: Tick,
        bw: u64,
    ) -> (Vec<Tick>, crate::stats::StatsSnapshot) {
        let mut sim = Simulation::new();
        let (req, done) = Requester::new("gen", script);
        let r = sim.add(Box::new(req));
        let d = sim.add(Box::new(
            Dram::builder("dram", AddrRange::with_size(BASE, 0x1000_0000))
                .latency(latency)
                .bandwidth(bw)
                .build(),
        ));
        sim.connect((r, REQUESTER_PORT), (d, DRAM_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        let times = done.borrow().iter().map(|&(_, t)| t).collect();
        (times, sim.stats())
    }

    #[test]
    fn single_read_takes_latency_plus_transfer() {
        // 64 B at 64 MB/s = 1 us transfer, + 30 ns latency.
        let (t, stats) = run_dram(vec![(Command::ReadReq, BASE, 64)], ns(30), 64_000_000);
        assert_eq!(t, vec![us(1) + ns(30)]);
        assert_eq!(stats.get("dram.reads"), Some(1.0));
        assert_eq!(stats.get("dram.bytes"), Some(64.0));
    }

    #[test]
    fn bandwidth_serializes_but_latency_overlaps() {
        // Two reads: transfers serialize (1 us each), latency pipelines.
        let script = vec![(Command::ReadReq, BASE, 64), (Command::ReadReq, BASE + 64, 64)];
        let (t, _) = run_dram(script, ns(30), 64_000_000);
        assert_eq!(t[0], us(1) + ns(30));
        assert_eq!(t[1], us(2) + ns(30));
    }

    #[test]
    fn infinite_bandwidth_gives_pure_latency() {
        let (t, _) = run_dram(vec![(Command::WriteReq, BASE, 64)], ns(30), 0);
        assert_eq!(t, vec![ns(30)]);
    }

    #[test]
    fn counts_reads_and_writes_separately() {
        let script = vec![
            (Command::ReadReq, BASE, 64),
            (Command::WriteReq, BASE + 64, 64),
            (Command::WriteReq, BASE + 128, 64),
        ];
        let (_, stats) = run_dram(script, ns(30), 0);
        assert_eq!(stats.get("dram.reads"), Some(1.0));
        assert_eq!(stats.get("dram.writes"), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "outside memory range")]
    fn out_of_range_access_panics() {
        let _ = run_dram(vec![(Command::ReadReq, 0x100, 4)], ns(30), 0);
    }

    #[test]
    fn functional_store_roundtrips_unaligned_spans() {
        let mut d = Dram::builder("dram", AddrRange::with_size(BASE, 0x1000_0000))
            .functional(true)
            .build();
        // A write straddling three 64 B blocks, at an unaligned offset.
        let data: Vec<u8> = (0..150u8).collect();
        d.store_write(BASE + 37, &data);
        let mut back = vec![0xAA; 150];
        d.store_read(BASE + 37, &mut back);
        assert_eq!(back, data);
        // Untouched bytes read as zero.
        let mut hole = vec![0xAA; 8];
        d.store_read(BASE + 0x9000, &mut hole);
        assert_eq!(hole, vec![0; 8]);
        // Overlapping rewrite wins.
        d.store_write(BASE + 40, &[0xFF; 4]);
        let mut again = vec![0; 8];
        d.store_read(BASE + 37, &mut again);
        assert_eq!(again, [0, 1, 2, 0xFF, 0xFF, 0xFF, 0xFF, 7]);
    }

    #[test]
    fn functional_store_survives_snapshot() {
        let mut d = Dram::builder("dram", AddrRange::with_size(BASE, 0x1000_0000))
            .functional(true)
            .build();
        d.store_write(BASE + 0x100, &[1, 2, 3, 4]);
        let mut w = StateWriter::new();
        d.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut fresh = Dram::builder("dram", AddrRange::with_size(BASE, 0x1000_0000))
            .functional(true)
            .build();
        let mut r = StateReader::new(&bytes);
        fresh.restore_state(&mut r).unwrap();
        let mut back = vec![0; 4];
        fresh.store_read(BASE + 0x100, &mut back);
        assert_eq!(back, [1, 2, 3, 4]);
    }
}
