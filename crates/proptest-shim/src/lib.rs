//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! this API-compatible subset instead of fetching the real crate. It
//! covers exactly what the repository's property tests use: the
//! `proptest!` macro (with an optional `#![proptest_config(..)]` header),
//! integer-range / `Just` / tuple / `any::<T>()` strategies,
//! `proptest::collection::vec`, `prop_oneof!`, and the `prop_assert*`
//! macros.
//!
//! Sampling is fully deterministic: each test case draws from a
//! [`TestRng`] seeded from the test's module path and the case index, so
//! failures reproduce bit-identically across runs and machines. There is
//! no shrinking — a failing case panics with the sampled values visible
//! in the assertion message.

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` sampled cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic splitmix64 generator seeding each sampled case.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// The generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Value generators.
pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// Something that can produce values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        /// The produced value type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// Strategy for the full value domain of `T` (see [`any`]).
    #[derive(Debug, Default, Clone, Copy)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    /// Types usable with [`any`].
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u8
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u32
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the full domain of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    /// A uniform choice among boxed alternatives (see `prop_oneof!`).
    pub struct Union<T>(Vec<Box<dyn Strategy<Value = T>>>);

    impl<T> Union<T> {
        /// An empty union; populate with [`Union::push`].
        pub fn empty() -> Self {
            Self(Vec::new())
        }

        /// Adds one alternative.
        pub fn push<S: Strategy<Value = T> + 'static>(&mut self, s: S) {
            self.0.push(Box::new(s));
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "empty prop_oneof!");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s with length drawn from `len` and
    /// elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + if span == 0 { 0 } else { rng.below(span) as usize };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, TestRng};
}

/// Re-export so `proptest::strategy::Just` style paths also work.
pub use strategy::{any, Just, Strategy};

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// A uniform choice among the listed strategies (all must produce the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let mut union = $crate::strategy::Union::empty();
        $( union.push($s); )+
        union
    }};
}

/// Declares deterministic property tests; mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0u64..100) { prop_assert!(x < 100); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_case("t", 0);
        let mut b = TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategy_stays_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..100 {
            let v = collection::vec(any::<bool>(), 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_draws_from_every_arm() {
        let s = prop_oneof![Just(0u64), 7u64..9];
        let mut rng = TestRng::for_case("oneof", 0);
        let mut seen_zero = false;
        let mut seen_range = false;
        for _ in 0..200 {
            match s.sample(&mut rng) {
                0 => seen_zero = true,
                7 | 8 => seen_range = true,
                other => panic!("impossible sample {other}"),
            }
        }
        assert!(seen_zero && seen_range);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 1u32..50, flips in collection::vec(any::<bool>(), 0..4)) {
            prop_assert!((1..50).contains(&x));
            prop_assert!(flips.len() < 4);
        }
    }
}
