//! The 8254x-pcie NIC model (paper §IV).
//!
//! The paper takes gem5's Intel 8254x NIC, sets its device ID to 0x10D3 so
//! the Linux **e1000e** driver probes it, and lays out the capability chain
//! of a real Intel 82574l: power management → MSI → PCI-Express → MSI-X,
//! with PM/MSI/MSI-X disabled so the driver registers a legacy interrupt
//! handler. This model reproduces that configuration plus a register file
//! and descriptor-ring DMA engines for both directions:
//!
//! * **TX**: the driver posts descriptors and writes the tail register;
//!   the NIC fetches each descriptor and frame buffer over DMA *reads*,
//!   puts the frame on the medium, writes back status and interrupts;
//! * **RX**: frames arrive from a configurable traffic stream; the NIC
//!   consumes posted descriptors, DMA-*writes* frame data to memory,
//!   writes back status and interrupts (or counts an overrun when the
//!   driver has no buffers posted).
//!
//! Both engines share one DMA block: jobs are serviced in order through a
//! single pipeline, as on the real device. MMIO register reads serve the
//! paper's Table II latency experiment.

use std::collections::{HashMap, VecDeque};

use pcisim_kernel::component::{Component, Event, PortId, RecvResult};
use pcisim_kernel::packet::{
    decode_packet_queue, encode_packet_queue, Command, CompletionStatus, Packet,
};
use pcisim_kernel::sim::Ctx;
use pcisim_kernel::snapshot::{SnapshotError, StateReader, StateWriter};
use pcisim_kernel::stats::{Counter, Histogram, StatsBuilder};
use pcisim_kernel::tick::{ns, Tick};
use pcisim_kernel::trace::{TraceCategory, TraceKind};
use pcisim_pci::caps::{
    aer_record_uncorrectable, write_aer_capability, CapChain, Capability, Generation, PortType,
};
use pcisim_pci::config::{shared, ConfigSpace, SharedConfigSpace};
use pcisim_pci::header::{bar_base, Bar, Type0Header};
use pcisim_pci::regs::{aer, common, status};

use crate::intc::irq_message_addr;

/// MMIO register port (slave).
pub const NIC_PIO_PORT: PortId = PortId(0);
/// DMA master port.
pub const NIC_DMA_PORT: PortId = PortId(1);

/// The device ID that makes the e1000e driver claim the NIC (paper §IV).
pub const NIC_DEVICE_ID: u16 = 0x10d3;

/// BAR0-relative register offsets (a subset of the 8254x map).
pub mod regs {
    /// Device control (u32, RW).
    pub const CTRL: u64 = 0x0000;
    /// Device status (u32, RO): bit 1 = link up.
    pub const STATUS: u64 = 0x0008;
    /// Interrupt cause read (u32; reading clears).
    pub const ICR: u64 = 0x00c0;
    /// Interrupt mask set (u32, RW).
    pub const IMS: u64 = 0x00d0;
    /// Interrupt mask clear (u32, W).
    pub const IMC: u64 = 0x00d8;
    /// RX descriptor base address, low half (u32, RW).
    pub const RDBAL: u64 = 0x2800;
    /// RX descriptor base address, high half (u32, RW).
    pub const RDBAH: u64 = 0x2804;
    /// RX descriptor ring length in descriptors (u32, RW).
    pub const RDLEN: u64 = 0x2808;
    /// RX head (u32, RO — hardware-owned).
    pub const RDH: u64 = 0x2810;
    /// RX tail (u32, RW — writing posts empty buffers).
    pub const RDT: u64 = 0x2818;
    /// TX descriptor base address, low half (u32, RW).
    pub const TDBAL: u64 = 0x3800;
    /// TX descriptor base address, high half (u32, RW).
    pub const TDBAH: u64 = 0x3804;
    /// TX descriptor ring length in descriptors (u32, RW).
    pub const TDLEN: u64 = 0x3808;
    /// TX head (u32, RO — hardware-owned).
    pub const TDH: u64 = 0x3810;
    /// TX tail (u32, RW — writing makes descriptors available).
    pub const TDT: u64 = 0x3818;
    /// Frame buffer length used for buffer DMA (u32, RW; model-specific —
    /// stands in for the length field of a real TX descriptor).
    pub const TX_BUFLEN: u64 = 0x3820;
}

/// ICR/IMS bit: transmit descriptor written back.
pub const INT_TXDW: u32 = 1 << 0;
/// ICR/IMS bit: receive frame written to memory (RXT0).
pub const INT_RXT0: u32 = 1 << 7;
/// STATUS bit: link is up.
pub const STATUS_LINK_UP: u32 = 1 << 1;

/// Bytes per descriptor fetched/written over DMA.
pub const DESC_BYTES: u32 = 16;

/// Internal receive FIFO depth in frames (the 82574 has a 32 KB packet
/// buffer; at full-size frames that is ~20 slots — 32 is a round model
/// value). Frames arriving into a full FIFO are dropped as overruns.
pub const RX_FIFO_FRAMES: u32 = 32;

/// Tunables of the NIC model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NicConfig {
    /// MMIO register access latency (the device-side component of the
    /// paper's Table II measurement).
    pub pio_latency: Tick,
    /// DMA TLP payload granularity.
    pub cacheline: u32,
    /// Wire time to put one frame on the network medium.
    pub tx_wire_time: Tick,
    /// Receive traffic: `(frame_bytes, inter-arrival, total frames)`.
    /// Frames start arriving when the driver first posts RX buffers.
    pub rx_stream: Option<(u32, Tick, u32)>,
    /// Interrupt message target: `(irq, interrupt-controller base)`.
    pub intx: Option<(u8, u64)>,
    /// Expose a functional (software-enableable) MSI capability instead of
    /// the paper's disabled one.
    pub msi_capable: bool,
}

impl Default for NicConfig {
    fn default() -> Self {
        Self {
            pio_latency: ns(50),
            cacheline: 64,
            tx_wire_time: ns(1200),
            rx_stream: None,
            intx: None,
            msi_capable: false,
        }
    }
}

/// Builds the 8254x-pcie configuration space: device 0x10D3, the Intel
/// 82574l capability chain (PM → MSI → PCIe → MSI-X, all but PCIe
/// disabled), one 128 KB memory BAR and an INTA pin.
pub fn nic_config_space() -> ConfigSpace {
    nic_config_space_with(false)
}

/// Like [`nic_config_space`], optionally exposing a functional MSI
/// capability (the paper's future-work extension).
pub fn nic_config_space_with(msi_capable: bool) -> ConfigSpace {
    let mut cs = Type0Header::new(0x8086, NIC_DEVICE_ID)
        .class_code(0x02, 0x00, 0x00)
        .revision(0x00)
        .subsystem(0x8086, 0xa01f)
        .bar(0, Bar::Memory32 { size: 0x2_0000, prefetchable: false })
        .bar(2, Bar::Io { size: 0x20 })
        .interrupt_pin(1)
        .capabilities_at(0xc8)
        .build();
    let msi = if msi_capable { Capability::MsiCapable } else { Capability::MsiDisabled };
    CapChain::new()
        .add(0xc8, Capability::PowerManagement)
        .add(0xd0, msi)
        .add(
            0xe0,
            Capability::PciExpress {
                port_type: PortType::Endpoint,
                generation: Generation::Gen2,
                max_width: 1,
            },
        )
        .add(0xa0, Capability::MsixDisabled)
        .write_into(&mut cs);
    // AER extended capability at the top of extended config space: DMA
    // error completions latch here so enumeration/diagnosis can walk it.
    write_aer_capability(&mut cs, 0x100, 0);
    cs
}

fn encode_dma_job(w: &mut StateWriter, job: &DmaJob) {
    w.u8(match job.engine {
        Engine::Tx => 0,
        Engine::Rx => 1,
    });
    w.bool(job.write);
    w.u64(job.addr);
    w.u32(job.len);
}

fn decode_dma_job(r: &mut StateReader<'_>) -> Result<DmaJob, SnapshotError> {
    let engine = match r.u8()? {
        0 => Engine::Tx,
        1 => Engine::Rx,
        other => return Err(SnapshotError::Corrupt(format!("unknown DMA engine {other}"))),
    };
    Ok(DmaJob { engine, write: r.bool()?, addr: r.u64()?, len: r.u32()? })
}

const K_TX_KICK: u32 = 0;
const K_TX_WIRE_DONE: u32 = 1;
const K_DMA_RESP: u32 = 2;
const K_RX_FRAME: u32 = 3;
const TAG_PIO_RESP: u32 = 0;

/// Which engine a DMA job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    Tx,
    Rx,
}

/// One queued DMA transfer.
#[derive(Debug, Clone, Copy)]
struct DmaJob {
    engine: Engine,
    write: bool,
    addr: u64,
    len: u32,
}

/// Progress of the active job.
#[derive(Debug, Clone, Copy)]
struct ActiveJob {
    job: DmaJob,
    next_addr: u64,
    remaining: u32,
    outstanding: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxPhase {
    Idle,
    FetchDescriptor,
    FetchBuffer,
    OnWire,
    Writeback,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RxPhase {
    Idle,
    FetchDescriptor,
    WriteData,
    Writeback,
}

#[derive(Debug, Default)]
struct NicStats {
    mmio_reads: Counter,
    mmio_writes: Counter,
    frames_tx: Counter,
    frames_rx: Counter,
    rx_overruns: Counter,
    dma_read_tlps: Counter,
    dma_write_tlps: Counter,
    dma_bytes: Counter,
    /// DMA requests that completed with an error status (UR/CA/timeout)
    /// instead of data; reads consumed all-ones.
    dma_error_completions: Counter,
    /// Round-trip fabric latency of DMA read TLPs, issue to completion,
    /// in ticks — the per-stream tail-latency view the contention
    /// experiments compare.
    dma_read_latency: Histogram,
    irqs: Counter,
}

/// The NIC component.
pub struct Nic {
    name: String,
    config: NicConfig,
    config_space: SharedConfigSpace,
    // Registers.
    ctrl: u32,
    icr: u32,
    ims: u32,
    tdba: u64,
    tdlen: u32,
    tdh: u32,
    tdt: u32,
    tx_buflen: u32,
    rdba: u64,
    rdlen: u32,
    rdh: u32,
    rdt: u32,
    // Shared DMA pipeline.
    jobs: VecDeque<DmaJob>,
    active: Option<ActiveJob>,
    stalled: Option<Packet>,
    /// Issue tick of each in-flight DMA read, by packet id.
    dma_read_issue: HashMap<u64, Tick>,
    // TX engine.
    tx_phase: TxPhase,
    // RX engine.
    rx_phase: RxPhase,
    rx_fifo: u32,
    rx_frames_left: u32,
    rx_stream_started: bool,
    // PIO responses.
    pio_waiting: bool,
    pio_blocked: VecDeque<Packet>,
    stats: NicStats,
}

impl Nic {
    /// Creates a NIC; returns the component and its shared configuration
    /// space for PCI-host registration.
    pub fn new(name: impl Into<String>, config: NicConfig) -> (Self, SharedConfigSpace) {
        let cs = shared(nic_config_space_with(config.msi_capable));
        (
            Self {
                name: name.into(),
                config,
                config_space: cs.clone(),
                ctrl: 0,
                icr: 0,
                ims: 0,
                tdba: 0,
                tdlen: 0,
                tdh: 0,
                tdt: 0,
                tx_buflen: 0,
                rdba: 0,
                rdlen: 0,
                rdh: 0,
                rdt: 0,
                jobs: VecDeque::new(),
                active: None,
                stalled: None,
                dma_read_issue: HashMap::new(),
                tx_phase: TxPhase::Idle,
                rx_phase: RxPhase::Idle,
                rx_fifo: 0,
                rx_frames_left: 0,
                rx_stream_started: false,
                pio_waiting: false,
                pio_blocked: VecDeque::new(),
                stats: NicStats::default(),
            },
            cs,
        )
    }

    /// Re-targets the INTx interrupt message (used once the enumerated IRQ
    /// is known).
    pub fn set_intx(&mut self, intx: Option<(u8, u64)>) {
        self.config.intx = intx;
    }

    fn bar0(&self) -> u64 {
        bar_base(&self.config_space.borrow(), 0)
    }

    // --- registers ---------------------------------------------------------

    fn reg_read(&mut self, offset: u64) -> u32 {
        self.stats.mmio_reads.inc();
        match offset {
            regs::CTRL => self.ctrl,
            regs::STATUS => STATUS_LINK_UP,
            regs::ICR => std::mem::take(&mut self.icr), // read clears
            regs::IMS => self.ims,
            regs::TDBAL => self.tdba as u32,
            regs::TDBAH => (self.tdba >> 32) as u32,
            regs::TDLEN => self.tdlen,
            regs::TDH => self.tdh,
            regs::TDT => self.tdt,
            regs::TX_BUFLEN => self.tx_buflen,
            regs::RDBAL => self.rdba as u32,
            regs::RDBAH => (self.rdba >> 32) as u32,
            regs::RDLEN => self.rdlen,
            regs::RDH => self.rdh,
            regs::RDT => self.rdt,
            _ => 0,
        }
    }

    fn reg_write(&mut self, ctx: &mut Ctx<'_>, offset: u64, value: u32) {
        self.stats.mmio_writes.inc();
        match offset {
            regs::CTRL => self.ctrl = value,
            regs::IMS => self.ims |= value,
            regs::IMC => self.ims &= !value,
            regs::TDBAL => self.tdba = (self.tdba & !0xffff_ffff) | u64::from(value),
            regs::TDBAH => self.tdba = (self.tdba & 0xffff_ffff) | (u64::from(value) << 32),
            regs::TDLEN => self.tdlen = value,
            regs::TX_BUFLEN => self.tx_buflen = value,
            regs::TDT => {
                self.tdt = value;
                ctx.emit(TraceCategory::Device, TraceKind::Doorbell, None, None, offset);
                if self.tx_phase == TxPhase::Idle {
                    ctx.schedule(0, Event::Timer { kind: K_TX_KICK, data: 0 });
                }
            }
            regs::RDBAL => self.rdba = (self.rdba & !0xffff_ffff) | u64::from(value),
            regs::RDBAH => self.rdba = (self.rdba & 0xffff_ffff) | (u64::from(value) << 32),
            regs::RDLEN => self.rdlen = value,
            regs::RDT => {
                self.rdt = value;
                ctx.emit(TraceCategory::Device, TraceKind::Doorbell, None, None, offset);
                self.start_rx_stream(ctx);
                self.rx_kick(ctx);
            }
            _ => {}
        }
    }

    // --- shared DMA pipeline -------------------------------------------------

    fn enqueue_job(&mut self, ctx: &mut Ctx<'_>, job: DmaJob) {
        self.jobs.push_back(job);
        self.pump_dma(ctx);
    }

    fn pump_dma(&mut self, ctx: &mut Ctx<'_>) {
        if self.active.is_none() {
            let Some(job) = self.jobs.pop_front() else { return };
            self.active =
                Some(ActiveJob { job, next_addr: job.addr, remaining: job.len, outstanding: 0 });
        }
        while self.stalled.is_none() {
            let Some(active) = &self.active else { return };
            if active.remaining == 0 {
                break;
            }
            let chunk = active.remaining.min(self.config.cacheline);
            let write = active.job.write;
            let id = ctx.alloc_packet_id();
            let pkt = if write {
                Packet::request(id, Command::WriteReq, active.next_addr, chunk, ctx.self_id())
                    .with_payload(ctx.alloc_payload(chunk as usize))
            } else {
                Packet::request(id, Command::ReadReq, active.next_addr, chunk, ctx.self_id())
            };
            match ctx.try_send_request(NIC_DMA_PORT, pkt) {
                Ok(()) => {
                    let kind = if write { TraceKind::DmaWrite } else { TraceKind::DmaRead };
                    ctx.emit(TraceCategory::Device, kind, Some(id), None, u64::from(chunk));
                    if !write {
                        self.dma_read_issue.insert(id.0, ctx.now());
                    }
                    self.chunk_issued(chunk);
                }
                Err(back) => {
                    self.stalled = Some(back);
                }
            }
        }
        self.check_job_done(ctx);
    }

    /// Latches a failed DMA completion into the config space: the legacy
    /// Status bit a requester sets on receiving a UR/CA completion, plus
    /// the corresponding AER uncorrectable bit for timeouts.
    fn record_dma_error(&mut self, completion: CompletionStatus) {
        let mut cs = self.config_space.borrow_mut();
        match completion {
            CompletionStatus::UnsupportedRequest => {
                let st = cs.read(common::STATUS, 2) as u16;
                cs.init_u16(common::STATUS, st | status::RECEIVED_MASTER_ABORT);
                aer_record_uncorrectable(&mut cs, aer::uncor::UNSUPPORTED_REQUEST, 0);
            }
            CompletionStatus::CompleterAbort => {
                let st = cs.read(common::STATUS, 2) as u16;
                cs.init_u16(common::STATUS, st | status::RECEIVED_TARGET_ABORT);
            }
            CompletionStatus::CompletionTimeout => {
                aer_record_uncorrectable(&mut cs, aer::uncor::COMPLETION_TIMEOUT, 0);
            }
            CompletionStatus::SuccessfulCompletion => {}
        }
    }

    fn chunk_issued(&mut self, chunk: u32) {
        let active = self.active.as_mut().expect("issue without active job");
        active.remaining -= chunk;
        active.next_addr += u64::from(chunk);
        active.outstanding += 1;
        if active.job.write {
            self.stats.dma_write_tlps.inc();
        } else {
            self.stats.dma_read_tlps.inc();
        }
        self.stats.dma_bytes.add(u64::from(chunk));
    }

    fn check_job_done(&mut self, ctx: &mut Ctx<'_>) {
        let Some(active) = &self.active else { return };
        if active.remaining != 0 || active.outstanding != 0 || self.stalled.is_some() {
            return;
        }
        let engine = active.job.engine;
        self.active = None;
        match engine {
            Engine::Tx => self.tx_job_done(ctx),
            Engine::Rx => self.rx_job_done(ctx),
        }
        self.pump_dma(ctx);
    }

    // --- TX engine -------------------------------------------------------------

    fn tx_kick(&mut self, ctx: &mut Ctx<'_>) {
        if self.tx_phase != TxPhase::Idle || self.tdh == self.tdt || self.tdlen == 0 {
            return;
        }
        self.tx_phase = TxPhase::FetchDescriptor;
        let desc_addr = self.tdba + u64::from(self.tdh) * u64::from(DESC_BYTES);
        self.enqueue_job(
            ctx,
            DmaJob { engine: Engine::Tx, write: false, addr: desc_addr, len: DESC_BYTES },
        );
    }

    fn tx_job_done(&mut self, ctx: &mut Ctx<'_>) {
        match self.tx_phase {
            TxPhase::FetchDescriptor => {
                self.tx_phase = TxPhase::FetchBuffer;
                // The descriptor names a buffer; the model takes its length
                // from TX_BUFLEN and fabricates the address.
                let buf_addr = 0x9000_0000 + u64::from(self.tdh) * 0x1_0000;
                let len = self.tx_buflen.max(64);
                self.enqueue_job(
                    ctx,
                    DmaJob { engine: Engine::Tx, write: false, addr: buf_addr, len },
                );
            }
            TxPhase::FetchBuffer => {
                self.tx_phase = TxPhase::OnWire;
                ctx.schedule(
                    self.config.tx_wire_time,
                    Event::Timer { kind: K_TX_WIRE_DONE, data: 0 },
                );
            }
            TxPhase::Writeback => {
                self.tdh = (self.tdh + 1) % self.tdlen.max(1);
                self.stats.frames_tx.inc();
                self.icr |= INT_TXDW;
                if self.ims & INT_TXDW != 0 {
                    self.raise_irq(ctx);
                }
                self.tx_phase = TxPhase::Idle;
                self.tx_kick(ctx);
            }
            TxPhase::Idle | TxPhase::OnWire => {
                panic!("{}: TX job completion in phase {:?}", self.name, self.tx_phase)
            }
        }
    }

    fn tx_wire_done(&mut self, ctx: &mut Ctx<'_>) {
        self.tx_phase = TxPhase::Writeback;
        let desc_addr = self.tdba + u64::from(self.tdh) * u64::from(DESC_BYTES);
        self.enqueue_job(
            ctx,
            DmaJob { engine: Engine::Tx, write: true, addr: desc_addr + 12, len: 4 },
        );
    }

    // --- RX engine -------------------------------------------------------------

    fn start_rx_stream(&mut self, ctx: &mut Ctx<'_>) {
        if self.rx_stream_started {
            return;
        }
        let Some((_, interval, frames)) = self.config.rx_stream else { return };
        self.rx_stream_started = true;
        self.rx_frames_left = frames;
        if frames > 0 {
            ctx.schedule(interval, Event::Timer { kind: K_RX_FRAME, data: 0 });
        }
    }

    fn rx_frame_arrived(&mut self, ctx: &mut Ctx<'_>) {
        let Some((_, interval, _)) = self.config.rx_stream else { return };
        self.rx_frames_left -= 1;
        if self.rx_frames_left > 0 {
            ctx.schedule(interval, Event::Timer { kind: K_RX_FRAME, data: 0 });
        }
        if self.rx_fifo >= RX_FIFO_FRAMES {
            // Internal packet buffer overflow: the fabric cannot drain
            // frames as fast as the medium delivers them.
            self.stats.rx_overruns.inc();
        } else {
            self.rx_fifo += 1;
        }
        self.rx_kick(ctx);
    }

    fn rx_ring_empty(&self) -> bool {
        self.rdlen == 0 || self.rdh == self.rdt
    }

    fn rx_kick(&mut self, ctx: &mut Ctx<'_>) {
        // Frames that arrived with no posted buffers are dropped, as on
        // real hardware when the internal FIFO has nowhere to go.
        while self.rx_fifo > 0 && self.rx_ring_empty() && self.rx_phase == RxPhase::Idle {
            self.rx_fifo -= 1;
            self.stats.rx_overruns.inc();
        }
        if self.rx_phase != RxPhase::Idle || self.rx_fifo == 0 || self.rx_ring_empty() {
            return;
        }
        self.rx_fifo -= 1;
        self.rx_phase = RxPhase::FetchDescriptor;
        let desc_addr = self.rdba + u64::from(self.rdh) * u64::from(DESC_BYTES);
        self.enqueue_job(
            ctx,
            DmaJob { engine: Engine::Rx, write: false, addr: desc_addr, len: DESC_BYTES },
        );
    }

    fn rx_job_done(&mut self, ctx: &mut Ctx<'_>) {
        match self.rx_phase {
            RxPhase::FetchDescriptor => {
                self.rx_phase = RxPhase::WriteData;
                let (frame_bytes, _, _) = self.config.rx_stream.expect("rx stream configured");
                // The descriptor names the buffer; the model fabricates it.
                let buf_addr = 0xa000_0000 + u64::from(self.rdh) * 0x1_0000;
                self.enqueue_job(
                    ctx,
                    DmaJob {
                        engine: Engine::Rx,
                        write: true,
                        addr: buf_addr,
                        len: frame_bytes.max(64),
                    },
                );
            }
            RxPhase::WriteData => {
                self.rx_phase = RxPhase::Writeback;
                let desc_addr = self.rdba + u64::from(self.rdh) * u64::from(DESC_BYTES);
                self.enqueue_job(
                    ctx,
                    DmaJob { engine: Engine::Rx, write: true, addr: desc_addr + 12, len: 4 },
                );
            }
            RxPhase::Writeback => {
                self.rdh = (self.rdh + 1) % self.rdlen.max(1);
                self.stats.frames_rx.inc();
                self.icr |= INT_RXT0;
                if self.ims & INT_RXT0 != 0 {
                    self.raise_irq(ctx);
                }
                self.rx_phase = RxPhase::Idle;
                self.rx_kick(ctx);
            }
            RxPhase::Idle => panic!("{}: RX job completion while idle", self.name),
        }
    }

    // --- interrupts & PIO -------------------------------------------------------

    fn raise_irq(&mut self, ctx: &mut Ctx<'_>) {
        self.stats.irqs.inc();
        let msi = pcisim_pci::caps::msi_target(&self.config_space.borrow()).map(|(a, _)| a);
        let addr = msi.or_else(|| self.config.intx.map(|(irq, base)| irq_message_addr(base, irq)));
        if let Some(addr) = addr {
            let id = ctx.alloc_packet_id();
            ctx.emit(TraceCategory::Device, TraceKind::Interrupt, Some(id), None, addr);
            let msg = Packet::request(id, Command::Message, addr, 4, ctx.self_id())
                .with_payload(ctx.alloc_payload(4));
            if let Err(back) = ctx.try_send_request(NIC_DMA_PORT, msg) {
                self.stalled = Some(back);
            }
        }
    }

    fn flush_pio(&mut self, ctx: &mut Ctx<'_>) {
        while !self.pio_waiting {
            let Some(pkt) = self.pio_blocked.pop_front() else { return };
            match ctx.try_send_response(NIC_PIO_PORT, pkt) {
                Ok(()) => {}
                Err(back) => {
                    self.pio_blocked.push_front(back);
                    self.pio_waiting = true;
                }
            }
        }
    }
}

impl Component for Nic {
    fn name(&self) -> &str {
        &self.name
    }

    fn recv_request(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) -> RecvResult {
        assert_eq!(port, NIC_PIO_PORT, "{}: MMIO arrives on the PIO port", self.name);
        let offset = pkt.addr().wrapping_sub(self.bar0());
        assert!(offset < 0x2_0000, "{}: access outside BAR0 at {:#x}", self.name, pkt.addr());
        let resp = match pkt.cmd() {
            Command::ReadReq => {
                let v = self.reg_read(offset);
                let mut full = vec![0u8; pkt.size() as usize];
                let n = full.len().min(4);
                full[..n].copy_from_slice(&v.to_le_bytes()[..n]);
                pkt.into_read_response(full)
            }
            Command::WriteReq => {
                let v = pkt
                    .payload()
                    .map(|p| {
                        let mut b = [0u8; 4];
                        let n = p.len().min(4);
                        b[..n].copy_from_slice(&p[..n]);
                        u32::from_le_bytes(b)
                    })
                    .unwrap_or(0);
                self.reg_write(ctx, offset, v);
                pkt.into_response()
            }
            other => panic!("{}: unexpected PIO command {other:?}", self.name),
        };
        ctx.schedule(
            self.config.pio_latency,
            Event::DelayedPacket { tag: TAG_PIO_RESP, pkt: resp },
        );
        RecvResult::Accepted
    }

    fn recv_response(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) -> RecvResult {
        assert_eq!(port, NIC_DMA_PORT);
        assert!(matches!(pkt.cmd(), Command::ReadResp | Command::WriteResp));
        if pkt.is_error() {
            // A DMA request master-aborted or timed out somewhere in the
            // fabric: reads delivered all-ones. The engine keeps running —
            // a real device DMAs garbage, it does not wedge — but the
            // failure latches in the legacy Status register and AER so
            // software can see it.
            self.stats.dma_error_completions.inc();
            self.record_dma_error(pkt.status());
        }
        if let Some(buf) = pkt.take_payload() {
            ctx.recycle_payload(buf);
        }
        if let Some(issued) = self.dma_read_issue.remove(&pkt.id().0) {
            self.stats.dma_read_latency.record((ctx.now() - issued) as f64);
        }
        if let Some(active) = &mut self.active {
            active.outstanding -= 1;
        }
        ctx.schedule(0, Event::Timer { kind: K_DMA_RESP, data: 0 });
        RecvResult::Accepted
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Timer { kind: K_TX_KICK, .. } => self.tx_kick(ctx),
            Event::Timer { kind: K_TX_WIRE_DONE, .. } => self.tx_wire_done(ctx),
            Event::Timer { kind: K_DMA_RESP, .. } => self.pump_dma(ctx),
            Event::Timer { kind: K_RX_FRAME, .. } => self.rx_frame_arrived(ctx),
            Event::Timer { kind, .. } => panic!("{}: unknown timer {kind}", self.name),
            Event::DelayedPacket { tag: TAG_PIO_RESP, pkt } => {
                self.pio_blocked.push_back(pkt);
                self.flush_pio(ctx);
            }
            Event::DelayedPacket { tag, .. } => panic!("{}: unknown tag {tag}", self.name),
        }
    }

    fn retry_granted(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        match port {
            NIC_DMA_PORT => {
                if let Some(pkt) = self.stalled.take() {
                    let chunk = pkt.size();
                    let is_msg = pkt.cmd() == Command::Message;
                    let read_id = (pkt.cmd() == Command::ReadReq).then(|| pkt.id().0);
                    match ctx.try_send_request(NIC_DMA_PORT, pkt) {
                        Ok(()) => {
                            if let Some(id) = read_id {
                                self.dma_read_issue.insert(id, ctx.now());
                            }
                            if !is_msg {
                                self.chunk_issued(chunk);
                            }
                        }
                        Err(back) => {
                            self.stalled = Some(back);
                            return;
                        }
                    }
                }
                self.pump_dma(ctx);
            }
            NIC_PIO_PORT => {
                self.pio_waiting = false;
                self.flush_pio(ctx);
            }
            other => panic!("{}: retry on unknown port {other}", self.name),
        }
    }

    fn report_stats(&self, out: &mut StatsBuilder) {
        out.counter("mmio_reads", &self.stats.mmio_reads);
        out.counter("mmio_writes", &self.stats.mmio_writes);
        out.counter("frames_tx", &self.stats.frames_tx);
        out.counter("frames_rx", &self.stats.frames_rx);
        out.counter("rx_overruns", &self.stats.rx_overruns);
        out.counter("dma_read_tlps", &self.stats.dma_read_tlps);
        out.counter("dma_write_tlps", &self.stats.dma_write_tlps);
        out.counter("dma_bytes", &self.stats.dma_bytes);
        out.counter("dma_error_completions", &self.stats.dma_error_completions);
        out.histogram("dma_read_latency", &self.stats.dma_read_latency);
        out.counter("irqs", &self.stats.irqs);
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.u32(self.ctrl);
        w.u32(self.icr);
        w.u32(self.ims);
        w.u64(self.tdba);
        w.u32(self.tdlen);
        w.u32(self.tdh);
        w.u32(self.tdt);
        w.u32(self.tx_buflen);
        w.u64(self.rdba);
        w.u32(self.rdlen);
        w.u32(self.rdh);
        w.u32(self.rdt);
        w.usize(self.jobs.len());
        for job in &self.jobs {
            encode_dma_job(w, job);
        }
        match &self.active {
            Some(a) => {
                w.bool(true);
                encode_dma_job(w, &a.job);
                w.u64(a.next_addr);
                w.u32(a.remaining);
                w.u32(a.outstanding);
            }
            None => w.bool(false),
        }
        match &self.stalled {
            Some(pkt) => {
                w.bool(true);
                pkt.encode(w);
            }
            None => w.bool(false),
        }
        // HashMap iterates in hash order; sort so the byte stream is
        // deterministic.
        let mut issues: Vec<(u64, Tick)> =
            self.dma_read_issue.iter().map(|(&id, &t)| (id, t)).collect();
        issues.sort_unstable();
        w.usize(issues.len());
        for (id, t) in issues {
            w.u64(id);
            w.u64(t);
        }
        w.u8(match self.tx_phase {
            TxPhase::Idle => 0,
            TxPhase::FetchDescriptor => 1,
            TxPhase::FetchBuffer => 2,
            TxPhase::OnWire => 3,
            TxPhase::Writeback => 4,
        });
        w.u8(match self.rx_phase {
            RxPhase::Idle => 0,
            RxPhase::FetchDescriptor => 1,
            RxPhase::WriteData => 2,
            RxPhase::Writeback => 3,
        });
        w.u32(self.rx_fifo);
        w.u32(self.rx_frames_left);
        w.bool(self.rx_stream_started);
        w.bool(self.pio_waiting);
        encode_packet_queue(w, &self.pio_blocked);
        self.stats.mmio_reads.encode(w);
        self.stats.mmio_writes.encode(w);
        self.stats.frames_tx.encode(w);
        self.stats.frames_rx.encode(w);
        self.stats.rx_overruns.encode(w);
        self.stats.dma_read_tlps.encode(w);
        self.stats.dma_write_tlps.encode(w);
        self.stats.dma_bytes.encode(w);
        self.stats.dma_error_completions.encode(w);
        self.stats.dma_read_latency.encode(w);
        self.stats.irqs.encode(w);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.ctrl = r.u32()?;
        self.icr = r.u32()?;
        self.ims = r.u32()?;
        self.tdba = r.u64()?;
        self.tdlen = r.u32()?;
        self.tdh = r.u32()?;
        self.tdt = r.u32()?;
        self.tx_buflen = r.u32()?;
        self.rdba = r.u64()?;
        self.rdlen = r.u32()?;
        self.rdh = r.u32()?;
        self.rdt = r.u32()?;
        let n_jobs = r.usize()?;
        let mut jobs = VecDeque::with_capacity(n_jobs.min(4096));
        for _ in 0..n_jobs {
            jobs.push_back(decode_dma_job(r)?);
        }
        self.jobs = jobs;
        self.active = if r.bool()? {
            let job = decode_dma_job(r)?;
            Some(ActiveJob { job, next_addr: r.u64()?, remaining: r.u32()?, outstanding: r.u32()? })
        } else {
            None
        };
        self.stalled = if r.bool()? { Some(Packet::decode(r)?) } else { None };
        let n_issues = r.usize()?;
        let mut issues = HashMap::with_capacity(n_issues.min(4096));
        for _ in 0..n_issues {
            let id = r.u64()?;
            let t = r.u64()?;
            issues.insert(id, t);
        }
        self.dma_read_issue = issues;
        self.tx_phase = match r.u8()? {
            0 => TxPhase::Idle,
            1 => TxPhase::FetchDescriptor,
            2 => TxPhase::FetchBuffer,
            3 => TxPhase::OnWire,
            4 => TxPhase::Writeback,
            other => return Err(SnapshotError::Corrupt(format!("unknown TX phase {other}"))),
        };
        self.rx_phase = match r.u8()? {
            0 => RxPhase::Idle,
            1 => RxPhase::FetchDescriptor,
            2 => RxPhase::WriteData,
            3 => RxPhase::Writeback,
            other => return Err(SnapshotError::Corrupt(format!("unknown RX phase {other}"))),
        };
        self.rx_fifo = r.u32()?;
        self.rx_frames_left = r.u32()?;
        self.rx_stream_started = r.bool()?;
        self.pio_waiting = r.bool()?;
        self.pio_blocked = decode_packet_queue(r)?;
        self.stats.mmio_reads = Counter::decode(r)?;
        self.stats.mmio_writes = Counter::decode(r)?;
        self.stats.frames_tx = Counter::decode(r)?;
        self.stats.frames_rx = Counter::decode(r)?;
        self.stats.rx_overruns = Counter::decode(r)?;
        self.stats.dma_read_tlps = Counter::decode(r)?;
        self.stats.dma_write_tlps = Counter::decode(r)?;
        self.stats.dma_bytes = Counter::decode(r)?;
        self.stats.dma_error_completions = Counter::decode(r)?;
        self.stats.dma_read_latency = Histogram::decode(r)?;
        self.stats.irqs = Counter::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcisim_kernel::sim::{RunOutcome, Simulation};
    use pcisim_kernel::testutil::{Requester, Responder, REQUESTER_PORT, RESPONDER_PORT};

    const BAR0: u64 = 0x4010_0000;

    fn programmed_nic(config: NicConfig) -> (Nic, SharedConfigSpace) {
        let (nic, cs) = Nic::new("nic", config);
        cs.borrow_mut().write(0x10, 4, BAR0 as u32);
        (nic, cs)
    }

    #[test]
    fn config_space_matches_the_paper() {
        let cs = nic_config_space();
        assert_eq!(cs.read(0x00, 2), 0x8086);
        assert_eq!(cs.read(0x02, 2), u32::from(NIC_DEVICE_ID), "0x10D3 invokes e1000e");
        let caps = pcisim_pci::caps::walk_capabilities(&cs);
        let ids: Vec<u8> = caps.iter().map(|&(_, id)| id).collect();
        assert_eq!(
            ids,
            vec![
                pcisim_pci::regs::cap_id::POWER_MANAGEMENT,
                pcisim_pci::regs::cap_id::MSI,
                pcisim_pci::regs::cap_id::PCI_EXPRESS,
                pcisim_pci::regs::cap_id::MSI_X,
            ],
            "PM → MSI → PCIe → MSI-X, as in the 82574l datasheet"
        );
    }

    #[test]
    fn mmio_read_takes_pio_latency() {
        let mut sim = Simulation::new();
        let (nic, _cs) = programmed_nic(NicConfig { pio_latency: ns(80), ..NicConfig::default() });
        let (req, done) = Requester::new("cpu", vec![(Command::ReadReq, BAR0 + regs::STATUS, 4)]);
        let r = sim.add(Box::new(req));
        let n = sim.add(Box::new(nic));
        sim.connect((r, REQUESTER_PORT), (n, NIC_PIO_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        let done = done.borrow();
        assert_eq!(done[0].1, ns(80));
        assert_eq!(sim.stats().get("nic.mmio_reads"), Some(1.0));
    }

    #[test]
    fn status_register_reports_link_up() {
        let (mut nic, _) = programmed_nic(NicConfig::default());
        assert_eq!(nic.reg_read(regs::STATUS) & STATUS_LINK_UP, STATUS_LINK_UP);
    }

    #[test]
    fn icr_read_clears_pending_causes() {
        let (mut nic, _) = programmed_nic(NicConfig::default());
        nic.icr = INT_TXDW | INT_RXT0;
        assert_eq!(nic.reg_read(regs::ICR), INT_TXDW | INT_RXT0);
        assert_eq!(nic.reg_read(regs::ICR), 0, "ICR is read-clear");
    }

    #[test]
    fn ims_imc_set_and_clear_mask_bits() {
        let (mut nic, _) = programmed_nic(NicConfig::default());
        nic.ims |= INT_TXDW;
        assert_eq!(nic.reg_read(regs::IMS), INT_TXDW);
        nic.ims &= !INT_TXDW;
        assert_eq!(nic.reg_read(regs::IMS), 0);
    }

    /// A driver that programs registers at init, then absorbs responses.
    struct ScriptDriver {
        writes: Vec<(u64, u32)>,
        sent: bool,
    }
    impl Component for ScriptDriver {
        fn name(&self) -> &str {
            "drv"
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(0, Event::Timer { kind: 0, data: 0 });
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, _ev: Event) {
            if self.sent {
                return;
            }
            self.sent = true;
            for (off, val) in &self.writes {
                let id = ctx.alloc_packet_id();
                let pkt = Packet::request(id, Command::WriteReq, BAR0 + off, 4, ctx.self_id())
                    .with_payload(val.to_le_bytes().to_vec());
                ctx.try_send_request(PortId(0), pkt).expect("nic accepts PIO");
            }
        }
        fn recv_response(&mut self, _c: &mut Ctx<'_>, _p: PortId, _k: Packet) -> RecvResult {
            RecvResult::Accepted
        }
    }

    fn run_with_driver(
        config: NicConfig,
        writes: Vec<(u64, u32)>,
    ) -> pcisim_kernel::stats::StatsSnapshot {
        let mut sim = Simulation::new();
        let (nic, _cs) = programmed_nic(config);
        let drv = sim.add(Box::new(ScriptDriver { writes, sent: false }));
        let n = sim.add(Box::new(nic));
        let (mem, _) = Responder::new("mem", ns(30));
        let m = sim.add(Box::new(mem));
        sim.connect((drv, PortId(0)), (n, NIC_PIO_PORT));
        sim.connect((n, NIC_DMA_PORT), (m, RESPONDER_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        sim.stats()
    }

    #[test]
    fn tx_transmits_one_frame_with_descriptor_and_buffer_dma() {
        let stats = run_with_driver(
            NicConfig::default(),
            vec![
                (regs::TDBAL, 0x8800_0000),
                (regs::TDLEN, 64),
                (regs::TX_BUFLEN, 1514),
                (regs::IMS, INT_TXDW),
                (regs::TDT, 1),
            ],
        );
        assert_eq!(stats.get("nic.frames_tx"), Some(1.0));
        // 1 descriptor TLP + ceil(1514/64)=24 buffer TLPs.
        assert_eq!(stats.get("nic.dma_read_tlps"), Some(25.0));
        assert_eq!(stats.get("nic.dma_write_tlps"), Some(1.0), "status write-back");
        assert_eq!(stats.get("nic.irqs"), Some(1.0));
    }

    #[test]
    fn tx_ring_processes_multiple_frames() {
        let stats = run_with_driver(
            NicConfig::default(),
            vec![
                (regs::TDBAL, 0x8800_0000),
                (regs::TDLEN, 64),
                (regs::TX_BUFLEN, 256),
                (regs::IMS, INT_TXDW),
                (regs::TDT, 3),
            ],
        );
        assert_eq!(stats.get("nic.frames_tx"), Some(3.0));
        // Per frame: 1 descriptor + 4 buffer chunks (reads).
        assert_eq!(stats.get("nic.dma_read_tlps"), Some(15.0));
        assert_eq!(stats.get("nic.irqs"), Some(3.0));
    }

    #[test]
    fn masked_interrupt_does_not_fire() {
        let stats = run_with_driver(
            NicConfig::default(),
            vec![
                (regs::TDBAL, 0x8800_0000),
                (regs::TDLEN, 64),
                (regs::TX_BUFLEN, 128),
                (regs::TDT, 1),
            ],
        );
        assert_eq!(stats.get("nic.frames_tx"), Some(1.0));
        assert_eq!(stats.get("nic.irqs"), Some(0.0), "masked interrupt must not raise");
    }

    #[test]
    fn rx_frames_are_written_to_posted_buffers() {
        let config = NicConfig { rx_stream: Some((512, ns(2000), 4)), ..NicConfig::default() };
        let stats = run_with_driver(
            config,
            vec![
                (regs::RDBAL, 0x8900_0000),
                (regs::RDLEN, 64),
                (regs::IMS, INT_RXT0),
                (regs::RDT, 16),
            ],
        );
        assert_eq!(stats.get("nic.frames_rx"), Some(4.0));
        assert_eq!(stats.get("nic.rx_overruns"), Some(0.0));
        // Per frame: 1 descriptor read + 8 data-write chunks + 1 write-back.
        assert_eq!(stats.get("nic.dma_read_tlps"), Some(4.0));
        assert_eq!(stats.get("nic.dma_write_tlps"), Some(4.0 * 9.0));
        assert_eq!(stats.get("nic.irqs"), Some(4.0));
    }

    #[test]
    fn rx_without_posted_buffers_counts_overruns() {
        let config = NicConfig { rx_stream: Some((512, ns(2000), 5)), ..NicConfig::default() };
        // Only 2 buffers posted for 5 frames.
        let stats = run_with_driver(
            config,
            vec![(regs::RDBAL, 0x8900_0000), (regs::RDLEN, 64), (regs::RDT, 2)],
        );
        assert_eq!(stats.get("nic.frames_rx"), Some(2.0));
        assert_eq!(stats.get("nic.rx_overruns"), Some(3.0));
    }

    #[test]
    fn rx_fifo_overflow_drops_frames() {
        // Frames every 100 ns against a 30 ns-per-TLP memory: the 9-TLP
        // per-frame DMA takes ~0.3 µs... make memory slow enough that the
        // 32-frame FIFO overflows.
        let config = NicConfig { rx_stream: Some((1514, ns(100), 128)), ..NicConfig::default() };
        let mut sim = Simulation::new();
        let (nic, _cs) = programmed_nic(config);
        let drv = sim.add(Box::new(ScriptDriver {
            writes: vec![(regs::RDBAL, 0x8900_0000), (regs::RDLEN, 512), (regs::RDT, 511)],
            sent: false,
        }));
        let n = sim.add(Box::new(nic));
        let (mem, _) = Responder::new("mem", pcisim_kernel::tick::us(2));
        let m = sim.add(Box::new(mem));
        sim.connect((drv, PortId(0)), (n, NIC_PIO_PORT));
        sim.connect((n, NIC_DMA_PORT), (m, RESPONDER_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        let stats = sim.stats();
        let rx = stats.get("nic.frames_rx").unwrap();
        let drops = stats.get("nic.rx_overruns").unwrap();
        assert!(drops > 0.0, "slow DMA must overflow the FIFO");
        assert_eq!(rx + drops, 128.0, "every frame is either received or dropped");
    }

    #[test]
    fn rx_and_tx_share_the_dma_pipeline() {
        // Both engines active at once: everything completes, no panic from
        // interleaved completions.
        let config = NicConfig { rx_stream: Some((256, ns(500), 8)), ..NicConfig::default() };
        let stats = run_with_driver(
            config,
            vec![
                (regs::RDBAL, 0x8900_0000),
                (regs::RDLEN, 64),
                (regs::RDT, 32),
                (regs::TDBAL, 0x8800_0000),
                (regs::TDLEN, 64),
                (regs::TX_BUFLEN, 1024),
                (regs::IMS, INT_TXDW | INT_RXT0),
                (regs::TDT, 4),
            ],
        );
        assert_eq!(stats.get("nic.frames_tx"), Some(4.0));
        assert_eq!(stats.get("nic.frames_rx"), Some(8.0));
        assert_eq!(stats.get("nic.irqs"), Some(12.0));
    }
}
