//! The 8254x-pcie NIC model (paper §IV).
//!
//! The paper takes gem5's Intel 8254x NIC, sets its device ID to 0x10D3 so
//! the Linux **e1000e** driver probes it, and lays out the capability chain
//! of a real Intel 82574l: power management → MSI → PCI-Express → MSI-X,
//! with PM/MSI/MSI-X disabled so the driver registers a legacy interrupt
//! handler. This model reproduces that configuration plus a register file
//! and descriptor-ring DMA engines for both directions:
//!
//! * **TX**: the driver posts descriptors and writes the tail register;
//!   the NIC fetches each descriptor and frame buffer over DMA *reads*,
//!   puts the frame on the medium, writes back status and interrupts;
//! * **RX**: frames arrive from a configurable traffic stream; the NIC
//!   consumes posted descriptors, DMA-*writes* frame data to memory,
//!   writes back status and interrupts (or counts an overrun when the
//!   driver has no buffers posted).
//!
//! Both engines share one DMA block: jobs are serviced in order through a
//! single pipeline, as on the real device. MMIO register reads serve the
//! paper's Table II latency experiment.
//!
//! Beyond the paper's configuration, the model can grow into a modern
//! multi-queue MSI-X device: up to [`MAX_QUEUES`] TX/RX queue pairs with
//! per-queue rings and doorbells (queue *q* registers live at the legacy
//! offsets plus `q * QUEUE_STRIDE`), an RSS-style deterministic flow hash
//! steering received frames across queues, an MSI-X table + PBA mapped in
//! BAR0 (at [`MSIX_TABLE_OFFSET`] / [`MSIX_PBA_OFFSET`]), and per-vector
//! interrupt moderation (holdoff timers on the calendar queue). When the
//! MSI-X function enable is clear the device falls back to the paper's
//! legacy INTx (or MSI) path, bit-identically to the single-queue model.

use std::collections::{BTreeSet, HashMap, VecDeque};

use pcisim_kernel::component::{Component, Event, PortId, RecvResult};
use pcisim_kernel::packet::{
    decode_packet_queue, encode_packet_queue, Command, CompletionStatus, Packet,
};
use pcisim_kernel::sim::Ctx;
use pcisim_kernel::snapshot::{SnapshotError, StateReader, StateWriter};
use pcisim_kernel::stats::{Counter, Histogram, StatsBuilder};
use pcisim_kernel::tick::{ns, Tick};
use pcisim_kernel::trace::{TraceCategory, TraceKind};
use pcisim_pci::caps::{
    aer_record_uncorrectable, write_aer_capability, CapChain, Capability, Generation, PortType,
};
use pcisim_pci::config::{shared, ConfigSpace, SharedConfigSpace};
use pcisim_pci::header::{bar_base, Bar, Type0Header};
use pcisim_pci::regs::{aer, common, status};

use crate::intc::irq_message_addr;
use crate::traffic::{TrafficFeed, TrafficSpec};

/// MMIO register port (slave).
pub const NIC_PIO_PORT: PortId = PortId(0);
/// DMA master port.
pub const NIC_DMA_PORT: PortId = PortId(1);

/// The device ID that makes the e1000e driver claim the NIC (paper §IV).
pub const NIC_DEVICE_ID: u16 = 0x10d3;

/// BAR0-relative register offsets (a subset of the 8254x map).
pub mod regs {
    /// Device control (u32, RW).
    pub const CTRL: u64 = 0x0000;
    /// Device status (u32, RO): bit 1 = link up.
    pub const STATUS: u64 = 0x0008;
    /// Interrupt cause read (u32; reading clears).
    pub const ICR: u64 = 0x00c0;
    /// Interrupt mask set (u32, RW).
    pub const IMS: u64 = 0x00d0;
    /// Interrupt mask clear (u32, W).
    pub const IMC: u64 = 0x00d8;
    /// RX descriptor base address, low half (u32, RW).
    pub const RDBAL: u64 = 0x2800;
    /// RX descriptor base address, high half (u32, RW).
    pub const RDBAH: u64 = 0x2804;
    /// RX descriptor ring length in descriptors (u32, RW).
    pub const RDLEN: u64 = 0x2808;
    /// RX head (u32, RO — hardware-owned).
    pub const RDH: u64 = 0x2810;
    /// RX tail (u32, RW — writing posts empty buffers).
    pub const RDT: u64 = 0x2818;
    /// TX descriptor base address, low half (u32, RW).
    pub const TDBAL: u64 = 0x3800;
    /// TX descriptor base address, high half (u32, RW).
    pub const TDBAH: u64 = 0x3804;
    /// TX descriptor ring length in descriptors (u32, RW).
    pub const TDLEN: u64 = 0x3808;
    /// TX head (u32, RO — hardware-owned).
    pub const TDH: u64 = 0x3810;
    /// TX tail (u32, RW — writing makes descriptors available).
    pub const TDT: u64 = 0x3818;
    /// Frame buffer length used for buffer DMA (u32, RW; model-specific —
    /// stands in for the length field of a real TX descriptor).
    pub const TX_BUFLEN: u64 = 0x3820;
    /// Missed packets count (u32, RO): frames dropped for want of FIFO
    /// space or posted buffers (the 8254x MPC statistics register).
    pub const MPC: u64 = 0x4010;
    /// Good packets received count (u32, RO): frames fully written to
    /// memory (the 8254x GPRC statistics register). Together with
    /// [`MPC`] this lets a poll-mode driver detect end-of-stream without
    /// any interrupt.
    pub const GPRC: u64 = 0x4074;
    /// Good octets received, low half (u32, RO; 8254x GORCL).
    pub const GORCL: u64 = 0x4088;
    /// Good octets received, high half (u32, RO; 8254x GORCH).
    pub const GORCH: u64 = 0x408c;
    /// Stride between per-queue register blocks: queue 0 sits at the
    /// legacy offsets, queue `q` at `reg + q * QUEUE_STRIDE` (the 82574
    /// places its second queue pair the same way).
    pub const QUEUE_STRIDE: u64 = 0x100;

    /// The queue-`q` offset of a queue 0 ring register.
    pub fn per_queue(reg: u64, queue: u32) -> u64 {
        reg + u64::from(queue) * QUEUE_STRIDE
    }
}

/// ICR/IMS bit: transmit descriptor written back.
pub const INT_TXDW: u32 = 1 << 0;
/// ICR/IMS bit: receive frame written to memory (RXT0).
pub const INT_RXT0: u32 = 1 << 7;
/// STATUS bit: link is up.
pub const STATUS_LINK_UP: u32 = 1 << 1;

/// Maximum TX/RX queue pairs: TX causes occupy ICR bits 0..6 and RX
/// causes bits 7..13, so six pairs fit without the blocks colliding.
pub const MAX_QUEUES: u32 = 6;

/// BAR0 offset of the MSI-X vector table (when the device is built
/// `msix_capable`; the register map tops out well below this).
pub const MSIX_TABLE_OFFSET: u64 = 0x1_0000;
/// BAR0 offset of the MSI-X pending-bit array.
pub const MSIX_PBA_OFFSET: u64 = 0x1_8000;

/// ICR/IMS cause bit of TX queue `queue` (queue 0 is the legacy TXDW).
pub fn tx_cause(queue: u32) -> u32 {
    INT_TXDW << queue
}

/// ICR/IMS cause bit of RX queue `queue` (queue 0 is the legacy RXT0).
pub fn rx_cause(queue: u32) -> u32 {
    INT_RXT0 << queue
}

/// MSI-X vector of TX queue `queue`: vectors `[0, queues)` are TX.
pub fn tx_vector(queue: u32) -> u16 {
    queue as u16
}

/// MSI-X vector of RX queue `queue`: vectors `[queues, 2*queues)` are RX.
pub fn rx_vector(queues: u32, queue: u32) -> u16 {
    (queues + queue) as u16
}

/// MSI-X vectors a NIC with `queues` queue pairs exposes (one per ring).
pub fn num_msix_vectors(queues: u32) -> u16 {
    (queues * 2) as u16
}

/// BAR0 offset of MSI-X table entry `vector`.
pub fn msix_entry_offset(vector: u16) -> u64 {
    MSIX_TABLE_OFFSET + u64::from(vector) * pcisim_pci::caps::msix::ENTRY_SIZE
}

/// Deterministic RSS-style hash over a flow identifier (FNV-1a; stands in
/// for the Toeplitz hash real NICs compute over the 5-tuple).
pub fn rss_hash(flow: u32) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in flow.to_le_bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// The RX queue the flow-steering hash picks for `flow`.
pub fn rss_queue(flow: u32, queues: u32) -> u32 {
    if queues <= 1 {
        0
    } else {
        rss_hash(flow) % queues
    }
}

/// Bytes per descriptor fetched/written over DMA.
pub const DESC_BYTES: u32 = 16;

/// Internal receive FIFO depth in frames (the 82574 has a 32 KB packet
/// buffer; at full-size frames that is ~20 slots — 32 is a round model
/// value). Frames arriving into a full FIFO are dropped as overruns.
pub const RX_FIFO_FRAMES: u32 = 32;

/// Tunables of the NIC model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NicConfig {
    /// MMIO register access latency (the device-side component of the
    /// paper's Table II measurement).
    pub pio_latency: Tick,
    /// DMA TLP payload granularity.
    pub cacheline: u32,
    /// Wire time to put one frame on the network medium.
    pub tx_wire_time: Tick,
    /// Receive traffic: `(frame_bytes, inter-arrival, total frames)`.
    /// Frames start arriving when the driver first posts RX buffers.
    pub rx_stream: Option<(u32, Tick, u32)>,
    /// Interrupt message target: `(irq, interrupt-controller base)`.
    pub intx: Option<(u8, u64)>,
    /// Expose a functional (software-enableable) MSI capability instead of
    /// the paper's disabled one.
    pub msi_capable: bool,
    /// TX/RX queue pairs (1..=[`MAX_QUEUES`]; 1 is the paper's model).
    pub queues: u32,
    /// Expose a functional MSI-X capability with a programmable table +
    /// PBA in BAR0 (2 vectors per queue pair) instead of the paper's
    /// hardwired-disabled structure.
    pub msix_capable: bool,
    /// Per-vector interrupt moderation holdoff (0 disables moderation):
    /// after a vector fires, further causes coalesce until the holdoff
    /// timer expires, which delivers at most one deferred interrupt.
    pub moderation: Tick,
    /// Distinct receive flows the RSS hash spreads across RX queues;
    /// frame `i` belongs to flow `i % rx_flows`.
    pub rx_flows: u32,
    /// Open-loop receive traffic source (generated or trace replay) with
    /// per-frame sizes and flows. Mutually exclusive with `rx_stream`;
    /// like it, frames start arriving at the first RX tail write.
    pub rx_source: Option<TrafficSpec>,
}

impl Default for NicConfig {
    fn default() -> Self {
        Self {
            pio_latency: ns(50),
            cacheline: 64,
            tx_wire_time: ns(1200),
            rx_stream: None,
            intx: None,
            msi_capable: false,
            queues: 1,
            msix_capable: false,
            moderation: 0,
            rx_flows: 16,
            rx_source: None,
        }
    }
}

/// Builds the 8254x-pcie configuration space: device 0x10D3, the Intel
/// 82574l capability chain (PM → MSI → PCIe → MSI-X, all but PCIe
/// disabled), one 128 KB memory BAR and an INTA pin.
pub fn nic_config_space() -> ConfigSpace {
    nic_config_space_with(false)
}

/// Like [`nic_config_space`], optionally exposing a functional MSI
/// capability (the paper's future-work extension).
pub fn nic_config_space_with(msi_capable: bool) -> ConfigSpace {
    nic_config_space_for(&NicConfig { msi_capable, ..NicConfig::default() })
}

/// Builds the configuration space matching a [`NicConfig`]: the MSI and
/// MSI-X structures become functional (programmable, software-enableable)
/// when the config asks for them, and the MSI-X table size follows the
/// queue count (one vector per ring).
pub fn nic_config_space_for(config: &NicConfig) -> ConfigSpace {
    let mut cs = Type0Header::new(0x8086, NIC_DEVICE_ID)
        .class_code(0x02, 0x00, 0x00)
        .revision(0x00)
        .subsystem(0x8086, 0xa01f)
        .bar(0, Bar::Memory32 { size: 0x2_0000, prefetchable: false })
        .bar(2, Bar::Io { size: 0x20 })
        .interrupt_pin(1)
        .capabilities_at(0xc8)
        .build();
    let msi = if config.msi_capable { Capability::MsiCapable } else { Capability::MsiDisabled };
    let msix = if config.msix_capable {
        Capability::MsixCapable {
            table_size: num_msix_vectors(config.queues),
            table_bar: 0,
            table_offset: MSIX_TABLE_OFFSET as u32,
            pba_bar: 0,
            pba_offset: MSIX_PBA_OFFSET as u32,
        }
    } else {
        Capability::MsixDisabled
    };
    CapChain::new()
        .add(0xc8, Capability::PowerManagement)
        .add(0xd0, msi)
        .add(
            0xe0,
            Capability::PciExpress {
                port_type: PortType::Endpoint,
                generation: Generation::Gen2,
                max_width: 1,
            },
        )
        .add(0xa0, msix)
        .write_into(&mut cs);
    // AER extended capability at the top of extended config space: DMA
    // error completions latch here so enumeration/diagnosis can walk it.
    write_aer_capability(&mut cs, 0x100, 0);
    cs
}

fn encode_dma_job(w: &mut StateWriter, job: &DmaJob) {
    w.u8(match job.engine {
        Engine::Tx => 0,
        Engine::Rx => 1,
    });
    w.u8(job.queue);
    w.bool(job.write);
    w.u64(job.addr);
    w.u32(job.len);
}

fn decode_dma_job(r: &mut StateReader<'_>) -> Result<DmaJob, SnapshotError> {
    let engine = match r.u8()? {
        0 => Engine::Tx,
        1 => Engine::Rx,
        other => return Err(SnapshotError::Corrupt(format!("unknown DMA engine {other}"))),
    };
    Ok(DmaJob { engine, queue: r.u8()?, write: r.bool()?, addr: r.u64()?, len: r.u32()? })
}

const K_TX_KICK: u32 = 0;
const K_TX_WIRE_DONE: u32 = 1;
const K_DMA_RESP: u32 = 2;
const K_RX_FRAME: u32 = 3;
const K_ITR: u32 = 4;
const K_RX_TRAFFIC: u32 = 5;
const TAG_PIO_RESP: u32 = 0;

/// Packs a traffic frame into a timer's `data` word: flow in the low 32
/// bits, frame bytes in the high 32.
fn pack_traffic_frame(flow: u32, bytes: u32) -> u64 {
    u64::from(flow) | (u64::from(bytes) << 32)
}

fn unpack_traffic_frame(data: u64) -> (u32, u32) {
    (data as u32, (data >> 32) as u32)
}

/// Which engine a DMA job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    Tx,
    Rx,
}

/// One queued DMA transfer.
#[derive(Debug, Clone, Copy)]
struct DmaJob {
    engine: Engine,
    queue: u8,
    write: bool,
    addr: u64,
    len: u32,
}

/// Progress of the active job.
#[derive(Debug, Clone, Copy)]
struct ActiveJob {
    job: DmaJob,
    next_addr: u64,
    remaining: u32,
    outstanding: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxPhase {
    Idle,
    FetchDescriptor,
    FetchBuffer,
    OnWire,
    Writeback,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RxPhase {
    Idle,
    FetchDescriptor,
    WriteData,
    Writeback,
}

/// Ring registers and engine phase of one TX queue.
#[derive(Debug, Clone, Copy)]
struct TxQueue {
    tdba: u64,
    tdlen: u32,
    tdh: u32,
    tdt: u32,
    tx_buflen: u32,
    phase: TxPhase,
}

impl Default for TxQueue {
    fn default() -> Self {
        Self { tdba: 0, tdlen: 0, tdh: 0, tdt: 0, tx_buflen: 0, phase: TxPhase::Idle }
    }
}

/// Ring registers, engine phase, and FIFO occupancy of one RX queue.
#[derive(Debug, Clone, Copy)]
struct RxQueue {
    rdba: u64,
    rdlen: u32,
    rdh: u32,
    rdt: u32,
    phase: RxPhase,
    fifo: u32,
}

impl Default for RxQueue {
    fn default() -> Self {
        Self { rdba: 0, rdlen: 0, rdh: 0, rdt: 0, phase: RxPhase::Idle, fifo: 0 }
    }
}

#[derive(Debug, Default)]
struct NicStats {
    mmio_reads: Counter,
    mmio_writes: Counter,
    frames_tx: Counter,
    frames_rx: Counter,
    rx_overruns: Counter,
    dma_read_tlps: Counter,
    dma_write_tlps: Counter,
    dma_bytes: Counter,
    /// DMA requests that completed with an error status (UR/CA/timeout)
    /// instead of data; reads consumed all-ones.
    dma_error_completions: Counter,
    /// Round-trip fabric latency of DMA read TLPs, issue to completion,
    /// in ticks — the per-stream tail-latency view the contention
    /// experiments compare.
    dma_read_latency: Histogram,
    irqs: Counter,
    /// MSI-X doorbell memory writes actually put on the fabric.
    msix_irqs: Counter,
    /// Interrupt causes absorbed by a running moderation holdoff window.
    irqs_coalesced: Counter,
    /// Medium-arrival to memory-writeback latency of traffic-source
    /// frames, in ticks (only populated when `rx_source` is set).
    rx_frame_latency: Histogram,
}

/// The NIC component.
pub struct Nic {
    name: String,
    config: NicConfig,
    config_space: SharedConfigSpace,
    // Registers.
    ctrl: u32,
    icr: u32,
    ims: u32,
    txq: Vec<TxQueue>,
    rxq: Vec<RxQueue>,
    // Shared DMA pipeline.
    jobs: VecDeque<DmaJob>,
    active: Option<ActiveJob>,
    stalled: Option<Packet>,
    /// Issue tick of each in-flight DMA read, by packet id.
    dma_read_issue: HashMap<u64, Tick>,
    // RX stream.
    rx_frames_left: u32,
    rx_stream_started: bool,
    /// Arrival sequence number feeding the RSS flow hash.
    rx_frame_seq: u32,
    // Open-loop traffic source (rx_source): the pull feed, per-queue
    // FIFO metadata `(bytes, arrival tick)` mirroring `RxQueue::fifo`,
    // the frame each queue's engine is currently delivering, and the
    // delivered-octet count behind GORCL/GORCH.
    rx_feed: Option<TrafficFeed>,
    rx_fifo_meta: Vec<VecDeque<(u32, Tick)>>,
    rx_cur: Vec<(u32, Tick)>,
    rx_octets: u64,
    // MSI-X table (4 dwords per vector), pending-bit array, and the
    // per-vector moderation holdoff / deferred-cause flags.
    msix_table: Vec<u32>,
    msix_pba: u64,
    itr_holdoff: Vec<bool>,
    itr_pending: Vec<bool>,
    /// Packet ids of in-flight MSI-X doorbell writes: their completions
    /// must not be confused with DMA job completions.
    irq_inflight: BTreeSet<u64>,
    /// Doorbell writes refused by the fabric, awaiting a retry grant.
    irq_stalled: VecDeque<Packet>,
    // PIO responses.
    pio_waiting: bool,
    pio_blocked: VecDeque<Packet>,
    stats: NicStats,
}

impl Nic {
    /// Creates a NIC; returns the component and its shared configuration
    /// space for PCI-host registration.
    pub fn new(name: impl Into<String>, config: NicConfig) -> (Self, SharedConfigSpace) {
        assert!(
            (1..=MAX_QUEUES).contains(&config.queues),
            "NIC queue pairs must be 1..={MAX_QUEUES}, got {}",
            config.queues
        );
        assert!(
            config.rx_stream.is_none() || config.rx_source.is_none(),
            "rx_stream and rx_source are mutually exclusive receive mediums"
        );
        let cs = shared(nic_config_space_for(&config));
        let vectors = usize::from(num_msix_vectors(config.queues));
        // Vectors power up masked (vector control bit 0 set), per spec.
        let mut msix_table = Vec::new();
        if config.msix_capable {
            for _ in 0..vectors {
                msix_table.extend_from_slice(&[0, 0, 0, pcisim_pci::caps::msix::VECTOR_CTRL_MASK]);
            }
        }
        (
            Self {
                name: name.into(),
                config_space: cs.clone(),
                ctrl: 0,
                icr: 0,
                ims: 0,
                txq: vec![TxQueue::default(); config.queues as usize],
                rxq: vec![RxQueue::default(); config.queues as usize],
                jobs: VecDeque::new(),
                active: None,
                stalled: None,
                dma_read_issue: HashMap::new(),
                rx_frames_left: 0,
                rx_stream_started: false,
                rx_frame_seq: 0,
                rx_feed: config.rx_source.as_ref().map(TrafficFeed::new),
                rx_fifo_meta: (0..config.queues).map(|_| VecDeque::new()).collect(),
                rx_cur: vec![(0, 0); config.queues as usize],
                rx_octets: 0,
                msix_table,
                msix_pba: 0,
                itr_holdoff: vec![false; vectors],
                itr_pending: vec![false; vectors],
                irq_inflight: BTreeSet::new(),
                irq_stalled: VecDeque::new(),
                pio_waiting: false,
                pio_blocked: VecDeque::new(),
                stats: NicStats::default(),
                config,
            },
            cs,
        )
    }

    /// Re-targets the INTx interrupt message (used once the enumerated IRQ
    /// is known).
    pub fn set_intx(&mut self, intx: Option<(u8, u64)>) {
        self.config.intx = intx;
    }

    fn bar0(&self) -> u64 {
        bar_base(&self.config_space.borrow(), 0)
    }

    // --- registers ---------------------------------------------------------

    /// Maps a BAR0 offset inside the MSI-X table to its dword index.
    fn msix_dword(&self, offset: u64) -> Option<usize> {
        if !self.config.msix_capable {
            return None;
        }
        let end = MSIX_TABLE_OFFSET
            + u64::from(num_msix_vectors(self.config.queues)) * pcisim_pci::caps::msix::ENTRY_SIZE;
        if (MSIX_TABLE_OFFSET..end).contains(&offset) {
            Some(((offset - MSIX_TABLE_OFFSET) / 4) as usize)
        } else {
            None
        }
    }

    fn reg_read(&mut self, offset: u64) -> u32 {
        self.stats.mmio_reads.inc();
        let nq = u64::from(self.config.queues);
        match offset {
            regs::CTRL => self.ctrl,
            regs::STATUS => STATUS_LINK_UP,
            regs::ICR => std::mem::take(&mut self.icr), // read clears
            regs::IMS => self.ims,
            regs::MPC => self.stats.rx_overruns.value() as u32,
            regs::GPRC => self.stats.frames_rx.value() as u32,
            regs::GORCL => self.rx_octets as u32,
            regs::GORCH => (self.rx_octets >> 32) as u32,
            o if (regs::RDBAL..regs::RDBAL + nq * regs::QUEUE_STRIDE).contains(&o) => {
                let q = ((o - regs::RDBAL) / regs::QUEUE_STRIDE) as usize;
                let rxq = &self.rxq[q];
                match o - (q as u64) * regs::QUEUE_STRIDE {
                    regs::RDBAL => rxq.rdba as u32,
                    regs::RDBAH => (rxq.rdba >> 32) as u32,
                    regs::RDLEN => rxq.rdlen,
                    regs::RDH => rxq.rdh,
                    regs::RDT => rxq.rdt,
                    _ => 0,
                }
            }
            o if (regs::TDBAL..regs::TDBAL + nq * regs::QUEUE_STRIDE).contains(&o) => {
                let q = ((o - regs::TDBAL) / regs::QUEUE_STRIDE) as usize;
                let txq = &self.txq[q];
                match o - (q as u64) * regs::QUEUE_STRIDE {
                    regs::TDBAL => txq.tdba as u32,
                    regs::TDBAH => (txq.tdba >> 32) as u32,
                    regs::TDLEN => txq.tdlen,
                    regs::TDH => txq.tdh,
                    regs::TDT => txq.tdt,
                    regs::TX_BUFLEN => txq.tx_buflen,
                    _ => 0,
                }
            }
            o if self.msix_dword(o).is_some() => {
                let i = self.msix_dword(o).expect("checked by guard");
                self.msix_table[i]
            }
            o if self.config.msix_capable && o == MSIX_PBA_OFFSET => self.msix_pba as u32,
            o if self.config.msix_capable && o == MSIX_PBA_OFFSET + 4 => {
                (self.msix_pba >> 32) as u32
            }
            _ => 0,
        }
    }

    fn reg_write(&mut self, ctx: &mut Ctx<'_>, offset: u64, value: u32) {
        self.stats.mmio_writes.inc();
        let nq = u64::from(self.config.queues);
        match offset {
            regs::CTRL => self.ctrl = value,
            regs::IMS => self.ims |= value,
            regs::IMC => self.ims &= !value,
            o if (regs::RDBAL..regs::RDBAL + nq * regs::QUEUE_STRIDE).contains(&o) => {
                let q = ((o - regs::RDBAL) / regs::QUEUE_STRIDE) as usize;
                match o - (q as u64) * regs::QUEUE_STRIDE {
                    regs::RDBAL => {
                        self.rxq[q].rdba = (self.rxq[q].rdba & !0xffff_ffff) | u64::from(value)
                    }
                    regs::RDBAH => {
                        self.rxq[q].rdba =
                            (self.rxq[q].rdba & 0xffff_ffff) | (u64::from(value) << 32)
                    }
                    regs::RDLEN => self.rxq[q].rdlen = value,
                    regs::RDT => {
                        self.rxq[q].rdt = value;
                        ctx.emit(TraceCategory::Device, TraceKind::Doorbell, None, None, offset);
                        self.start_rx_stream(ctx);
                        self.rx_kick(ctx, q);
                    }
                    _ => {}
                }
            }
            o if (regs::TDBAL..regs::TDBAL + nq * regs::QUEUE_STRIDE).contains(&o) => {
                let q = ((o - regs::TDBAL) / regs::QUEUE_STRIDE) as usize;
                match o - (q as u64) * regs::QUEUE_STRIDE {
                    regs::TDBAL => {
                        self.txq[q].tdba = (self.txq[q].tdba & !0xffff_ffff) | u64::from(value)
                    }
                    regs::TDBAH => {
                        self.txq[q].tdba =
                            (self.txq[q].tdba & 0xffff_ffff) | (u64::from(value) << 32)
                    }
                    regs::TDLEN => self.txq[q].tdlen = value,
                    regs::TX_BUFLEN => self.txq[q].tx_buflen = value,
                    regs::TDT => {
                        self.txq[q].tdt = value;
                        ctx.emit(TraceCategory::Device, TraceKind::Doorbell, None, None, offset);
                        if self.txq[q].phase == TxPhase::Idle {
                            ctx.schedule(0, Event::Timer { kind: K_TX_KICK, data: q as u64 });
                        }
                    }
                    _ => {}
                }
            }
            o if self.msix_dword(o).is_some() => {
                let i = self.msix_dword(o).expect("checked by guard");
                self.msix_table[i] = value;
            }
            _ => {}
        }
    }

    // --- shared DMA pipeline -------------------------------------------------

    fn enqueue_job(&mut self, ctx: &mut Ctx<'_>, job: DmaJob) {
        self.jobs.push_back(job);
        self.pump_dma(ctx);
    }

    fn pump_dma(&mut self, ctx: &mut Ctx<'_>) {
        if self.active.is_none() {
            let Some(job) = self.jobs.pop_front() else { return };
            self.active =
                Some(ActiveJob { job, next_addr: job.addr, remaining: job.len, outstanding: 0 });
        }
        while self.stalled.is_none() {
            let Some(active) = &self.active else { return };
            if active.remaining == 0 {
                break;
            }
            let chunk = active.remaining.min(self.config.cacheline);
            let write = active.job.write;
            let id = ctx.alloc_packet_id();
            let pkt = if write {
                Packet::request(id, Command::WriteReq, active.next_addr, chunk, ctx.self_id())
                    .with_payload(ctx.alloc_payload(chunk as usize))
            } else {
                Packet::request(id, Command::ReadReq, active.next_addr, chunk, ctx.self_id())
            };
            match ctx.try_send_request(NIC_DMA_PORT, pkt) {
                Ok(()) => {
                    let kind = if write { TraceKind::DmaWrite } else { TraceKind::DmaRead };
                    ctx.emit(TraceCategory::Device, kind, Some(id), None, u64::from(chunk));
                    if !write {
                        self.dma_read_issue.insert(id.0, ctx.now());
                    }
                    self.chunk_issued(chunk);
                }
                Err(back) => {
                    self.stalled = Some(back);
                }
            }
        }
        self.check_job_done(ctx);
    }

    /// Latches a failed DMA completion into the config space: the legacy
    /// Status bit a requester sets on receiving a UR/CA completion, plus
    /// the corresponding AER uncorrectable bit for timeouts.
    fn record_dma_error(&mut self, completion: CompletionStatus) {
        let mut cs = self.config_space.borrow_mut();
        match completion {
            CompletionStatus::UnsupportedRequest => {
                let st = cs.read(common::STATUS, 2) as u16;
                cs.init_u16(common::STATUS, st | status::RECEIVED_MASTER_ABORT);
                aer_record_uncorrectable(&mut cs, aer::uncor::UNSUPPORTED_REQUEST, 0);
            }
            CompletionStatus::CompleterAbort => {
                let st = cs.read(common::STATUS, 2) as u16;
                cs.init_u16(common::STATUS, st | status::RECEIVED_TARGET_ABORT);
            }
            CompletionStatus::CompletionTimeout => {
                aer_record_uncorrectable(&mut cs, aer::uncor::COMPLETION_TIMEOUT, 0);
            }
            CompletionStatus::SuccessfulCompletion => {}
        }
    }

    fn chunk_issued(&mut self, chunk: u32) {
        let active = self.active.as_mut().expect("issue without active job");
        active.remaining -= chunk;
        active.next_addr += u64::from(chunk);
        active.outstanding += 1;
        if active.job.write {
            self.stats.dma_write_tlps.inc();
        } else {
            self.stats.dma_read_tlps.inc();
        }
        self.stats.dma_bytes.add(u64::from(chunk));
    }

    fn check_job_done(&mut self, ctx: &mut Ctx<'_>) {
        let Some(active) = &self.active else { return };
        if active.remaining != 0 || active.outstanding != 0 || self.stalled.is_some() {
            return;
        }
        let engine = active.job.engine;
        let q = active.job.queue as usize;
        self.active = None;
        match engine {
            Engine::Tx => self.tx_job_done(ctx, q),
            Engine::Rx => self.rx_job_done(ctx, q),
        }
        self.pump_dma(ctx);
    }

    // --- TX engine -------------------------------------------------------------

    fn tx_kick(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        let txq = self.txq[q];
        if txq.phase != TxPhase::Idle || txq.tdh == txq.tdt || txq.tdlen == 0 {
            return;
        }
        self.txq[q].phase = TxPhase::FetchDescriptor;
        let desc_addr = txq.tdba + u64::from(txq.tdh) * u64::from(DESC_BYTES);
        self.enqueue_job(
            ctx,
            DmaJob {
                engine: Engine::Tx,
                queue: q as u8,
                write: false,
                addr: desc_addr,
                len: DESC_BYTES,
            },
        );
    }

    fn tx_job_done(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        match self.txq[q].phase {
            TxPhase::FetchDescriptor => {
                self.txq[q].phase = TxPhase::FetchBuffer;
                // The descriptor names a buffer; the model takes its length
                // from TX_BUFLEN and fabricates the address (one window per
                // queue so traces distinguish them).
                let buf_addr =
                    0x9000_0000 + (q as u64) * 0x100_0000 + u64::from(self.txq[q].tdh) * 0x1_0000;
                let len = self.txq[q].tx_buflen.max(64);
                self.enqueue_job(
                    ctx,
                    DmaJob {
                        engine: Engine::Tx,
                        queue: q as u8,
                        write: false,
                        addr: buf_addr,
                        len,
                    },
                );
            }
            TxPhase::FetchBuffer => {
                self.txq[q].phase = TxPhase::OnWire;
                ctx.schedule(
                    self.config.tx_wire_time,
                    Event::Timer { kind: K_TX_WIRE_DONE, data: q as u64 },
                );
            }
            TxPhase::Writeback => {
                let txq = &mut self.txq[q];
                txq.tdh = (txq.tdh + 1) % txq.tdlen.max(1);
                self.stats.frames_tx.inc();
                let cause = tx_cause(q as u32);
                self.icr |= cause;
                if self.ims & cause != 0 {
                    self.deliver(ctx, tx_vector(q as u32));
                }
                self.txq[q].phase = TxPhase::Idle;
                self.tx_kick(ctx, q);
            }
            TxPhase::Idle | TxPhase::OnWire => {
                panic!("{}: TX q{q} job completion in phase {:?}", self.name, self.txq[q].phase)
            }
        }
    }

    fn tx_wire_done(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        self.txq[q].phase = TxPhase::Writeback;
        let desc_addr = self.txq[q].tdba + u64::from(self.txq[q].tdh) * u64::from(DESC_BYTES);
        self.enqueue_job(
            ctx,
            DmaJob {
                engine: Engine::Tx,
                queue: q as u8,
                write: true,
                addr: desc_addr + 12,
                len: 4,
            },
        );
    }

    // --- RX engine -------------------------------------------------------------

    fn start_rx_stream(&mut self, ctx: &mut Ctx<'_>) {
        if self.rx_stream_started {
            return;
        }
        if self.rx_feed.is_some() {
            self.rx_stream_started = true;
            self.schedule_next_traffic_frame(ctx);
            return;
        }
        let Some((_, interval, frames)) = self.config.rx_stream else { return };
        self.rx_stream_started = true;
        self.rx_frames_left = frames;
        if frames > 0 {
            ctx.schedule(interval, Event::Timer { kind: K_RX_FRAME, data: 0 });
        }
    }

    /// Pulls the next open-loop frame from the traffic feed and schedules
    /// its arrival; the frame itself rides in the timer's data word so a
    /// checkpoint taken between pull and arrival stays consistent (the
    /// kernel snapshots the pending event, the feed only its position).
    fn schedule_next_traffic_frame(&mut self, ctx: &mut Ctx<'_>) {
        let Some(feed) = &mut self.rx_feed else { return };
        if let Some(frame) = feed.next_frame() {
            ctx.schedule(
                frame.delta,
                Event::Timer {
                    kind: K_RX_TRAFFIC,
                    data: pack_traffic_frame(frame.flow, frame.bytes),
                },
            );
        }
    }

    /// An open-loop frame reaches the medium: steer it by RSS onto a
    /// queue FIFO (or count an overrun) and pull the next arrival.
    fn rx_traffic_arrived(&mut self, ctx: &mut Ctx<'_>, data: u64) {
        let (flow, bytes) = unpack_traffic_frame(data);
        self.schedule_next_traffic_frame(ctx);
        let q = rss_queue(flow, self.config.queues) as usize;
        if self.rxq[q].fifo >= RX_FIFO_FRAMES {
            self.stats.rx_overruns.inc();
        } else {
            self.rxq[q].fifo += 1;
            self.rx_fifo_meta[q].push_back((bytes, ctx.now()));
        }
        self.rx_kick(ctx, q);
    }

    fn rx_frame_arrived(&mut self, ctx: &mut Ctx<'_>) {
        let Some((_, interval, _)) = self.config.rx_stream else { return };
        self.rx_frames_left -= 1;
        if self.rx_frames_left > 0 {
            ctx.schedule(interval, Event::Timer { kind: K_RX_FRAME, data: 0 });
        }
        // RSS: hash the frame's flow onto an RX queue. With one queue this
        // degenerates to the legacy single-FIFO path.
        let flow = self.rx_frame_seq % self.config.rx_flows.max(1);
        self.rx_frame_seq = self.rx_frame_seq.wrapping_add(1);
        let q = rss_queue(flow, self.config.queues) as usize;
        if self.rxq[q].fifo >= RX_FIFO_FRAMES {
            // Internal packet buffer overflow: the fabric cannot drain
            // frames as fast as the medium delivers them.
            self.stats.rx_overruns.inc();
        } else {
            self.rxq[q].fifo += 1;
        }
        self.rx_kick(ctx, q);
    }

    fn rx_ring_empty(&self, q: usize) -> bool {
        self.rxq[q].rdlen == 0 || self.rxq[q].rdh == self.rxq[q].rdt
    }

    fn rx_kick(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        // Frames that arrived with no posted buffers are dropped, as on
        // real hardware when the internal FIFO has nowhere to go.
        while self.rxq[q].fifo > 0 && self.rx_ring_empty(q) && self.rxq[q].phase == RxPhase::Idle {
            self.rxq[q].fifo -= 1;
            self.rx_fifo_meta[q].pop_front();
            self.stats.rx_overruns.inc();
        }
        if self.rxq[q].phase != RxPhase::Idle || self.rxq[q].fifo == 0 || self.rx_ring_empty(q) {
            return;
        }
        self.rxq[q].fifo -= 1;
        self.rx_cur[q] = match self.rx_fifo_meta[q].pop_front() {
            Some(meta) => meta,
            None => (self.config.rx_stream.map(|(bytes, _, _)| bytes).unwrap_or(64), 0),
        };
        self.rxq[q].phase = RxPhase::FetchDescriptor;
        let desc_addr = self.rxq[q].rdba + u64::from(self.rxq[q].rdh) * u64::from(DESC_BYTES);
        self.enqueue_job(
            ctx,
            DmaJob {
                engine: Engine::Rx,
                queue: q as u8,
                write: false,
                addr: desc_addr,
                len: DESC_BYTES,
            },
        );
    }

    fn rx_job_done(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        match self.rxq[q].phase {
            RxPhase::FetchDescriptor => {
                self.rxq[q].phase = RxPhase::WriteData;
                let frame_bytes = self.rx_cur[q].0;
                // The descriptor names the buffer; the model fabricates it.
                let buf_addr =
                    0xa000_0000 + (q as u64) * 0x100_0000 + u64::from(self.rxq[q].rdh) * 0x1_0000;
                self.enqueue_job(
                    ctx,
                    DmaJob {
                        engine: Engine::Rx,
                        queue: q as u8,
                        write: true,
                        addr: buf_addr,
                        len: frame_bytes.max(64),
                    },
                );
            }
            RxPhase::WriteData => {
                self.rxq[q].phase = RxPhase::Writeback;
                let desc_addr =
                    self.rxq[q].rdba + u64::from(self.rxq[q].rdh) * u64::from(DESC_BYTES);
                self.enqueue_job(
                    ctx,
                    DmaJob {
                        engine: Engine::Rx,
                        queue: q as u8,
                        write: true,
                        addr: desc_addr + 12,
                        len: 4,
                    },
                );
            }
            RxPhase::Writeback => {
                let rxq = &mut self.rxq[q];
                rxq.rdh = (rxq.rdh + 1) % rxq.rdlen.max(1);
                self.stats.frames_rx.inc();
                if self.config.rx_source.is_some() {
                    let (bytes, arrived) = self.rx_cur[q];
                    self.rx_octets += u64::from(bytes);
                    self.stats.rx_frame_latency.record(ctx.now().saturating_sub(arrived) as f64);
                }
                let cause = rx_cause(q as u32);
                self.icr |= cause;
                if self.ims & cause != 0 {
                    self.deliver(ctx, rx_vector(self.config.queues, q as u32));
                }
                self.rxq[q].phase = RxPhase::Idle;
                self.rx_kick(ctx, q);
            }
            RxPhase::Idle => panic!("{}: RX q{q} job completion while idle", self.name),
        }
    }

    // --- interrupts & PIO -------------------------------------------------------

    fn msix_active(&self) -> bool {
        self.config.msix_capable && pcisim_pci::caps::msix_enabled(&self.config_space.borrow())
    }

    fn vector_masked(&self, v: u16) -> bool {
        if pcisim_pci::caps::msix_function_masked(&self.config_space.borrow()) {
            return true;
        }
        self.msix_table[v as usize * 4 + 3] & pcisim_pci::caps::msix::VECTOR_CTRL_MASK != 0
    }

    /// Routes an unmasked interrupt cause: MSI-X when the function enable
    /// is set, otherwise the legacy MSI/INTx message path.
    fn deliver(&mut self, ctx: &mut Ctx<'_>, vector: u16) {
        if self.msix_active() {
            self.msix_deliver(ctx, vector);
        } else {
            self.raise_irq(ctx);
        }
    }

    fn msix_deliver(&mut self, ctx: &mut Ctx<'_>, v: u16) {
        if self.vector_masked(v) {
            // Pending latches in the PBA while the vector is masked; the
            // unmask drains it.
            self.msix_pba |= 1 << v;
            return;
        }
        if self.itr_holdoff[v as usize] {
            // Moderation: the cause folds into the running holdoff window
            // and the expiry timer delivers one coalesced interrupt.
            self.itr_pending[v as usize] = true;
            self.stats.irqs_coalesced.inc();
            return;
        }
        self.msix_send(ctx, v);
    }

    /// Puts the vector's doorbell memory write on the fabric and, when
    /// moderation is on, opens the holdoff window.
    fn msix_send(&mut self, ctx: &mut Ctx<'_>, v: u16) {
        let base = v as usize * 4;
        let addr = u64::from(self.msix_table[base]) | (u64::from(self.msix_table[base + 1]) << 32);
        let data = self.msix_table[base + 2];
        self.stats.irqs.inc();
        self.stats.msix_irqs.inc();
        let id = ctx.alloc_packet_id();
        ctx.emit(TraceCategory::Device, TraceKind::Interrupt, Some(id), None, addr);
        let mut buf = ctx.alloc_payload(4);
        buf.copy_from_slice(&data.to_le_bytes());
        let pkt = Packet::request(id, Command::WriteReq, addr, 4, ctx.self_id()).with_payload(buf);
        self.irq_inflight.insert(id.0);
        if let Err(back) = ctx.try_send_request(NIC_DMA_PORT, pkt) {
            self.irq_stalled.push_back(back);
        }
        if self.config.moderation > 0 {
            self.itr_holdoff[v as usize] = true;
            ctx.schedule(self.config.moderation, Event::Timer { kind: K_ITR, data: u64::from(v) });
        }
    }

    fn itr_expired(&mut self, ctx: &mut Ctx<'_>, v: u16) {
        self.itr_holdoff[v as usize] = false;
        if std::mem::take(&mut self.itr_pending[v as usize]) {
            // Mask state is re-evaluated at expiry: a vector masked during
            // the window latches in the PBA instead of firing.
            self.msix_deliver(ctx, v);
        }
    }

    /// Fires PBA-latched vectors that are no longer masked. Runs after
    /// every MMIO access, which is how the model observes unmasking done
    /// through config space (function mask / enable) as well as through
    /// the vector-control table writes themselves.
    fn msix_drain(&mut self, ctx: &mut Ctx<'_>) {
        if !self.msix_active() {
            return;
        }
        for v in 0..num_msix_vectors(self.config.queues) {
            let bit = 1u64 << v;
            if self.msix_pba & bit == 0 || self.vector_masked(v) {
                continue;
            }
            self.msix_pba &= !bit;
            if self.itr_holdoff[v as usize] {
                self.itr_pending[v as usize] = true;
            } else {
                self.msix_send(ctx, v);
            }
        }
    }

    fn raise_irq(&mut self, ctx: &mut Ctx<'_>) {
        self.stats.irqs.inc();
        let msi = pcisim_pci::caps::msi_target(&self.config_space.borrow()).map(|(a, _)| a);
        let addr = msi.or_else(|| self.config.intx.map(|(irq, base)| irq_message_addr(base, irq)));
        if let Some(addr) = addr {
            let id = ctx.alloc_packet_id();
            ctx.emit(TraceCategory::Device, TraceKind::Interrupt, Some(id), None, addr);
            let msg = Packet::request(id, Command::Message, addr, 4, ctx.self_id())
                .with_payload(ctx.alloc_payload(4));
            if let Err(back) = ctx.try_send_request(NIC_DMA_PORT, msg) {
                self.stalled = Some(back);
            }
        }
    }

    fn flush_pio(&mut self, ctx: &mut Ctx<'_>) {
        while !self.pio_waiting {
            let Some(pkt) = self.pio_blocked.pop_front() else { return };
            match ctx.try_send_response(NIC_PIO_PORT, pkt) {
                Ok(()) => {}
                Err(back) => {
                    self.pio_blocked.push_front(back);
                    self.pio_waiting = true;
                }
            }
        }
    }
}

impl Component for Nic {
    fn name(&self) -> &str {
        &self.name
    }

    fn recv_request(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) -> RecvResult {
        assert_eq!(port, NIC_PIO_PORT, "{}: MMIO arrives on the PIO port", self.name);
        let offset = pkt.addr().wrapping_sub(self.bar0());
        assert!(offset < 0x2_0000, "{}: access outside BAR0 at {:#x}", self.name, pkt.addr());
        let resp = match pkt.cmd() {
            Command::ReadReq => {
                let v = self.reg_read(offset);
                let mut full = vec![0u8; pkt.size() as usize];
                let n = full.len().min(4);
                full[..n].copy_from_slice(&v.to_le_bytes()[..n]);
                pkt.into_read_response(full)
            }
            Command::WriteReq => {
                let v = pkt
                    .payload()
                    .map(|p| {
                        let mut b = [0u8; 4];
                        let n = p.len().min(4);
                        b[..n].copy_from_slice(&p[..n]);
                        u32::from_le_bytes(b)
                    })
                    .unwrap_or(0);
                self.reg_write(ctx, offset, v);
                pkt.into_response()
            }
            other => panic!("{}: unexpected PIO command {other:?}", self.name),
        };
        ctx.schedule(
            self.config.pio_latency,
            Event::DelayedPacket { tag: TAG_PIO_RESP, pkt: resp },
        );
        // Any MMIO access re-evaluates PBA-latched vectors (software may
        // just have unmasked one, via the table or config space).
        if self.msix_pba != 0 {
            self.msix_drain(ctx);
        }
        RecvResult::Accepted
    }

    fn recv_response(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) -> RecvResult {
        assert_eq!(port, NIC_DMA_PORT);
        assert!(matches!(pkt.cmd(), Command::ReadResp | Command::WriteResp));
        if self.irq_inflight.remove(&pkt.id().0) {
            // Completion of an MSI-X doorbell write: unrelated to the DMA
            // pipeline, so it must not touch the active job's accounting.
            if pkt.is_error() {
                self.stats.dma_error_completions.inc();
                self.record_dma_error(pkt.status());
            }
            if let Some(buf) = pkt.take_payload() {
                ctx.recycle_payload(buf);
            }
            return RecvResult::Accepted;
        }
        if pkt.is_error() {
            // A DMA request master-aborted or timed out somewhere in the
            // fabric: reads delivered all-ones. The engine keeps running —
            // a real device DMAs garbage, it does not wedge — but the
            // failure latches in the legacy Status register and AER so
            // software can see it.
            self.stats.dma_error_completions.inc();
            self.record_dma_error(pkt.status());
        }
        if let Some(buf) = pkt.take_payload() {
            ctx.recycle_payload(buf);
        }
        if let Some(issued) = self.dma_read_issue.remove(&pkt.id().0) {
            self.stats.dma_read_latency.record((ctx.now() - issued) as f64);
        }
        if let Some(active) = &mut self.active {
            active.outstanding -= 1;
        }
        ctx.schedule(0, Event::Timer { kind: K_DMA_RESP, data: 0 });
        RecvResult::Accepted
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Timer { kind: K_TX_KICK, data } => self.tx_kick(ctx, data as usize),
            Event::Timer { kind: K_TX_WIRE_DONE, data } => self.tx_wire_done(ctx, data as usize),
            Event::Timer { kind: K_DMA_RESP, .. } => self.pump_dma(ctx),
            Event::Timer { kind: K_RX_FRAME, .. } => self.rx_frame_arrived(ctx),
            Event::Timer { kind: K_RX_TRAFFIC, data } => self.rx_traffic_arrived(ctx, data),
            Event::Timer { kind: K_ITR, data } => self.itr_expired(ctx, data as u16),
            Event::Timer { kind, .. } => panic!("{}: unknown timer {kind}", self.name),
            Event::DelayedPacket { tag: TAG_PIO_RESP, pkt } => {
                self.pio_blocked.push_back(pkt);
                self.flush_pio(ctx);
            }
            Event::DelayedPacket { tag, .. } => panic!("{}: unknown tag {tag}", self.name),
            Event::StampedPacket { .. } => panic!("{}: unexpected stamped packet", self.name),
        }
    }

    fn retry_granted(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        match port {
            NIC_DMA_PORT => {
                // Stalled doorbell writes retry ahead of the DMA pipeline
                // (interrupts are latency-critical).
                while let Some(pkt) = self.irq_stalled.pop_front() {
                    if let Err(back) = ctx.try_send_request(NIC_DMA_PORT, pkt) {
                        self.irq_stalled.push_front(back);
                        return;
                    }
                }
                if let Some(pkt) = self.stalled.take() {
                    let chunk = pkt.size();
                    let is_msg = pkt.cmd() == Command::Message;
                    let read_id = (pkt.cmd() == Command::ReadReq).then(|| pkt.id().0);
                    match ctx.try_send_request(NIC_DMA_PORT, pkt) {
                        Ok(()) => {
                            if let Some(id) = read_id {
                                self.dma_read_issue.insert(id, ctx.now());
                            }
                            if !is_msg {
                                self.chunk_issued(chunk);
                            }
                        }
                        Err(back) => {
                            self.stalled = Some(back);
                            return;
                        }
                    }
                }
                self.pump_dma(ctx);
            }
            NIC_PIO_PORT => {
                self.pio_waiting = false;
                self.flush_pio(ctx);
            }
            other => panic!("{}: retry on unknown port {other}", self.name),
        }
    }

    fn report_stats(&self, out: &mut StatsBuilder) {
        out.counter("mmio_reads", &self.stats.mmio_reads);
        out.counter("mmio_writes", &self.stats.mmio_writes);
        out.counter("frames_tx", &self.stats.frames_tx);
        out.counter("frames_rx", &self.stats.frames_rx);
        out.counter("rx_overruns", &self.stats.rx_overruns);
        out.counter("dma_read_tlps", &self.stats.dma_read_tlps);
        out.counter("dma_write_tlps", &self.stats.dma_write_tlps);
        out.counter("dma_bytes", &self.stats.dma_bytes);
        out.counter("dma_error_completions", &self.stats.dma_error_completions);
        out.histogram("dma_read_latency", &self.stats.dma_read_latency);
        out.counter("irqs", &self.stats.irqs);
        out.counter("msix_irqs", &self.stats.msix_irqs);
        out.counter("irqs_coalesced", &self.stats.irqs_coalesced);
        // Traffic-source keys appear only when the source is configured,
        // so legacy systems keep their recorded stats fingerprints.
        if self.config.rx_source.is_some() {
            out.scalar("rx_octets", self.rx_octets as f64);
            out.histogram("rx_frame_latency", &self.stats.rx_frame_latency);
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.u32(self.ctrl);
        w.u32(self.icr);
        w.u32(self.ims);
        for txq in &self.txq {
            w.u64(txq.tdba);
            w.u32(txq.tdlen);
            w.u32(txq.tdh);
            w.u32(txq.tdt);
            w.u32(txq.tx_buflen);
            w.u8(match txq.phase {
                TxPhase::Idle => 0,
                TxPhase::FetchDescriptor => 1,
                TxPhase::FetchBuffer => 2,
                TxPhase::OnWire => 3,
                TxPhase::Writeback => 4,
            });
        }
        for rxq in &self.rxq {
            w.u64(rxq.rdba);
            w.u32(rxq.rdlen);
            w.u32(rxq.rdh);
            w.u32(rxq.rdt);
            w.u8(match rxq.phase {
                RxPhase::Idle => 0,
                RxPhase::FetchDescriptor => 1,
                RxPhase::WriteData => 2,
                RxPhase::Writeback => 3,
            });
            w.u32(rxq.fifo);
        }
        w.usize(self.jobs.len());
        for job in &self.jobs {
            encode_dma_job(w, job);
        }
        match &self.active {
            Some(a) => {
                w.bool(true);
                encode_dma_job(w, &a.job);
                w.u64(a.next_addr);
                w.u32(a.remaining);
                w.u32(a.outstanding);
            }
            None => w.bool(false),
        }
        match &self.stalled {
            Some(pkt) => {
                w.bool(true);
                pkt.encode(w);
            }
            None => w.bool(false),
        }
        // HashMap iterates in hash order; sort so the byte stream is
        // deterministic.
        let mut issues: Vec<(u64, Tick)> =
            self.dma_read_issue.iter().map(|(&id, &t)| (id, t)).collect();
        issues.sort_unstable();
        w.usize(issues.len());
        for (id, t) in issues {
            w.u64(id);
            w.u64(t);
        }
        w.u32(self.rx_frames_left);
        w.bool(self.rx_stream_started);
        w.u32(self.rx_frame_seq);
        w.usize(self.msix_table.len());
        for dword in &self.msix_table {
            w.u32(*dword);
        }
        w.u64(self.msix_pba);
        // Holdoff/pending flags pack into bitmasks (≤ 12 vectors).
        let mut holdoff = 0u64;
        let mut pending = 0u64;
        for (v, &h) in self.itr_holdoff.iter().enumerate() {
            holdoff |= u64::from(h) << v;
        }
        for (v, &p) in self.itr_pending.iter().enumerate() {
            pending |= u64::from(p) << v;
        }
        w.u64(holdoff);
        w.u64(pending);
        w.usize(self.irq_inflight.len());
        for id in &self.irq_inflight {
            w.u64(*id);
        }
        encode_packet_queue(w, &self.irq_stalled);
        w.bool(self.pio_waiting);
        encode_packet_queue(w, &self.pio_blocked);
        self.stats.mmio_reads.encode(w);
        self.stats.mmio_writes.encode(w);
        self.stats.frames_tx.encode(w);
        self.stats.frames_rx.encode(w);
        self.stats.rx_overruns.encode(w);
        self.stats.dma_read_tlps.encode(w);
        self.stats.dma_write_tlps.encode(w);
        self.stats.dma_bytes.encode(w);
        self.stats.dma_error_completions.encode(w);
        self.stats.dma_read_latency.encode(w);
        self.stats.irqs.encode(w);
        self.stats.msix_irqs.encode(w);
        self.stats.irqs_coalesced.encode(w);
        // Traffic-source state rides at the tail, only when configured,
        // so legacy checkpoints keep their exact byte layout. The feed
        // itself is described by its position: restore re-derives the
        // stream and skips the emitted prefix.
        if self.config.rx_source.is_some() {
            w.u32(self.rx_feed.as_ref().map(|f| f.emitted()).unwrap_or(0));
            w.u64(self.rx_octets);
            for q in 0..self.rxq.len() {
                w.u32(self.rx_cur[q].0);
                w.u64(self.rx_cur[q].1);
                w.usize(self.rx_fifo_meta[q].len());
                for &(bytes, arrived) in &self.rx_fifo_meta[q] {
                    w.u32(bytes);
                    w.u64(arrived);
                }
            }
            self.stats.rx_frame_latency.encode(w);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.ctrl = r.u32()?;
        self.icr = r.u32()?;
        self.ims = r.u32()?;
        for q in 0..self.txq.len() {
            self.txq[q].tdba = r.u64()?;
            self.txq[q].tdlen = r.u32()?;
            self.txq[q].tdh = r.u32()?;
            self.txq[q].tdt = r.u32()?;
            self.txq[q].tx_buflen = r.u32()?;
            self.txq[q].phase = match r.u8()? {
                0 => TxPhase::Idle,
                1 => TxPhase::FetchDescriptor,
                2 => TxPhase::FetchBuffer,
                3 => TxPhase::OnWire,
                4 => TxPhase::Writeback,
                other => return Err(SnapshotError::Corrupt(format!("unknown TX phase {other}"))),
            };
        }
        for q in 0..self.rxq.len() {
            self.rxq[q].rdba = r.u64()?;
            self.rxq[q].rdlen = r.u32()?;
            self.rxq[q].rdh = r.u32()?;
            self.rxq[q].rdt = r.u32()?;
            self.rxq[q].phase = match r.u8()? {
                0 => RxPhase::Idle,
                1 => RxPhase::FetchDescriptor,
                2 => RxPhase::WriteData,
                3 => RxPhase::Writeback,
                other => return Err(SnapshotError::Corrupt(format!("unknown RX phase {other}"))),
            };
            self.rxq[q].fifo = r.u32()?;
        }
        let n_jobs = r.usize()?;
        let mut jobs = VecDeque::with_capacity(n_jobs.min(4096));
        for _ in 0..n_jobs {
            jobs.push_back(decode_dma_job(r)?);
        }
        self.jobs = jobs;
        self.active = if r.bool()? {
            let job = decode_dma_job(r)?;
            Some(ActiveJob { job, next_addr: r.u64()?, remaining: r.u32()?, outstanding: r.u32()? })
        } else {
            None
        };
        self.stalled = if r.bool()? { Some(Packet::decode(r)?) } else { None };
        let n_issues = r.usize()?;
        let mut issues = HashMap::with_capacity(n_issues.min(4096));
        for _ in 0..n_issues {
            let id = r.u64()?;
            let t = r.u64()?;
            issues.insert(id, t);
        }
        self.dma_read_issue = issues;
        self.rx_frames_left = r.u32()?;
        self.rx_stream_started = r.bool()?;
        self.rx_frame_seq = r.u32()?;
        let n_table = r.usize()?;
        if n_table != self.msix_table.len() {
            return Err(SnapshotError::Corrupt(format!(
                "MSI-X table size mismatch: snapshot has {n_table} dwords, device {}",
                self.msix_table.len()
            )));
        }
        for dword in self.msix_table.iter_mut() {
            *dword = r.u32()?;
        }
        self.msix_pba = r.u64()?;
        let holdoff = r.u64()?;
        let pending = r.u64()?;
        for v in 0..self.itr_holdoff.len() {
            self.itr_holdoff[v] = holdoff & (1 << v) != 0;
            self.itr_pending[v] = pending & (1 << v) != 0;
        }
        let n_inflight = r.usize()?;
        let mut inflight = BTreeSet::new();
        for _ in 0..n_inflight {
            inflight.insert(r.u64()?);
        }
        self.irq_inflight = inflight;
        self.irq_stalled = decode_packet_queue(r)?;
        self.pio_waiting = r.bool()?;
        self.pio_blocked = decode_packet_queue(r)?;
        self.stats.mmio_reads = Counter::decode(r)?;
        self.stats.mmio_writes = Counter::decode(r)?;
        self.stats.frames_tx = Counter::decode(r)?;
        self.stats.frames_rx = Counter::decode(r)?;
        self.stats.rx_overruns = Counter::decode(r)?;
        self.stats.dma_read_tlps = Counter::decode(r)?;
        self.stats.dma_write_tlps = Counter::decode(r)?;
        self.stats.dma_bytes = Counter::decode(r)?;
        self.stats.dma_error_completions = Counter::decode(r)?;
        self.stats.dma_read_latency = Histogram::decode(r)?;
        self.stats.irqs = Counter::decode(r)?;
        self.stats.msix_irqs = Counter::decode(r)?;
        self.stats.irqs_coalesced = Counter::decode(r)?;
        if let Some(spec) = self.config.rx_source.as_ref() {
            let emitted = r.u32()?;
            self.rx_feed = Some(TrafficFeed::resume(spec, emitted));
            self.rx_octets = r.u64()?;
            for q in 0..self.rxq.len() {
                self.rx_cur[q] = (r.u32()?, r.u64()?);
                let n = r.usize()?;
                self.rx_fifo_meta[q].clear();
                for _ in 0..n {
                    let bytes = r.u32()?;
                    let arrived = r.u64()?;
                    self.rx_fifo_meta[q].push_back((bytes, arrived));
                }
            }
            self.stats.rx_frame_latency = Histogram::decode(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcisim_kernel::sim::{RunOutcome, Simulation};
    use pcisim_kernel::testutil::{Requester, Responder, REQUESTER_PORT, RESPONDER_PORT};

    const BAR0: u64 = 0x4010_0000;

    fn programmed_nic(config: NicConfig) -> (Nic, SharedConfigSpace) {
        let (nic, cs) = Nic::new("nic", config);
        cs.borrow_mut().write(0x10, 4, BAR0 as u32);
        (nic, cs)
    }

    #[test]
    fn config_space_matches_the_paper() {
        let cs = nic_config_space();
        assert_eq!(cs.read(0x00, 2), 0x8086);
        assert_eq!(cs.read(0x02, 2), u32::from(NIC_DEVICE_ID), "0x10D3 invokes e1000e");
        let caps = pcisim_pci::caps::walk_capabilities(&cs);
        let ids: Vec<u8> = caps.iter().map(|&(_, id)| id).collect();
        assert_eq!(
            ids,
            vec![
                pcisim_pci::regs::cap_id::POWER_MANAGEMENT,
                pcisim_pci::regs::cap_id::MSI,
                pcisim_pci::regs::cap_id::PCI_EXPRESS,
                pcisim_pci::regs::cap_id::MSI_X,
            ],
            "PM → MSI → PCIe → MSI-X, as in the 82574l datasheet"
        );
    }

    #[test]
    fn mmio_read_takes_pio_latency() {
        let mut sim = Simulation::new();
        let (nic, _cs) = programmed_nic(NicConfig { pio_latency: ns(80), ..NicConfig::default() });
        let (req, done) = Requester::new("cpu", vec![(Command::ReadReq, BAR0 + regs::STATUS, 4)]);
        let r = sim.add(Box::new(req));
        let n = sim.add(Box::new(nic));
        sim.connect((r, REQUESTER_PORT), (n, NIC_PIO_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        let done = done.borrow();
        assert_eq!(done[0].1, ns(80));
        assert_eq!(sim.stats().get("nic.mmio_reads"), Some(1.0));
    }

    #[test]
    fn status_register_reports_link_up() {
        let (mut nic, _) = programmed_nic(NicConfig::default());
        assert_eq!(nic.reg_read(regs::STATUS) & STATUS_LINK_UP, STATUS_LINK_UP);
    }

    #[test]
    fn icr_read_clears_pending_causes() {
        let (mut nic, _) = programmed_nic(NicConfig::default());
        nic.icr = INT_TXDW | INT_RXT0;
        assert_eq!(nic.reg_read(regs::ICR), INT_TXDW | INT_RXT0);
        assert_eq!(nic.reg_read(regs::ICR), 0, "ICR is read-clear");
    }

    #[test]
    fn ims_imc_set_and_clear_mask_bits() {
        let (mut nic, _) = programmed_nic(NicConfig::default());
        nic.ims |= INT_TXDW;
        assert_eq!(nic.reg_read(regs::IMS), INT_TXDW);
        nic.ims &= !INT_TXDW;
        assert_eq!(nic.reg_read(regs::IMS), 0);
    }

    /// A driver that programs registers at init, then absorbs responses.
    struct ScriptDriver {
        writes: Vec<(u64, u32)>,
        sent: bool,
    }
    impl Component for ScriptDriver {
        fn name(&self) -> &str {
            "drv"
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(0, Event::Timer { kind: 0, data: 0 });
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, _ev: Event) {
            if self.sent {
                return;
            }
            self.sent = true;
            for (off, val) in &self.writes {
                let id = ctx.alloc_packet_id();
                let pkt = Packet::request(id, Command::WriteReq, BAR0 + off, 4, ctx.self_id())
                    .with_payload(val.to_le_bytes().to_vec());
                ctx.try_send_request(PortId(0), pkt).expect("nic accepts PIO");
            }
        }
        fn recv_response(&mut self, _c: &mut Ctx<'_>, _p: PortId, _k: Packet) -> RecvResult {
            RecvResult::Accepted
        }
    }

    fn run_with_driver(
        config: NicConfig,
        writes: Vec<(u64, u32)>,
    ) -> pcisim_kernel::stats::StatsSnapshot {
        let mut sim = Simulation::new();
        let (nic, _cs) = programmed_nic(config);
        let drv = sim.add(Box::new(ScriptDriver { writes, sent: false }));
        let n = sim.add(Box::new(nic));
        let (mem, _) = Responder::new("mem", ns(30));
        let m = sim.add(Box::new(mem));
        sim.connect((drv, PortId(0)), (n, NIC_PIO_PORT));
        sim.connect((n, NIC_DMA_PORT), (m, RESPONDER_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        sim.stats()
    }

    #[test]
    fn tx_transmits_one_frame_with_descriptor_and_buffer_dma() {
        let stats = run_with_driver(
            NicConfig::default(),
            vec![
                (regs::TDBAL, 0x8800_0000),
                (regs::TDLEN, 64),
                (regs::TX_BUFLEN, 1514),
                (regs::IMS, INT_TXDW),
                (regs::TDT, 1),
            ],
        );
        assert_eq!(stats.get("nic.frames_tx"), Some(1.0));
        // 1 descriptor TLP + ceil(1514/64)=24 buffer TLPs.
        assert_eq!(stats.get("nic.dma_read_tlps"), Some(25.0));
        assert_eq!(stats.get("nic.dma_write_tlps"), Some(1.0), "status write-back");
        assert_eq!(stats.get("nic.irqs"), Some(1.0));
    }

    #[test]
    fn tx_ring_processes_multiple_frames() {
        let stats = run_with_driver(
            NicConfig::default(),
            vec![
                (regs::TDBAL, 0x8800_0000),
                (regs::TDLEN, 64),
                (regs::TX_BUFLEN, 256),
                (regs::IMS, INT_TXDW),
                (regs::TDT, 3),
            ],
        );
        assert_eq!(stats.get("nic.frames_tx"), Some(3.0));
        // Per frame: 1 descriptor + 4 buffer chunks (reads).
        assert_eq!(stats.get("nic.dma_read_tlps"), Some(15.0));
        assert_eq!(stats.get("nic.irqs"), Some(3.0));
    }

    #[test]
    fn masked_interrupt_does_not_fire() {
        let stats = run_with_driver(
            NicConfig::default(),
            vec![
                (regs::TDBAL, 0x8800_0000),
                (regs::TDLEN, 64),
                (regs::TX_BUFLEN, 128),
                (regs::TDT, 1),
            ],
        );
        assert_eq!(stats.get("nic.frames_tx"), Some(1.0));
        assert_eq!(stats.get("nic.irqs"), Some(0.0), "masked interrupt must not raise");
    }

    #[test]
    fn rx_frames_are_written_to_posted_buffers() {
        let config = NicConfig { rx_stream: Some((512, ns(2000), 4)), ..NicConfig::default() };
        let stats = run_with_driver(
            config,
            vec![
                (regs::RDBAL, 0x8900_0000),
                (regs::RDLEN, 64),
                (regs::IMS, INT_RXT0),
                (regs::RDT, 16),
            ],
        );
        assert_eq!(stats.get("nic.frames_rx"), Some(4.0));
        assert_eq!(stats.get("nic.rx_overruns"), Some(0.0));
        // Per frame: 1 descriptor read + 8 data-write chunks + 1 write-back.
        assert_eq!(stats.get("nic.dma_read_tlps"), Some(4.0));
        assert_eq!(stats.get("nic.dma_write_tlps"), Some(4.0 * 9.0));
        assert_eq!(stats.get("nic.irqs"), Some(4.0));
    }

    #[test]
    fn rx_without_posted_buffers_counts_overruns() {
        let config = NicConfig { rx_stream: Some((512, ns(2000), 5)), ..NicConfig::default() };
        // Only 2 buffers posted for 5 frames.
        let stats = run_with_driver(
            config,
            vec![(regs::RDBAL, 0x8900_0000), (regs::RDLEN, 64), (regs::RDT, 2)],
        );
        assert_eq!(stats.get("nic.frames_rx"), Some(2.0));
        assert_eq!(stats.get("nic.rx_overruns"), Some(3.0));
    }

    #[test]
    fn rx_fifo_overflow_drops_frames() {
        // Frames every 100 ns against a 30 ns-per-TLP memory: the 9-TLP
        // per-frame DMA takes ~0.3 µs... make memory slow enough that the
        // 32-frame FIFO overflows.
        let config = NicConfig { rx_stream: Some((1514, ns(100), 128)), ..NicConfig::default() };
        let mut sim = Simulation::new();
        let (nic, _cs) = programmed_nic(config);
        let drv = sim.add(Box::new(ScriptDriver {
            writes: vec![(regs::RDBAL, 0x8900_0000), (regs::RDLEN, 512), (regs::RDT, 511)],
            sent: false,
        }));
        let n = sim.add(Box::new(nic));
        let (mem, _) = Responder::new("mem", pcisim_kernel::tick::us(2));
        let m = sim.add(Box::new(mem));
        sim.connect((drv, PortId(0)), (n, NIC_PIO_PORT));
        sim.connect((n, NIC_DMA_PORT), (m, RESPONDER_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        let stats = sim.stats();
        let rx = stats.get("nic.frames_rx").unwrap();
        let drops = stats.get("nic.rx_overruns").unwrap();
        assert!(drops > 0.0, "slow DMA must overflow the FIFO");
        assert_eq!(rx + drops, 128.0, "every frame is either received or dropped");
    }

    #[test]
    fn rx_and_tx_share_the_dma_pipeline() {
        // Both engines active at once: everything completes, no panic from
        // interleaved completions.
        let config = NicConfig { rx_stream: Some((256, ns(500), 8)), ..NicConfig::default() };
        let stats = run_with_driver(
            config,
            vec![
                (regs::RDBAL, 0x8900_0000),
                (regs::RDLEN, 64),
                (regs::RDT, 32),
                (regs::TDBAL, 0x8800_0000),
                (regs::TDLEN, 64),
                (regs::TX_BUFLEN, 1024),
                (regs::IMS, INT_TXDW | INT_RXT0),
                (regs::TDT, 4),
            ],
        );
        assert_eq!(stats.get("nic.frames_tx"), Some(4.0));
        assert_eq!(stats.get("nic.frames_rx"), Some(8.0));
        assert_eq!(stats.get("nic.irqs"), Some(12.0));
    }

    // --- Traffic-source RX -----------------------------------------------------

    use crate::traffic::{record_trace, ArrivalProcess, SizeDist, TrafficConfig, TrafficSpec};
    use std::sync::Arc;

    fn traffic_cfg() -> TrafficConfig {
        TrafficConfig {
            seed: 0x5eed_cafe,
            flows: 4096,
            frames: 16,
            size: SizeDist::Fixed(512),
            arrival: ArrivalProcess::Periodic(ns(2000)),
        }
    }

    #[test]
    fn traffic_source_delivers_every_frame_without_interrupts() {
        let config = NicConfig {
            rx_source: Some(TrafficSpec::Generate(traffic_cfg())),
            ..NicConfig::default()
        };
        // Descriptors posted, interrupts never unmasked: a poll-mode driver.
        let stats = run_with_driver(
            config,
            vec![(regs::RDBAL, 0x8900_0000), (regs::RDLEN, 64), (regs::RDT, 32)],
        );
        assert_eq!(stats.get("nic.frames_rx"), Some(16.0));
        assert_eq!(stats.get("nic.rx_overruns"), Some(0.0));
        assert_eq!(stats.get("nic.irqs"), Some(0.0), "masked NIC must stay silent");
        assert_eq!(stats.get("nic.msix_irqs"), Some(0.0));
        assert_eq!(stats.get("nic.rx_octets"), Some(16.0 * 512.0));
        assert_eq!(stats.get("nic.rx_frame_latency.count"), Some(16.0));
    }

    #[test]
    fn traffic_source_heavy_tail_varies_frame_sizes() {
        let cfg = TrafficConfig {
            size: SizeDist::Pareto { min: 64, max: 1514, alpha_milli: 1300 },
            arrival: ArrivalProcess::Poisson(ns(1500)),
            ..traffic_cfg()
        };
        let config =
            NicConfig { rx_source: Some(TrafficSpec::Generate(cfg)), ..NicConfig::default() };
        let stats = run_with_driver(
            config,
            vec![(regs::RDBAL, 0x8900_0000), (regs::RDLEN, 64), (regs::RDT, 32)],
        );
        assert_eq!(stats.get("nic.frames_rx"), Some(16.0));
        let octets = stats.get("nic.rx_octets").unwrap();
        assert!((16.0 * 64.0..=16.0 * 1514.0).contains(&octets));
        assert_ne!(octets, 16.0 * 512.0, "Pareto sizes should not all collapse to one value");
    }

    #[test]
    fn traffic_replay_is_bit_identical_to_generate_live() {
        let cfg = traffic_cfg();
        let trace = Arc::new(record_trace(&cfg));
        let live = run_with_driver(
            NicConfig { rx_source: Some(TrafficSpec::Generate(cfg)), ..NicConfig::default() },
            vec![(regs::RDBAL, 0x8900_0000), (regs::RDLEN, 64), (regs::RDT, 32)],
        );
        let replay = run_with_driver(
            NicConfig { rx_source: Some(TrafficSpec::Replay(trace)), ..NicConfig::default() },
            vec![(regs::RDBAL, 0x8900_0000), (regs::RDLEN, 64), (regs::RDT, 32)],
        );
        assert_eq!(live, replay, "replayed trace must reproduce the live run exactly");
    }

    #[test]
    fn traffic_source_overruns_when_no_buffers_posted() {
        let config = NicConfig {
            rx_source: Some(TrafficSpec::Generate(traffic_cfg())),
            ..NicConfig::default()
        };
        // Only 2 buffers for 16 frames.
        let stats = run_with_driver(
            config,
            vec![(regs::RDBAL, 0x8900_0000), (regs::RDLEN, 64), (regs::RDT, 2)],
        );
        assert_eq!(stats.get("nic.frames_rx"), Some(2.0));
        assert_eq!(stats.get("nic.rx_overruns"), Some(14.0));
    }

    #[test]
    fn stats_registers_expose_rx_progress() {
        let (mut nic, _) = programmed_nic(NicConfig {
            rx_source: Some(TrafficSpec::Generate(traffic_cfg())),
            ..NicConfig::default()
        });
        nic.stats.frames_rx.inc();
        nic.stats.frames_rx.inc();
        nic.stats.rx_overruns.inc();
        nic.rx_octets = 0x1_2345_6789;
        assert_eq!(nic.reg_read(regs::GPRC), 2);
        assert_eq!(nic.reg_read(regs::MPC), 1);
        assert_eq!(nic.reg_read(regs::GORCL), 0x2345_6789);
        assert_eq!(nic.reg_read(regs::GORCH), 0x1);
    }

    // --- MSI-X / multi-queue ---------------------------------------------------

    use pcisim_pci::caps::msix;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Target window for MSI-X doorbells in these tests (the responder
    /// completes any address; real systems point this at the intc).
    const DOORBELL_BASE: u64 = 0x2c00_0000;

    /// Enables the MSI-X function in config space (what the driver's
    /// config write does through the host bridge).
    fn enable_msix(cs: &SharedConfigSpace) {
        cs.borrow_mut().write(0xa0 + msix::CONTROL, 2, u32::from(msix::CONTROL_ENABLE));
    }

    /// MMIO writes programming table entry `v` to a distinct doorbell
    /// address/data, unmasked.
    fn program_vector(v: u16) -> Vec<(u64, u32)> {
        let e = msix_entry_offset(v);
        vec![
            (e + msix::ENTRY_ADDR_LO, (DOORBELL_BASE + u64::from(v) * 4) as u32),
            (e + msix::ENTRY_ADDR_HI, 0),
            (e + msix::ENTRY_DATA, 0x4000 | u32::from(v)),
            (e + msix::ENTRY_VECTOR_CTRL, 0),
        ]
    }

    /// Records every request reaching the fabric side: `(cmd, addr)`.
    struct RecordingSink {
        name: String,
        seen: Rc<RefCell<Vec<(Command, u64)>>>,
    }
    impl Component for RecordingSink {
        fn name(&self) -> &str {
            &self.name
        }
        fn recv_request(&mut self, ctx: &mut Ctx<'_>, _p: PortId, mut pkt: Packet) -> RecvResult {
            self.seen.borrow_mut().push((pkt.cmd(), pkt.addr()));
            if let Some(buf) = pkt.take_payload() {
                ctx.recycle_payload(buf);
            }
            match pkt.cmd() {
                Command::ReadReq => {
                    let data = vec![0u8; pkt.size() as usize];
                    ctx.schedule(
                        ns(30),
                        Event::DelayedPacket { tag: 1, pkt: pkt.into_read_response(data) },
                    );
                }
                Command::WriteReq => {
                    ctx.schedule(ns(30), Event::DelayedPacket { tag: 1, pkt: pkt.into_response() });
                }
                _ => {} // posted messages complete at send
            }
            RecvResult::Accepted
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            if let Event::DelayedPacket { pkt, .. } = ev {
                ctx.try_send_response(PortId(0), pkt).expect("nic accepts completions");
            }
        }
    }

    type RequestLog = Rc<RefCell<Vec<(Command, u64)>>>;

    /// Runs a NIC against a recording sink; returns (stats, request log).
    fn run_with_driver_recorded(
        config: NicConfig,
        writes: Vec<(u64, u32)>,
        late_writes: Vec<(u64, u32)>,
        enable: bool,
    ) -> (pcisim_kernel::stats::StatsSnapshot, RequestLog) {
        let mut sim = Simulation::new();
        let (nic, cs) = programmed_nic(config);
        if enable {
            enable_msix(&cs);
        }
        let drv = sim.add(Box::new(TwoPhaseDriver { writes, late_writes, phase: 0 }));
        let n = sim.add(Box::new(nic));
        let seen = Rc::new(RefCell::new(Vec::new()));
        let m = sim.add(Box::new(RecordingSink { name: "mem".into(), seen: seen.clone() }));
        sim.connect((drv, PortId(0)), (n, NIC_PIO_PORT));
        sim.connect((n, NIC_DMA_PORT), (m, PortId(0)));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        (sim.stats(), seen)
    }

    /// Like [`ScriptDriver`] but with a second write batch at t = 1 ms
    /// (after any plausible TX/RX activity settles).
    struct TwoPhaseDriver {
        writes: Vec<(u64, u32)>,
        late_writes: Vec<(u64, u32)>,
        phase: u8,
    }
    impl Component for TwoPhaseDriver {
        fn name(&self) -> &str {
            "drv"
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(0, Event::Timer { kind: 0, data: 0 });
            ctx.schedule(pcisim_kernel::tick::us(1000), Event::Timer { kind: 1, data: 0 });
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            let batch = match ev {
                Event::Timer { kind: 0, .. } if self.phase == 0 => {
                    self.phase = 1;
                    &self.writes
                }
                Event::Timer { kind: 1, .. } if self.phase == 1 => {
                    self.phase = 2;
                    &self.late_writes
                }
                _ => return,
            };
            for (off, val) in batch {
                let id = ctx.alloc_packet_id();
                let pkt = Packet::request(id, Command::WriteReq, BAR0 + off, 4, ctx.self_id())
                    .with_payload(val.to_le_bytes().to_vec());
                ctx.try_send_request(PortId(0), pkt).expect("nic accepts PIO");
            }
        }
        fn recv_response(&mut self, _c: &mut Ctx<'_>, _p: PortId, _k: Packet) -> RecvResult {
            RecvResult::Accepted
        }
    }

    #[test]
    fn msix_table_round_trips_through_mmio() {
        let mut sim = Simulation::new();
        let (nic, _cs) =
            programmed_nic(NicConfig { queues: 2, msix_capable: true, ..NicConfig::default() });
        let e1 = msix_entry_offset(1);
        let mut reads = vec![(Command::ReadReq, BAR0 + e1 + msix::ENTRY_DATA, 4)];
        reads.insert(0, (Command::WriteReq, BAR0 + e1 + msix::ENTRY_DATA, 4));
        let (req, done) = Requester::new("cpu", reads);
        let r = sim.add(Box::new(req));
        let n = sim.add(Box::new(nic));
        sim.connect((r, REQUESTER_PORT), (n, NIC_PIO_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(done.borrow().len(), 2, "table write and read both complete");
    }

    #[test]
    fn msix_vectors_power_up_masked() {
        let (mut nic, _cs) =
            programmed_nic(NicConfig { queues: 1, msix_capable: true, ..NicConfig::default() });
        let ctrl = nic.reg_read(msix_entry_offset(0) + msix::ENTRY_VECTOR_CTRL);
        assert_eq!(ctrl & msix::VECTOR_CTRL_MASK, 1, "vectors must come up masked");
    }

    #[test]
    fn four_queue_tx_raises_per_queue_msix_vectors() {
        let queues = 4;
        let config = NicConfig { queues, msix_capable: true, ..NicConfig::default() };
        let mut writes = Vec::new();
        for q in 0..queues {
            writes.extend(program_vector(tx_vector(q)));
        }
        let mut ims = 0;
        for q in 0..queues {
            writes.push((regs::per_queue(regs::TDBAL, q), 0x8800_0000 + q * 0x10_0000));
            writes.push((regs::per_queue(regs::TDLEN, q), 64));
            writes.push((regs::per_queue(regs::TX_BUFLEN, q), 256));
            ims |= tx_cause(q);
        }
        writes.push((regs::IMS, ims));
        for q in 0..queues {
            writes.push((regs::per_queue(regs::TDT, q), 1));
        }
        let (stats, seen) = run_with_driver_recorded(config, writes, vec![], true);
        assert_eq!(stats.get("nic.frames_tx"), Some(4.0));
        assert_eq!(stats.get("nic.msix_irqs"), Some(4.0));
        assert_eq!(stats.get("nic.irqs"), Some(4.0));
        // Each queue's doorbell is a posted memory WRITE to its own vector
        // address — not a legacy Message.
        for q in 0..queues {
            let addr = DOORBELL_BASE + u64::from(tx_vector(q)) * 4;
            assert!(
                seen.borrow().iter().any(|&(cmd, a)| cmd == Command::WriteReq && a == addr),
                "queue {q} must write its own doorbell at {addr:#x}"
            );
        }
    }

    #[test]
    fn masked_vector_latches_pba_and_unmask_drains() {
        let config = NicConfig { queues: 1, msix_capable: true, ..NicConfig::default() };
        let v = tx_vector(0);
        let e = msix_entry_offset(v);
        // Program address/data but leave the vector masked (power-up state).
        let writes = vec![
            (e + msix::ENTRY_ADDR_LO, DOORBELL_BASE as u32),
            (e + msix::ENTRY_DATA, 0x99),
            (regs::TDBAL, 0x8800_0000),
            (regs::TDLEN, 64),
            (regs::TX_BUFLEN, 128),
            (regs::IMS, INT_TXDW),
            (regs::TDT, 1),
        ];
        // Unmask at t = 1 ms: the PBA-latched interrupt must drain.
        let late = vec![(e + msix::ENTRY_VECTOR_CTRL, 0)];
        let (stats, seen) = run_with_driver_recorded(config, writes, late, true);
        assert_eq!(stats.get("nic.frames_tx"), Some(1.0));
        assert_eq!(stats.get("nic.msix_irqs"), Some(1.0), "pending must drain on unmask");
        let fired = seen
            .borrow()
            .iter()
            .filter(|&&(cmd, a)| cmd == Command::WriteReq && a == DOORBELL_BASE)
            .count();
        assert_eq!(fired, 1, "exactly one doorbell, after the unmask");
    }

    #[test]
    fn moderation_coalesces_interrupts_under_load() {
        let config = NicConfig {
            queues: 1,
            msix_capable: true,
            moderation: pcisim_kernel::tick::us(50),
            ..NicConfig::default()
        };
        let mut writes = program_vector(tx_vector(0));
        writes.extend([
            (regs::TDBAL, 0x8800_0000),
            (regs::TDLEN, 64),
            (regs::TX_BUFLEN, 1514),
            (regs::IMS, INT_TXDW),
            (regs::TDT, 4),
        ]);
        let (stats, _) = run_with_driver_recorded(config, writes, vec![], true);
        assert_eq!(stats.get("nic.frames_tx"), Some(4.0));
        // First completion fires; the rest land inside the 50 µs holdoff
        // and coalesce into one deferred delivery.
        assert_eq!(stats.get("nic.msix_irqs"), Some(2.0));
        assert_eq!(stats.get("nic.irqs_coalesced"), Some(3.0));
    }

    #[test]
    fn intx_fallback_when_msix_not_enabled() {
        // msix_capable but the function enable is never set: the legacy
        // path must behave exactly as the paper's model.
        let config = NicConfig { queues: 1, msix_capable: true, ..NicConfig::default() };
        let writes = vec![
            (regs::TDBAL, 0x8800_0000),
            (regs::TDLEN, 64),
            (regs::TX_BUFLEN, 128),
            (regs::IMS, INT_TXDW),
            (regs::TDT, 1),
        ];
        let (stats, seen) = run_with_driver_recorded(config, writes, vec![], false);
        assert_eq!(stats.get("nic.frames_tx"), Some(1.0));
        assert_eq!(stats.get("nic.irqs"), Some(1.0));
        assert_eq!(stats.get("nic.msix_irqs"), Some(0.0));
        assert!(
            !seen.borrow().iter().any(|&(cmd, _)| cmd == Command::Message),
            "no intx target configured, so no message either"
        );
    }

    #[test]
    fn rss_hash_is_deterministic_and_spreads() {
        let queues = 4;
        let mut hit = [false; 4];
        for flow in 0..16 {
            assert_eq!(rss_queue(flow, queues), rss_queue(flow, queues));
            hit[rss_queue(flow, queues) as usize] = true;
        }
        assert!(hit.iter().filter(|&&h| h).count() >= 2, "16 flows must spread across queues");
        assert_eq!(rss_queue(7, 1), 0, "single queue degenerates to queue 0");
    }

    #[test]
    fn multi_queue_rx_steers_frames_by_rss() {
        let queues = 2;
        let config = NicConfig {
            queues,
            msix_capable: true,
            rx_stream: Some((512, ns(2000), 8)),
            rx_flows: 8,
            ..NicConfig::default()
        };
        let mut writes = Vec::new();
        for q in 0..queues {
            writes.extend(program_vector(rx_vector(queues, q)));
            writes.push((regs::per_queue(regs::RDBAL, q), 0x8900_0000 + q * 0x10_0000));
            writes.push((regs::per_queue(regs::RDLEN, q), 64));
        }
        writes.push((regs::IMS, rx_cause(0) | rx_cause(1)));
        for q in 0..queues {
            writes.push((regs::per_queue(regs::RDT, q), 16));
        }
        let (stats, seen) = run_with_driver_recorded(config, writes, vec![], true);
        assert_eq!(stats.get("nic.frames_rx"), Some(8.0));
        assert_eq!(stats.get("nic.rx_overruns"), Some(0.0));
        assert_eq!(stats.get("nic.msix_irqs"), Some(8.0));
        // Both RX vectors must have fired: the 8 flows hash onto both
        // queues (pinned by rss_hash determinism).
        for q in 0..queues {
            let addr = DOORBELL_BASE + u64::from(rx_vector(queues, q)) * 4;
            assert!(
                seen.borrow().iter().any(|&(cmd, a)| cmd == Command::WriteReq && a == addr),
                "rx queue {q} vector must fire"
            );
        }
    }
}
