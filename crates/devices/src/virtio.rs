//! The virtio-pci device family (virtio-blk, virtio-net).
//!
//! A modern virtio-pci transport: the common/notify/ISR/device-config
//! structures live in BAR0 and are located through the PCI vendor-specific
//! capability chain (virtio spec §4.1.4), exactly as a real driver
//! discovers them. The virtqueues — descriptor table, avail ring, used
//! ring — live in host DRAM and are walked entirely through simulated
//! TLPs: a doorbell write to the notify region starts the device reading
//! the avail ring and descriptor chains by DMA, payload moves as
//! cache-line DMA bursts, completions are posted used-ring writes capped
//! by a non-posted used-index write, and the completion interrupt (MSI-X
//! or INTx emulation) rides the same fabric.
//!
//! Two device classes share the transport:
//!
//! * **virtio-blk** — one request queue; each chain is header (16 B,
//!   device-readable) + data descriptors + status byte (device-writable).
//!   Requests run against a checkpointed 512 B-sector block store with a
//!   constant access latency plus a per-sector term, like [`crate::ide`]
//!   but queue-driven.
//! * **virtio-net** — queue 0 receives, queue 1 transmits. TX chains are
//!   header (12 B) + frame payload, charged a wire-serialization time;
//!   RX buffers are filled from the same deterministic
//!   [`TrafficSpec`](crate::traffic::TrafficSpec) source the e1000e model
//!   uses.
//!
//! Malformed rings fail loudly without hanging: an out-of-range head or
//! next index, an over-long chain, or a malformed blk frame sets
//! NEEDS_RESET in the device status, bumps `desc_faults`, halts the
//! queue, and raises a configuration interrupt.
//!
//! Ports: [`VIRTIO_PIO_PORT`] (BAR0 registers) and [`VIRTIO_DMA_PORT`]
//! (DMA master).

use std::collections::{BTreeMap, HashMap, VecDeque};

use pcisim_kernel::component::{Component, Event, PortId, RecvResult};
use pcisim_kernel::packet::{decode_packet_queue, encode_packet_queue, Command, Packet};
use pcisim_kernel::sim::Ctx;
use pcisim_kernel::snapshot::{SnapshotError, StateReader, StateWriter};
use pcisim_kernel::stats::{Counter, StatsBuilder};
use pcisim_kernel::tick::{ns, transfer_time, us, Tick};
use pcisim_kernel::trace::{TraceCategory, TraceKind};
use pcisim_pci::caps::{
    vendor_cap, vendor_structures, write_aer_capability, CapChain, Capability, Generation, PortType,
};
use pcisim_pci::config::{shared, ConfigSpace, SharedConfigSpace};
use pcisim_pci::header::{bar_base, Bar, Type0Header};

use crate::intc::irq_message_addr;
use crate::traffic::{TrafficFeed, TrafficSpec};

/// MMIO register port (slave).
pub const VIRTIO_PIO_PORT: PortId = PortId(0);
/// DMA master port.
pub const VIRTIO_DMA_PORT: PortId = PortId(1);

/// The virtio PCI vendor ID.
pub const VIRTIO_VENDOR_ID: u16 = 0x1af4;
/// Modern virtio-net PCI device ID.
pub const VIRTIO_NET_DEVICE_ID: u16 = 0x1041;
/// Modern virtio-blk PCI device ID.
pub const VIRTIO_BLK_DEVICE_ID: u16 = 0x1042;

/// BAR0 byte offset of the common configuration structure.
pub const COMMON_OFFSET: u64 = 0x0000;
/// BAR0 byte offset of the notify (doorbell) region.
pub const NOTIFY_OFFSET: u64 = 0x1000;
/// Doorbell stride: queue `q` notifies at `NOTIFY_OFFSET + q * 4`.
pub const NOTIFY_MULTIPLIER: u32 = 4;
/// BAR0 byte offset of the ISR status byte (read clears).
pub const ISR_OFFSET: u64 = 0x2000;
/// BAR0 byte offset of the device-specific configuration.
pub const DEVICE_CFG_OFFSET: u64 = 0x3000;
/// BAR0 byte offset of the MSI-X vector table.
pub const MSIX_TABLE_OFFSET: u64 = 0x1_0000;
/// BAR0 byte offset of the MSI-X pending-bit array.
pub const MSIX_PBA_OFFSET: u64 = 0x1_8000;
/// BAR0 size.
pub const BAR0_SIZE: u64 = 0x2_0000;

/// Common-configuration register offsets (BAR0-relative, dword registers).
pub mod common {
    /// Device feature bits (u32, RO).
    pub const DEVICE_FEATURES: u64 = 0x00;
    /// Driver feature bits (u32, RW scratch).
    pub const DRIVER_FEATURES: u64 = 0x04;
    /// Number of virtqueues (u32, RO).
    pub const NUM_QUEUES: u64 = 0x08;
    /// Device status byte (u32, RW; writing 0 resets).
    pub const DEVICE_STATUS: u64 = 0x0c;
    /// MSI-X vector for configuration interrupts (u32, RW).
    pub const CONFIG_MSIX_VECTOR: u64 = 0x10;
    /// Selects which queue the registers below address (u32, RW).
    pub const QUEUE_SELECT: u64 = 0x14;
    /// Size of the selected queue (u32, RO).
    pub const QUEUE_SIZE: u64 = 0x18;
    /// MSI-X vector of the selected queue (u32, RW).
    pub const QUEUE_MSIX_VECTOR: u64 = 0x1c;
    /// Enable bit of the selected queue (u32, RW).
    pub const QUEUE_ENABLE: u64 = 0x20;
    /// Descriptor-table address, low half (u32, RW).
    pub const QUEUE_DESC_LO: u64 = 0x24;
    /// Descriptor-table address, high half (u32, RW).
    pub const QUEUE_DESC_HI: u64 = 0x28;
    /// Avail-ring address, low half (u32, RW).
    pub const QUEUE_AVAIL_LO: u64 = 0x2c;
    /// Avail-ring address, high half (u32, RW).
    pub const QUEUE_AVAIL_HI: u64 = 0x30;
    /// Used-ring address, low half (u32, RW).
    pub const QUEUE_USED_LO: u64 = 0x34;
    /// Used-ring address, high half (u32, RW).
    pub const QUEUE_USED_HI: u64 = 0x38;
}

/// Device status bits (virtio spec §2.1).
pub mod status {
    /// Guest found the device.
    pub const ACKNOWLEDGE: u32 = 1;
    /// Guest knows how to drive it.
    pub const DRIVER: u32 = 2;
    /// Driver is ready.
    pub const DRIVER_OK: u32 = 4;
    /// Feature negotiation finished.
    pub const FEATURES_OK: u32 = 8;
    /// Device hit an unrecoverable error (malformed ring).
    pub const NEEDS_RESET: u32 = 0x40;
}

/// ISR status bits (INTx mode; reading the ISR clears it).
pub mod isr {
    /// A virtqueue interrupt.
    pub const QUEUE: u32 = 1;
    /// A configuration-change interrupt (also raised on ring faults).
    pub const CONFIG: u32 = 2;
}

/// "No MSI-X vector assigned" sentinel.
pub const MSIX_NO_VECTOR: u32 = 0xffff;

/// Descriptor flag: the chain continues at `next`.
pub const DESC_F_NEXT: u16 = 1;
/// Descriptor flag: device-writable buffer.
pub const DESC_F_WRITE: u16 = 2;

/// virtio-blk request type: device-to-driver transfer (disk read).
pub const BLK_T_IN: u32 = 0;
/// virtio-blk request type: driver-to-device transfer (disk write).
pub const BLK_T_OUT: u32 = 1;
/// virtio-blk status byte: success.
pub const BLK_S_OK: u8 = 0;
/// virtio-blk status byte: device error (e.g. out-of-range sector).
pub const BLK_S_IOERR: u8 = 1;
/// virtio-blk status byte: unsupported request type.
pub const BLK_S_UNSUPP: u8 = 2;
/// virtio-blk sector size in bytes (spec-fixed).
pub const BLK_SECTOR_SIZE: u32 = 512;
/// Bytes of a virtio-blk request header.
pub const BLK_HEADER_BYTES: u32 = 16;
/// Bytes of a virtio-net frame header.
pub const NET_HEADER_BYTES: u32 = 12;
/// Frames the RX FIFO buffers before overrunning.
pub const RX_FIFO_FRAMES: u32 = 32;
/// Hard cap on the queue size (bounds ring windows and save size).
pub const MAX_QUEUE_SIZE: u16 = 256;

/// Which device class sits on the transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VirtioClass {
    /// virtio-blk: one request queue against a block store.
    Blk,
    /// virtio-net: RX (queue 0) and TX (queue 1).
    Net,
}

impl VirtioClass {
    /// The PCI device ID of this class.
    pub fn device_id(self) -> u16 {
        match self {
            VirtioClass::Blk => VIRTIO_BLK_DEVICE_ID,
            VirtioClass::Net => VIRTIO_NET_DEVICE_ID,
        }
    }

    /// Number of virtqueues the class exposes.
    pub fn queues(self) -> u16 {
        match self {
            VirtioClass::Blk => 1,
            VirtioClass::Net => 2,
        }
    }
}

/// Tunables of a virtio endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtioConfig {
    /// Which device class this endpoint models.
    pub class: VirtioClass,
    /// Ring size of every virtqueue (≤ [`MAX_QUEUE_SIZE`]).
    pub queue_size: u16,
    /// DMA TLP payload (the cache line size).
    pub cacheline: u32,
    /// MMIO register access latency.
    pub pio_latency: Tick,
    /// blk: constant media access latency charged once per request.
    pub access_latency: Tick,
    /// blk: additional latency per 512 B sector.
    pub per_sector_overhead: Tick,
    /// blk: capacity in 512 B sectors.
    pub capacity_sectors: u64,
    /// net: wire bandwidth in bytes per second (serializes TX frames).
    pub wire_bytes_per_sec: u64,
    /// net: deterministic RX frame source.
    pub rx_source: Option<TrafficSpec>,
    /// Interrupt message target: `(irq, interrupt-controller base)`.
    pub intx: Option<(u8, u64)>,
    /// Expose a functional MSI-X capability (one vector per queue plus
    /// the configuration vector).
    pub msix_capable: bool,
}

impl Default for VirtioConfig {
    fn default() -> Self {
        Self {
            class: VirtioClass::Blk,
            queue_size: 128,
            cacheline: 64,
            pio_latency: ns(50),
            access_latency: us(1),
            per_sector_overhead: ns(300),
            capacity_sectors: 1 << 21, // 1 GB
            wire_bytes_per_sec: 1_250_000_000, // 10 Gb/s
            rx_source: None,
            intx: None,
            msix_capable: false,
        }
    }
}

/// MSI-X vectors a class advertises: one per queue plus the config vector.
pub fn num_msix_vectors(class: VirtioClass) -> u16 {
    class.queues() + 1
}

/// The BAR-resident structure locations a driver discovers by walking the
/// vendor-specific capability chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtioRegions {
    /// Common configuration offset within BAR0.
    pub common: u64,
    /// Notify region offset within BAR0.
    pub notify: u64,
    /// Doorbell stride (queue `q` notifies at `notify + q * multiplier`).
    pub notify_multiplier: u32,
    /// ISR byte offset within BAR0.
    pub isr: u64,
    /// Device-specific configuration offset within BAR0.
    pub device: u64,
}

/// Walks the vendor-specific capability chain of a virtio function and
/// returns the transport structure locations — what a driver does at
/// probe. `None` when any of the four structures is missing or names a
/// BAR other than BAR0.
pub fn discover_regions(cs: &ConfigSpace) -> Option<VirtioRegions> {
    let mut common = None;
    let mut notify = None;
    let mut isr_off = None;
    let mut device = None;
    for (cfg_type, bar, offset, _len, extra) in vendor_structures(cs) {
        if bar != 0 {
            return None;
        }
        match cfg_type {
            vendor_cap::TYPE_COMMON => common = Some(u64::from(offset)),
            vendor_cap::TYPE_NOTIFY => notify = Some((u64::from(offset), extra.unwrap_or(1))),
            vendor_cap::TYPE_ISR => isr_off = Some(u64::from(offset)),
            vendor_cap::TYPE_DEVICE => device = Some(u64::from(offset)),
            _ => {}
        }
    }
    let (notify, notify_multiplier) = notify?;
    Some(VirtioRegions {
        common: common?,
        notify,
        notify_multiplier,
        isr: isr_off?,
        device: device?,
    })
}

/// Builds the configuration space of a virtio endpoint: a Type-0 function
/// with the virtio vendor ID, the class-specific device ID, one memory
/// BAR, and the four vendor-specific capabilities locating the transport
/// structures.
pub fn virtio_config_space(config: &VirtioConfig) -> ConfigSpace {
    let (class_code, subclass) = match config.class {
        VirtioClass::Blk => (0x01, 0x80),
        VirtioClass::Net => (0x02, 0x00),
    };
    let mut cs = Type0Header::new(VIRTIO_VENDOR_ID, config.class.device_id())
        .class_code(class_code, subclass, 0x00)
        .revision(0x01)
        .subsystem(VIRTIO_VENDOR_ID, match config.class {
            VirtioClass::Net => 1,
            VirtioClass::Blk => 2,
        })
        .bar(0, Bar::Memory32 { size: BAR0_SIZE, prefetchable: false })
        .interrupt_pin(1)
        .capabilities_at(0x40)
        .build();
    let msix = if config.msix_capable {
        Capability::MsixCapable {
            table_size: num_msix_vectors(config.class),
            table_bar: 0,
            table_offset: MSIX_TABLE_OFFSET as u32,
            pba_bar: 0,
            pba_offset: MSIX_PBA_OFFSET as u32,
        }
    } else {
        Capability::MsixDisabled
    };
    CapChain::new()
        .add(
            0x40,
            Capability::VendorSpecific {
                cfg_type: vendor_cap::TYPE_COMMON,
                bar: 0,
                offset: COMMON_OFFSET as u32,
                length: 0x100,
                extra: None,
            },
        )
        .add(
            0x50,
            Capability::VendorSpecific {
                cfg_type: vendor_cap::TYPE_NOTIFY,
                bar: 0,
                offset: NOTIFY_OFFSET as u32,
                length: 0x100,
                extra: Some(NOTIFY_MULTIPLIER),
            },
        )
        .add(
            0x64,
            Capability::VendorSpecific {
                cfg_type: vendor_cap::TYPE_ISR,
                bar: 0,
                offset: ISR_OFFSET as u32,
                length: 4,
                extra: None,
            },
        )
        .add(
            0x74,
            Capability::VendorSpecific {
                cfg_type: vendor_cap::TYPE_DEVICE,
                bar: 0,
                offset: DEVICE_CFG_OFFSET as u32,
                length: 0x40,
                extra: None,
            },
        )
        .add(0xc8, Capability::PowerManagement)
        .add(0xa0, msix)
        .add(
            0xe0,
            Capability::PciExpress {
                port_type: PortType::Endpoint,
                generation: Generation::Gen2,
                max_width: 1,
            },
        )
        .write_into(&mut cs);
    write_aer_capability(&mut cs, 0x100, 0);
    cs
}

// --- internal machinery ----------------------------------------------------

const K_PUMP: u32 = 0;
const K_ACCESS_DONE: u32 = 1;
const K_TX_WIRE_DONE: u32 = 2;
const K_RX_TRAFFIC: u32 = 3;
const K_RX_KICK: u32 = 4;
const K_DOORBELL: u32 = 5;
const K_MSIX_DRAIN: u32 = 6;
const TAG_PIO_RESP: u32 = 0;

/// Packs a traffic frame into a timer's `data` word: flow low, bytes high.
fn pack_traffic_frame(flow: u32, bytes: u32) -> u64 {
    u64::from(flow) | (u64::from(bytes) << 32)
}

fn unpack_traffic_frame(data: u64) -> (u32, u32) {
    (data as u32, (data >> 32) as u32)
}

/// One parsed virtqueue descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Desc {
    addr: u64,
    len: u32,
    flags: u16,
    next: u16,
}

impl Desc {
    fn parse(bytes: &[u8]) -> Self {
        Self {
            addr: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            len: u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")),
            flags: u16::from_le_bytes(bytes[12..14].try_into().expect("2 bytes")),
            next: u16::from_le_bytes(bytes[14..16].try_into().expect("2 bytes")),
        }
    }

    fn writable(&self) -> bool {
        self.flags & DESC_F_WRITE != 0
    }

    fn has_next(&self) -> bool {
        self.flags & DESC_F_NEXT != 0
    }
}

/// What an outstanding DMA request was for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DmaTag {
    /// Read of the avail ring's flags+idx dword.
    AvailIdx { q: u8 },
    /// Read of one avail ring entry (the chain head index).
    AvailEntry { q: u8 },
    /// Read of one 16 B descriptor.
    Desc { q: u8 },
    /// Read of a chunk of device-readable buffer; `offset` indexes the
    /// queue's staging buffer.
    Payload { q: u8, offset: u32 },
    /// The non-posted used-index write capping a completion.
    UsedIdx { q: u8 },
}

fn encode_tag(w: &mut StateWriter, tag: DmaTag) {
    match tag {
        DmaTag::AvailIdx { q } => {
            w.u8(0);
            w.u8(q);
            w.u32(0);
        }
        DmaTag::AvailEntry { q } => {
            w.u8(1);
            w.u8(q);
            w.u32(0);
        }
        DmaTag::Desc { q } => {
            w.u8(2);
            w.u8(q);
            w.u32(0);
        }
        DmaTag::Payload { q, offset } => {
            w.u8(3);
            w.u8(q);
            w.u32(offset);
        }
        DmaTag::UsedIdx { q } => {
            w.u8(4);
            w.u8(q);
            w.u32(0);
        }
    }
}

fn decode_tag(r: &mut StateReader<'_>) -> Result<DmaTag, SnapshotError> {
    let kind = r.u8()?;
    let q = r.u8()?;
    let arg = r.u32()?;
    Ok(match kind {
        0 => DmaTag::AvailIdx { q },
        1 => DmaTag::AvailEntry { q },
        2 => DmaTag::Desc { q },
        3 => DmaTag::Payload { q, offset: arg },
        4 => DmaTag::UsedIdx { q },
        other => return Err(SnapshotError::Corrupt(format!("virtio dma tag {other}"))),
    })
}

/// Where a queue's walk currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VqPhase {
    /// Nothing in flight; waiting for a doorbell (or an RX frame).
    Idle,
    /// Reading avail.idx.
    FetchAvailIdx,
    /// Reading the head index out of the avail ring.
    FetchAvailEntry,
    /// Reading descriptors along the chain.
    FetchDesc,
    /// Reading device-readable buffer contents into staging.
    FetchPayload,
    /// blk: waiting out the media access latency.
    Access,
    /// net TX: waiting out the wire serialization time.
    Wire,
    /// Completion writes issued; waiting for the used-index response.
    Retire,
}

impl VqPhase {
    fn encode(self) -> u8 {
        match self {
            VqPhase::Idle => 0,
            VqPhase::FetchAvailIdx => 1,
            VqPhase::FetchAvailEntry => 2,
            VqPhase::FetchDesc => 3,
            VqPhase::FetchPayload => 4,
            VqPhase::Access => 5,
            VqPhase::Wire => 6,
            VqPhase::Retire => 7,
        }
    }

    fn decode(b: u8) -> Result<Self, SnapshotError> {
        Ok(match b {
            0 => VqPhase::Idle,
            1 => VqPhase::FetchAvailIdx,
            2 => VqPhase::FetchAvailEntry,
            3 => VqPhase::FetchDesc,
            4 => VqPhase::FetchPayload,
            5 => VqPhase::Access,
            6 => VqPhase::Wire,
            7 => VqPhase::Retire,
            other => return Err(SnapshotError::Corrupt(format!("virtio phase {other}"))),
        })
    }
}

/// One virtqueue's device-side state.
#[derive(Debug, Clone)]
struct Virtqueue {
    // Driver-programmed registers.
    desc: u64,
    avail: u64,
    used: u64,
    enable: bool,
    msix_vector: u32,
    // Walk state.
    phase: VqPhase,
    /// Last avail index consumed (free-running u16).
    last_seen: u16,
    /// Driver's published avail index, as last read.
    avail_idx: u16,
    /// Device's used index (free-running u16).
    used_idx: u16,
    /// A doorbell arrived while the queue was busy.
    repoll: bool,
    /// The queue hit a malformed ring and is halted.
    broken: bool,
    /// Head index of the chain in flight.
    head: u16,
    /// Parsed descriptors of the chain in flight.
    chain: Vec<Desc>,
    /// Next descriptor index to fetch, when following a chain.
    next_desc: u16,
    /// Staging buffer for device-readable bytes.
    staging: Vec<u8>,
    /// Outstanding payload-read chunks.
    payload_pending: u32,
    /// Bytes to report in the used-ring entry.
    used_len: u32,
}

impl Virtqueue {
    fn new() -> Self {
        Self {
            desc: 0,
            avail: 0,
            used: 0,
            enable: false,
            msix_vector: MSIX_NO_VECTOR,
            phase: VqPhase::Idle,
            last_seen: 0,
            avail_idx: 0,
            used_idx: 0,
            repoll: false,
            broken: false,
            head: 0,
            chain: Vec::new(),
            next_desc: 0,
            staging: Vec::new(),
            payload_pending: 0,
            used_len: 0,
        }
    }

    /// Entries published but not yet consumed.
    fn pending(&self) -> u16 {
        self.avail_idx.wrapping_sub(self.last_seen)
    }
}

#[derive(Debug, Default)]
struct VirtioStats {
    mmio_reads: Counter,
    mmio_writes: Counter,
    doorbells: Counter,
    chains_used: Counter,
    desc_reads: Counter,
    dma_read_tlps: Counter,
    dma_write_tlps: Counter,
    dma_bytes: Counter,
    dma_error_completions: Counter,
    payload_bytes_read: Counter,
    payload_bytes_written: Counter,
    desc_faults: Counter,
    irqs: Counter,
    msix_irqs: Counter,
    frames_tx: Counter,
    frames_rx: Counter,
    rx_overruns: Counter,
}

/// The virtio endpoint component.
pub struct Virtio {
    name: String,
    config: VirtioConfig,
    config_space: SharedConfigSpace,
    // Transport registers.
    device_status: u32,
    driver_features: u32,
    config_msix_vector: u32,
    queue_select: u32,
    isr_status: u32,
    queues: Vec<Virtqueue>,
    // blk block store: 512 B sectors, sparse.
    store: BTreeMap<u64, Vec<u8>>,
    // DMA plumbing.
    out_queue: VecDeque<Packet>,
    stalled: Option<Packet>,
    dma_tags: HashMap<u64, DmaTag>,
    // Completions stashed in the receive handler; drained on a
    // zero-delay timer so the walk never issues requests from recv.
    pending_data: VecDeque<(DmaTag, Vec<u8>)>,
    // MSI-X.
    msix_table: Vec<u32>,
    msix_pba: u64,
    irq_inflight: std::collections::BTreeSet<u64>,
    irq_stalled: VecDeque<Packet>,
    // net RX.
    rx_feed: Option<TrafficFeed>,
    rx_started: bool,
    rx_fifo: VecDeque<(u32, u32)>,
    rx_octets: u64,
    // PIO response queue.
    pio_waiting: bool,
    pio_blocked: VecDeque<Packet>,
    stats: VirtioStats,
}

impl Virtio {
    /// Creates a virtio endpoint; returns the component and the shared
    /// configuration space to register with the PCI host.
    pub fn new(name: impl Into<String>, config: VirtioConfig) -> (Self, SharedConfigSpace) {
        assert!(
            (1..=MAX_QUEUE_SIZE).contains(&config.queue_size),
            "queue size must be 1..={MAX_QUEUE_SIZE}"
        );
        assert!(config.cacheline > 0 && config.cacheline.is_power_of_two());
        if config.rx_source.is_some() {
            assert_eq!(config.class, VirtioClass::Net, "rx_source needs a net device");
        }
        let cs = shared(virtio_config_space(&config));
        let queues = (0..config.class.queues()).map(|_| Virtqueue::new()).collect();
        let vectors = usize::from(num_msix_vectors(config.class));
        let mut msix_table = vec![0u32; vectors * 4];
        for v in 0..vectors {
            // Vectors power up masked, like the NIC model.
            msix_table[v * 4 + 3] = pcisim_pci::caps::msix::VECTOR_CTRL_MASK;
        }
        (
            Self {
                name: name.into(),
                config,
                config_space: cs.clone(),
                device_status: 0,
                driver_features: 0,
                config_msix_vector: MSIX_NO_VECTOR,
                queue_select: 0,
                isr_status: 0,
                queues,
                store: BTreeMap::new(),
                out_queue: VecDeque::new(),
                stalled: None,
                dma_tags: HashMap::new(),
                pending_data: VecDeque::new(),
                msix_table,
                msix_pba: 0,
                irq_inflight: std::collections::BTreeSet::new(),
                irq_stalled: VecDeque::new(),
                rx_feed: None,
                rx_started: false,
                rx_fifo: VecDeque::new(),
                rx_octets: 0,
                pio_waiting: false,
                pio_blocked: VecDeque::new(),
                stats: VirtioStats::default(),
            },
            cs,
        )
    }

    /// Re-targets the INTx interrupt message (used once the enumerated
    /// IRQ is known).
    pub fn set_intx(&mut self, intx: Option<(u8, u64)>) {
        self.config.intx = intx;
    }

    /// The device class this endpoint models.
    pub fn class(&self) -> VirtioClass {
        self.config.class
    }

    /// Preloads the blk block store (tests and experiments).
    pub fn store_preload(&mut self, sector: u64, data: &[u8]) {
        let mut pos = 0;
        while pos < data.len() {
            let s = sector + (pos / BLK_SECTOR_SIZE as usize) as u64;
            let buf = self.store.entry(s).or_insert_with(|| vec![0; BLK_SECTOR_SIZE as usize]);
            let n = data.len().min(pos + BLK_SECTOR_SIZE as usize) - pos;
            buf[..n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    fn bar0(&self) -> u64 {
        bar_base(&self.config_space.borrow(), 0)
    }

    fn store_read_bytes(&self, sector: u64, offset: u32, out: &mut [u8]) {
        let mut pos = 0;
        while pos < out.len() {
            let at = u64::from(offset) + pos as u64;
            let s = sector + at / u64::from(BLK_SECTOR_SIZE);
            let off = (at % u64::from(BLK_SECTOR_SIZE)) as usize;
            let n = out.len().min(pos + (BLK_SECTOR_SIZE as usize - off)) - pos;
            match self.store.get(&s) {
                Some(buf) => out[pos..pos + n].copy_from_slice(&buf[off..off + n]),
                None => out[pos..pos + n].fill(0),
            }
            pos += n;
        }
    }

    fn store_write_bytes(&mut self, sector: u64, data: &[u8]) {
        let mut pos = 0;
        while pos < data.len() {
            let s = sector + (pos / BLK_SECTOR_SIZE as usize) as u64;
            let off = pos % BLK_SECTOR_SIZE as usize;
            let n = data.len().min(pos + (BLK_SECTOR_SIZE as usize - off)) - pos;
            let buf = self.store.entry(s).or_insert_with(|| vec![0; BLK_SECTOR_SIZE as usize]);
            buf[off..off + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
    }

    // --- registers ---------------------------------------------------------

    /// Maps a BAR0 offset inside the MSI-X table to its dword index.
    fn msix_dword(&self, offset: u64) -> Option<usize> {
        if !self.config.msix_capable {
            return None;
        }
        let end = MSIX_TABLE_OFFSET
            + u64::from(num_msix_vectors(self.config.class)) * pcisim_pci::caps::msix::ENTRY_SIZE;
        if (MSIX_TABLE_OFFSET..end).contains(&offset) {
            Some(((offset - MSIX_TABLE_OFFSET) / 4) as usize)
        } else {
            None
        }
    }

    fn selected(&self) -> Option<usize> {
        let q = self.queue_select as usize;
        (q < self.queues.len()).then_some(q)
    }

    fn reg_read(&mut self, offset: u64) -> u32 {
        self.stats.mmio_reads.inc();
        match offset {
            o if (COMMON_OFFSET..COMMON_OFFSET + 0x100).contains(&o) => {
                self.common_read(o - COMMON_OFFSET)
            }
            ISR_OFFSET => std::mem::take(&mut self.isr_status), // read clears
            o if (DEVICE_CFG_OFFSET..DEVICE_CFG_OFFSET + 0x40).contains(&o) => {
                self.device_cfg_read(o - DEVICE_CFG_OFFSET)
            }
            o if self.msix_dword(o).is_some() => {
                let i = self.msix_dword(o).expect("checked by guard");
                self.msix_table[i]
            }
            o if self.config.msix_capable && o == MSIX_PBA_OFFSET => self.msix_pba as u32,
            o if self.config.msix_capable && o == MSIX_PBA_OFFSET + 4 => {
                (self.msix_pba >> 32) as u32
            }
            _ => 0,
        }
    }

    fn common_read(&mut self, offset: u64) -> u32 {
        match offset {
            common::DEVICE_FEATURES => 0, // feature bits all zero (legacy-free base)
            common::DRIVER_FEATURES => self.driver_features,
            common::NUM_QUEUES => u32::from(self.config.class.queues()),
            common::DEVICE_STATUS => self.device_status,
            common::CONFIG_MSIX_VECTOR => self.config_msix_vector,
            common::QUEUE_SELECT => self.queue_select,
            common::QUEUE_SIZE => {
                if self.selected().is_some() {
                    u32::from(self.config.queue_size)
                } else {
                    0
                }
            }
            common::QUEUE_MSIX_VECTOR => {
                self.selected().map_or(MSIX_NO_VECTOR, |q| self.queues[q].msix_vector)
            }
            common::QUEUE_ENABLE => {
                self.selected().map_or(0, |q| u32::from(self.queues[q].enable))
            }
            common::QUEUE_DESC_LO => self.selected().map_or(0, |q| self.queues[q].desc as u32),
            common::QUEUE_DESC_HI => {
                self.selected().map_or(0, |q| (self.queues[q].desc >> 32) as u32)
            }
            common::QUEUE_AVAIL_LO => self.selected().map_or(0, |q| self.queues[q].avail as u32),
            common::QUEUE_AVAIL_HI => {
                self.selected().map_or(0, |q| (self.queues[q].avail >> 32) as u32)
            }
            common::QUEUE_USED_LO => self.selected().map_or(0, |q| self.queues[q].used as u32),
            common::QUEUE_USED_HI => {
                self.selected().map_or(0, |q| (self.queues[q].used >> 32) as u32)
            }
            _ => 0,
        }
    }

    fn device_cfg_read(&self, offset: u64) -> u32 {
        match (self.config.class, offset) {
            (VirtioClass::Blk, 0x0) => self.config.capacity_sectors as u32,
            (VirtioClass::Blk, 0x4) => (self.config.capacity_sectors >> 32) as u32,
            // net: a fixed locally-administered MAC, then link status = up.
            (VirtioClass::Net, 0x0) => u32::from_le_bytes([0x02, 0x1a, 0xf4, 0x00]),
            (VirtioClass::Net, 0x4) => u32::from_le_bytes([0x00, 0x01, 0x01, 0x00]), // mac tail + status
            _ => 0,
        }
    }

    fn reg_write(&mut self, ctx: &mut Ctx<'_>, offset: u64, value: u32) {
        self.stats.mmio_writes.inc();
        match offset {
            o if (COMMON_OFFSET..COMMON_OFFSET + 0x100).contains(&o) => {
                self.common_write(ctx, o - COMMON_OFFSET, value)
            }
            o if (NOTIFY_OFFSET..NOTIFY_OFFSET + 0x100).contains(&o) => {
                let q = ((o - NOTIFY_OFFSET) / u64::from(NOTIFY_MULTIPLIER)) as u64;
                // The walk starts off a fresh event: the doorbell write
                // arrived through the link this device would immediately
                // DMA back into.
                ctx.schedule(0, Event::Timer { kind: K_DOORBELL, data: q });
            }
            o if self.msix_dword(o).is_some() => {
                let i = self.msix_dword(o).expect("checked by guard");
                self.msix_table[i] = value;
            }
            _ => {}
        }
    }

    fn common_write(&mut self, ctx: &mut Ctx<'_>, offset: u64, value: u32) {
        match offset {
            common::DRIVER_FEATURES => self.driver_features = value,
            common::DEVICE_STATUS => {
                if value == 0 {
                    self.reset(ctx);
                } else {
                    // NEEDS_RESET is device-owned; software cannot clear it
                    // except through a full reset.
                    let sticky = self.device_status & status::NEEDS_RESET;
                    self.device_status = (value & 0xff) | sticky;
                    if self.device_status & status::DRIVER_OK != 0 {
                        self.start_rx_stream(ctx);
                    }
                }
            }
            common::CONFIG_MSIX_VECTOR => self.config_msix_vector = value,
            common::QUEUE_SELECT => self.queue_select = value,
            common::QUEUE_MSIX_VECTOR => {
                if let Some(q) = self.selected() {
                    self.queues[q].msix_vector = value;
                }
            }
            common::QUEUE_ENABLE => {
                if let Some(q) = self.selected() {
                    self.queues[q].enable = value & 1 != 0;
                }
            }
            common::QUEUE_DESC_LO => {
                if let Some(q) = self.selected() {
                    let old = self.queues[q].desc;
                    self.queues[q].desc = (old & !0xffff_ffff) | u64::from(value);
                }
            }
            common::QUEUE_DESC_HI => {
                if let Some(q) = self.selected() {
                    let old = self.queues[q].desc;
                    self.queues[q].desc = (old & 0xffff_ffff) | (u64::from(value) << 32);
                }
            }
            common::QUEUE_AVAIL_LO => {
                if let Some(q) = self.selected() {
                    let old = self.queues[q].avail;
                    self.queues[q].avail = (old & !0xffff_ffff) | u64::from(value);
                }
            }
            common::QUEUE_AVAIL_HI => {
                if let Some(q) = self.selected() {
                    let old = self.queues[q].avail;
                    self.queues[q].avail = (old & 0xffff_ffff) | (u64::from(value) << 32);
                }
            }
            common::QUEUE_USED_LO => {
                if let Some(q) = self.selected() {
                    let old = self.queues[q].used;
                    self.queues[q].used = (old & !0xffff_ffff) | u64::from(value);
                }
            }
            common::QUEUE_USED_HI => {
                if let Some(q) = self.selected() {
                    let old = self.queues[q].used;
                    self.queues[q].used = (old & 0xffff_ffff) | (u64::from(value) << 32);
                }
            }
            _ => {}
        }
    }

    fn reset(&mut self, _ctx: &mut Ctx<'_>) {
        self.device_status = 0;
        self.isr_status = 0;
        self.config_msix_vector = MSIX_NO_VECTOR;
        for vq in &mut self.queues {
            *vq = Virtqueue::new();
        }
        // In-flight DMA keeps draining through the tag map; responses for
        // a reset queue are dropped because the phase is back to Idle.
        self.rx_fifo.clear();
    }

    // --- virtqueue walk ----------------------------------------------------

    fn doorbell(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        if q >= self.queues.len() {
            return;
        }
        self.stats.doorbells.inc();
        ctx.emit(TraceCategory::Device, TraceKind::VirtqueueNotify, None, None, q as u64);
        let vq = &mut self.queues[q];
        if vq.broken || !vq.enable {
            return;
        }
        if vq.phase == VqPhase::Idle {
            self.begin_poll(ctx, q);
        } else {
            vq.repoll = true;
        }
    }

    /// Starts a fresh avail-index read (entry point of every walk).
    fn begin_poll(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        self.queues[q].phase = VqPhase::FetchAvailIdx;
        self.queues[q].repoll = false;
        let addr = self.queues[q].avail;
        self.dma_read(ctx, addr, 4, DmaTag::AvailIdx { q: q as u8 });
    }

    fn fault(&mut self, ctx: &mut Ctx<'_>, q: usize, what: &str) {
        // A malformed ring is a driver bug: halt the queue, flag the
        // device, and tell software — loud, but never a hang or a panic.
        let _ = what;
        self.stats.desc_faults.inc();
        self.device_status |= status::NEEDS_RESET;
        let vq = &mut self.queues[q];
        vq.broken = true;
        vq.phase = VqPhase::Idle;
        vq.chain.clear();
        vq.staging.clear();
        self.deliver_config_irq(ctx);
    }

    /// Issues a tagged DMA read through the ordered output queue.
    fn dma_read(&mut self, ctx: &mut Ctx<'_>, addr: u64, size: u32, tag: DmaTag) {
        let id = ctx.alloc_packet_id();
        let pkt = Packet::request(id, Command::ReadReq, addr, size, ctx.self_id());
        self.dma_tags.insert(id.0, tag);
        ctx.emit(TraceCategory::Device, TraceKind::DmaRead, Some(id), None, u64::from(size));
        self.out_queue.push_back(pkt);
        self.pump(ctx);
    }

    /// Issues a posted DMA write carrying `data`.
    fn dma_write_posted(&mut self, ctx: &mut Ctx<'_>, addr: u64, data: &[u8]) {
        let id = ctx.alloc_packet_id();
        let size = data.len() as u32;
        let mut buf = ctx.alloc_payload(data.len());
        buf.copy_from_slice(data);
        let mut pkt =
            Packet::request(id, Command::WriteReq, addr, size, ctx.self_id()).with_payload(buf);
        pkt.set_posted(true);
        ctx.emit(TraceCategory::Device, TraceKind::DmaWrite, Some(id), None, u64::from(size));
        self.out_queue.push_back(pkt);
        self.pump(ctx);
    }

    /// Issues the non-posted used-index write that caps a completion.
    fn dma_write_used_idx(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        let vq = &self.queues[q];
        let addr = vq.used + 2;
        let data = vq.used_idx.to_le_bytes();
        let id = ctx.alloc_packet_id();
        let mut buf = ctx.alloc_payload(2);
        buf.copy_from_slice(&data);
        let pkt =
            Packet::request(id, Command::WriteReq, addr, 2, ctx.self_id()).with_payload(buf);
        self.dma_tags.insert(id.0, DmaTag::UsedIdx { q: q as u8 });
        ctx.emit(TraceCategory::Device, TraceKind::DmaWrite, Some(id), None, 2);
        self.out_queue.push_back(pkt);
        self.pump(ctx);
    }

    /// Drains the ordered output queue as fast as the fabric accepts.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        while self.stalled.is_none() {
            let Some(pkt) = self.out_queue.pop_front() else { return };
            let is_read = pkt.cmd() == Command::ReadReq;
            let size = pkt.size();
            match ctx.try_send_request(VIRTIO_DMA_PORT, pkt) {
                Ok(()) => {
                    if is_read {
                        self.stats.dma_read_tlps.inc();
                    } else {
                        self.stats.dma_write_tlps.inc();
                    }
                    self.stats.dma_bytes.add(u64::from(size));
                }
                Err(back) => {
                    self.stalled = Some(back);
                }
            }
        }
    }

    /// A tagged DMA response arrived; advance the owning queue's walk.
    fn dma_completed(&mut self, ctx: &mut Ctx<'_>, tag: DmaTag, data: Option<&[u8]>) {
        match tag {
            DmaTag::AvailIdx { q } => self.avail_idx_arrived(ctx, q as usize, data),
            DmaTag::AvailEntry { q } => self.avail_entry_arrived(ctx, q as usize, data),
            DmaTag::Desc { q } => self.desc_arrived(ctx, q as usize, data),
            DmaTag::Payload { q, offset } => self.payload_arrived(ctx, q as usize, offset, data),
            DmaTag::UsedIdx { q } => self.retire_chain(ctx, q as usize),
        }
    }

    fn avail_idx_arrived(&mut self, ctx: &mut Ctx<'_>, q: usize, data: Option<&[u8]>) {
        if self.queues[q].phase != VqPhase::FetchAvailIdx {
            return; // queue was reset mid-flight
        }
        let idx = data
            .filter(|d| d.len() >= 4)
            .map(|d| u16::from_le_bytes([d[2], d[3]]))
            .unwrap_or(self.queues[q].avail_idx);
        self.queues[q].avail_idx = idx;
        if self.queues[q].pending() == 0 {
            self.queues[q].phase = VqPhase::Idle;
            self.maybe_continue(ctx, q);
            return;
        }
        if self.rx_blocked(q) {
            // RX queue with buffers but no frame to deliver yet.
            self.queues[q].phase = VqPhase::Idle;
            return;
        }
        // Fetch the head index of the next published chain.
        self.queues[q].phase = VqPhase::FetchAvailEntry;
        let slot = u64::from(self.queues[q].last_seen % self.config.queue_size);
        let addr = self.queues[q].avail + 4 + slot * 2;
        self.dma_read(ctx, addr, 2, DmaTag::AvailEntry { q: q as u8 });
    }

    /// Whether queue `q` is the net RX queue waiting on a frame.
    fn rx_blocked(&self, q: usize) -> bool {
        self.config.class == VirtioClass::Net && q == 0 && self.rx_fifo.is_empty()
    }

    fn avail_entry_arrived(&mut self, ctx: &mut Ctx<'_>, q: usize, data: Option<&[u8]>) {
        if self.queues[q].phase != VqPhase::FetchAvailEntry {
            return;
        }
        let head = data
            .filter(|d| d.len() >= 2)
            .map(|d| u16::from_le_bytes([d[0], d[1]]))
            .unwrap_or(u16::MAX);
        if head >= self.config.queue_size {
            self.fault(ctx, q, "avail head out of range");
            return;
        }
        let vq = &mut self.queues[q];
        vq.head = head;
        vq.chain.clear();
        vq.next_desc = head;
        vq.phase = VqPhase::FetchDesc;
        let addr = vq.desc + u64::from(head) * 16;
        self.stats.desc_reads.inc();
        self.dma_read(ctx, addr, 16, DmaTag::Desc { q: q as u8 });
    }

    fn desc_arrived(&mut self, ctx: &mut Ctx<'_>, q: usize, data: Option<&[u8]>) {
        if self.queues[q].phase != VqPhase::FetchDesc {
            return;
        }
        let Some(bytes) = data.filter(|d| d.len() >= 16) else {
            self.fault(ctx, q, "short descriptor read");
            return;
        };
        let d = Desc::parse(bytes);
        self.queues[q].chain.push(d);
        if d.has_next() {
            if d.next >= self.config.queue_size {
                self.fault(ctx, q, "descriptor next out of range");
                return;
            }
            if self.queues[q].chain.len() >= usize::from(self.config.queue_size) {
                self.fault(ctx, q, "descriptor chain longer than the ring");
                return;
            }
            self.queues[q].next_desc = d.next;
            let addr = self.queues[q].desc + u64::from(d.next) * 16;
            self.stats.desc_reads.inc();
            self.dma_read(ctx, addr, 16, DmaTag::Desc { q: q as u8 });
            return;
        }
        self.chain_fetched(ctx, q);
    }

    /// The whole chain is in hand; start the class-specific processing.
    fn chain_fetched(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        match (self.config.class, q) {
            (VirtioClass::Blk, _) => self.blk_chain_fetched(ctx, q),
            (VirtioClass::Net, 1) => self.net_tx_chain_fetched(ctx, q),
            (VirtioClass::Net, _) => self.net_rx_chain_fetched(ctx, q),
        }
    }

    /// Reads every device-readable byte of the chain into staging as
    /// cache-line DMA bursts. Returns the total readable byte count.
    fn fetch_readable(&mut self, ctx: &mut Ctx<'_>, q: usize) -> u32 {
        let chain = self.queues[q].chain.clone();
        let total: u32 = chain.iter().filter(|d| !d.writable()).map(|d| d.len).sum();
        self.queues[q].staging = vec![0; total as usize];
        self.queues[q].payload_pending = 0;
        self.queues[q].phase = VqPhase::FetchPayload;
        let mut offset = 0u32;
        for d in chain.iter().filter(|d| !d.writable()) {
            let mut pos = 0u32;
            while pos < d.len {
                let n = (d.len - pos).min(self.config.cacheline);
                self.queues[q].payload_pending += 1;
                self.dma_read(
                    ctx,
                    d.addr + u64::from(pos),
                    n,
                    DmaTag::Payload { q: q as u8, offset: offset + pos },
                );
                pos += n;
            }
            offset += d.len;
        }
        self.stats.payload_bytes_read.add(u64::from(total));
        total
    }

    fn payload_arrived(&mut self, ctx: &mut Ctx<'_>, q: usize, offset: u32, data: Option<&[u8]>) {
        if self.queues[q].phase != VqPhase::FetchPayload {
            return;
        }
        if let Some(d) = data {
            let start = offset as usize;
            let end = (start + d.len()).min(self.queues[q].staging.len());
            if start < end {
                self.queues[q].staging[start..end].copy_from_slice(&d[..end - start]);
            }
        }
        self.queues[q].payload_pending -= 1;
        if self.queues[q].payload_pending == 0 {
            match (self.config.class, q) {
                (VirtioClass::Blk, _) => self.blk_payload_ready(ctx, q),
                (VirtioClass::Net, 1) => self.net_tx_payload_ready(ctx, q),
                (VirtioClass::Net, _) => unreachable!("RX fetches no payload"),
            }
        }
    }

    // --- virtio-blk --------------------------------------------------------

    fn blk_chain_fetched(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        let chain = &self.queues[q].chain;
        // Shape check: header (readable ≥16 B) … status (writable ≥1 B).
        let ok = chain.len() >= 2
            && !chain[0].writable()
            && chain[0].len >= BLK_HEADER_BYTES
            && chain[chain.len() - 1].writable()
            && chain[chain.len() - 1].len >= 1;
        if !ok {
            self.fault(ctx, q, "malformed blk chain");
            return;
        }
        // Fetch the header plus any driver-to-device payload.
        self.fetch_readable(ctx, q);
    }

    fn blk_payload_ready(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        let header = &self.queues[q].staging[..BLK_HEADER_BYTES as usize];
        let req_type = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let sector = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let data_len: u32 = match req_type {
            BLK_T_IN => {
                // Device-to-driver: writable descriptors minus the status.
                let chain = &self.queues[q].chain;
                chain[1..chain.len() - 1].iter().filter(|d| d.writable()).map(|d| d.len).sum()
            }
            _ => self.queues[q].staging.len() as u32 - BLK_HEADER_BYTES,
        };
        let sectors = u64::from(data_len.div_ceil(BLK_SECTOR_SIZE));
        self.queues[q].phase = VqPhase::Access;
        let latency = self.config.access_latency
            + self.config.per_sector_overhead * sectors.max(1);
        ctx.schedule(
            latency,
            Event::Timer { kind: K_ACCESS_DONE, data: pack_access(q, req_type, sector) },
        );
    }

    fn blk_access_done(&mut self, ctx: &mut Ctx<'_>, q: usize, req_type: u32, sector: u64) {
        if self.queues[q].phase != VqPhase::Access {
            return;
        }
        let chain = self.queues[q].chain.clone();
        let status_desc = chain[chain.len() - 1];
        let mut blk_status = BLK_S_OK;
        let mut used_len = 1u32; // the status byte is always written
        match req_type {
            BLK_T_IN => {
                let data_descs: Vec<Desc> = chain[1..chain.len() - 1]
                    .iter()
                    .copied()
                    .filter(|d| d.writable())
                    .collect();
                let total: u32 = data_descs.iter().map(|d| d.len).sum();
                if sector + u64::from(total.div_ceil(BLK_SECTOR_SIZE))
                    > self.config.capacity_sectors
                {
                    blk_status = BLK_S_IOERR;
                } else {
                    // DMA the store contents out as cache-line bursts.
                    let mut req_off = 0u32;
                    for d in &data_descs {
                        let mut pos = 0u32;
                        while pos < d.len {
                            let n = (d.len - pos).min(self.config.cacheline);
                            let mut buf = vec![0u8; n as usize];
                            self.store_read_bytes(sector, req_off + pos, &mut buf);
                            self.dma_write_posted(ctx, d.addr + u64::from(pos), &buf);
                            pos += n;
                        }
                        req_off += d.len;
                    }
                    self.stats.payload_bytes_written.add(u64::from(total));
                    used_len += total;
                }
            }
            BLK_T_OUT => {
                let data = self.queues[q].staging[BLK_HEADER_BYTES as usize..].to_vec();
                if sector + u64::from((data.len() as u32).div_ceil(BLK_SECTOR_SIZE))
                    > self.config.capacity_sectors
                {
                    blk_status = BLK_S_IOERR;
                } else {
                    self.store_write_bytes(sector, &data);
                }
            }
            _ => blk_status = BLK_S_UNSUPP,
        }
        self.queues[q].used_len = used_len;
        self.dma_write_posted(ctx, status_desc.addr, &[blk_status]);
        self.complete_chain(ctx, q);
    }

    // --- virtio-net --------------------------------------------------------

    fn net_tx_chain_fetched(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        let chain = &self.queues[q].chain;
        let readable: u32 = chain.iter().filter(|d| !d.writable()).map(|d| d.len).sum();
        if readable < NET_HEADER_BYTES {
            self.fault(ctx, q, "TX chain shorter than the net header");
            return;
        }
        self.fetch_readable(ctx, q);
    }

    fn net_tx_payload_ready(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        let frame_bytes = self.queues[q].staging.len() as u32 - NET_HEADER_BYTES;
        self.queues[q].phase = VqPhase::Wire;
        let wire = if self.config.wire_bytes_per_sec == 0 {
            0
        } else {
            transfer_time(u64::from(frame_bytes), self.config.wire_bytes_per_sec)
        };
        ctx.schedule(wire, Event::Timer { kind: K_TX_WIRE_DONE, data: q as u64 });
    }

    fn net_tx_wire_done(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        if self.queues[q].phase != VqPhase::Wire {
            return;
        }
        self.stats.frames_tx.inc();
        self.queues[q].used_len = 0;
        self.complete_chain(ctx, q);
    }

    fn net_rx_chain_fetched(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        let Some((_flow, bytes)) = self.rx_fifo.pop_front() else {
            // Frame vanished (reset); drop the walk.
            self.queues[q].phase = VqPhase::Idle;
            return;
        };
        let chain = self.queues[q].chain.clone();
        let writable: u32 = chain.iter().filter(|d| d.writable()).map(|d| d.len).sum();
        if writable < NET_HEADER_BYTES {
            self.fault(ctx, q, "RX buffer shorter than the net header");
            return;
        }
        // Fill header + as much of the frame as the buffers hold, as
        // posted cache-line bursts.
        let deliver = (NET_HEADER_BYTES + bytes).min(writable);
        let mut remaining = deliver;
        for d in chain.iter().filter(|d| d.writable()) {
            let mut pos = 0u32;
            while pos < d.len && remaining > 0 {
                let n = (d.len - pos).min(self.config.cacheline).min(remaining);
                let buf = vec![0u8; n as usize];
                self.dma_write_posted(ctx, d.addr + u64::from(pos), &buf);
                pos += n;
                remaining -= n;
            }
        }
        self.stats.frames_rx.inc();
        self.stats.payload_bytes_written.add(u64::from(deliver));
        self.rx_octets += u64::from(bytes);
        self.queues[q].used_len = deliver;
        self.complete_chain(ctx, q);
    }

    // --- completion --------------------------------------------------------

    /// Writes the used-ring entry (posted) and the used-index cap
    /// (non-posted); the cap's completion retires the chain.
    fn complete_chain(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        let vq = &mut self.queues[q];
        vq.phase = VqPhase::Retire;
        vq.last_seen = vq.last_seen.wrapping_add(1);
        let slot = u64::from(vq.used_idx % self.config.queue_size);
        vq.used_idx = vq.used_idx.wrapping_add(1);
        let entry_addr = vq.used + 4 + slot * 8;
        let head = vq.head;
        let used_len = vq.used_len;
        let mut entry = [0u8; 8];
        entry[0..4].copy_from_slice(&u32::from(head).to_le_bytes());
        entry[4..8].copy_from_slice(&used_len.to_le_bytes());
        self.dma_write_posted(ctx, entry_addr, &entry);
        self.dma_write_used_idx(ctx, q);
    }

    /// The used-index write completed: the chain is visibly retired.
    fn retire_chain(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        if self.queues[q].phase != VqPhase::Retire {
            return;
        }
        self.stats.chains_used.inc();
        ctx.emit(
            TraceCategory::Device,
            TraceKind::VirtqueueUsed,
            None,
            None,
            u64::from(self.queues[q].head),
        );
        self.queues[q].chain.clear();
        self.queues[q].staging.clear();
        self.queues[q].phase = VqPhase::Idle;
        self.deliver_queue_irq(ctx, q);
        self.maybe_continue(ctx, q);
    }

    /// After a completion or an empty poll: keep walking while entries
    /// remain (or a doorbell arrived mid-walk).
    fn maybe_continue(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        let vq = &self.queues[q];
        if vq.broken || !vq.enable || vq.phase != VqPhase::Idle {
            return;
        }
        if self.rx_blocked(q) {
            return;
        }
        if vq.pending() > 0 || vq.repoll {
            self.begin_poll(ctx, q);
        }
    }

    // --- interrupts --------------------------------------------------------

    fn msix_active(&self) -> bool {
        self.config.msix_capable && pcisim_pci::caps::msix_enabled(&self.config_space.borrow())
    }

    fn vector_masked(&self, v: u16) -> bool {
        if pcisim_pci::caps::msix_function_masked(&self.config_space.borrow()) {
            return true;
        }
        self.msix_table[v as usize * 4 + 3] & pcisim_pci::caps::msix::VECTOR_CTRL_MASK != 0
    }

    fn deliver_queue_irq(&mut self, ctx: &mut Ctx<'_>, q: usize) {
        let vector = self.queues[q].msix_vector;
        if self.msix_active() {
            if vector != MSIX_NO_VECTOR {
                self.msix_deliver(ctx, vector as u16);
            }
        } else {
            self.isr_status |= isr::QUEUE;
            self.raise_intx(ctx);
        }
    }

    fn deliver_config_irq(&mut self, ctx: &mut Ctx<'_>) {
        let vector = self.config_msix_vector;
        if self.msix_active() {
            if vector != MSIX_NO_VECTOR {
                self.msix_deliver(ctx, vector as u16);
            }
        } else {
            self.isr_status |= isr::CONFIG;
            self.raise_intx(ctx);
        }
    }

    fn msix_deliver(&mut self, ctx: &mut Ctx<'_>, v: u16) {
        if self.vector_masked(v) {
            // Pending latches in the PBA while the vector is masked; the
            // unmask drains it.
            self.msix_pba |= 1 << v;
            return;
        }
        self.msix_send(ctx, v);
    }

    fn msix_send(&mut self, ctx: &mut Ctx<'_>, v: u16) {
        let base = v as usize * 4;
        let addr = u64::from(self.msix_table[base]) | (u64::from(self.msix_table[base + 1]) << 32);
        let data = self.msix_table[base + 2];
        self.stats.irqs.inc();
        self.stats.msix_irqs.inc();
        let id = ctx.alloc_packet_id();
        ctx.emit(TraceCategory::Device, TraceKind::Interrupt, Some(id), None, addr);
        let mut buf = ctx.alloc_payload(4);
        buf.copy_from_slice(&data.to_le_bytes());
        let pkt = Packet::request(id, Command::WriteReq, addr, 4, ctx.self_id()).with_payload(buf);
        self.irq_inflight.insert(id.0);
        if let Err(back) = ctx.try_send_request(VIRTIO_DMA_PORT, pkt) {
            self.irq_stalled.push_back(back);
        }
    }

    /// Fires PBA-latched vectors that are no longer masked (runs after
    /// every MMIO access, mirroring the NIC model).
    fn msix_drain(&mut self, ctx: &mut Ctx<'_>) {
        if !self.msix_active() {
            return;
        }
        for v in 0..num_msix_vectors(self.config.class) {
            let bit = 1u64 << v;
            if self.msix_pba & bit == 0 || self.vector_masked(v) {
                continue;
            }
            self.msix_pba &= !bit;
            self.msix_send(ctx, v);
        }
    }

    fn raise_intx(&mut self, ctx: &mut Ctx<'_>) {
        self.stats.irqs.inc();
        let Some((irq, base)) = self.config.intx else { return };
        let addr = irq_message_addr(base, irq);
        let id = ctx.alloc_packet_id();
        ctx.emit(TraceCategory::Device, TraceKind::Interrupt, Some(id), None, addr);
        let msg = Packet::request(id, Command::Message, addr, 4, ctx.self_id())
            .with_payload(ctx.alloc_payload(4));
        self.out_queue.push_back(msg);
        self.pump(ctx);
    }

    // --- net RX source -----------------------------------------------------

    fn start_rx_stream(&mut self, ctx: &mut Ctx<'_>) {
        if self.rx_started || self.config.rx_source.is_none() {
            return;
        }
        self.rx_started = true;
        self.rx_feed =
            Some(TrafficFeed::new(self.config.rx_source.as_ref().expect("checked above")));
        self.schedule_next_traffic_frame(ctx);
    }

    fn schedule_next_traffic_frame(&mut self, ctx: &mut Ctx<'_>) {
        let Some(feed) = &mut self.rx_feed else { return };
        let Some(frame) = feed.next_frame() else { return };
        ctx.schedule(
            frame.delta,
            Event::Timer { kind: K_RX_TRAFFIC, data: pack_traffic_frame(frame.flow, frame.bytes) },
        );
    }

    fn rx_traffic_arrived(&mut self, ctx: &mut Ctx<'_>, data: u64) {
        let (flow, bytes) = unpack_traffic_frame(data);
        if self.rx_fifo.len() as u32 >= RX_FIFO_FRAMES {
            self.stats.rx_overruns.inc();
        } else {
            self.rx_fifo.push_back((flow, bytes));
            self.rx_kick(ctx);
        }
        self.schedule_next_traffic_frame(ctx);
    }

    /// Starts the RX queue walking when a frame is waiting and buffers
    /// may be available.
    fn rx_kick(&mut self, ctx: &mut Ctx<'_>) {
        if self.config.class != VirtioClass::Net || self.rx_fifo.is_empty() {
            return;
        }
        let vq = &self.queues[0];
        if vq.enable && !vq.broken && vq.phase == VqPhase::Idle {
            self.begin_poll(ctx, 0);
        }
    }

    fn flush_pio(&mut self, ctx: &mut Ctx<'_>) {
        while !self.pio_waiting {
            let Some(pkt) = self.pio_blocked.pop_front() else { return };
            match ctx.try_send_response(VIRTIO_PIO_PORT, pkt) {
                Ok(()) => {}
                Err(back) => {
                    self.pio_blocked.push_front(back);
                    self.pio_waiting = true;
                }
            }
        }
    }
}

/// Packs a blk access-timer payload: queue, request type, sector.
fn pack_access(q: usize, req_type: u32, sector: u64) -> u64 {
    // Sector fits in 40 bits (512 TB) — far beyond the modeled capacity.
    (q as u64) | (u64::from(req_type.min(0xff)) << 8) | (sector << 16)
}

fn unpack_access(data: u64) -> (usize, u32, u64) {
    ((data & 0xff) as usize, ((data >> 8) & 0xff) as u32, data >> 16)
}

impl Component for Virtio {
    fn name(&self) -> &str {
        &self.name
    }

    fn recv_request(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) -> RecvResult {
        assert_eq!(port, VIRTIO_PIO_PORT, "{}: MMIO arrives on the PIO port", self.name);
        let offset = pkt.addr().wrapping_sub(self.bar0());
        assert!(offset < BAR0_SIZE, "{}: access outside BAR0 at {:#x}", self.name, pkt.addr());
        let resp = match pkt.cmd() {
            Command::ReadReq => {
                let v = self.reg_read(offset);
                let mut full = vec![0u8; pkt.size() as usize];
                let n = full.len().min(4);
                full[..n].copy_from_slice(&v.to_le_bytes()[..n]);
                pkt.into_read_response(full)
            }
            Command::WriteReq => {
                let v = pkt
                    .payload()
                    .map(|p| {
                        let mut b = [0u8; 4];
                        let n = p.len().min(4);
                        b[..n].copy_from_slice(&p[..n]);
                        u32::from_le_bytes(b)
                    })
                    .unwrap_or(0);
                self.reg_write(ctx, offset, v);
                pkt.into_response()
            }
            other => panic!("{}: unexpected PIO command {other:?}", self.name),
        };
        ctx.schedule(
            self.config.pio_latency,
            Event::DelayedPacket { tag: TAG_PIO_RESP, pkt: resp },
        );
        // Any MMIO access re-evaluates PBA-latched vectors (off a fresh
        // event — the doorbell write rides the link the vector would
        // immediately ride back).
        if self.msix_pba != 0 {
            ctx.schedule(0, Event::Timer { kind: K_MSIX_DRAIN, data: 0 });
        }
        RecvResult::Accepted
    }

    fn recv_response(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) -> RecvResult {
        assert_eq!(port, VIRTIO_DMA_PORT);
        assert!(matches!(pkt.cmd(), Command::ReadResp | Command::WriteResp));
        if self.irq_inflight.remove(&pkt.id().0) {
            if pkt.is_error() {
                self.stats.dma_error_completions.inc();
            }
            if let Some(buf) = pkt.take_payload() {
                ctx.recycle_payload(buf);
            }
            return RecvResult::Accepted;
        }
        if pkt.is_error() {
            self.stats.dma_error_completions.inc();
        }
        let tag = self.dma_tags.remove(&pkt.id().0);
        if let Some(tag) = tag {
            // Advance the walk on a fresh event, never from the receive
            // handler (the continuation issues new requests).
            let payload = pkt.take_payload().unwrap_or_default();
            self.pending_data.push_back((tag, payload));
            ctx.schedule(0, Event::Timer { kind: K_PUMP, data: 1 });
        } else {
            if let Some(buf) = pkt.take_payload() {
                ctx.recycle_payload(buf);
            }
            ctx.schedule(0, Event::Timer { kind: K_PUMP, data: 0 });
        }
        RecvResult::Accepted
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Timer { kind: K_PUMP, data } => {
                if data == 1 {
                    if let Some((tag, payload)) = self.pending_data.pop_front() {
                        let data_opt = (!payload.is_empty()).then_some(payload.as_slice());
                        self.dma_completed(ctx, tag, data_opt);
                    }
                }
                self.pump(ctx);
            }
            Event::Timer { kind: K_ACCESS_DONE, data } => {
                let (q, req_type, sector) = unpack_access(data);
                self.blk_access_done(ctx, q, req_type, sector);
            }
            Event::Timer { kind: K_TX_WIRE_DONE, data } => {
                self.net_tx_wire_done(ctx, data as usize)
            }
            Event::Timer { kind: K_RX_TRAFFIC, data } => self.rx_traffic_arrived(ctx, data),
            Event::Timer { kind: K_RX_KICK, .. } => self.rx_kick(ctx),
            Event::Timer { kind: K_DOORBELL, data } => self.doorbell(ctx, data as usize),
            Event::Timer { kind: K_MSIX_DRAIN, .. } => self.msix_drain(ctx),
            Event::Timer { kind, .. } => panic!("{}: unknown timer {kind}", self.name),
            Event::DelayedPacket { tag: TAG_PIO_RESP, pkt } => {
                self.pio_blocked.push_back(pkt);
                self.flush_pio(ctx);
            }
            Event::DelayedPacket { tag, .. } => panic!("{}: unknown tag {tag}", self.name),
            Event::StampedPacket { .. } => panic!("{}: unexpected stamped packet", self.name),
        }
    }

    fn retry_granted(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        match port {
            VIRTIO_DMA_PORT => {
                // Stalled MSI-X doorbells retry ahead of the DMA pipeline.
                while let Some(pkt) = self.irq_stalled.pop_front() {
                    if let Err(back) = ctx.try_send_request(VIRTIO_DMA_PORT, pkt) {
                        self.irq_stalled.push_front(back);
                        return;
                    }
                }
                if let Some(pkt) = self.stalled.take() {
                    let is_read = pkt.cmd() == Command::ReadReq;
                    let size = pkt.size();
                    match ctx.try_send_request(VIRTIO_DMA_PORT, pkt) {
                        Ok(()) => {
                            if is_read {
                                self.stats.dma_read_tlps.inc();
                            } else {
                                self.stats.dma_write_tlps.inc();
                            }
                            self.stats.dma_bytes.add(u64::from(size));
                        }
                        Err(back) => {
                            self.stalled = Some(back);
                            return;
                        }
                    }
                }
                self.pump(ctx);
            }
            VIRTIO_PIO_PORT => {
                self.pio_waiting = false;
                self.flush_pio(ctx);
            }
            other => panic!("{}: retry on unknown port {other}", self.name),
        }
    }

    fn report_stats(&self, out: &mut StatsBuilder) {
        out.counter("mmio_reads", &self.stats.mmio_reads);
        out.counter("mmio_writes", &self.stats.mmio_writes);
        out.counter("doorbells", &self.stats.doorbells);
        out.counter("chains_used", &self.stats.chains_used);
        out.counter("desc_reads", &self.stats.desc_reads);
        out.counter("dma_read_tlps", &self.stats.dma_read_tlps);
        out.counter("dma_write_tlps", &self.stats.dma_write_tlps);
        out.counter("dma_bytes", &self.stats.dma_bytes);
        out.counter("dma_error_completions", &self.stats.dma_error_completions);
        out.counter("payload_bytes_read", &self.stats.payload_bytes_read);
        out.counter("payload_bytes_written", &self.stats.payload_bytes_written);
        out.counter("desc_faults", &self.stats.desc_faults);
        out.counter("irqs", &self.stats.irqs);
        out.counter("msix_irqs", &self.stats.msix_irqs);
        if self.config.class == VirtioClass::Net {
            out.counter("frames_tx", &self.stats.frames_tx);
            out.counter("frames_rx", &self.stats.frames_rx);
            out.counter("rx_overruns", &self.stats.rx_overruns);
            if self.config.rx_source.is_some() {
                out.scalar("rx_octets", self.rx_octets as f64);
            }
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.u32(self.device_status);
        w.u32(self.driver_features);
        w.u32(self.config_msix_vector);
        w.u32(self.queue_select);
        w.u32(self.isr_status);
        for vq in &self.queues {
            w.u64(vq.desc);
            w.u64(vq.avail);
            w.u64(vq.used);
            w.bool(vq.enable);
            w.u32(vq.msix_vector);
            w.u8(vq.phase.encode());
            w.u16(vq.last_seen);
            w.u16(vq.avail_idx);
            w.u16(vq.used_idx);
            w.bool(vq.repoll);
            w.bool(vq.broken);
            w.u16(vq.head);
            w.usize(vq.chain.len());
            for d in &vq.chain {
                w.u64(d.addr);
                w.u32(d.len);
                w.u16(d.flags);
                w.u16(d.next);
            }
            w.bytes(&vq.staging);
            w.u32(vq.payload_pending);
            w.u32(vq.used_len);
        }
        w.usize(self.store.len());
        for (&sector, buf) in &self.store {
            w.u64(sector);
            w.bytes(buf);
        }
        encode_packet_queue(w, &self.out_queue);
        match &self.stalled {
            Some(pkt) => {
                w.bool(true);
                pkt.encode(w);
            }
            None => w.bool(false),
        }
        let mut tags: Vec<(u64, DmaTag)> = self.dma_tags.iter().map(|(&k, &v)| (k, v)).collect();
        tags.sort_unstable_by_key(|&(k, _)| k);
        w.usize(tags.len());
        for (id, tag) in tags {
            w.u64(id);
            encode_tag(w, tag);
        }
        w.usize(self.pending_data.len());
        for (tag, payload) in &self.pending_data {
            encode_tag(w, *tag);
            w.bytes(payload);
        }
        w.usize(self.msix_table.len());
        for &dw in &self.msix_table {
            w.u32(dw);
        }
        w.u64(self.msix_pba);
        w.usize(self.irq_inflight.len());
        for &id in &self.irq_inflight {
            w.u64(id);
        }
        encode_packet_queue(w, &self.irq_stalled);
        w.bool(self.rx_started);
        w.u32(self.rx_feed.as_ref().map_or(0, |f| f.emitted()));
        w.usize(self.rx_fifo.len());
        for &(flow, bytes) in &self.rx_fifo {
            w.u32(flow);
            w.u32(bytes);
        }
        w.u64(self.rx_octets);
        w.bool(self.pio_waiting);
        encode_packet_queue(w, &self.pio_blocked);
        self.stats.mmio_reads.encode(w);
        self.stats.mmio_writes.encode(w);
        self.stats.doorbells.encode(w);
        self.stats.chains_used.encode(w);
        self.stats.desc_reads.encode(w);
        self.stats.dma_read_tlps.encode(w);
        self.stats.dma_write_tlps.encode(w);
        self.stats.dma_bytes.encode(w);
        self.stats.dma_error_completions.encode(w);
        self.stats.payload_bytes_read.encode(w);
        self.stats.payload_bytes_written.encode(w);
        self.stats.desc_faults.encode(w);
        self.stats.irqs.encode(w);
        self.stats.msix_irqs.encode(w);
        self.stats.frames_tx.encode(w);
        self.stats.frames_rx.encode(w);
        self.stats.rx_overruns.encode(w);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.device_status = r.u32()?;
        self.driver_features = r.u32()?;
        self.config_msix_vector = r.u32()?;
        self.queue_select = r.u32()?;
        self.isr_status = r.u32()?;
        for vq in &mut self.queues {
            vq.desc = r.u64()?;
            vq.avail = r.u64()?;
            vq.used = r.u64()?;
            vq.enable = r.bool()?;
            vq.msix_vector = r.u32()?;
            vq.phase = VqPhase::decode(r.u8()?)?;
            vq.last_seen = r.u16()?;
            vq.avail_idx = r.u16()?;
            vq.used_idx = r.u16()?;
            vq.repoll = r.bool()?;
            vq.broken = r.bool()?;
            vq.head = r.u16()?;
            let n = r.usize()?;
            vq.chain.clear();
            for _ in 0..n {
                vq.chain.push(Desc {
                    addr: r.u64()?,
                    len: r.u32()?,
                    flags: r.u16()?,
                    next: r.u16()?,
                });
            }
            vq.staging = r.bytes()?.to_vec();
            vq.payload_pending = r.u32()?;
            vq.used_len = r.u32()?;
        }
        self.store.clear();
        let n = r.usize()?;
        for _ in 0..n {
            let sector = r.u64()?;
            let buf = r.bytes()?.to_vec();
            if buf.len() != BLK_SECTOR_SIZE as usize {
                return Err(SnapshotError::Corrupt(format!(
                    "virtio store sector of {} bytes",
                    buf.len()
                )));
            }
            self.store.insert(sector, buf);
        }
        self.out_queue = decode_packet_queue(r)?;
        self.stalled = if r.bool()? { Some(Packet::decode(r)?) } else { None };
        self.dma_tags.clear();
        let n = r.usize()?;
        for _ in 0..n {
            let id = r.u64()?;
            self.dma_tags.insert(id, decode_tag(r)?);
        }
        self.pending_data.clear();
        let n = r.usize()?;
        for _ in 0..n {
            let tag = decode_tag(r)?;
            let payload = r.bytes()?.to_vec();
            self.pending_data.push_back((tag, payload));
        }
        let n = r.usize()?;
        if n != self.msix_table.len() {
            return Err(SnapshotError::Corrupt(format!("msix table of {n} dwords")));
        }
        for dw in &mut self.msix_table {
            *dw = r.u32()?;
        }
        self.msix_pba = r.u64()?;
        self.irq_inflight.clear();
        let n = r.usize()?;
        for _ in 0..n {
            self.irq_inflight.insert(r.u64()?);
        }
        self.irq_stalled = decode_packet_queue(r)?;
        self.rx_started = r.bool()?;
        let emitted = r.u32()?;
        self.rx_feed = if self.rx_started && self.config.rx_source.is_some() {
            Some(TrafficFeed::resume(
                self.config.rx_source.as_ref().expect("checked above"),
                emitted,
            ))
        } else {
            None
        };
        self.rx_fifo.clear();
        let n = r.usize()?;
        for _ in 0..n {
            let flow = r.u32()?;
            let bytes = r.u32()?;
            self.rx_fifo.push_back((flow, bytes));
        }
        self.rx_octets = r.u64()?;
        self.pio_waiting = r.bool()?;
        self.pio_blocked = decode_packet_queue(r)?;
        self.stats.mmio_reads = Counter::decode(r)?;
        self.stats.mmio_writes = Counter::decode(r)?;
        self.stats.doorbells = Counter::decode(r)?;
        self.stats.chains_used = Counter::decode(r)?;
        self.stats.desc_reads = Counter::decode(r)?;
        self.stats.dma_read_tlps = Counter::decode(r)?;
        self.stats.dma_write_tlps = Counter::decode(r)?;
        self.stats.dma_bytes = Counter::decode(r)?;
        self.stats.dma_error_completions = Counter::decode(r)?;
        self.stats.payload_bytes_read = Counter::decode(r)?;
        self.stats.payload_bytes_written = Counter::decode(r)?;
        self.stats.desc_faults = Counter::decode(r)?;
        self.stats.irqs = Counter::decode(r)?;
        self.stats.msix_irqs = Counter::decode(r)?;
        self.stats.frames_tx = Counter::decode(r)?;
        self.stats.frames_rx = Counter::decode(r)?;
        self.stats.rx_overruns = Counter::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcisim_kernel::sim::{RunOutcome, Simulation};
    use std::cell::RefCell;
    use std::rc::Rc;

    const BAR0: u64 = 0x4000_0000;
    const RING: u64 = 0x8000_0000;

    type SharedMem = Rc<RefCell<BTreeMap<u64, u8>>>;

    fn mem_write(m: &SharedMem, addr: u64, data: &[u8]) {
        let mut mem = m.borrow_mut();
        for (i, &b) in data.iter().enumerate() {
            mem.insert(addr + i as u64, b);
        }
    }

    fn mem_read(m: &SharedMem, addr: u64, len: usize) -> Vec<u8> {
        let mem = m.borrow();
        (0..len).map(|i| mem.get(&(addr + i as u64)).copied().unwrap_or(0)).collect()
    }

    /// Functional memory endpoint: services DMA against a shared byte map
    /// after a fixed latency, like host DRAM would.
    struct FuncMem {
        mem: SharedMem,
        latency: Tick,
    }

    impl Component for FuncMem {
        fn name(&self) -> &str {
            "mem"
        }
        fn recv_request(&mut self, ctx: &mut Ctx<'_>, _p: PortId, pkt: Packet) -> RecvResult {
            ctx.schedule(self.latency, Event::DelayedPacket { tag: 0, pkt });
            RecvResult::Accepted
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
            let Event::DelayedPacket { mut pkt, .. } = ev else { panic!() };
            match pkt.cmd() {
                Command::ReadReq => {
                    let data = mem_read(&self.mem, pkt.addr(), pkt.size() as usize);
                    ctx.try_send_response(PortId(0), pkt.into_read_response(data)).unwrap();
                }
                Command::WriteReq | Command::Message => {
                    let posted = pkt.is_posted();
                    let addr = pkt.addr();
                    if let Some(p) = pkt.take_payload() {
                        mem_write(&self.mem, addr, &p);
                    }
                    if !posted {
                        ctx.try_send_response(PortId(0), pkt.into_response()).unwrap();
                    }
                }
                other => panic!("mem: unexpected {other:?}"),
            }
        }
    }

    /// Scripted guest: issues a burst of 4 B MMIO writes at t=0.
    struct Script {
        writes: Vec<(u64, u32)>,
        sent: bool,
    }

    impl Component for Script {
        fn name(&self) -> &str {
            "drv"
        }
        fn init(&mut self, ctx: &mut Ctx<'_>) {
            ctx.schedule(0, Event::Timer { kind: 0, data: 0 });
        }
        fn handle(&mut self, ctx: &mut Ctx<'_>, _ev: Event) {
            if self.sent {
                return;
            }
            self.sent = true;
            for &(off, val) in &self.writes {
                let id = ctx.alloc_packet_id();
                let pkt = Packet::request(id, Command::WriteReq, BAR0 + off, 4, ctx.self_id())
                    .with_payload(val.to_le_bytes().to_vec());
                ctx.try_send_request(PortId(0), pkt).expect("device accepts MMIO");
            }
        }
        fn recv_response(&mut self, _c: &mut Ctx<'_>, _p: PortId, _k: Packet) -> RecvResult {
            RecvResult::Accepted
        }
    }

    /// MMIO writes that program queue `q`'s rings at the standard test
    /// layout and flip the status to DRIVER_OK.
    fn setup_writes(q: u32) -> Vec<(u64, u32)> {
        let desc = RING;
        let avail = RING + 0x1000;
        let used = RING + 0x2000;
        vec![
            (common::QUEUE_SELECT, q),
            (common::QUEUE_DESC_LO, desc as u32),
            (common::QUEUE_DESC_HI, (desc >> 32) as u32),
            (common::QUEUE_AVAIL_LO, avail as u32),
            (common::QUEUE_AVAIL_HI, (avail >> 32) as u32),
            (common::QUEUE_USED_LO, used as u32),
            (common::QUEUE_USED_HI, (used >> 32) as u32),
            (common::QUEUE_ENABLE, 1),
            (
                common::DEVICE_STATUS,
                status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK | status::DRIVER_OK,
            ),
            (NOTIFY_OFFSET + u64::from(q) * u64::from(NOTIFY_MULTIPLIER), 0),
        ]
    }

    /// Writes descriptor `i` into the table at `RING`.
    fn put_desc(mem: &SharedMem, i: u16, addr: u64, len: u32, flags: u16, next: u16) {
        let mut d = [0u8; 16];
        d[0..8].copy_from_slice(&addr.to_le_bytes());
        d[8..12].copy_from_slice(&len.to_le_bytes());
        d[12..14].copy_from_slice(&flags.to_le_bytes());
        d[14..16].copy_from_slice(&next.to_le_bytes());
        mem_write(mem, RING + u64::from(i) * 16, &d);
    }

    /// Publishes `heads` on the avail ring (flags 0).
    fn publish(mem: &SharedMem, heads: &[u16]) {
        for (slot, &h) in heads.iter().enumerate() {
            mem_write(mem, RING + 0x1000 + 4 + slot as u64 * 2, &h.to_le_bytes());
        }
        mem_write(mem, RING + 0x1000 + 2, &(heads.len() as u16).to_le_bytes());
    }

    fn blk_header(req_type: u32, sector: u64) -> [u8; 16] {
        let mut h = [0u8; 16];
        h[0..4].copy_from_slice(&req_type.to_le_bytes());
        h[8..16].copy_from_slice(&sector.to_le_bytes());
        h
    }

    fn run(
        config: VirtioConfig,
        mem: &SharedMem,
        writes: Vec<(u64, u32)>,
        preload: &[(u64, Vec<u8>)],
        patch_cs: impl FnOnce(&SharedConfigSpace),
    ) -> Simulation {
        let mut sim = Simulation::new();
        let (mut dev, cs) = Virtio::new("vdev", config);
        cs.borrow_mut().write(0x10, 4, BAR0 as u32);
        for (sector, data) in preload {
            dev.store_preload(*sector, data);
        }
        patch_cs(&cs);
        let drv = sim.add(Box::new(Script { writes, sent: false }));
        let d = sim.add(Box::new(dev));
        let m = sim.add(Box::new(FuncMem { mem: mem.clone(), latency: ns(30) }));
        sim.connect((drv, PortId(0)), (d, VIRTIO_PIO_PORT));
        sim.connect((d, VIRTIO_DMA_PORT), (m, PortId(0)));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        sim
    }

    #[test]
    fn config_space_advertises_the_transport() {
        let cs = virtio_config_space(&VirtioConfig::default());
        assert_eq!(cs.read(0x00, 2), u32::from(VIRTIO_VENDOR_ID));
        assert_eq!(cs.read(0x02, 2), u32::from(VIRTIO_BLK_DEVICE_ID));
        assert_eq!(cs.read(0x0b, 1), 0x01, "storage class");
        assert_eq!(cs.read(0x3d, 1), 1, "INTA pin");
        let regions = discover_regions(&cs).expect("all four structures present");
        assert_eq!(
            regions,
            VirtioRegions {
                common: COMMON_OFFSET,
                notify: NOTIFY_OFFSET,
                notify_multiplier: NOTIFY_MULTIPLIER,
                isr: ISR_OFFSET,
                device: DEVICE_CFG_OFFSET,
            }
        );
        let net = virtio_config_space(&VirtioConfig {
            class: VirtioClass::Net,
            ..VirtioConfig::default()
        });
        assert_eq!(net.read(0x02, 2), u32::from(VIRTIO_NET_DEVICE_ID));
        assert_eq!(net.read(0x0b, 1), 0x02, "network class");
        assert!(discover_regions(&net).is_some());
    }

    #[test]
    fn msix_capability_is_opt_in() {
        use pcisim_pci::regs::cap_id;
        let plain = virtio_config_space(&VirtioConfig::default());
        assert!(!pcisim_pci::caps::msix_enabled(&plain));
        let capable = virtio_config_space(&VirtioConfig {
            msix_capable: true,
            ..VirtioConfig::default()
        });
        let caps = pcisim_pci::caps::walk_capabilities(&capable);
        assert!(caps.iter().any(|&(_, id)| id == cap_id::MSI_X));
        assert_eq!(pcisim_pci::caps::msix_table_size(&capable), 2, "1 queue + config");
    }

    #[test]
    fn blk_read_walks_the_ring_and_retires_the_chain() {
        let mem: SharedMem = Rc::new(RefCell::new(BTreeMap::new()));
        let pattern: Vec<u8> = (0..512u32).map(|i| (i * 7 % 251) as u8).collect();
        put_desc(&mem, 0, RING + 0x4000, 16, DESC_F_NEXT, 1);
        put_desc(&mem, 1, RING + 0x5000, 512, DESC_F_NEXT | DESC_F_WRITE, 2);
        put_desc(&mem, 2, RING + 0x6000, 1, DESC_F_WRITE, 0);
        mem_write(&mem, RING + 0x4000, &blk_header(BLK_T_IN, 3));
        mem_write(&mem, RING + 0x6000, &[0xee]); // stale status must be overwritten
        publish(&mem, &[0]);
        let sim = run(
            VirtioConfig::default(),
            &mem,
            setup_writes(0),
            &[(3, pattern.clone())],
            |_| {},
        );
        assert_eq!(mem_read(&mem, RING + 0x5000, 512), pattern, "payload DMA-written");
        assert_eq!(mem_read(&mem, RING + 0x6000, 1), vec![BLK_S_OK]);
        assert_eq!(mem_read(&mem, RING + 0x2002, 2), 1u16.to_le_bytes().to_vec(), "used idx");
        assert_eq!(mem_read(&mem, RING + 0x2004, 4), 0u32.to_le_bytes().to_vec(), "used head");
        assert_eq!(mem_read(&mem, RING + 0x2008, 4), 513u32.to_le_bytes().to_vec(), "used len");
        let stats = sim.stats();
        assert_eq!(stats.get("vdev.chains_used"), Some(1.0));
        assert_eq!(stats.get("vdev.doorbells"), Some(1.0));
        assert_eq!(stats.get("vdev.desc_faults"), Some(0.0));
        assert_eq!(stats.get("vdev.irqs"), Some(1.0), "INTx path counts even with no target");
        // 1 avail idx + 1 avail entry + 3 descriptors + 16 B header.
        assert_eq!(stats.get("vdev.desc_reads"), Some(3.0));
        assert!(sim.now() >= us(1), "media access latency charged");
    }

    #[test]
    fn blk_write_persists_and_reads_back() {
        let mem: SharedMem = Rc::new(RefCell::new(BTreeMap::new()));
        let pattern: Vec<u8> = (0..512u32).map(|i| (i * 13 % 241) as u8).collect();
        // Chain 0: write `pattern` to sector 7.
        put_desc(&mem, 0, RING + 0x4000, 16, DESC_F_NEXT, 1);
        put_desc(&mem, 1, RING + 0x5000, 512, DESC_F_NEXT, 2);
        put_desc(&mem, 2, RING + 0x6000, 1, DESC_F_WRITE, 0);
        mem_write(&mem, RING + 0x4000, &blk_header(BLK_T_OUT, 7));
        mem_write(&mem, RING + 0x5000, &pattern);
        // Chain 1 (head 3): read sector 7 back into a fresh buffer.
        put_desc(&mem, 3, RING + 0x4100, 16, DESC_F_NEXT, 4);
        put_desc(&mem, 4, RING + 0x7000, 512, DESC_F_NEXT | DESC_F_WRITE, 5);
        put_desc(&mem, 5, RING + 0x6004, 1, DESC_F_WRITE, 0);
        mem_write(&mem, RING + 0x4100, &blk_header(BLK_T_IN, 7));
        publish(&mem, &[0, 3]);
        let sim = run(VirtioConfig::default(), &mem, setup_writes(0), &[], |_| {});
        assert_eq!(mem_read(&mem, RING + 0x7000, 512), pattern, "write then read round-trips");
        assert_eq!(mem_read(&mem, RING + 0x6000, 1), vec![BLK_S_OK]);
        assert_eq!(mem_read(&mem, RING + 0x6004, 1), vec![BLK_S_OK]);
        assert_eq!(mem_read(&mem, RING + 0x2002, 2), 2u16.to_le_bytes().to_vec());
        assert_eq!(sim.stats().get("vdev.chains_used"), Some(2.0));
    }

    #[test]
    fn blk_out_of_capacity_reports_ioerr() {
        let mem: SharedMem = Rc::new(RefCell::new(BTreeMap::new()));
        put_desc(&mem, 0, RING + 0x4000, 16, DESC_F_NEXT, 1);
        put_desc(&mem, 1, RING + 0x5000, 512, DESC_F_NEXT | DESC_F_WRITE, 2);
        put_desc(&mem, 2, RING + 0x6000, 1, DESC_F_WRITE, 0);
        let cfg = VirtioConfig { capacity_sectors: 8, ..VirtioConfig::default() };
        mem_write(&mem, RING + 0x4000, &blk_header(BLK_T_IN, 8));
        publish(&mem, &[0]);
        let sim = run(cfg, &mem, setup_writes(0), &[], |_| {});
        assert_eq!(mem_read(&mem, RING + 0x6000, 1), vec![BLK_S_IOERR]);
        assert_eq!(sim.stats().get("vdev.chains_used"), Some(1.0), "still retires");
        assert_eq!(sim.stats().get("vdev.desc_faults"), Some(0.0));
    }

    #[test]
    fn net_tx_serializes_the_frame() {
        let mem: SharedMem = Rc::new(RefCell::new(BTreeMap::new()));
        // One readable descriptor: 12 B header + 1500 B frame.
        put_desc(&mem, 0, RING + 0x4000, NET_HEADER_BYTES + 1500, 0, 0);
        publish(&mem, &[0]);
        let cfg = VirtioConfig { class: VirtioClass::Net, ..VirtioConfig::default() };
        let sim = run(cfg, &mem, setup_writes(1), &[], |_| {});
        let stats = sim.stats();
        assert_eq!(stats.get("vdev.frames_tx"), Some(1.0));
        assert_eq!(stats.get("vdev.chains_used"), Some(1.0));
        assert_eq!(mem_read(&mem, RING + 0x2008, 4), 0u32.to_le_bytes().to_vec(), "TX used len 0");
        // 1500 B at 10 Gb/s = 1.2 µs of wire time.
        assert!(sim.now() >= transfer_time(1500, 1_250_000_000));
    }

    #[test]
    fn out_of_range_head_faults_without_hanging() {
        let mem: SharedMem = Rc::new(RefCell::new(BTreeMap::new()));
        publish(&mem, &[300]); // queue size is 128
        let sim = run(VirtioConfig::default(), &mem, setup_writes(0), &[], |_| {});
        let stats = sim.stats();
        assert_eq!(stats.get("vdev.desc_faults"), Some(1.0));
        assert_eq!(stats.get("vdev.chains_used"), Some(0.0));
    }

    #[test]
    fn out_of_range_next_faults_without_hanging() {
        let mem: SharedMem = Rc::new(RefCell::new(BTreeMap::new()));
        put_desc(&mem, 0, RING + 0x4000, 16, DESC_F_NEXT, 200);
        publish(&mem, &[0]);
        let sim = run(VirtioConfig::default(), &mem, setup_writes(0), &[], |_| {});
        assert_eq!(sim.stats().get("vdev.desc_faults"), Some(1.0));
        assert_eq!(sim.stats().get("vdev.chains_used"), Some(0.0));
    }

    #[test]
    fn circular_chain_faults_without_hanging() {
        let mem: SharedMem = Rc::new(RefCell::new(BTreeMap::new()));
        put_desc(&mem, 0, RING + 0x4000, 16, DESC_F_NEXT, 1);
        put_desc(&mem, 1, RING + 0x5000, 64, DESC_F_NEXT, 0); // loops back
        publish(&mem, &[0]);
        let sim = run(VirtioConfig::default(), &mem, setup_writes(0), &[], |_| {});
        assert_eq!(sim.stats().get("vdev.desc_faults"), Some(1.0));
        assert_eq!(sim.stats().get("vdev.chains_used"), Some(0.0));
    }

    #[test]
    fn msix_completion_rides_the_fabric() {
        use pcisim_pci::caps::{find_capability, msix};
        use pcisim_pci::regs::cap_id;
        let mem: SharedMem = Rc::new(RefCell::new(BTreeMap::new()));
        put_desc(&mem, 0, RING + 0x4000, 16, DESC_F_NEXT, 1);
        put_desc(&mem, 1, RING + 0x6000, 1, DESC_F_WRITE, 0);
        mem_write(&mem, RING + 0x4000, &blk_header(BLK_T_IN, 0));
        publish(&mem, &[0]);
        let msi_addr: u64 = 0xfee0_0000;
        let msi_data: u32 = 0x4041;
        let mut writes = vec![
            // Program vector 0: address, data, unmask.
            (MSIX_TABLE_OFFSET, msi_addr as u32),
            (MSIX_TABLE_OFFSET + 4, (msi_addr >> 32) as u32),
            (MSIX_TABLE_OFFSET + 8, msi_data),
            (MSIX_TABLE_OFFSET + 12, 0),
            (common::QUEUE_SELECT, 0),
            (common::QUEUE_MSIX_VECTOR, 0),
        ];
        writes.extend(setup_writes(0));
        let cfg = VirtioConfig { msix_capable: true, ..VirtioConfig::default() };
        let sim = run(cfg, &mem, writes, &[], |cs| {
            // Enable the MSI-X function like the probing driver does.
            let off = find_capability(&cs.borrow(), cap_id::MSI_X).expect("capable");
            cs.borrow_mut().write(off + msix::CONTROL, 2, u32::from(msix::CONTROL_ENABLE));
        });
        let stats = sim.stats();
        assert_eq!(stats.get("vdev.msix_irqs"), Some(1.0));
        assert_eq!(
            mem_read(&mem, msi_addr, 4),
            msi_data.to_le_bytes().to_vec(),
            "message lands at the programmed address"
        );
    }
}
