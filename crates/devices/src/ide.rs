//! The IDE disk model (paper §VI-A).
//!
//! gem5's IDE disk "does not impose any bandwidth bottleneck for the data
//! transfer (its access latency is a constant 1 µs value)", which makes the
//! PCI-Express interconnect the bottleneck when `dd` floods it with reads.
//! This model reproduces that behaviour: a command transfers N sectors
//! (4 KB each); after one constant access latency the disk DMA-writes each
//! sector upstream in cache-line TLPs, and — because the model, like the
//! paper's, does **not** support posted writes — every write response of a
//! sector must return before the next sector starts. A `posted_writes`
//! switch implements the paper's discussion of that limitation as an
//! ablation.
//!
//! Ports: [`IDE_PIO_PORT`] (doorbell/status registers behind BAR0) and
//! [`IDE_DMA_PORT`] (DMA master).

use std::collections::VecDeque;

use pcisim_kernel::component::{Component, Event, PortId, RecvResult};
use pcisim_kernel::packet::{decode_packet_queue, encode_packet_queue, Command, Packet};
use pcisim_kernel::sim::Ctx;
use pcisim_kernel::snapshot::{SnapshotError, StateReader, StateWriter};
use pcisim_kernel::stats::{Counter, StatsBuilder};
use pcisim_kernel::tick::{ns, us, Tick};
use pcisim_pci::caps::{write_aer_capability, CapChain, Capability, Generation, PortType};
use pcisim_pci::config::{shared, ConfigSpace, SharedConfigSpace};
use pcisim_pci::header::{bar_base, Bar, Type0Header};

use crate::intc::irq_message_addr;

/// MMIO register port (slave).
pub const IDE_PIO_PORT: PortId = PortId(0);
/// DMA master port.
pub const IDE_DMA_PORT: PortId = PortId(1);

/// BAR0-relative register offsets.
pub mod regs {
    /// Number of sectors the next command transfers (u32, RW).
    pub const SECTOR_COUNT: u64 = 0x00;
    /// DMA target address, low half (u32, RW).
    pub const DMA_ADDR_LO: u64 = 0x04;
    /// DMA target address, high half (u32, RW).
    pub const DMA_ADDR_HI: u64 = 0x08;
    /// Command doorbell (u32, W): writing [`super::CMD_READ_DMA`] starts a
    /// disk→memory transfer.
    pub const COMMAND: u64 = 0x0c;
    /// Status (u32, R): bit 0 busy, bit 1 interrupt pending.
    pub const STATUS: u64 = 0x10;
    /// Interrupt acknowledge (u32, W): clears the pending bit.
    pub const IRQ_ACK: u64 = 0x14;
}

/// Doorbell value starting a read-DMA transfer.
pub const CMD_READ_DMA: u32 = 1;
/// Status bit: a command is in flight.
pub const STATUS_BUSY: u32 = 1 << 0;
/// Status bit: completion interrupt pending.
pub const STATUS_IRQ: u32 = 1 << 1;

/// Tunables of the disk model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdeDiskConfig {
    /// Sector size in bytes; the paper's measurements use 4 KB sectors.
    pub sector_size: u32,
    /// DMA TLP payload; the paper uses the cache line size (64 B).
    pub cacheline: u32,
    /// Constant media access latency charged once per command (gem5: 1 µs).
    pub access_latency: Tick,
    /// Protocol gap inserted between sectors (PRD fetch, IDE handshake).
    pub per_sector_overhead: Tick,
    /// When true, DMA writes are posted and the sector barrier disappears
    /// (the paper's future-work extension).
    pub posted_writes: bool,
    /// MMIO register access latency.
    pub pio_latency: Tick,
    /// Interrupt message target: `(irq, interrupt-controller base)`.
    pub intx: Option<(u8, u64)>,
    /// Expose a functional (software-enableable) MSI capability instead of
    /// the paper's disabled one.
    pub msi_capable: bool,
}

impl Default for IdeDiskConfig {
    fn default() -> Self {
        Self {
            sector_size: 4096,
            cacheline: 64,
            access_latency: us(1),
            per_sector_overhead: ns(2500),
            posted_writes: false,
            pio_latency: ns(50),
            intx: None,
            msi_capable: false,
        }
    }
}

/// Builds the disk's configuration space: an IDE-class endpoint with one
/// 4 KB memory BAR, a legacy interrupt pin, and the full PCI-Express
/// capability chain (MSI disabled, as the paper configures it).
pub fn ide_config_space() -> ConfigSpace {
    ide_config_space_with(false)
}

/// Like [`ide_config_space`], optionally exposing a functional MSI
/// capability (the paper's future-work extension).
pub fn ide_config_space_with(msi_capable: bool) -> ConfigSpace {
    let mut cs = Type0Header::new(0x8086, 0x2922)
        .class_code(0x01, 0x01, 0x80)
        .bar(0, Bar::Memory32 { size: 0x1000, prefetchable: false })
        .interrupt_pin(1)
        .capabilities_at(0xc8)
        .build();
    let msi = if msi_capable { Capability::MsiCapable } else { Capability::MsiDisabled };
    CapChain::new()
        .add(0xc8, Capability::PowerManagement)
        .add(0xd0, msi)
        .add(
            0xe0,
            Capability::PciExpress {
                port_type: PortType::Endpoint,
                generation: Generation::Gen2,
                max_width: 1,
            },
        )
        .write_into(&mut cs);
    write_aer_capability(&mut cs, 0x100, 0);
    cs
}

const K_ACCESS_DONE: u32 = 0;
const K_SECTOR_GAP: u32 = 1;
const K_PUMP: u32 = 2;
const TAG_PIO_RESP: u32 = 0;

#[derive(Debug, Default)]
struct DiskStats {
    commands: Counter,
    sectors: Counter,
    dma_bytes: Counter,
    dma_tlps: Counter,
    dma_stalls: Counter,
    irqs: Counter,
}

/// The IDE disk component.
pub struct IdeDisk {
    name: String,
    config: IdeDiskConfig,
    config_space: SharedConfigSpace,
    // Registers.
    sector_count: u32,
    dma_addr: u64,
    busy: bool,
    irq_pending: bool,
    // Transfer state.
    sectors_remaining: u32,
    cur_addr: u64,
    tlps_to_send: u32,
    tlps_outstanding: u32,
    /// A sector is mid-transfer; guards against spurious completion checks
    /// from stacked pump events.
    sector_active: bool,
    stalled: Option<Packet>,
    // PIO response queue.
    pio_waiting: bool,
    pio_blocked: VecDeque<Packet>,
    stats: DiskStats,
}

impl IdeDisk {
    /// Creates a disk; returns the component and the shared configuration
    /// space to register with the PCI host.
    pub fn new(name: impl Into<String>, config: IdeDiskConfig) -> (Self, SharedConfigSpace) {
        assert!(
            config.sector_size.is_multiple_of(config.cacheline),
            "sector must be whole cachelines"
        );
        assert!(config.cacheline > 0 && config.sector_size > 0);
        let cs = shared(ide_config_space_with(config.msi_capable));
        (
            Self {
                name: name.into(),
                config,
                config_space: cs.clone(),
                sector_count: 0,
                dma_addr: 0,
                busy: false,
                irq_pending: false,
                sectors_remaining: 0,
                cur_addr: 0,
                tlps_to_send: 0,
                tlps_outstanding: 0,
                sector_active: false,
                stalled: None,
                pio_waiting: false,
                pio_blocked: VecDeque::new(),
                stats: DiskStats::default(),
            },
            cs,
        )
    }

    /// Re-targets the INTx interrupt message (used once the enumerated IRQ
    /// is known).
    pub fn set_intx(&mut self, intx: Option<(u8, u64)>) {
        self.config.intx = intx;
    }

    fn bar0(&self) -> u64 {
        bar_base(&self.config_space.borrow(), 0)
    }

    /// Where to send the next interrupt message: the programmed MSI
    /// address when software enabled MSI, else the INTx emulation target.
    fn interrupt_message_addr(&self) -> Option<u64> {
        if let Some((addr, _data)) = pcisim_pci::caps::msi_target(&self.config_space.borrow()) {
            return Some(addr);
        }
        self.config.intx.map(|(irq, base)| irq_message_addr(base, irq))
    }

    fn reg_read(&mut self, offset: u64) -> u32 {
        match offset {
            regs::SECTOR_COUNT => self.sector_count,
            regs::DMA_ADDR_LO => self.dma_addr as u32,
            regs::DMA_ADDR_HI => (self.dma_addr >> 32) as u32,
            regs::STATUS => {
                u32::from(self.busy) * STATUS_BUSY + u32::from(self.irq_pending) * STATUS_IRQ
            }
            _ => 0,
        }
    }

    fn reg_write(&mut self, ctx: &mut Ctx<'_>, offset: u64, value: u32) {
        match offset {
            regs::SECTOR_COUNT => self.sector_count = value,
            regs::DMA_ADDR_LO => {
                self.dma_addr = (self.dma_addr & !0xffff_ffff) | u64::from(value);
            }
            regs::DMA_ADDR_HI => {
                self.dma_addr = (self.dma_addr & 0xffff_ffff) | (u64::from(value) << 32);
            }
            regs::COMMAND if value == CMD_READ_DMA => self.start_command(ctx),
            regs::IRQ_ACK => self.irq_pending = false,
            _ => {}
        }
    }

    fn start_command(&mut self, ctx: &mut Ctx<'_>) {
        assert!(!self.busy, "{}: command while busy", self.name);
        assert!(self.sector_count > 0, "{}: zero-sector command", self.name);
        self.busy = true;
        self.stats.commands.inc();
        self.sectors_remaining = self.sector_count;
        self.cur_addr = self.dma_addr;
        ctx.schedule(self.config.access_latency, Event::Timer { kind: K_ACCESS_DONE, data: 0 });
    }

    fn start_sector(&mut self, ctx: &mut Ctx<'_>) {
        self.tlps_to_send = self.config.sector_size / self.config.cacheline;
        self.sector_active = true;
        self.pump_dma(ctx);
    }

    /// Issues DMA write TLPs as fast as the fabric accepts them.
    fn pump_dma(&mut self, ctx: &mut Ctx<'_>) {
        while self.stalled.is_none() && self.tlps_to_send > 0 {
            let id = ctx.alloc_packet_id();
            let size = self.config.cacheline;
            let mut pkt =
                Packet::request(id, Command::WriteReq, self.cur_addr, size, ctx.self_id())
                    .with_payload(ctx.alloc_payload(size as usize));
            pkt.set_posted(self.config.posted_writes);
            match ctx.try_send_request(IDE_DMA_PORT, pkt) {
                Ok(()) => {
                    self.tlps_to_send -= 1;
                    self.cur_addr += u64::from(size);
                    self.stats.dma_tlps.inc();
                    self.stats.dma_bytes.add(u64::from(size));
                    if !self.config.posted_writes {
                        self.tlps_outstanding += 1;
                    }
                }
                Err(back) => {
                    self.stats.dma_stalls.inc();
                    self.stalled = Some(back);
                }
            }
        }
        if self.sector_active
            && self.tlps_to_send == 0
            && self.tlps_outstanding == 0
            && self.stalled.is_none()
        {
            self.sector_active = false;
            self.sector_complete(ctx);
        }
    }

    fn sector_complete(&mut self, ctx: &mut Ctx<'_>) {
        self.stats.sectors.inc();
        self.sectors_remaining -= 1;
        if self.sectors_remaining > 0 {
            ctx.schedule(
                self.config.per_sector_overhead,
                Event::Timer { kind: K_SECTOR_GAP, data: 0 },
            );
        } else {
            self.busy = false;
            self.irq_pending = true;
            self.stats.irqs.inc();
            if let Some(addr) = self.interrupt_message_addr() {
                let id = ctx.alloc_packet_id();
                let msg = Packet::request(id, Command::Message, addr, 4, ctx.self_id())
                    .with_payload(ctx.alloc_payload(4));
                // Interrupt messages are posted; if the fabric refuses, we
                // retry through the normal stall path.
                match ctx.try_send_request(IDE_DMA_PORT, msg) {
                    Ok(()) => {}
                    Err(back) => {
                        self.stats.dma_stalls.inc();
                        self.stalled = Some(back);
                    }
                }
            }
        }
    }

    fn flush_pio(&mut self, ctx: &mut Ctx<'_>) {
        while !self.pio_waiting {
            let Some(pkt) = self.pio_blocked.pop_front() else { return };
            match ctx.try_send_response(IDE_PIO_PORT, pkt) {
                Ok(()) => {}
                Err(back) => {
                    self.pio_blocked.push_front(back);
                    self.pio_waiting = true;
                }
            }
        }
    }
}

impl Component for IdeDisk {
    fn name(&self) -> &str {
        &self.name
    }

    fn recv_request(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) -> RecvResult {
        assert_eq!(port, IDE_PIO_PORT, "{}: MMIO arrives on the PIO port", self.name);
        let offset = pkt.addr().wrapping_sub(self.bar0());
        assert!(offset < 0x1000, "{}: access outside BAR0 at {:#x}", self.name, pkt.addr());
        let resp = match pkt.cmd() {
            Command::ReadReq => {
                let v = self.reg_read(offset);
                let data = v.to_le_bytes()[..pkt.size().min(4) as usize].to_vec();
                let mut full = vec![0u8; pkt.size() as usize];
                let n = data.len().min(full.len());
                full[..n].copy_from_slice(&data[..n]);
                pkt.into_read_response(full)
            }
            Command::WriteReq => {
                let v = pkt
                    .payload()
                    .map(|p| {
                        let mut b = [0u8; 4];
                        let n = p.len().min(4);
                        b[..n].copy_from_slice(&p[..n]);
                        u32::from_le_bytes(b)
                    })
                    .unwrap_or(0);
                self.reg_write(ctx, offset, v);
                pkt.into_response()
            }
            other => panic!("{}: unexpected PIO command {other:?}", self.name),
        };
        ctx.schedule(
            self.config.pio_latency,
            Event::DelayedPacket { tag: TAG_PIO_RESP, pkt: resp },
        );
        RecvResult::Accepted
    }

    fn recv_response(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) -> RecvResult {
        assert_eq!(port, IDE_DMA_PORT);
        assert_eq!(pkt.cmd(), Command::WriteResp, "{}: unexpected DMA response", self.name);
        self.tlps_outstanding -= 1;
        // Never send from inside a receive handler: pump on a fresh event.
        ctx.schedule(0, Event::Timer { kind: K_PUMP, data: 0 });
        RecvResult::Accepted
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Timer { kind: K_ACCESS_DONE, .. } => self.start_sector(ctx),
            Event::Timer { kind: K_SECTOR_GAP, .. } => self.start_sector(ctx),
            Event::Timer { kind: K_PUMP, .. } => {
                if self.busy {
                    self.pump_dma(ctx);
                }
            }
            Event::Timer { kind, .. } => panic!("{}: unknown timer {kind}", self.name),
            Event::DelayedPacket { tag: TAG_PIO_RESP, pkt } => {
                self.pio_blocked.push_back(pkt);
                self.flush_pio(ctx);
            }
            Event::DelayedPacket { tag, .. } => panic!("{}: unknown tag {tag}", self.name),
            Event::StampedPacket { .. } => panic!("{}: unexpected stamped packet", self.name),
        }
    }

    fn retry_granted(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        match port {
            IDE_DMA_PORT => {
                if let Some(pkt) = self.stalled.take() {
                    let is_write = pkt.cmd() == Command::WriteReq;
                    let posted = pkt.is_posted();
                    let size = pkt.size();
                    match ctx.try_send_request(IDE_DMA_PORT, pkt) {
                        Ok(()) => {
                            if is_write {
                                self.tlps_to_send -= 1;
                                self.cur_addr += u64::from(size);
                                self.stats.dma_tlps.inc();
                                self.stats.dma_bytes.add(u64::from(size));
                                if !posted {
                                    self.tlps_outstanding += 1;
                                }
                            }
                        }
                        Err(back) => {
                            self.stalled = Some(back);
                            return;
                        }
                    }
                }
                if self.busy {
                    self.pump_dma(ctx);
                }
            }
            IDE_PIO_PORT => {
                self.pio_waiting = false;
                self.flush_pio(ctx);
            }
            other => panic!("{}: retry on unknown port {other}", self.name),
        }
    }

    fn report_stats(&self, out: &mut StatsBuilder) {
        out.counter("commands", &self.stats.commands);
        out.counter("sectors", &self.stats.sectors);
        out.counter("dma_bytes", &self.stats.dma_bytes);
        out.counter("dma_tlps", &self.stats.dma_tlps);
        out.counter("dma_stalls", &self.stats.dma_stalls);
        out.counter("irqs", &self.stats.irqs);
    }

    fn save_state(&self, w: &mut StateWriter) {
        // Config (latencies, sector geometry, intx target) and the config
        // space (owned by the PCI host registry) are not serialized.
        w.u32(self.sector_count);
        w.u64(self.dma_addr);
        w.bool(self.busy);
        w.bool(self.irq_pending);
        w.u32(self.sectors_remaining);
        w.u64(self.cur_addr);
        w.u32(self.tlps_to_send);
        w.u32(self.tlps_outstanding);
        w.bool(self.sector_active);
        match &self.stalled {
            Some(pkt) => {
                w.bool(true);
                pkt.encode(w);
            }
            None => w.bool(false),
        }
        w.bool(self.pio_waiting);
        encode_packet_queue(w, &self.pio_blocked);
        self.stats.commands.encode(w);
        self.stats.sectors.encode(w);
        self.stats.dma_bytes.encode(w);
        self.stats.dma_tlps.encode(w);
        self.stats.dma_stalls.encode(w);
        self.stats.irqs.encode(w);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.sector_count = r.u32()?;
        self.dma_addr = r.u64()?;
        self.busy = r.bool()?;
        self.irq_pending = r.bool()?;
        self.sectors_remaining = r.u32()?;
        self.cur_addr = r.u64()?;
        self.tlps_to_send = r.u32()?;
        self.tlps_outstanding = r.u32()?;
        self.sector_active = r.bool()?;
        self.stalled = if r.bool()? { Some(Packet::decode(r)?) } else { None };
        self.pio_waiting = r.bool()?;
        self.pio_blocked = decode_packet_queue(r)?;
        self.stats.commands = Counter::decode(r)?;
        self.stats.sectors = Counter::decode(r)?;
        self.stats.dma_bytes = Counter::decode(r)?;
        self.stats.dma_tlps = Counter::decode(r)?;
        self.stats.dma_stalls = Counter::decode(r)?;
        self.stats.irqs = Counter::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcisim_kernel::sim::{RunOutcome, Simulation};
    use pcisim_kernel::testutil::{Responder, RESPONDER_PORT};

    const BAR0: u64 = 0x4000_0000;

    fn programmed_disk(config: IdeDiskConfig) -> (IdeDisk, SharedConfigSpace) {
        let (disk, cs) = IdeDisk::new("disk", config);
        // Program BAR0 as enumeration would.
        cs.borrow_mut().write(0x10, 4, BAR0 as u32);
        (disk, cs)
    }

    /// Drives a full command through MMIO and checks the DMA stream.
    fn run_transfer(config: IdeDiskConfig, sectors: u32) -> (Simulation, u64) {
        let mut sim = Simulation::new();
        let (disk, _cs) = programmed_disk(config);
        let script = vec![
            (Command::WriteReq, BAR0 + regs::SECTOR_COUNT, 4),
            (Command::WriteReq, BAR0 + regs::DMA_ADDR_LO, 4),
            (Command::WriteReq, BAR0 + regs::COMMAND, 4),
        ];
        // The Requester writes zero payloads; poke registers directly via
        // a custom driver component instead.
        struct Driver {
            sectors: u32,
            sent: bool,
        }
        impl Component for Driver {
            fn name(&self) -> &str {
                "drv"
            }
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(0, Event::Timer { kind: 0, data: 0 });
            }
            fn handle(&mut self, ctx: &mut Ctx<'_>, _ev: Event) {
                if self.sent {
                    return;
                }
                self.sent = true;
                for (off, val) in [
                    (regs::SECTOR_COUNT, self.sectors),
                    (regs::DMA_ADDR_LO, 0x8000_0000u32),
                    (regs::COMMAND, CMD_READ_DMA),
                ] {
                    let id = ctx.alloc_packet_id();
                    let pkt = Packet::request(id, Command::WriteReq, BAR0 + off, 4, ctx.self_id())
                        .with_payload(val.to_le_bytes().to_vec());
                    ctx.try_send_request(PortId(0), pkt).expect("disk accepts PIO");
                }
            }
            fn recv_response(&mut self, _c: &mut Ctx<'_>, _p: PortId, _k: Packet) -> RecvResult {
                RecvResult::Accepted
            }
        }
        let _ = script;
        let drv = sim.add(Box::new(Driver { sectors, sent: false }));
        let d = sim.add(Box::new(disk));
        let (mem, _) = Responder::new("mem", ns(30));
        let m = sim.add(Box::new(mem));
        sim.connect((drv, PortId(0)), (d, IDE_PIO_PORT));
        sim.connect((d, IDE_DMA_PORT), (m, RESPONDER_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        let tlps = sim.stats().get("disk.dma_tlps").unwrap() as u64;
        (sim, tlps)
    }

    #[test]
    fn one_sector_emits_one_cacheline_per_tlp() {
        let (sim, tlps) = run_transfer(IdeDiskConfig::default(), 1);
        assert_eq!(tlps, 64, "4 KB sector = 64 cache-line TLPs");
        let stats = sim.stats();
        assert_eq!(stats.get("disk.sectors"), Some(1.0));
        assert_eq!(stats.get("disk.dma_bytes"), Some(4096.0));
        assert_eq!(stats.get("disk.commands"), Some(1.0));
        assert_eq!(stats.get("disk.irqs"), Some(1.0));
    }

    #[test]
    fn multi_sector_transfers_all_sectors() {
        let (sim, tlps) = run_transfer(IdeDiskConfig::default(), 8);
        assert_eq!(tlps, 8 * 64);
        assert_eq!(sim.stats().get("disk.sectors"), Some(8.0));
    }

    #[test]
    fn access_latency_delays_first_dma() {
        let cfg = IdeDiskConfig { access_latency: us(3), ..IdeDiskConfig::default() };
        let (sim, _) = run_transfer(cfg, 1);
        // Command at ~0, access 3 µs, DMA + responses afterwards.
        assert!(sim.now() >= us(3));
    }

    #[test]
    fn per_sector_overhead_spaces_sectors() {
        let no_gap = IdeDiskConfig { per_sector_overhead: 0, ..IdeDiskConfig::default() };
        let base = run_transfer(no_gap.clone(), 4).0.now();
        let padded =
            run_transfer(IdeDiskConfig { per_sector_overhead: us(2), ..no_gap }, 4).0.now();
        assert!(padded >= base + 3 * us(2), "3 inter-sector gaps expected");
    }

    #[test]
    fn posted_writes_skip_the_sector_barrier() {
        // With posted writes the disk never waits for responses, so the
        // run completes sooner and no WriteResp is expected.
        let nonposted = run_transfer(IdeDiskConfig::default(), 4).0.now();
        let posted =
            run_transfer(IdeDiskConfig { posted_writes: true, ..IdeDiskConfig::default() }, 4)
                .0
                .now();
        assert!(posted < nonposted, "posted mode must be faster ({posted} vs {nonposted})");
    }

    #[test]
    fn status_register_reflects_busy_and_irq() {
        let (mut disk, _cs) = programmed_disk(IdeDiskConfig::default());
        assert_eq!(disk.reg_read(regs::STATUS), 0);
        disk.irq_pending = true;
        assert_eq!(disk.reg_read(regs::STATUS), STATUS_IRQ);
        disk.busy = true;
        assert_eq!(disk.reg_read(regs::STATUS), STATUS_BUSY | STATUS_IRQ);
    }

    #[test]
    fn config_space_matches_an_ide_endpoint() {
        let cs = ide_config_space();
        assert_eq!(cs.read(0x00, 2), 0x8086);
        assert_eq!(cs.read(0x0b, 1), 0x01, "storage class");
        assert_eq!(cs.read(0x3d, 1), 1, "INTA pin");
        let caps = pcisim_pci::caps::walk_capabilities(&cs);
        assert!(caps.iter().any(|&(_, id)| id == pcisim_pci::regs::cap_id::PCI_EXPRESS));
    }

    #[test]
    fn interrupt_message_targets_the_controller() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        struct Sniffer {
            seen: Rc<RefCell<Vec<u64>>>,
        }
        impl Component for Sniffer {
            fn name(&self) -> &str {
                "mem"
            }
            fn recv_request(&mut self, ctx: &mut Ctx<'_>, _p: PortId, pkt: Packet) -> RecvResult {
                if pkt.cmd() == Command::Message {
                    self.seen.borrow_mut().push(pkt.addr());
                    return RecvResult::Accepted;
                }
                ctx.schedule(0, Event::DelayedPacket { tag: 9, pkt });
                RecvResult::Accepted
            }
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                let Event::DelayedPacket { pkt, .. } = ev else { panic!() };
                ctx.try_send_response(PortId(0), pkt.into_response()).unwrap();
            }
        }
        let cfg = IdeDiskConfig { intx: Some((32, 0x2c00_0000)), ..IdeDiskConfig::default() };
        let mut sim = Simulation::new();
        let (disk, cs) = IdeDisk::new("disk", cfg);
        cs.borrow_mut().write(0x10, 4, BAR0 as u32);
        struct Kick;
        impl Component for Kick {
            fn name(&self) -> &str {
                "kick"
            }
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(0, Event::Timer { kind: 0, data: 0 });
            }
            fn handle(&mut self, ctx: &mut Ctx<'_>, _: Event) {
                for (off, val) in [(regs::SECTOR_COUNT, 1), (regs::COMMAND, CMD_READ_DMA)] {
                    let id = ctx.alloc_packet_id();
                    let pkt = Packet::request(id, Command::WriteReq, BAR0 + off, 4, ctx.self_id())
                        .with_payload(val.to_le_bytes().to_vec());
                    ctx.try_send_request(PortId(0), pkt).unwrap();
                }
            }
            fn recv_response(&mut self, _c: &mut Ctx<'_>, _p: PortId, _k: Packet) -> RecvResult {
                RecvResult::Accepted
            }
        }
        let k = sim.add(Box::new(Kick));
        let d = sim.add(Box::new(disk));
        let s = sim.add(Box::new(Sniffer { seen: seen.clone() }));
        sim.connect((k, PortId(0)), (d, IDE_PIO_PORT));
        sim.connect((d, IDE_DMA_PORT), (s, PortId(0)));
        sim.run_to_quiesce();
        assert_eq!(*seen.borrow(), vec![irq_message_addr(0x2c00_0000, 32)]);
    }
}
