//! `pcisim-devices` — PCI-Express device models and driver models.
//!
//! The devices the paper's evaluation needs:
//!
//! * [`ide`] — the IDE disk with gem5's constant access latency, 4 KB
//!   sectors DMA-written in cache-line TLPs, and the non-posted-write
//!   sector barrier (§VI);
//! * [`nic`] — the 8254x-pcie NIC with the 82574l capability chain and a
//!   register file for the Table II MMIO-latency experiment (§IV);
//! * [`cxl`] — a CXL.mem memory-expander endpoint: HDM decoder programmed
//!   through config space, banked DRAM-style backing store, M2S/S2M
//!   transaction class over the shared link layer;
//! * [`driver`] — e1000e/IDE probe models (module device table match,
//!   capability walk, legacy-interrupt fallback);
//! * [`intc`] — a minimal interrupt controller terminating INTx messages;
//! * [`traffic`] — deterministic open-loop traffic generation and binary
//!   trace replay feeding the NIC's receive path;
//! * [`virtio`] — a virtio-pci transport (modern capability layout) with
//!   virtio-blk and virtio-net device classes whose virtqueues live in
//!   host DRAM and are walked entirely through simulated TLPs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cxl;
pub mod driver;
pub mod ide;
pub mod intc;
pub mod nic;
pub mod traffic;
pub mod virtio;

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::cxl::{
        CxlExpander, CxlExpanderConfig, CXL_DEVICE_ID, CXL_DMA_PORT, CXL_PIO_PORT,
    };
    pub use crate::driver::{
        e1000e_probe, ide_probe, virtio_blk_probe, virtio_net_probe, InterruptMode, ProbeInfo,
    };
    pub use crate::ide::{IdeDisk, IdeDiskConfig, IDE_DMA_PORT, IDE_PIO_PORT};
    pub use crate::intc::{InterruptController, INTC_FABRIC_PORT};
    pub use crate::nic::{Nic, NicConfig, NIC_DEVICE_ID, NIC_DMA_PORT, NIC_PIO_PORT};
    pub use crate::traffic::{
        record_trace, ArrivalProcess, FrameEvent, SizeDist, TrafficConfig, TrafficFeed, TrafficGen,
        TrafficSpec,
    };
    pub use crate::virtio::{
        Virtio, VirtioClass, VirtioConfig, VIRTIO_BLK_DEVICE_ID, VIRTIO_DMA_PORT,
        VIRTIO_NET_DEVICE_ID, VIRTIO_PIO_PORT, VIRTIO_VENDOR_ID,
    };
}
