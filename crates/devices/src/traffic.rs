//! Deterministic open-loop traffic generation and binary trace replay.
//!
//! The heavy-traffic experiments need a medium-side source that can offer
//! millions of flows at controlled load without closing the loop through
//! the driver: frames arrive on a schedule of their own, and the system
//! either keeps up or drops. Everything here is integer-seeded and
//! deterministic — the same [`TrafficConfig`] always produces the same
//! frame sequence, bit for bit, so experiments fingerprint cleanly and a
//! recorded trace replays identically to live generation.
//!
//! Three pieces:
//!
//! * [`TrafficGen`] — a splitmix64-seeded streaming generator: per frame
//!   it draws a flow (uniform over [`TrafficConfig::flows`]), a size
//!   (fixed or bounded-Pareto heavy tail), and an inter-arrival gap
//!   (periodic, Poisson, or bursty);
//! * the **trace codec** ([`record_trace`] / [`TraceCursor`]) — a compact
//!   binary format (magic + header + LEB128 varints per frame) holding
//!   any frame sequence, generated or hand-built;
//! * [`TrafficFeed`] — the uniform pull interface the NIC consumes:
//!   either a live generator or a trace cursor, with O(frames) restore by
//!   replaying the emitted-count prefix.

use std::sync::Arc;

use pcisim_kernel::tick::Tick;

/// Magic bytes opening a binary traffic trace ("PTRC").
pub const TRACE_MAGIC: u32 = 0x4352_5450;
/// Current trace format version.
pub const TRACE_VERSION: u16 = 1;

/// The splitmix64 PRNG: tiny state, full 64-bit period, deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Splitmix64(u64);

impl Splitmix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next draw mapped to the open unit interval `(0, 1]` (53-bit
    /// mantissa; never exactly zero, so `ln` is always finite).
    pub fn next_unit(&mut self) -> f64 {
        let bits = self.next_u64() >> 11; // 53 significant bits
        (bits + 1) as f64 * (1.0 / 9_007_199_254_740_992.0) // 2^-53
    }
}

/// Frame size distribution. Parameters are integers so configs stay
/// `Eq`/hashable; heavy-tailed sampling happens at draw time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeDist {
    /// Every frame `0` bytes long.
    Fixed(u32),
    /// Bounded Pareto on `[min, max]` with shape `alpha_milli / 1000`
    /// (e.g. 1300 models the classic heavy-tailed internet mix: mostly
    /// minimum-size frames with a fat tail of full-size ones).
    Pareto {
        /// Smallest frame, bytes.
        min: u32,
        /// Largest frame, bytes.
        max: u32,
        /// Shape parameter in thousandths (1300 = alpha 1.3).
        alpha_milli: u32,
    },
}

impl SizeDist {
    fn sample(&self, rng: &mut Splitmix64) -> u32 {
        match *self {
            SizeDist::Fixed(bytes) => bytes,
            SizeDist::Pareto { min, max, alpha_milli } => {
                let (lo, hi) = (min.max(1) as f64, max.max(min.max(1)) as f64);
                let alpha = (alpha_milli.max(1) as f64) / 1000.0;
                // Bounded-Pareto inverse CDF:
                // x = L / (1 - u·(1 - (L/H)^a))^(1/a)
                let u = rng.next_unit();
                let ratio = (lo / hi).powf(alpha);
                let x = lo / (1.0 - u * (1.0 - ratio)).powf(1.0 / alpha);
                (x as u32).clamp(min, max)
            }
        }
    }
}

/// Inter-arrival process of the open-loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// A fixed gap between consecutive frames.
    Periodic(Tick),
    /// Poisson arrivals: exponential inter-arrival times with this mean.
    Poisson(Tick),
    /// On/off bursts: `burst` frames spaced `spacing` apart, then a `gap`
    /// before the next burst.
    Bursty {
        /// Frames per burst.
        burst: u32,
        /// Gap between frames inside a burst.
        spacing: Tick,
        /// Gap between the last frame of a burst and the first of the next.
        gap: Tick,
    },
}

impl ArrivalProcess {
    /// Mean inter-arrival gap, for offered-load accounting.
    pub fn mean_gap(&self) -> f64 {
        match *self {
            ArrivalProcess::Periodic(gap) | ArrivalProcess::Poisson(gap) => gap as f64,
            ArrivalProcess::Bursty { burst, spacing, gap } => {
                let b = burst.max(1) as f64;
                ((b - 1.0) * spacing as f64 + gap as f64) / b
            }
        }
    }
}

/// Full description of one deterministic traffic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficConfig {
    /// PRNG seed; same seed, same stream.
    pub seed: u64,
    /// Distinct flow identifiers frames draw from (uniformly). Millions
    /// are fine — no per-flow state exists anywhere.
    pub flows: u32,
    /// Total frames the stream delivers.
    pub frames: u32,
    /// Frame size distribution.
    pub size: SizeDist,
    /// Arrival process.
    pub arrival: ArrivalProcess,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            flows: 1024,
            frames: 1024,
            size: SizeDist::Fixed(1514),
            arrival: ArrivalProcess::Periodic(pcisim_kernel::tick::us(1)),
        }
    }
}

/// One generated frame: the gap since the previous frame, its flow, and
/// its size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameEvent {
    /// Inter-arrival gap from the previous frame (or from stream start).
    pub delta: Tick,
    /// Flow identifier (feeds the NIC's RSS hash).
    pub flow: u32,
    /// Frame length in bytes.
    pub bytes: u32,
}

/// Streaming frame generator over a [`TrafficConfig`].
#[derive(Debug, Clone)]
pub struct TrafficGen {
    config: TrafficConfig,
    rng: Splitmix64,
    emitted: u32,
    burst_pos: u32,
}

impl TrafficGen {
    /// Starts the stream from frame zero.
    pub fn new(config: TrafficConfig) -> Self {
        Self { config, rng: Splitmix64::new(config.seed), emitted: 0, burst_pos: 0 }
    }

    /// Frames produced so far.
    pub fn emitted(&self) -> u32 {
        self.emitted
    }

    /// Next frame, or `None` once `frames` have been produced.
    pub fn next_frame(&mut self) -> Option<FrameEvent> {
        if self.emitted >= self.config.frames {
            return None;
        }
        // Fixed draw order per frame: flow, size, gap.
        let flow = if self.config.flows <= 1 {
            0
        } else {
            (self.rng.next_u64() % u64::from(self.config.flows)) as u32
        };
        let bytes = self.config.size.sample(&mut self.rng);
        let delta = match self.config.arrival {
            ArrivalProcess::Periodic(gap) => gap,
            ArrivalProcess::Poisson(mean) => {
                let u = self.rng.next_unit();
                // -ln(u) <= 53·ln2 ≈ 36.7, so the product stays far from
                // the u64 boundary for any sane mean.
                (-u.ln() * mean as f64) as Tick
            }
            ArrivalProcess::Bursty { burst, spacing, gap } => {
                let pos = self.burst_pos;
                self.burst_pos = (self.burst_pos + 1) % burst.max(1);
                if pos == 0 {
                    gap
                } else {
                    spacing
                }
            }
        };
        self.emitted += 1;
        Some(FrameEvent { delta, flow, bytes })
    }
}

// --- binary trace codec ------------------------------------------------------

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8], offset: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*offset)?;
        *offset += 1;
        if shift >= 64 {
            return None; // over-long encoding
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Serializes a frame sequence into the binary trace format:
/// `magic:u32 version:u16 reserved:u16 frames:u32`, then per frame the
/// LEB128 varints `delta`, `flow`, `bytes`.
pub fn encode_trace(frames: &[FrameEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + frames.len() * 4);
    out.extend_from_slice(&TRACE_MAGIC.to_le_bytes());
    out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(frames.len() as u32).to_le_bytes());
    for f in frames {
        push_varint(&mut out, f.delta);
        push_varint(&mut out, u64::from(f.flow));
        push_varint(&mut out, u64::from(f.bytes));
    }
    out
}

/// Runs a generator to completion and records the whole stream as a
/// binary trace. Replaying the result is bit-identical to generating
/// live from the same config.
pub fn record_trace(config: &TrafficConfig) -> Vec<u8> {
    let mut gen = TrafficGen::new(*config);
    let mut frames = Vec::with_capacity(config.frames as usize);
    while let Some(f) = gen.next_frame() {
        frames.push(f);
    }
    encode_trace(&frames)
}

/// Streaming reader over an encoded trace.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    data: Arc<Vec<u8>>,
    offset: usize,
    total: u32,
    emitted: u32,
}

impl TraceCursor {
    /// Opens a trace, validating the header.
    pub fn new(data: Arc<Vec<u8>>) -> Result<Self, String> {
        if data.len() < 12 {
            return Err(format!("trace too short: {} bytes", data.len()));
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().expect("4 bytes"));
        if magic != TRACE_MAGIC {
            return Err(format!("bad trace magic {magic:#010x}"));
        }
        let version = u16::from_le_bytes(data[4..6].try_into().expect("2 bytes"));
        if version != TRACE_VERSION {
            return Err(format!("unsupported trace version {version}"));
        }
        let total = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        Ok(Self { data, offset: 12, total, emitted: 0 })
    }

    /// Frames the trace holds in total.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Frames read so far.
    pub fn emitted(&self) -> u32 {
        self.emitted
    }

    /// Next frame, or `None` at end of trace. A truncated body also ends
    /// the stream (the header count is the source of truth for honesty
    /// checks via [`TraceCursor::total`]).
    pub fn next_frame(&mut self) -> Option<FrameEvent> {
        if self.emitted >= self.total {
            return None;
        }
        let mut off = self.offset;
        let delta = read_varint(&self.data, &mut off)?;
        let flow = read_varint(&self.data, &mut off)?;
        let bytes = read_varint(&self.data, &mut off)?;
        self.offset = off;
        self.emitted += 1;
        Some(FrameEvent { delta, flow: flow as u32, bytes: bytes as u32 })
    }
}

/// Where a NIC's receive traffic comes from: a live generator or a
/// recorded trace. `Arc` keeps multi-megabyte traces shared across sweep
/// clones instead of copied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrafficSpec {
    /// Generate frames live from the config.
    Generate(TrafficConfig),
    /// Replay a recorded binary trace.
    Replay(Arc<Vec<u8>>),
}

impl TrafficSpec {
    /// Total frames the spec will deliver.
    pub fn frames(&self) -> u32 {
        match self {
            TrafficSpec::Generate(cfg) => cfg.frames,
            TrafficSpec::Replay(data) => {
                TraceCursor::new(data.clone()).map(|c| c.total()).unwrap_or(0)
            }
        }
    }
}

/// The uniform pull interface over either spec variant.
#[derive(Debug, Clone)]
pub enum TrafficFeed {
    /// Live generation.
    Gen(TrafficGen),
    /// Trace replay.
    Replay(TraceCursor),
}

impl TrafficFeed {
    /// Opens a feed at frame zero.
    ///
    /// # Panics
    ///
    /// Panics when a replay spec holds a malformed trace — a config
    /// error, not a runtime condition.
    pub fn new(spec: &TrafficSpec) -> Self {
        match spec {
            TrafficSpec::Generate(cfg) => TrafficFeed::Gen(TrafficGen::new(*cfg)),
            TrafficSpec::Replay(data) => {
                TrafficFeed::Replay(TraceCursor::new(data.clone()).expect("valid traffic trace"))
            }
        }
    }

    /// Re-opens a feed and deterministically skips the first `emitted`
    /// frames (checkpoint restore: the stream state is fully described
    /// by its prefix length).
    pub fn resume(spec: &TrafficSpec, emitted: u32) -> Self {
        let mut feed = Self::new(spec);
        for _ in 0..emitted {
            feed.next_frame();
        }
        feed
    }

    /// Frames produced so far.
    pub fn emitted(&self) -> u32 {
        match self {
            TrafficFeed::Gen(g) => g.emitted(),
            TrafficFeed::Replay(c) => c.emitted(),
        }
    }

    /// Next frame, or `None` at stream end.
    pub fn next_frame(&mut self) -> Option<FrameEvent> {
        match self {
            TrafficFeed::Gen(g) => g.next_frame(),
            TrafficFeed::Replay(c) => c.next_frame(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcisim_kernel::tick::{ns, us};

    fn heavy_config() -> TrafficConfig {
        TrafficConfig {
            seed: 0xfeed_beef,
            flows: 1_000_000,
            frames: 4096,
            size: SizeDist::Pareto { min: 64, max: 1514, alpha_milli: 1300 },
            arrival: ArrivalProcess::Poisson(ns(800)),
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = TrafficGen::new(heavy_config());
        let mut b = TrafficGen::new(heavy_config());
        loop {
            let (fa, fb) = (a.next_frame(), b.next_frame());
            assert_eq!(fa, fb);
            if fa.is_none() {
                break;
            }
        }
        assert_eq!(a.emitted(), 4096);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TrafficGen::new(heavy_config());
        let mut b = TrafficGen::new(TrafficConfig { seed: 2, ..heavy_config() });
        let fa: Vec<_> = std::iter::from_fn(|| a.next_frame()).take(64).collect();
        let fb: Vec<_> = std::iter::from_fn(|| b.next_frame()).take(64).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn pareto_sizes_stay_bounded_and_spread() {
        let mut gen = TrafficGen::new(heavy_config());
        let mut small = 0u32;
        let mut large = 0u32;
        while let Some(f) = gen.next_frame() {
            assert!((64..=1514).contains(&f.bytes), "size {} out of bounds", f.bytes);
            if f.bytes < 128 {
                small += 1;
            }
            if f.bytes > 1000 {
                large += 1;
            }
        }
        assert!(small > large, "heavy tail: most frames near the minimum");
        assert!(large > 0, "but the tail must reach large frames");
    }

    #[test]
    fn poisson_gaps_average_near_the_mean() {
        let mean = ns(800);
        let config = TrafficConfig {
            frames: 8192,
            arrival: ArrivalProcess::Poisson(mean),
            ..heavy_config()
        };
        let mut gen = TrafficGen::new(config);
        let mut sum = 0u64;
        while let Some(f) = gen.next_frame() {
            sum += f.delta;
        }
        let avg = sum as f64 / 8192.0;
        assert!((avg - mean as f64).abs() < mean as f64 * 0.1, "avg gap {avg} vs mean {mean}");
    }

    #[test]
    fn bursty_alternates_spacing_and_gap() {
        let config = TrafficConfig {
            frames: 8,
            arrival: ArrivalProcess::Bursty { burst: 4, spacing: ns(10), gap: us(5) },
            ..TrafficConfig::default()
        };
        let mut gen = TrafficGen::new(config);
        let deltas: Vec<Tick> = std::iter::from_fn(|| gen.next_frame()).map(|f| f.delta).collect();
        assert_eq!(deltas[0], us(5));
        assert_eq!(&deltas[1..4], &[ns(10), ns(10), ns(10)]);
        assert_eq!(deltas[4], us(5));
    }

    #[test]
    fn record_then_replay_is_bit_identical_to_live() {
        let config = heavy_config();
        let trace = record_trace(&config);
        let mut live = TrafficFeed::new(&TrafficSpec::Generate(config));
        let mut replay = TrafficFeed::new(&TrafficSpec::Replay(Arc::new(trace)));
        loop {
            let (a, b) = (live.next_frame(), replay.next_frame());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn recording_twice_yields_identical_bytes() {
        let config = heavy_config();
        assert_eq!(record_trace(&config), record_trace(&config));
    }

    #[test]
    fn resume_skips_exactly_the_prefix() {
        let spec = TrafficSpec::Generate(heavy_config());
        let mut full = TrafficFeed::new(&spec);
        for _ in 0..100 {
            full.next_frame();
        }
        let mut resumed = TrafficFeed::resume(&spec, 100);
        assert_eq!(resumed.emitted(), 100);
        loop {
            let (a, b) = (full.next_frame(), resumed.next_frame());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(TraceCursor::new(Arc::new(vec![1, 2, 3])).is_err(), "short");
        let mut bad_magic = encode_trace(&[]);
        bad_magic[0] ^= 0xff;
        assert!(TraceCursor::new(Arc::new(bad_magic)).is_err(), "magic");
        let mut bad_version = encode_trace(&[]);
        bad_version[4] = 0x7f;
        assert!(TraceCursor::new(Arc::new(bad_version)).is_err(), "version");
    }

    #[test]
    fn varints_round_trip_extremes() {
        let frames = [
            FrameEvent { delta: 0, flow: 0, bytes: 0 },
            FrameEvent { delta: u64::MAX, flow: u32::MAX, bytes: u32::MAX },
            FrameEvent { delta: 127, flow: 128, bytes: 16_383 },
        ];
        let mut cursor = TraceCursor::new(Arc::new(encode_trace(&frames))).expect("valid");
        for f in frames {
            assert_eq!(cursor.next_frame(), Some(f));
        }
        assert_eq!(cursor.next_frame(), None);
    }
}
