//! Device driver models: probe logic mirroring the Linux flow (paper §IV).
//!
//! A driver exposes a *module device table* of `(vendor, device)` pairs;
//! the kernel invokes the driver's probe for each enumerated function the
//! table matches. The probe then reads BARs and walks the capability chain.
//! Because the 8254x-pcie model disables PM, MSI and MSI-X, the e1000e
//! probe here ends up registering a **legacy interrupt**, exactly the
//! behaviour the paper engineers.

use std::fmt;

use pcisim_pci::caps::Generation;
use pcisim_pci::ecam::Bdf;
use pcisim_pci::enumeration::EnumerationReport;
use pcisim_pci::host::ConfigAccess;
use pcisim_pci::regs::{cap_id, common, pcie_cap};

/// How the probed device will signal interrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptMode {
    /// Legacy INTx with the given IRQ line.
    Legacy(u8),
    /// Message-signaled interrupts: the probe programmed and enabled the
    /// device's MSI capability (only possible on devices built with the
    /// `msi_capable` extension; the paper's devices bounce the enable).
    Msi,
    /// MSI-X: the probe set the function enable and read back the table
    /// size; the driver then programs per-vector address/data/mask through
    /// the device's BAR-mapped table (MMIO, not config space).
    Msix {
        /// Vectors the table holds (table size field + 1).
        vectors: u16,
    },
}

/// Result of a successful probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeInfo {
    /// Where the function lives.
    pub bdf: Bdf,
    /// Base of BAR0 (the register window).
    pub bar0: u64,
    /// Interrupt configuration the driver settled on.
    pub interrupt: InterruptMode,
    /// Negotiated link `(generation, width)` read from the PCI-Express
    /// capability, if the device has one.
    pub link: Option<(Generation, u8)>,
}

/// Why a probe failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeError {
    /// No enumerated function matches the module device table.
    NoMatchingDevice,
    /// The matched function has no programmed memory BAR0.
    MissingBar,
    /// The device lacks the PCI-Express capability the driver requires.
    NotPciExpress,
}

impl fmt::Display for ProbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeError::NoMatchingDevice => write!(f, "no device matches the module device table"),
            ProbeError::MissingBar => write!(f, "matched device has no memory BAR0"),
            ProbeError::NotPciExpress => write!(f, "device lacks a PCI-Express capability"),
        }
    }
}

impl std::error::Error for ProbeError {}

/// The e1000e module device table (the subset relevant here: the paper
/// sets the 8254x-pcie device ID to 0x10D3, a real e1000e ID).
pub const E1000E_DEVICE_TABLE: &[(u16, u16)] = &[
    (0x8086, 0x10d3), // 82574L — the ID the paper programs
    (0x8086, 0x10d4), // 82574LA
    (0x8086, 0x105e), // 82571EB
];

/// Device table for the IDE/AHCI disk model.
pub const IDE_DEVICE_TABLE: &[(u16, u16)] = &[(0x8086, 0x2922)];

/// Device table for the CXL.mem memory expander.
pub const CXL_DEVICE_TABLE: &[(u16, u16)] = &[(0x8086, 0x0cab)];

/// Device table for the virtio-blk endpoint (modern virtio-pci IDs:
/// 0x1040 + device type 2).
pub const VIRTIO_BLK_DEVICE_TABLE: &[(u16, u16)] = &[(0x1af4, 0x1042)];

/// Device table for the virtio-net endpoint (0x1040 + device type 1).
pub const VIRTIO_NET_DEVICE_TABLE: &[(u16, u16)] = &[(0x1af4, 0x1041)];

/// What the probing driver should do about MSI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsiPolicy {
    /// Try to enable MSI with this `(message address, message data)` pair;
    /// fall back to a legacy interrupt if the enable bit bounces (as it
    /// does on the paper's devices, whose MSI structure is disabled).
    Request {
        /// Message address the device will write to raise the interrupt.
        address: u64,
        /// Message data (the vector).
        data: u16,
    },
    /// Try to enable MSI-X (per-vector targets are programmed later via
    /// the BAR-mapped table); fall back to a legacy interrupt if the
    /// function enable bounces (hardwired-disabled structure).
    RequestMsix,
    /// Do not attempt MSI.
    LegacyOnly,
}

/// Generic probe: finds the first enumerated function matching `table`,
/// reads its BAR0, walks the capability chain and picks an interrupt mode.
pub fn probe<A: ConfigAccess>(
    access: &mut A,
    report: &EnumerationReport,
    table: &[(u16, u16)],
) -> Result<ProbeInfo, ProbeError> {
    probe_with_policy(access, report, table, MsiPolicy::LegacyOnly)
}

/// Like [`probe`], with explicit control over MSI.
pub fn probe_with_policy<A: ConfigAccess>(
    access: &mut A,
    report: &EnumerationReport,
    table: &[(u16, u16)],
    msi: MsiPolicy,
) -> Result<ProbeInfo, ProbeError> {
    let dev = report
        .endpoints()
        .find(|d| table.contains(&(d.vendor_id, d.device_id)))
        .ok_or(ProbeError::NoMatchingDevice)?;
    let bar0 = dev
        .bars
        .iter()
        .find(|b| b.index == 0 && !b.is_io)
        .map(|b| b.base)
        .ok_or(ProbeError::MissingBar)?;

    // Walk the capability chain in hardware (not just the report) the way
    // a driver does.
    let mut pcie_offset = None;
    let mut msi_offset = None;
    let mut msix_offset = None;
    let mut ptr = access.config_read(dev.bdf, common::CAP_PTR, 1) as u16 & 0xfc;
    let mut hops = 0;
    while ptr >= 0x40 && hops < 48 {
        let id = access.config_read(dev.bdf, ptr, 1) as u8;
        match id {
            cap_id::PCI_EXPRESS => pcie_offset = Some(ptr),
            cap_id::MSI => msi_offset = Some(ptr),
            cap_id::MSI_X => msix_offset = Some(ptr),
            _ => {}
        }
        ptr = access.config_read(dev.bdf, ptr + 1, 1) as u16 & 0xfc;
        hops += 1;
    }
    let pcie_offset = pcie_offset.ok_or(ProbeError::NotPciExpress)?;

    // Under `MsiPolicy::Request`, program the message address/data and
    // try the enable bit; on the paper's devices the disabled structure
    // bounces it and the driver registers a legacy handler instead (§IV).
    let legacy = |access: &mut A| {
        let irq = access.config_read(dev.bdf, common::INTERRUPT_LINE, 1) as u8;
        InterruptMode::Legacy(irq)
    };
    let interrupt = match (msi, msi_offset, msix_offset) {
        (MsiPolicy::Request { address, data }, Some(off), _) => {
            use pcisim_pci::caps::msi;
            access.config_write(dev.bdf, off + msi::ADDR_LO, 4, address as u32);
            access.config_write(dev.bdf, off + msi::ADDR_HI, 4, (address >> 32) as u32);
            access.config_write(dev.bdf, off + msi::DATA, 2, u32::from(data));
            access.config_write(dev.bdf, off + msi::CONTROL, 2, u32::from(msi::CONTROL_ENABLE));
            if access.config_read(dev.bdf, off + msi::CONTROL, 2) as u16 & msi::CONTROL_ENABLE != 0
            {
                InterruptMode::Msi
            } else {
                legacy(access)
            }
        }
        (MsiPolicy::RequestMsix, _, Some(off)) => {
            use pcisim_pci::caps::msix;
            access.config_write(dev.bdf, off + msix::CONTROL, 2, u32::from(msix::CONTROL_ENABLE));
            let ctrl = access.config_read(dev.bdf, off + msix::CONTROL, 2) as u16;
            if ctrl & msix::CONTROL_ENABLE != 0 {
                InterruptMode::Msix { vectors: (ctrl & msix::CONTROL_TABLE_SIZE) + 1 }
            } else {
                // Hardwired-disabled structure (the paper's configuration):
                // the enable bounces and the driver registers INTx.
                legacy(access)
            }
        }
        _ => legacy(access),
    };

    // Negotiated link parameters from the link status register.
    let ls = access.config_read(dev.bdf, pcie_offset + pcie_cap::LINK_STATUS, 2) as u16;
    let generation = match ls & 0xf {
        1 => Some(Generation::Gen1),
        2 => Some(Generation::Gen2),
        3 => Some(Generation::Gen3),
        _ => None,
    };
    let width = ((ls >> 4) & 0x3f) as u8;
    Ok(ProbeInfo { bdf: dev.bdf, bar0, interrupt, link: generation.map(|g| (g, width)) })
}

/// The e1000e probe (paper §IV): matches on device ID 0x10D3 and, because
/// MSI is disabled, registers a legacy interrupt handler.
pub fn e1000e_probe<A: ConfigAccess>(
    access: &mut A,
    report: &EnumerationReport,
) -> Result<ProbeInfo, ProbeError> {
    probe(access, report, E1000E_DEVICE_TABLE)
}

/// The IDE disk probe.
pub fn ide_probe<A: ConfigAccess>(
    access: &mut A,
    report: &EnumerationReport,
) -> Result<ProbeInfo, ProbeError> {
    probe(access, report, IDE_DEVICE_TABLE)
}

/// The virtio-blk probe: modern virtio-pci devices advertise MSI-X, so
/// the driver requests it and only falls back to INTx if the enable
/// bounces.
pub fn virtio_blk_probe<A: ConfigAccess>(
    access: &mut A,
    report: &EnumerationReport,
) -> Result<ProbeInfo, ProbeError> {
    probe_with_policy(access, report, VIRTIO_BLK_DEVICE_TABLE, MsiPolicy::RequestMsix)
}

/// The virtio-net probe (same MSI-X-first policy as virtio-blk).
pub fn virtio_net_probe<A: ConfigAccess>(
    access: &mut A,
    report: &EnumerationReport,
) -> Result<ProbeInfo, ProbeError> {
    probe_with_policy(access, report, VIRTIO_NET_DEVICE_TABLE, MsiPolicy::RequestMsix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ide::ide_config_space;
    use crate::nic::nic_config_space;
    use pcisim_pci::config::shared;
    use pcisim_pci::enumeration::{enumerate, EnumerationConfig};
    use pcisim_pci::host::shared_registry;

    fn enumerated_system() -> (pcisim_pci::host::SharedRegistry, EnumerationReport) {
        let reg = shared_registry();
        reg.borrow_mut().register(Bdf::new(0, 1, 0), shared(nic_config_space()));
        reg.borrow_mut().register(Bdf::new(0, 2, 0), shared(ide_config_space()));
        let report = enumerate(&mut reg.clone(), EnumerationConfig::vexpress_gem5_v1()).unwrap();
        (reg, report)
    }

    #[test]
    fn e1000e_matches_0x10d3_and_falls_back_to_legacy_irq() {
        let (reg, report) = enumerated_system();
        let info = e1000e_probe(&mut reg.clone(), &report).unwrap();
        assert_eq!(info.bdf, Bdf::new(0, 1, 0));
        assert!(
            matches!(info.interrupt, InterruptMode::Legacy(irq) if irq >= 32),
            "MSI is disabled so the driver must register a legacy handler, got {:?}",
            info.interrupt
        );
        assert!(info.bar0 >= 0x4000_0000);
        assert_eq!(info.link, Some((Generation::Gen2, 1)));
    }

    #[test]
    fn ide_probe_finds_the_disk() {
        let (reg, report) = enumerated_system();
        let info = ide_probe(&mut reg.clone(), &report).unwrap();
        assert_eq!(info.bdf, Bdf::new(0, 2, 0));
        assert!(matches!(info.interrupt, InterruptMode::Legacy(_)));
    }

    #[test]
    fn probe_fails_without_matching_device() {
        let reg = shared_registry();
        reg.borrow_mut().register(Bdf::new(0, 2, 0), shared(ide_config_space()));
        let report = enumerate(&mut reg.clone(), EnumerationConfig::vexpress_gem5_v1()).unwrap();
        let err = e1000e_probe(&mut reg.clone(), &report).unwrap_err();
        assert_eq!(err, ProbeError::NoMatchingDevice);
    }

    #[test]
    fn probe_fails_without_pcie_capability() {
        // A plain PCI device with the right ID but no capabilities.
        let reg = shared_registry();
        let cs = pcisim_pci::header::Type0Header::new(0x8086, 0x10d3)
            .bar(0, pcisim_pci::header::Bar::Memory32 { size: 0x1000, prefetchable: false })
            .build();
        reg.borrow_mut().register(Bdf::new(0, 1, 0), shared(cs));
        let report = enumerate(&mut reg.clone(), EnumerationConfig::vexpress_gem5_v1()).unwrap();
        let err = e1000e_probe(&mut reg.clone(), &report).unwrap_err();
        assert_eq!(err, ProbeError::NotPciExpress);
    }

    #[test]
    fn probe_fails_when_bar0_is_missing() {
        // Right ID, PCIe cap present, but no BAR0.
        let reg = shared_registry();
        let mut cs =
            pcisim_pci::header::Type0Header::new(0x8086, 0x10d3).capabilities_at(0x40).build();
        pcisim_pci::caps::CapChain::new()
            .add(
                0x40,
                pcisim_pci::caps::Capability::PciExpress {
                    port_type: pcisim_pci::caps::PortType::Endpoint,
                    generation: Generation::Gen2,
                    max_width: 1,
                },
            )
            .write_into(&mut cs);
        reg.borrow_mut().register(Bdf::new(0, 1, 0), shared(cs));
        let report = enumerate(&mut reg.clone(), EnumerationConfig::vexpress_gem5_v1()).unwrap();
        let err = e1000e_probe(&mut reg.clone(), &report).unwrap_err();
        assert_eq!(err, ProbeError::MissingBar);
    }

    #[test]
    fn device_table_contains_the_papers_id() {
        assert!(E1000E_DEVICE_TABLE.contains(&(0x8086, 0x10d3)));
    }

    #[test]
    fn msi_request_bounces_on_a_disabled_structure() {
        let (reg, report) = enumerated_system();
        let info = probe_with_policy(
            &mut reg.clone(),
            &report,
            E1000E_DEVICE_TABLE,
            MsiPolicy::Request { address: 0x2c00_0100, data: 64 },
        )
        .unwrap();
        assert!(
            matches!(info.interrupt, InterruptMode::Legacy(_)),
            "the paper's MsiDisabled capability must bounce the enable bit"
        );
    }

    #[test]
    fn msi_request_succeeds_on_a_capable_device() {
        let reg = shared_registry();
        reg.borrow_mut()
            .register(Bdf::new(0, 1, 0), shared(crate::nic::nic_config_space_with(true)));
        let report = enumerate(&mut reg.clone(), EnumerationConfig::vexpress_gem5_v1()).unwrap();
        let info = probe_with_policy(
            &mut reg.clone(),
            &report,
            E1000E_DEVICE_TABLE,
            MsiPolicy::Request { address: 0x2c00_0100, data: 64 },
        )
        .unwrap();
        assert_eq!(info.interrupt, InterruptMode::Msi);
        // The device now sees the programmed target.
        let cs = reg.borrow().lookup(info.bdf).unwrap();
        assert_eq!(pcisim_pci::caps::msi_target(&cs.borrow()), Some((0x2c00_0100, 64)));
    }

    #[test]
    fn msix_request_bounces_on_a_disabled_structure() {
        let (reg, report) = enumerated_system();
        let info = probe_with_policy(
            &mut reg.clone(),
            &report,
            E1000E_DEVICE_TABLE,
            MsiPolicy::RequestMsix,
        )
        .unwrap();
        assert!(
            matches!(info.interrupt, InterruptMode::Legacy(_)),
            "the paper's MsixDisabled capability must bounce the enable bit"
        );
    }

    #[test]
    fn msix_request_succeeds_on_a_capable_device() {
        let reg = shared_registry();
        let cfg = crate::nic::NicConfig {
            queues: 4,
            msix_capable: true,
            ..crate::nic::NicConfig::default()
        };
        reg.borrow_mut()
            .register(Bdf::new(0, 1, 0), shared(crate::nic::nic_config_space_for(&cfg)));
        let report = enumerate(&mut reg.clone(), EnumerationConfig::vexpress_gem5_v1()).unwrap();
        let info = probe_with_policy(
            &mut reg.clone(),
            &report,
            E1000E_DEVICE_TABLE,
            MsiPolicy::RequestMsix,
        )
        .unwrap();
        assert_eq!(
            info.interrupt,
            InterruptMode::Msix { vectors: 8 },
            "4 queue pairs expose 8 vectors"
        );
        // The function enable round-tripped through config space.
        let cs = reg.borrow().lookup(info.bdf).unwrap();
        assert!(pcisim_pci::caps::msix_enabled(&cs.borrow()));
    }
}
