//! The CXL.mem memory-expander endpoint (ROADMAP: "future system
//! exploration for real").
//!
//! CXL runs over the PCIe PHY, so the expander reuses the whole link +
//! ACK-NAK machinery unchanged; what is new is the **transaction class**:
//! host loads and stores arrive as [`Command::CxlMemRd`] / [`Command::CxlMemWr`]
//! (M2S Req / RwD) and are answered with DRS / NDR completions, never with
//! Memory Read/Write TLPs. The device model follows `kernel::dram` — a
//! fixed access latency plus a bandwidth-serialization term — extended with
//! a **per-bank busy model**: consecutive 64 B blocks stripe across
//! `banks` banks, and accesses to a busy bank queue behind it, so strided
//! and pointer-chase streams see realistic bank conflicts.
//!
//! The expander's **HDM decoder** (host-managed device memory window) is
//! programmed through configuration space, like a BAR: enumeration (or the
//! topology planner) writes the window base/size into the vendor-specific
//! registers at [`hdm::BASE_LO`]; the device consults those registers on
//! every access and completer-aborts anything outside the programmed
//! window. Backing storage is a real (sparse, 64 B-block) byte store, so
//! read-your-write ordering and pointer chases work with actual data.
//!
//! Ports: [`CXL_PIO_PORT`] (slave: HDM accesses + the BAR0 control
//! registers) and [`CXL_DMA_PORT`] (master; present so the expander wires
//! into the standard endpoint link pairing, never used — a .mem expander
//! masters nothing).

use std::collections::{BTreeMap, VecDeque};

use pcisim_kernel::addr::AddrRange;
use pcisim_kernel::component::{Component, Event, PortId, RecvResult};
use pcisim_kernel::packet::{decode_packet_queue, encode_packet_queue, CompletionStatus, Packet};
use pcisim_kernel::sim::Ctx;
use pcisim_kernel::snapshot::{SnapshotError, StateReader, StateWriter};
use pcisim_kernel::stats::{Counter, StatsBuilder};
use pcisim_kernel::tick::{ns, transfer_time, Tick};
use pcisim_kernel::trace::{TraceCategory, TraceKind};
use pcisim_pci::caps::{write_aer_capability, CapChain, Capability, Generation, PortType};
use pcisim_pci::config::{shared, ConfigSpace, SharedConfigSpace};
use pcisim_pci::header::{bar_base, Bar, Type0Header};

/// Slave port: HDM loads/stores and BAR0 control-register accesses.
pub const CXL_PIO_PORT: PortId = PortId(0);
/// Master port (unused; a .mem expander initiates nothing).
pub const CXL_DMA_PORT: PortId = PortId(1);

/// PCI device id of the expander (vendor 0x8086).
pub const CXL_DEVICE_ID: u16 = 0x0cab;

/// HDM block (and bank-interleave) granule in bytes.
pub const CXL_BLOCK: u64 = 64;

/// Vendor-specific HDM decoder registers in extended config space.
pub mod hdm {
    /// HDM decoder window base, low 32 bits (RW for the planner).
    pub const BASE_LO: u16 = 0x180;
    /// HDM decoder window base, high 32 bits.
    pub const BASE_HI: u16 = 0x184;
    /// HDM decoder window size, low 32 bits.
    pub const SIZE_LO: u16 = 0x188;
    /// HDM decoder window size, high 32 bits.
    pub const SIZE_HI: u16 = 0x18c;
}

/// BAR0-relative control registers.
pub mod regs {
    /// Completed HDM reads (u32, RO).
    pub const READS: u64 = 0x00;
    /// Completed HDM writes (u32, RO).
    pub const WRITES: u64 = 0x04;
    /// HDM decoder base, low half (u32, RO mirror of config space).
    pub const HDM_BASE_LO: u64 = 0x08;
    /// HDM decoder base, high half (u32, RO mirror).
    pub const HDM_BASE_HI: u64 = 0x0c;
}

/// Tunables of the expander model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CxlExpanderConfig {
    /// Device-side access latency charged on every HDM access, on top of
    /// bank serialization (media + controller; the CXLRAMSim-style span
    /// that makes CXL-attached loads slower than local DRAM).
    pub access_latency: Tick,
    /// Number of banks; consecutive 64 B blocks stripe across them.
    pub banks: usize,
    /// Per-bank sustained bandwidth in bytes per second (0 = infinite).
    pub bytes_per_sec: u64,
    /// Simultaneously in-flight accesses before the port refuses.
    pub max_outstanding: usize,
    /// BAR0 control-register access latency.
    pub pio_latency: Tick,
}

impl Default for CxlExpanderConfig {
    fn default() -> Self {
        Self {
            access_latency: ns(80),
            banks: 8,
            bytes_per_sec: 12_800_000_000,
            max_outstanding: 64,
            pio_latency: ns(50),
        }
    }
}

/// Builds the expander's configuration space: a CXL memory-device class
/// endpoint with one 4 KB control BAR, the PCI-Express capability chain
/// (so the probe path accepts it), AER, and the vendor-specific HDM
/// decoder registers zeroed (window disabled until programmed).
pub fn cxl_config_space() -> ConfigSpace {
    let mut cs = Type0Header::new(0x8086, CXL_DEVICE_ID)
        .class_code(0x05, 0x02, 0x10)
        .bar(0, Bar::Memory32 { size: 0x1000, prefetchable: false })
        .interrupt_pin(1)
        .capabilities_at(0xc8)
        .build();
    CapChain::new()
        .add(0xc8, Capability::PowerManagement)
        .add(0xd0, Capability::MsiDisabled)
        .add(
            0xe0,
            Capability::PciExpress {
                port_type: PortType::Endpoint,
                generation: Generation::Gen3,
                max_width: 8,
            },
        )
        .write_into(&mut cs);
    write_aer_capability(&mut cs, 0x100, 0);
    cs
}

/// Programs the HDM decoder window into the expander's config space.
/// Pass an empty range to disable the decoder.
pub fn program_hdm(cs: &mut ConfigSpace, window: AddrRange) {
    if window.is_empty() {
        cs.init_u32(hdm::BASE_LO, 0);
        cs.init_u32(hdm::BASE_HI, 0);
        cs.init_u32(hdm::SIZE_LO, 0);
        cs.init_u32(hdm::SIZE_HI, 0);
        return;
    }
    assert_eq!(window.start() % CXL_BLOCK, 0, "HDM base must be block aligned");
    assert_eq!(window.size() % CXL_BLOCK, 0, "HDM size must be whole blocks");
    cs.init_u32(hdm::BASE_LO, window.start() as u32);
    cs.init_u32(hdm::BASE_HI, (window.start() >> 32) as u32);
    cs.init_u32(hdm::SIZE_LO, window.size() as u32);
    cs.init_u32(hdm::SIZE_HI, (window.size() >> 32) as u32);
}

/// Reads the HDM decoder window programmed into config space (empty when
/// the decoder is disabled).
pub fn hdm_window(cs: &ConfigSpace) -> AddrRange {
    let base = u64::from(cs.read(hdm::BASE_LO, 4)) | (u64::from(cs.read(hdm::BASE_HI, 4)) << 32);
    let size = u64::from(cs.read(hdm::SIZE_LO, 4)) | (u64::from(cs.read(hdm::SIZE_HI, 4)) << 32);
    if size == 0 {
        AddrRange::empty()
    } else {
        AddrRange::with_size(base, size)
    }
}

const TAG_DONE: u32 = 0;
const TAG_ABORT: u32 = 1;

#[derive(Debug, Default)]
struct ExpanderStats {
    reads: Counter,
    writes: Counter,
    bytes: Counter,
    /// Accesses outside the programmed HDM window, answered with a
    /// Completer Abort.
    hdm_rejects: Counter,
    /// Accesses that queued behind a busy bank.
    bank_conflicts: Counter,
    ingress_refusals: Counter,
}

/// The CXL.mem memory-expander component.
pub struct CxlExpander {
    name: String,
    config: CxlExpanderConfig,
    config_space: SharedConfigSpace,
    /// Per-bank busy horizon (bank = block index modulo `banks`).
    bank_busy: Vec<Tick>,
    /// Sparse backing store: 64 B blocks keyed by block-aligned address.
    /// BTreeMap so checkpoints serialize in address order.
    store: BTreeMap<u64, Vec<u8>>,
    outstanding: usize,
    blocked_resp: VecDeque<Packet>,
    waiting_retry: bool,
    owe_retry: bool,
    stats: ExpanderStats,
}

impl CxlExpander {
    /// Creates an expander; returns the component and the shared
    /// configuration space to register with the PCI host.
    pub fn new(name: impl Into<String>, config: CxlExpanderConfig) -> (Self, SharedConfigSpace) {
        assert!(config.banks > 0, "need at least one bank");
        assert!(config.max_outstanding > 0, "need at least one outstanding access");
        let cs = shared(cxl_config_space());
        (
            Self {
                name: name.into(),
                bank_busy: vec![0; config.banks],
                config,
                config_space: cs.clone(),
                store: BTreeMap::new(),
                outstanding: 0,
                blocked_resp: VecDeque::new(),
                waiting_retry: false,
                owe_retry: false,
                stats: ExpanderStats::default(),
            },
            cs,
        )
    }

    /// Accepted for uniformity with the other endpoints (the planner
    /// patches every device's INTx target); a .mem expander never
    /// interrupts, so the target is simply ignored.
    pub fn set_intx(&mut self, _intx: Option<(u8, u64)>) {}

    /// The HDM decoder window currently programmed into config space.
    pub fn hdm(&self) -> AddrRange {
        hdm_window(&self.config_space.borrow())
    }

    fn bar0(&self) -> u64 {
        bar_base(&self.config_space.borrow(), 0)
    }

    /// Copies `data` into the backing store at `addr`.
    fn store_write(&mut self, addr: u64, data: &[u8]) {
        let mut off = 0usize;
        while off < data.len() {
            let a = addr + off as u64;
            let block = a & !(CXL_BLOCK - 1);
            let within = (a - block) as usize;
            let n = (CXL_BLOCK as usize - within).min(data.len() - off);
            let buf = self.store.entry(block).or_insert_with(|| vec![0; CXL_BLOCK as usize]);
            buf[within..within + n].copy_from_slice(&data[off..off + n]);
            off += n;
        }
    }

    /// Copies `len` bytes at `addr` out of the backing store into `out`
    /// (unwritten bytes read as zero).
    fn store_read(&self, addr: u64, out: &mut [u8]) {
        let mut off = 0usize;
        while off < out.len() {
            let a = addr + off as u64;
            let block = a & !(CXL_BLOCK - 1);
            let within = (a - block) as usize;
            let n = (CXL_BLOCK as usize - within).min(out.len() - off);
            match self.store.get(&block) {
                Some(buf) => out[off..off + n].copy_from_slice(&buf[within..within + n]),
                None => out[off..off + n].fill(0),
            }
            off += n;
        }
    }

    fn reg_read(&self, offset: u64) -> u32 {
        let hdm = self.hdm();
        match offset {
            regs::READS => self.stats.reads.value() as u32,
            regs::WRITES => self.stats.writes.value() as u32,
            regs::HDM_BASE_LO => hdm.start() as u32,
            regs::HDM_BASE_HI => (hdm.start() >> 32) as u32,
            _ => 0,
        }
    }

    /// Admits an HDM load/store: bank-serialized timing, then completion.
    fn admit_mem(&mut self, ctx: &mut Ctx<'_>, mut pkt: Packet) {
        let hdm = self.hdm();
        if pkt.cmd().is_read() {
            self.stats.reads.inc();
        } else {
            self.stats.writes.inc();
        }
        self.stats.bytes.add(u64::from(pkt.size()));
        if ctx.tracing(TraceCategory::Fabric) {
            ctx.emit(
                TraceCategory::Fabric,
                TraceKind::DramAccess,
                Some(pkt.id()),
                Some(pkt.cmd()),
                u64::from(pkt.size()),
            );
        }
        // Stores become visible at admission; loads sample at completion.
        // Admission order equals issue order, so read-your-write holds per
        // address even with many accesses in flight.
        if pkt.cmd().is_write() {
            if let Some(buf) = pkt.take_payload() {
                self.store_write(pkt.addr(), &buf);
                ctx.recycle_payload(buf);
            }
        }
        let bank = (((pkt.addr() - hdm.start()) / CXL_BLOCK) % self.config.banks as u64) as usize;
        let xfer = if self.config.bytes_per_sec == 0 {
            0
        } else {
            transfer_time(u64::from(pkt.size()), self.config.bytes_per_sec)
        };
        let start = ctx.now().max(self.bank_busy[bank]);
        if start > ctx.now() {
            self.stats.bank_conflicts.inc();
        }
        let finish = start + xfer;
        self.bank_busy[bank] = finish;
        let done_at = finish + self.config.access_latency;
        ctx.schedule(done_at - ctx.now(), Event::DelayedPacket { tag: TAG_DONE, pkt });
    }

    /// Admits a BAR0 control-register access.
    fn admit_pio(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        ctx.schedule(self.config.pio_latency, Event::DelayedPacket { tag: TAG_DONE, pkt });
    }

    fn complete(&mut self, ctx: &mut Ctx<'_>, mut pkt: Packet) {
        if pkt.is_posted() {
            self.outstanding -= 1;
            self.grant_owed_retry(ctx);
            return;
        }
        let resp = if pkt.cmd().is_read() {
            let size = pkt.size() as usize;
            let mut data = ctx.alloc_payload(size);
            if self.hdm().contains(pkt.addr()) {
                self.store_read(pkt.addr(), &mut data);
            } else {
                // BAR0 register read.
                let v = self.reg_read(pkt.addr() - self.bar0()).to_le_bytes();
                for (i, b) in data.iter_mut().enumerate() {
                    *b = *v.get(i).unwrap_or(&0);
                }
            }
            pkt.into_read_response(data)
        } else {
            if let Some(buf) = pkt.take_payload() {
                ctx.recycle_payload(buf);
            }
            pkt.into_response()
        };
        self.blocked_resp.push_back(resp);
        self.flush(ctx);
    }

    fn grant_owed_retry(&mut self, ctx: &mut Ctx<'_>) {
        if self.owe_retry && self.outstanding < self.config.max_outstanding {
            self.owe_retry = false;
            ctx.send_retry(CXL_PIO_PORT);
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        while !self.waiting_retry {
            let Some(pkt) = self.blocked_resp.pop_front() else { return };
            match ctx.try_send_response(CXL_PIO_PORT, pkt) {
                Ok(()) => {
                    self.outstanding -= 1;
                    self.grant_owed_retry(ctx);
                }
                Err(back) => {
                    self.blocked_resp.push_front(back);
                    self.waiting_retry = true;
                }
            }
        }
    }
}

impl Component for CxlExpander {
    fn name(&self) -> &str {
        &self.name
    }

    fn recv_request(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) -> RecvResult {
        assert_eq!(port, CXL_PIO_PORT, "{}: request on unexpected port {port}", self.name);
        if self.outstanding >= self.config.max_outstanding {
            self.stats.ingress_refusals.inc();
            self.owe_retry = true;
            return RecvResult::Refused(pkt);
        }
        self.outstanding += 1;
        let hdm = self.hdm();
        let bar0 = self.bar0();
        if hdm.contains(pkt.addr()) {
            self.admit_mem(ctx, pkt);
        } else if bar0 != 0 && AddrRange::with_size(bar0, 0x1000).contains(pkt.addr()) {
            if pkt.cmd().is_write() {
                if let Some(buf) = pkt.take_payload() {
                    ctx.recycle_payload(buf);
                }
            }
            self.admit_pio(ctx, pkt);
        } else {
            // Outside both the HDM window and the control BAR: the device
            // claims the transaction (the fabric routed it here) but cannot
            // service it — Completer Abort, never a hang.
            self.stats.hdm_rejects.inc();
            if pkt.is_posted() {
                self.outstanding -= 1;
                ctx.recycle_packet(pkt);
                return RecvResult::Accepted;
            }
            if let Some(buf) = pkt.take_payload() {
                ctx.recycle_payload(buf);
            }
            let resp = pkt.into_error_response(CompletionStatus::CompleterAbort);
            // Never respond synchronously from recv_request: bounce the
            // abort through a zero-delay event like every other completion.
            ctx.schedule(0, Event::DelayedPacket { tag: TAG_ABORT, pkt: resp });
        }
        RecvResult::Accepted
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::DelayedPacket { tag: TAG_DONE, pkt } => self.complete(ctx, pkt),
            Event::DelayedPacket { tag: TAG_ABORT, pkt } => {
                self.blocked_resp.push_back(pkt);
                self.flush(ctx);
            }
            _ => panic!("{}: unexpected event", self.name),
        }
    }

    fn retry_granted(&mut self, ctx: &mut Ctx<'_>, _port: PortId) {
        self.waiting_retry = false;
        self.flush(ctx);
    }

    fn report_stats(&self, out: &mut StatsBuilder) {
        out.counter("reads", &self.stats.reads);
        out.counter("writes", &self.stats.writes);
        out.counter("bytes", &self.stats.bytes);
        out.counter("hdm_rejects", &self.stats.hdm_rejects);
        out.counter("bank_conflicts", &self.stats.bank_conflicts);
        out.counter("ingress_refusals", &self.stats.ingress_refusals);
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.bank_busy.len());
        for &b in &self.bank_busy {
            w.u64(b);
        }
        w.usize(self.store.len());
        for (&block, data) in &self.store {
            w.u64(block);
            w.bytes(data);
        }
        w.usize(self.outstanding);
        encode_packet_queue(w, &self.blocked_resp);
        w.bool(self.waiting_retry);
        w.bool(self.owe_retry);
        self.stats.reads.encode(w);
        self.stats.writes.encode(w);
        self.stats.bytes.encode(w);
        self.stats.hdm_rejects.encode(w);
        self.stats.bank_conflicts.encode(w);
        self.stats.ingress_refusals.encode(w);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let n = r.usize()?;
        if n != self.bank_busy.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{}: checkpoint has {n} banks, component has {}",
                self.name,
                self.bank_busy.len()
            )));
        }
        for b in &mut self.bank_busy {
            *b = r.u64()?;
        }
        let blocks = r.usize()?;
        let mut store = BTreeMap::new();
        for _ in 0..blocks {
            let block = r.u64()?;
            let data = r.bytes()?.to_vec();
            if data.len() != CXL_BLOCK as usize {
                return Err(SnapshotError::Corrupt(format!(
                    "{}: HDM block {block:#x} has {} bytes",
                    self.name,
                    data.len()
                )));
            }
            store.insert(block, data);
        }
        self.store = store;
        self.outstanding = r.usize()?;
        self.blocked_resp = decode_packet_queue(r)?;
        self.waiting_retry = r.bool()?;
        self.owe_retry = r.bool()?;
        self.stats.reads = Counter::decode(r)?;
        self.stats.writes = Counter::decode(r)?;
        self.stats.bytes = Counter::decode(r)?;
        self.stats.hdm_rejects = Counter::decode(r)?;
        self.stats.bank_conflicts = Counter::decode(r)?;
        self.stats.ingress_refusals = Counter::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcisim_kernel::packet::{Command, PacketId};
    use pcisim_kernel::sim::{RunOutcome, Simulation};
    use pcisim_kernel::snapshot::{StateReader, StateWriter};
    use pcisim_kernel::testutil::{Requester, REQUESTER_PORT};
    use pcisim_kernel::tick::us;

    const HDM_BASE: u64 = 0x1_0000_0000;

    fn expander(config: CxlExpanderConfig) -> CxlExpander {
        let (dev, cs) = CxlExpander::new("cxl0", config);
        program_hdm(&mut cs.borrow_mut(), AddrRange::with_size(HDM_BASE, 0x1000_0000));
        dev
    }

    fn run(
        config: CxlExpanderConfig,
        script: Vec<(Command, u64, u32)>,
    ) -> (Vec<Tick>, pcisim_kernel::stats::StatsSnapshot) {
        let mut sim = Simulation::new();
        let (req, done) = Requester::new("host", script);
        let r = sim.add(Box::new(req));
        let d = sim.add(Box::new(expander(config)));
        sim.connect((r, REQUESTER_PORT), (d, CXL_PIO_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        let times = done.borrow().iter().map(|&(_, t)| t).collect();
        (times, sim.stats())
    }

    #[test]
    fn single_load_takes_access_latency_plus_transfer() {
        // 64 B at 64 MB/s = 1 us transfer, + 80 ns device latency.
        let cfg = CxlExpanderConfig { bytes_per_sec: 64_000_000, ..Default::default() };
        let (t, stats) = run(cfg, vec![(Command::CxlMemRd, HDM_BASE, 64)]);
        assert_eq!(t, vec![us(1) + ns(80)]);
        assert_eq!(stats.get("cxl0.reads"), Some(1.0));
        assert_eq!(stats.get("cxl0.bytes"), Some(64.0));
    }

    #[test]
    fn same_bank_serializes_different_banks_overlap() {
        // Blocks 0 and 8 share bank 0 (8 banks); blocks 0 and 1 do not.
        let cfg = CxlExpanderConfig { bytes_per_sec: 64_000_000, ..Default::default() };
        let (t, stats) = run(
            cfg.clone(),
            vec![
                (Command::CxlMemRd, HDM_BASE, 64),
                (Command::CxlMemRd, HDM_BASE + 8 * CXL_BLOCK, 64),
            ],
        );
        assert_eq!(t[1] - t[0], us(1), "same bank: second transfer queues");
        assert_eq!(stats.get("cxl0.bank_conflicts"), Some(1.0));
        let (t2, stats2) = run(
            cfg,
            vec![(Command::CxlMemRd, HDM_BASE, 64), (Command::CxlMemRd, HDM_BASE + CXL_BLOCK, 64)],
        );
        assert_eq!(t2[0], t2[1], "different banks overlap fully");
        assert_eq!(stats2.get("cxl0.bank_conflicts"), Some(0.0));
    }

    #[test]
    fn stores_read_back_their_data() {
        let mut sim = Simulation::new();
        use pcisim_kernel::component::ComponentId;
        use std::cell::RefCell;
        use std::rc::Rc;
        // A host that writes a pattern then reads it back.
        struct Host {
            got: Rc<RefCell<Vec<u8>>>,
            stage: u32,
        }
        impl Component for Host {
            fn name(&self) -> &str {
                "host"
            }
            fn init(&mut self, ctx: &mut Ctx<'_>) {
                ctx.schedule(0, Event::Timer { kind: 0, data: 0 });
            }
            fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
                let Event::Timer { kind, .. } = ev else { panic!() };
                let id = ctx.alloc_packet_id();
                let pkt = if kind == 0 {
                    Packet::request(id, Command::CxlMemWr, HDM_BASE + 32, 64, ctx.self_id())
                        .with_payload((0..64u8).collect())
                } else {
                    Packet::request(id, Command::CxlMemRd, HDM_BASE + 32, 64, ctx.self_id())
                };
                ctx.try_send_request(PortId(0), pkt).unwrap();
            }
            fn recv_response(
                &mut self,
                ctx: &mut Ctx<'_>,
                _p: PortId,
                mut pkt: Packet,
            ) -> RecvResult {
                self.stage += 1;
                if self.stage == 1 {
                    assert_eq!(pkt.cmd(), Command::CxlMemNdr);
                    // Issue the dependent read from a fresh event, never
                    // synchronously from the response path.
                    ctx.schedule(0, Event::Timer { kind: 1, data: 0 });
                } else {
                    assert_eq!(pkt.cmd(), Command::CxlMemDrs);
                    *self.got.borrow_mut() = pkt.take_payload().unwrap();
                }
                RecvResult::Accepted
            }
        }
        let got = Rc::new(RefCell::new(Vec::new()));
        let h = sim.add(Box::new(Host { got: got.clone(), stage: 0 }));
        let d = sim.add(Box::new(expander(CxlExpanderConfig::default())));
        sim.connect((h, PortId(0)), (d, CXL_PIO_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(*got.borrow(), (0..64u8).collect::<Vec<_>>(), "written data reads back");
        let _ = ComponentId(0);
    }

    #[test]
    fn unwritten_memory_reads_as_zero() {
        let mut sim = Simulation::new();
        let (req, done) = Requester::new("host", vec![(Command::CxlMemRd, HDM_BASE + 0x4000, 64)]);
        let r = sim.add(Box::new(req));
        let d = sim.add(Box::new(expander(CxlExpanderConfig::default())));
        sim.connect((r, REQUESTER_PORT), (d, CXL_PIO_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(done.borrow().len(), 1);
    }

    #[test]
    fn access_outside_the_hdm_window_completer_aborts() {
        let (t, stats) =
            run(CxlExpanderConfig::default(), vec![(Command::CxlMemRd, HDM_BASE - 0x1000, 64)]);
        assert_eq!(t.len(), 1, "the abort still completes — no hang");
        assert_eq!(stats.get("cxl0.hdm_rejects"), Some(1.0));
        assert_eq!(stats.get("cxl0.reads"), Some(0.0));
    }

    #[test]
    fn unprogrammed_decoder_rejects_everything() {
        let mut sim = Simulation::new();
        let (req, done) = Requester::new("host", vec![(Command::CxlMemRd, HDM_BASE, 64)]);
        let r = sim.add(Box::new(req));
        let (dev, _cs) = CxlExpander::new("cxl0", CxlExpanderConfig::default());
        let d = sim.add(Box::new(dev));
        sim.connect((r, REQUESTER_PORT), (d, CXL_PIO_PORT));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(done.borrow().len(), 1);
        assert_eq!(sim.stats().get("cxl0.hdm_rejects"), Some(1.0));
    }

    #[test]
    fn backpressure_refuses_and_recovers() {
        let cfg = CxlExpanderConfig {
            max_outstanding: 2,
            bytes_per_sec: 64_000_000,
            ..Default::default()
        };
        let script = (0..16).map(|i| (Command::CxlMemRd, HDM_BASE + i * CXL_BLOCK, 64)).collect();
        let (t, stats) = run(cfg, script);
        assert_eq!(t.len(), 16, "backpressure must not lose packets");
        assert!(stats.get("cxl0.ingress_refusals").unwrap() > 0.0);
    }

    #[test]
    fn hdm_registers_roundtrip_through_config_space() {
        let (dev, cs) = CxlExpander::new("cxl0", CxlExpanderConfig::default());
        assert!(dev.hdm().is_empty(), "decoder starts disabled");
        let w = AddrRange::with_size(0x2_4000_0000, 0x1000_0000);
        program_hdm(&mut cs.borrow_mut(), w);
        assert_eq!(dev.hdm(), w);
        program_hdm(&mut cs.borrow_mut(), AddrRange::empty());
        assert!(dev.hdm().is_empty());
    }

    #[test]
    fn save_restore_roundtrips_the_store_and_banks() {
        let mut sim = Simulation::new();
        let (req, _done) = Requester::new(
            "host",
            (0..8).map(|i| (Command::CxlMemWr, HDM_BASE + i * CXL_BLOCK, 64)).collect(),
        );
        let r = sim.add(Box::new(req));
        let mut src = expander(CxlExpanderConfig::default());
        // Populate via a short run, then snapshot by hand.
        let d = sim.add(Box::new(expander(CxlExpanderConfig::default())));
        sim.connect((r, REQUESTER_PORT), (d, CXL_PIO_PORT));
        sim.run_to_quiesce();
        src.store_write(HDM_BASE + 7, &[1, 2, 3]);
        src.bank_busy[3] = 12345;
        src.stats.reads.inc();
        let mut w = StateWriter::new();
        src.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut dst = expander(CxlExpanderConfig::default());
        dst.restore_state(&mut StateReader::new(&bytes)).unwrap();
        assert_eq!(dst.store, src.store);
        assert_eq!(dst.bank_busy, src.bank_busy);
        let mut w2 = StateWriter::new();
        dst.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "save/restore/save is byte-stable");
    }

    #[test]
    fn config_space_passes_the_probe_shape() {
        let cs = cxl_config_space();
        assert_eq!(cs.read(0x00, 2), 0x8086);
        assert_eq!(cs.read(0x02, 2), u32::from(CXL_DEVICE_ID));
        assert_eq!(cs.read(0x0a, 2), 0x0502, "CXL memory-device class");
        let id = PacketId(0);
        let _ = id;
    }
}
