//! Interrupt controller (a minimal GIC stand-in).
//!
//! PCI-Express conveys legacy INTx interrupts as posted **message** TLPs
//! that travel upstream to the root complex and on to the platform
//! interrupt controller. Devices in this workspace raise an interrupt by
//! sending a [`Command::Message`] packet to the controller's address
//! window, one word per interrupt line; the controller then forwards a
//! message out of the port registered for that line, waking the CPU-side
//! component (the workload models in `pcisim-system`).
//!
//! The same window doubles as the platform's **MSI/MSI-X doorbell**:
//! message-signaled interrupts arrive as ordinary [`Command::WriteReq`]
//! memory writes (one word per vector, like a GICv2m/ITS translator
//! frame), so they traverse the full fabric — links, switches, root
//! complex, memory bus — contending with DMA traffic and showing up in
//! traces with the same custody hops as any other TLP. A doorbell write
//! is completed with a normal write response; the vector number is the
//! word index, exactly as for legacy messages.

use std::collections::HashMap;

use pcisim_kernel::addr::AddrRange;
use pcisim_kernel::component::{Component, Event, PortId, RecvResult};
use pcisim_kernel::packet::{Command, Packet};
use pcisim_kernel::sim::Ctx;
use pcisim_kernel::snapshot::{SnapshotError, StateReader, StateWriter};
use pcisim_kernel::stats::{Counter, StatsBuilder};

/// Port 0 receives interrupt messages from the fabric; ports 1.. are CPU
/// notification ports, assigned by [`InterruptController::route_irq`].
pub const INTC_FABRIC_PORT: PortId = PortId(0);

/// Computes the message address a device must target to raise `irq`.
pub fn irq_message_addr(base: u64, irq: u8) -> u64 {
    base + u64::from(irq) * 4
}

/// The interrupt controller component.
pub struct InterruptController {
    name: String,
    range: AddrRange,
    /// irq number → CPU notification port.
    routes: HashMap<u8, PortId>,
    next_port: u16,
    raised: Counter,
    spurious: Counter,
}

impl InterruptController {
    /// Creates a controller claiming `range` (one word per interrupt line).
    pub fn new(name: impl Into<String>, range: AddrRange) -> Self {
        Self {
            name: name.into(),
            range,
            routes: HashMap::new(),
            next_port: 1,
            raised: Counter::new(),
            spurious: Counter::new(),
        }
    }

    /// The address window this controller claims.
    pub fn range(&self) -> AddrRange {
        self.range
    }

    /// Registers a CPU notification port for `irq` and returns the port to
    /// wire to the observing component.
    ///
    /// # Panics
    ///
    /// Panics if the irq is already routed.
    pub fn route_irq(&mut self, irq: u8) -> PortId {
        assert!(!self.routes.contains_key(&irq), "{}: irq {irq} already routed", self.name);
        let port = PortId(self.next_port);
        self.next_port += 1;
        self.routes.insert(irq, port);
        port
    }
}

impl Component for InterruptController {
    fn name(&self) -> &str {
        &self.name
    }

    fn recv_request(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) -> RecvResult {
        assert_eq!(port, INTC_FABRIC_PORT, "{}: interrupts arrive on the fabric port", self.name);
        let is_doorbell = pkt.cmd() == Command::WriteReq;
        assert!(
            is_doorbell || pkt.cmd() == Command::Message,
            "{}: expected an interrupt message or doorbell write, got {:?}",
            self.name,
            pkt.cmd()
        );
        assert!(self.range.contains(pkt.addr()));
        if let Some(buf) = pkt.take_payload() {
            ctx.recycle_payload(buf);
        }
        let irq = (self.range.offset(pkt.addr()) / 4) as u8;
        ctx.schedule(0, Event::Timer { kind: 0, data: u64::from(irq) });
        if is_doorbell {
            // Complete the memory write like any other completer would; the
            // in-flight response lives on the calendar queue, so no extra
            // component state needs checkpointing.
            ctx.schedule(0, Event::DelayedPacket { tag: 0, pkt: pkt.into_response() });
        }
        RecvResult::Accepted
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Timer { data, .. } => {
                let irq = data as u8;
                match self.routes.get(&irq) {
                    Some(&cpu_port) => {
                        self.raised.inc();
                        let id = ctx.alloc_packet_id();
                        let addr = irq_message_addr(self.range.start(), irq);
                        let msg = Packet::request(id, Command::Message, addr, 4, ctx.self_id())
                            .with_payload(ctx.alloc_payload(4));
                        // CPU-side observers must always accept interrupt
                        // wakeups.
                        ctx.try_send_request(cpu_port, msg).unwrap_or_else(|_| {
                            panic!("{}: CPU port refused an interrupt", self.name)
                        });
                    }
                    None => self.spurious.inc(),
                }
            }
            Event::StampedPacket { .. } => panic!("{}: unexpected stamped packet", self.name),
            Event::DelayedPacket { pkt, .. } => {
                // A refused completion retries after a short backoff rather
                // than holding component state.
                if let Err(back) = ctx.try_send_response(INTC_FABRIC_PORT, pkt) {
                    ctx.schedule(10, Event::DelayedPacket { tag: 0, pkt: back });
                }
            }
        }
    }

    fn report_stats(&self, out: &mut StatsBuilder) {
        out.counter("raised", &self.raised);
        out.counter("spurious", &self.spurious);
    }

    fn save_state(&self, w: &mut StateWriter) {
        // The irq routing table is wired at build time; only counters are
        // dynamic.
        self.raised.encode(w);
        self.spurious.encode(w);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        self.raised = Counter::decode(r)?;
        self.spurious = Counter::decode(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcisim_kernel::sim::{RunOutcome, Simulation};
    use pcisim_kernel::testutil::{Requester, REQUESTER_PORT};
    use std::cell::RefCell;
    use std::rc::Rc;

    const BASE: u64 = 0x2c00_0000;

    struct IrqObserver {
        name: String,
        fired: Rc<RefCell<Vec<u64>>>,
    }
    impl Component for IrqObserver {
        fn name(&self) -> &str {
            &self.name
        }
        fn recv_request(&mut self, ctx: &mut Ctx<'_>, _p: PortId, pkt: Packet) -> RecvResult {
            self.fired.borrow_mut().push(ctx.now());
            assert_eq!(pkt.cmd(), Command::Message);
            RecvResult::Accepted
        }
    }

    #[test]
    fn message_to_routed_irq_wakes_observer() {
        let mut sim = Simulation::new();
        let mut intc = InterruptController::new("gic", AddrRange::with_size(BASE, 0x1000));
        let cpu_port = intc.route_irq(32);
        let fired = Rc::new(RefCell::new(Vec::new()));
        let (req, _) =
            Requester::new("dev", vec![(Command::Message, irq_message_addr(BASE, 32), 4)]);
        let r = sim.add(Box::new(req));
        let g = sim.add(Box::new(intc));
        let o = sim.add(Box::new(IrqObserver { name: "cpu".into(), fired: fired.clone() }));
        sim.connect((r, REQUESTER_PORT), (g, INTC_FABRIC_PORT));
        sim.connect((g, cpu_port), (o, PortId(0)));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(fired.borrow().len(), 1);
        assert_eq!(sim.stats().get("gic.raised"), Some(1.0));
    }

    #[test]
    fn doorbell_write_raises_vector_and_is_completed() {
        let mut sim = Simulation::new();
        let mut intc = InterruptController::new("gic", AddrRange::with_size(BASE, 0x1000));
        let cpu_port = intc.route_irq(96);
        let fired = Rc::new(RefCell::new(Vec::new()));
        // An MSI doorbell is an ordinary posted memory write to the
        // vector's word — and unlike a Message it gets a completion.
        let (req, done) =
            Requester::new("dev", vec![(Command::WriteReq, irq_message_addr(BASE, 96), 4)]);
        let r = sim.add(Box::new(req));
        let g = sim.add(Box::new(intc));
        let o = sim.add(Box::new(IrqObserver { name: "cpu".into(), fired: fired.clone() }));
        sim.connect((r, REQUESTER_PORT), (g, INTC_FABRIC_PORT));
        sim.connect((g, cpu_port), (o, PortId(0)));
        assert_eq!(sim.run_to_quiesce(), RunOutcome::QueueEmpty);
        assert_eq!(fired.borrow().len(), 1, "doorbell must wake the observer");
        assert_eq!(done.borrow().len(), 1, "doorbell write must be completed");
        assert_eq!(sim.stats().get("gic.raised"), Some(1.0));
    }

    #[test]
    fn unrouted_irq_counts_spurious() {
        let mut sim = Simulation::new();
        let intc = InterruptController::new("gic", AddrRange::with_size(BASE, 0x1000));
        let (req, _) =
            Requester::new("dev", vec![(Command::Message, irq_message_addr(BASE, 7), 4)]);
        let r = sim.add(Box::new(req));
        let g = sim.add(Box::new(intc));
        sim.connect((r, REQUESTER_PORT), (g, INTC_FABRIC_PORT));
        sim.run_to_quiesce();
        assert_eq!(sim.stats().get("gic.spurious"), Some(1.0));
        assert_eq!(sim.stats().get("gic.raised"), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "already routed")]
    fn double_route_panics() {
        let mut intc = InterruptController::new("gic", AddrRange::with_size(BASE, 0x1000));
        intc.route_irq(5);
        intc.route_irq(5);
    }

    #[test]
    fn irq_address_arithmetic() {
        assert_eq!(irq_message_addr(BASE, 0), BASE);
        assert_eq!(irq_message_addr(BASE, 33), BASE + 132);
    }
}
