//! `pcisim-bench` — reproduction harness for the paper's evaluation.
//!
//! The [`reference`](mod@crate::reference) module records every quantitative anchor the paper
//! reports (§VI, Figs. 9(a)–(d), Table II); [`table`] renders aligned
//! result tables; the `repro` binary regenerates each figure/table and
//! prints paper-vs-measured rows, which EXPERIMENTS.md records.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod benchjson;

/// Quantitative anchors from the paper (Alian, Srinivasan, Kim — IISWC'18).
pub mod reference {
    /// Table II: root-complex latency (ns) → measured MMIO read access
    /// latency (ns).
    pub const TABLE_II: [(u64, f64); 5] =
        [(50, 318.0), (75, 358.0), (100, 398.0), (125, 438.0), (150, 517.0)];

    /// §VI-B: device-level sector throughput over Gen 2 x1, Gb/s.
    pub const SECTOR_LEVEL_GBPS: f64 = 3.072;

    /// §VI-B: throughput gain when doubling the link from x1 to x2.
    pub const X1_TO_X2_GAIN: f64 = 1.67;

    /// §VI-B: replay percentage observed at x8 (Fig. 9(b)/(c)).
    pub const X8_REPLAY_PCT: f64 = 27.0;

    /// §VI-B: timeout percentages for replay buffers 1..=4 (Fig. 9(c)).
    pub const FIG9C_TIMEOUT_PCT: [(usize, f64); 4] = [(1, 0.0), (2, 6.0), (3, 27.0), (4, 27.0)];

    /// §VI-B: timeout percentages for port buffers 16/20/24/28 (Fig. 9(d)).
    pub const FIG9D_TIMEOUT_PCT: [(usize, f64); 4] = [(16, 27.0), (20, 20.0), (24, 0.0), (28, 0.0)];

    /// §VI-B: saturated `dd` throughput with deep buffers, Gb/s (Fig. 9(d)).
    pub const SATURATION_GBPS: f64 = 5.08;

    /// §VI-B: `dd` throughput gain from reducing switch latency
    /// 150 → 50 ns, in Mb/s ("~3% of total throughput").
    pub const SWITCH_LATENCY_GAIN_MBPS: f64 = 80.0;

    /// §VI-A: the paper's sim throughput is within this fraction of the
    /// physical Gen 2 x1 setup (abstract: "within 19.0%").
    pub const PHYS_BAND_FRACTION: f64 = 0.19;

    /// Approximate physical-setup `dd` throughput the paper validates
    /// against (§VI-A: the effective Gen 2 x1 limit is 4 Gb/s; `dd`
    /// reports below that; the gem5 IDE result sits within 80–90% of it).
    pub const PHYS_DD_GBPS: f64 = 3.1;
}

/// Minimal fixed-width table rendering for the `repro` binary.
pub mod table {
    /// Renders `rows` under `headers` with aligned columns.
    pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            s
        };
        let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
        out.push_str(&line(&headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_table_ii_is_monotonic() {
        for w in reference::TABLE_II.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn table_renders_aligned_columns() {
        let out = table::render(
            &["a", "long_header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long_header"));
        assert!(lines[1].starts_with('-'));
        assert_eq!(lines[2].len(), lines[3].len());
    }
}
