//! Machine-readable simulator-speed tracking (`BENCH_simulator_speed.json`).
//!
//! The `repro` binary measures the two microbenchmark scenarios of
//! `benches/simulator_speed.rs` (a crossbar read storm and a saturated
//! Gen 2 x8 link write storm), a full-system multi-queue MSI-X NIC
//! transmit run, two sharded-driver scenarios (a 2-shard cascade cut
//! and a 4-shard fanout tree, shard counts stamped in the JSON next to
//! the detected host core count), and two poll-mode NIC receive
//! scenarios (busy-poll driver against the million-flow traffic source,
//! serial and 2-shard), two CXL.mem scenarios (pointer chase, 2-way
//! interleave), and two virtio scenarios (a QD8 virtio-blk read stream
//! and a virtio-net MTU transmit), derives ops/sec and raw scheduler
//! events/sec,
//! and emits them together with per-sweep wall-clock times and host
//! metadata. CI replays the measurement with `--bench-check` and fails
//! on a >30% ops/sec regression against the checked-in file — or on any
//! scenario dipping under the absolute [`EVENTS_PER_SEC_FLOOR`] — so the
//! perf trajectory is tracked from the hot-path-overhaul PR onward.

use std::time::Instant;

use pcisim_kernel::packet::Command;
use pcisim_kernel::prelude::*;
use pcisim_kernel::testutil::{Requester, Responder, REQUESTER_PORT, RESPONDER_PORT};
use pcisim_pcie::link::{PcieLink, PORT_DOWN_MASTER, PORT_UP_SLAVE};
use pcisim_pcie::params::{Generation, LinkConfig, LinkWidth};

/// Requests issued per microbenchmark scenario (matches
/// `benches/simulator_speed.rs`).
pub const MICRO_OPS: u64 = 10_000;

/// Ops/sec for each scenario measured immediately *before* the hot-path
/// overhaul (binary heap + HashMap routing + per-TLP allocation, default
/// release profile), kept as the historical record the overhaul's ≥2×
/// acceptance criterion is judged against.
///
/// Honesty note: the measurement host's sustained clock swings ~40%
/// between power states, and these numbers were captured in the slow
/// state, so naive ratios against them overstate the win. An interleaved
/// A/B of the seed build against the overhauled build (alternating
/// best-of-6 processes, both orders) put the *fast-state* seed at
/// ~2.53e6 xbar / ~1.31e6 link ops/s — i.e. like-for-like speedups of
/// ~1.2× (xbar) and ~1.6× (link), the rest being host state.
pub const PRE_CHANGE_OPS_PER_SEC: [(&str, f64); 2] =
    [("xbar_10k_reads", 1_708_987.0), ("link_10k_writes", 840_858.0)];

/// Quick-mode Fig. 9 sweep wall-clock times (ms) measured immediately
/// before the overhaul, on the same host as [`PRE_CHANGE_OPS_PER_SEC`].
pub const PRE_CHANGE_SWEEP_WALL_MS: [(&str, u64); 4] =
    [("fig9a", 13_207), ("fig9b", 18_704), ("fig9c", 4_867), ("fig9d", 4_970)];

/// Absolute scheduler events/sec floor every scenario must clear under
/// `--bench-check`, on top of the relative 30% ops/sec gate. Set an
/// order of magnitude below the slowest observed scenario so it trips
/// only on a broken build (or a zeroed rate from an unusable timer
/// reading), never on a noisy host.
pub const EVENTS_PER_SEC_FLOOR: f64 = 100_000.0;

/// One measured microbenchmark scenario.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Scenario name (stable key used in the JSON and by `--bench-check`).
    pub name: &'static str,
    /// Completed requests per second of host wall-clock.
    pub ops_per_sec: f64,
    /// Scheduler dispatches per second of host wall-clock.
    pub events_per_sec: f64,
    /// Wall-clock of the measured iteration, milliseconds.
    pub wall_ms: f64,
    /// Shard count for scenarios run under the sharded driver (`None`
    /// for serial scenarios). Recorded in the JSON: sharded rates are
    /// meaningless without it and the host core count next to them.
    pub shards: Option<u32>,
}

fn run_xbar_reads() -> (u64, u64, f64) {
    let mut sim = Simulation::new();
    let script = (0..MICRO_OPS).map(|i| (Command::ReadReq, 0x1000 + (i % 64) * 64, 64)).collect();
    let (req, done) = Requester::new("gen", script);
    let r = sim.add(Box::new(req));
    let x = sim.add(Box::new(
        Crossbar::builder("xbar")
            .num_ports(2)
            .queue_capacity(32)
            .route(AddrRange::new(0x1000, 0x10000), PortId(1))
            .build(),
    ));
    let (resp, _) = Responder::new("dev", ns(10));
    let d = sim.add(Box::new(resp));
    sim.connect((r, PortId(0)), (x, PortId(0)));
    sim.connect((x, PortId(1)), (d, PortId(0)));
    let start = Instant::now();
    sim.run_to_quiesce();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(done.borrow().len(), MICRO_OPS as usize);
    (MICRO_OPS, sim.events_processed(), secs)
}

fn run_link_writes() -> (u64, u64, f64) {
    let mut sim = Simulation::new();
    let script =
        (0..MICRO_OPS).map(|i| (Command::WriteReq, 0x4000_0000 + (i % 64) * 64, 64)).collect();
    let (req, done) = Requester::new("gen", script);
    let r = sim.add(Box::new(req));
    let l =
        sim.add(Box::new(PcieLink::new("link", LinkConfig::new(Generation::Gen2, LinkWidth::X8))));
    let (resp, _) = Responder::new("dev", 0);
    let d = sim.add(Box::new(resp));
    sim.connect((r, REQUESTER_PORT), (l, PORT_UP_SLAVE));
    sim.connect((l, PORT_DOWN_MASTER), (d, RESPONDER_PORT));
    let start = Instant::now();
    sim.run_to_quiesce();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(done.borrow().len(), MICRO_OPS as usize);
    (MICRO_OPS, sim.events_processed(), secs)
}

fn run_msix_tx() -> (u64, u64, f64) {
    use pcisim_system::prelude::*;
    let mut built = build_system(SystemConfig::nic_msix(4, 0));
    let report = built.attach_msix_tx(MsixTxConfig {
        queues: 4,
        frames: MICRO_OPS as u32,
        ..Default::default()
    });
    let start = Instant::now();
    built.sim.run_to_quiesce();
    let secs = start.elapsed().as_secs_f64();
    assert!(report.borrow().done, "msix bench transmit must complete");
    (MICRO_OPS, built.sim.events_processed(), secs)
}

/// A multi-shard `dd` run over `topo` under the sharded driver; ops are
/// scheduler events (the sharded acceptance metric is aggregate
/// events/sec, so the ops gate and the event rate coincide here).
fn run_sharded_dd(
    topo: pcisim_system::topology::Topology,
    shards: usize,
    block: u64,
) -> (u64, u64, f64) {
    use pcisim_system::prelude::*;
    let mut sys = build_topology_sharded(topo, shards);
    let mut reports = Vec::new();
    for i in 0..sys.endpoints.len() {
        if sys.endpoints[i].is_disk {
            reports.push(sys.attach_dd(i, DdConfig { block_bytes: block, ..DdConfig::default() }));
        }
    }
    let mut driver = sys.into_driver();
    let start = Instant::now();
    driver.run_to_quiesce();
    let secs = start.elapsed().as_secs_f64();
    for r in &reports {
        assert!(r.borrow().done, "sharded bench dd must complete");
    }
    (driver.events_processed(), driver.events_processed(), secs)
}

/// 2-shard cascade: `cascaded(3)`'s disk stream crossing one cut link.
fn run_sharded_cascaded3() -> (u64, u64, f64) {
    run_sharded_dd(pcisim_system::topology::Topology::cascaded(3), 2, 4 * 1024 * 1024)
}

/// 4-shard fanout: 32 disks over `fanout(2, 4, 4)`, three cut subtrees.
fn run_sharded_fanout() -> (u64, u64, f64) {
    run_sharded_dd(pcisim_system::topology::Topology::fanout(2, 4, 4), 4, 256 * 1024)
}

/// Frames settled per poll-mode benchmark scenario.
const PMD_FRAMES: u32 = 4096;

fn pmd_bench_experiment() -> pcisim_system::experiments::PmdExperiment {
    use pcisim_system::prelude::*;
    PmdExperiment {
        burst: 16,
        traffic: Some(TrafficSpec::Generate(heavy_traffic(
            0xb43c_4a11,
            1 << 20,
            PMD_FRAMES,
            ns(1000),
        ))),
        ..PmdExperiment::default()
    }
}

/// Poll-mode NIC receive: busy-poll driver settling `PMD_FRAMES` frames
/// from a million-flow heavy-tailed source, interrupts fully masked.
/// Timed region includes enumeration + driver probe (like the MSI-X
/// scenario, they are part of the datapath being measured).
fn run_pmd_poll() -> (u64, u64, f64) {
    use pcisim_system::experiments::pmd_system_config;
    use pcisim_system::prelude::*;
    let exp = pmd_bench_experiment();
    let mut built = build_system(pmd_system_config(&exp));
    let report = built.attach_pmd(PmdConfig {
        burst: exp.burst,
        rx_expect: PMD_FRAMES,
        ..PmdConfig::default()
    });
    let start = Instant::now();
    built.sim.run_to_quiesce();
    let secs = start.elapsed().as_secs_f64();
    let r = report.borrow();
    assert!(r.done, "pmd bench poll loop must settle");
    assert_eq!(r.rx_frames + r.rx_dropped, u64::from(PMD_FRAMES));
    assert_eq!(
        built.sim.stats().get("gic.raised").unwrap_or(0.0),
        0.0,
        "poll mode must take zero interrupts"
    );
    (u64::from(PMD_FRAMES), built.sim.events_processed(), secs)
}

/// The same poll-mode receive under the 2-shard driver (NIC subtree on
/// its own shard, conservative-window barrier on the cut link).
fn run_pmd_sharded2() -> (u64, u64, f64) {
    use pcisim_system::experiments::pmd_system_config;
    use pcisim_system::prelude::*;
    let exp = pmd_bench_experiment();
    let topo = Topology::from_system_config(&pmd_system_config(&exp));
    let mut sys = build_topology_sharded(topo, 2);
    let report = sys.attach_pmd(
        0,
        PmdConfig { burst: exp.burst, rx_expect: PMD_FRAMES, ..PmdConfig::default() },
    );
    let mut driver = sys.into_driver();
    let start = Instant::now();
    driver.run_to_quiesce();
    let secs = start.elapsed().as_secs_f64();
    let r = report.borrow();
    assert!(r.done, "sharded pmd bench poll loop must settle");
    assert_eq!(r.rx_frames + r.rx_dropped, u64::from(PMD_FRAMES));
    (u64::from(PMD_FRAMES), driver.events_processed(), secs)
}

/// Accesses per CXL.mem benchmark scenario.
const CXL_ACCESSES: u32 = 2048;

/// Serial pointer chase through a CXL.mem expander behind a switch: the
/// worst-case latency path, every hop a dependent CxlMemRd round trip.
fn run_cxl_chase() -> (u64, u64, f64) {
    use pcisim_system::prelude::*;
    let mut sys = build_topology(Topology::cxl_behind_switch(CxlExpanderConfig::default()));
    let report = sys.attach_cxl_host(
        0,
        CxlHostConfig {
            mode: CxlHostMode::PointerChase,
            requests: CXL_ACCESSES,
            chain_blocks: 256,
            ..CxlHostConfig::default()
        },
    );
    let start = Instant::now();
    sys.sim.run_to_quiesce();
    let secs = start.elapsed().as_secs_f64();
    assert!(report.borrow().done, "cxl bench chase must complete");
    (u64::from(CXL_ACCESSES), sys.sim.events_processed(), secs)
}

/// Two open-loop load/store streams interleaved across two directly
/// attached expanders — the bandwidth-side CXL.mem scenario.
fn run_cxl_interleave2() -> (u64, u64, f64) {
    use pcisim_system::prelude::*;
    let mut sys = build_topology(Topology::cxl_interleaved(2, CxlExpanderConfig::default()));
    let mut reports = Vec::new();
    for i in 0..sys.endpoints.len() {
        reports.push(sys.attach_cxl_host(
            i,
            CxlHostConfig {
                mode: CxlHostMode::OpenLoop,
                requests: CXL_ACCESSES,
                write_every: 4,
                ..CxlHostConfig::default()
            },
        ));
    }
    let start = Instant::now();
    sys.sim.run_to_quiesce();
    let secs = start.elapsed().as_secs_f64();
    let ops: u64 = reports
        .iter()
        .map(|r| {
            let r = r.borrow();
            assert!(r.done, "cxl bench interleave must complete");
            r.completed
        })
        .sum();
    (ops, sys.sim.events_processed(), secs)
}

/// Requests per virtio benchmark scenario.
const VIRTIO_REQUESTS: u32 = 2048;

/// virtio-blk read stream at queue depth 8: descriptor chains, avail/used
/// ring DMA, payload bursts and completion interrupts all on the timed
/// path (enumeration + driver probe included, like the MSI-X scenario).
fn run_virtio_blk_qd8() -> (u64, u64, f64) {
    use pcisim_system::prelude::*;
    let mut sys = build_topology(Topology::virtio_blk_direct(VirtioConfig::default()));
    let report = sys.attach_virtio(
        0,
        VirtioAppConfig {
            requests: VIRTIO_REQUESTS,
            queue_depth: 8,
            request_bytes: 4096,
            ..VirtioAppConfig::default()
        },
    );
    let start = Instant::now();
    sys.sim.run_to_quiesce();
    let secs = start.elapsed().as_secs_f64();
    let r = report.borrow();
    assert!(r.done, "virtio-blk bench stream must complete");
    assert_eq!(r.requests, u64::from(VIRTIO_REQUESTS));
    (u64::from(VIRTIO_REQUESTS), sys.sim.events_processed(), secs)
}

/// virtio-net transmit: MTU-sized frames through the TX virtqueue and
/// out a 10 Gb/s wire, the virtio counterpart of the e1000e scenarios.
fn run_virtio_net_tx() -> (u64, u64, f64) {
    use pcisim_system::prelude::*;
    let mut sys = build_topology(Topology::virtio_net_direct(VirtioConfig {
        class: VirtioClass::Net,
        ..VirtioConfig::default()
    }));
    let report = sys.attach_virtio(
        0,
        VirtioAppConfig {
            requests: VIRTIO_REQUESTS,
            queue_depth: 8,
            request_bytes: 1514,
            ..VirtioAppConfig::default()
        },
    );
    let start = Instant::now();
    sys.sim.run_to_quiesce();
    let secs = start.elapsed().as_secs_f64();
    let r = report.borrow();
    assert!(r.done, "virtio-net bench transmit must complete");
    assert_eq!(r.requests, u64::from(VIRTIO_REQUESTS));
    (u64::from(VIRTIO_REQUESTS), sys.sim.events_processed(), secs)
}

/// Runs the microbenchmark scenarios, best-of-`samples`, and returns the
/// per-scenario rates. Build setup is excluded from the timed region
/// (the MSI-X scenario's timed region does include enumeration and driver
/// probe — they are part of the system datapath being measured).
pub fn run_micro_benchmarks(samples: u32) -> Vec<MicroResult> {
    type Scenario = (&'static str, Option<u32>, fn() -> (u64, u64, f64));
    let scenarios: [Scenario; 11] = [
        ("xbar_10k_reads", None, run_xbar_reads),
        ("link_10k_writes", None, run_link_writes),
        ("msix_4q_tx_10k_frames", None, run_msix_tx),
        ("sharded_cascaded3_tx", Some(2), run_sharded_cascaded3),
        ("sharded_fanout32_dd", Some(4), run_sharded_fanout),
        ("pmd_poll_rx_4k_frames", None, run_pmd_poll),
        ("pmd_poll_sharded2_rx", Some(2), run_pmd_sharded2),
        ("cxl_pointer_chase", None, run_cxl_chase),
        ("cxl_interleave2", None, run_cxl_interleave2),
        ("virtio_blk_qd8", None, run_virtio_blk_qd8),
        ("virtio_net_tx", None, run_virtio_net_tx),
    ];
    scenarios
        .iter()
        .map(|&(name, shards, run)| {
            let mut best: Option<(u64, u64, f64)> = None;
            for _ in 0..samples.max(1) {
                let (ops, events, secs) = run();
                if best.is_none_or(|(_, _, b)| secs < b) {
                    best = Some((ops, events, secs));
                }
            }
            let (ops, events, secs) = best.expect("at least one sample");
            // A sub-resolution timer reading must not divide through to
            // infinity (and poison the JSON): report zero and let the
            // floor check flag it.
            let rate = |count: u64| if secs > 0.0 { count as f64 / secs } else { 0.0 };
            MicroResult {
                name,
                ops_per_sec: rate(ops),
                events_per_sec: rate(events),
                wall_ms: secs * 1e3,
                shards,
            }
        })
        .collect()
}

/// Cold-vs-warm wall-clock of one small `dd` sweep, measured by
/// [`run_warm_start_benchmark`] and recorded in the JSON so the
/// warm-start trajectory is tracked alongside raw simulator speed.
#[derive(Debug, Clone)]
pub struct WarmStartResult {
    /// Sweep points per arm.
    pub configs: usize,
    /// Wall-clock of the cold sweep (every point enumerates + probes).
    pub cold_ms: f64,
    /// Wall-clock of the warm sweep (one warmup, every point forked).
    pub warm_ms: f64,
    /// Scheduler events of warmup each forked point skips re-simulating.
    pub warm_events_skipped: u64,
    /// Build + enumeration + driver-probe passes per arm: the cold sweep
    /// pays one per point, the warm sweep one per distinct block size.
    pub cold_setups: usize,
    /// See [`Self::cold_setups`].
    pub warm_setups: usize,
}

impl WarmStartResult {
    /// Cold/warm wall-clock ratio (>1 means warm start is faster).
    pub fn speedup(&self) -> f64 {
        if self.warm_ms > 0.0 {
            self.cold_ms / self.warm_ms
        } else {
            0.0
        }
    }
}

/// Times a small serial `dd` switch-latency sweep cold (every point
/// builds, enumerates and probes its own system) against the identical
/// sweep warm-started from one checkpoint, best-of-`samples` per arm.
///
/// Outcomes of the two arms are asserted bit-identical — this benchmark
/// doubles as a smoke check of warm-start equivalence. The wall-clock
/// ratio lands near 1.00x *by construction*: the warm arm still
/// simulates each point's post-warmup workload tail (the overwhelming
/// majority of events) and additionally pays the checkpoint restore, so
/// the only savings are the skipped build/enumeration/probe passes and
/// the warmup events — both microseconds-scale in this simulator, unlike
/// the full-system boots gem5-style warm starts amortize. To keep the
/// number honest instead of impressive, the result records exactly what
/// the warm arm skipped: the warmup events per point and the setup
/// passes per arm.
pub fn run_warm_start_benchmark(samples: u32) -> WarmStartResult {
    use pcisim_system::prelude::*;
    let configs: Vec<DdExperiment> = [50u64, 75, 100, 125, 150, 175]
        .into_iter()
        .map(|lat| DdExperiment {
            block_bytes: 256 * 1024,
            switch_latency: pcisim_kernel::tick::ns(lat),
            ..DdExperiment::default()
        })
        .collect();
    let mut cold_best = f64::INFINITY;
    let mut warm_best = f64::INFINITY;
    let mut cold_out = Vec::new();
    let mut warm_out = Vec::new();
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        cold_out = run_sweep(&configs, 1, run_dd_experiment);
        cold_best = cold_best.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        warm_out = run_dd_sweep_warm(&configs, 1);
        warm_best = warm_best.min(start.elapsed().as_secs_f64());
    }
    for (c, w) in cold_out.iter().zip(&warm_out) {
        assert_eq!(c.sim_time, w.sim_time, "warm sweep must match cold bit-for-bit");
        assert_eq!(c.throughput_gbps.to_bits(), w.throughput_gbps.to_bits());
        assert_eq!(c.upstream_tlps, w.upstream_tlps);
    }
    // What the warm arm actually skipped, measured outside the timed
    // region (the warm start is deterministic, so this matches the ones
    // the timed arm prepared internally).
    let warm = prepare_dd_warm_start(configs[0].block_bytes);
    WarmStartResult {
        configs: configs.len(),
        cold_ms: cold_best * 1e3,
        warm_ms: warm_best * 1e3,
        warm_events_skipped: warm.warm_events,
        cold_setups: configs.len(),
        warm_setups: 1,
    }
}

fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no NaN/Infinity literals; `format!("{v}")` would emit
        // them bare and poison the document for every consumer. `null`
        // keeps the file parseable and `--bench-check` rejects it loudly.
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Renders the `BENCH_simulator_speed.json` document: host metadata, the
/// pre-change historical baseline, and the current measurement (including
/// the warm-start cold/warm comparison when one was measured).
pub fn render_json(
    micro: &[MicroResult],
    sweep_wall_ms: &[(String, u64)],
    warm: Option<&WarmStartResult>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"pcisim-bench-v1\",\n");
    s.push_str("  \"bench\": \"simulator_speed\",\n");
    s.push_str(&format!(
        "  \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {}}},\n",
        std::env::consts::OS,
        std::env::consts::ARCH,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    ));
    s.push_str("  \"pre_change\": {\n");
    s.push_str("    \"note\": \"measured before the hot-path overhaul (binary-heap scheduler, HashMap routing, per-TLP allocation); captured in the host's slow power state — interleaved A/B put the fast-state seed at ~2.53e6 xbar / ~1.31e6 link ops/s (true speedups ~1.2x / ~1.6x)\",\n");
    s.push_str("    \"ops_per_sec\": {");
    let pre: Vec<String> =
        PRE_CHANGE_OPS_PER_SEC.iter().map(|(k, v)| format!("\"{k}\": {}", json_f64(*v))).collect();
    s.push_str(&pre.join(", "));
    s.push_str("},\n");
    s.push_str("    \"sweep_wall_ms\": {");
    let pre: Vec<String> =
        PRE_CHANGE_SWEEP_WALL_MS.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    s.push_str(&pre.join(", "));
    s.push_str("}\n  },\n");
    s.push_str(&format!(
        "  \"floors\": {{\"events_per_sec\": {}}},\n",
        json_f64(EVENTS_PER_SEC_FLOOR)
    ));
    s.push_str("  \"current\": {\n");
    s.push_str("    \"ops_per_sec\": {");
    let cur: Vec<String> =
        micro.iter().map(|m| format!("\"{}\": {}", m.name, json_f64(m.ops_per_sec))).collect();
    s.push_str(&cur.join(", "));
    s.push_str("},\n");
    s.push_str("    \"events_per_sec\": {");
    let cur: Vec<String> =
        micro.iter().map(|m| format!("\"{}\": {}", m.name, json_f64(m.events_per_sec))).collect();
    s.push_str(&cur.join(", "));
    s.push_str("},\n");
    s.push_str("    \"shards\": {");
    let cur: Vec<String> =
        micro.iter().filter_map(|m| m.shards.map(|n| format!("\"{}\": {n}", m.name))).collect();
    s.push_str(&cur.join(", "));
    s.push_str("},\n");
    s.push_str("    \"sweep_wall_ms\": {");
    let cur: Vec<String> = sweep_wall_ms.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    s.push_str(&cur.join(", "));
    s.push('}');
    if let Some(w) = warm {
        s.push_str(&format!(
            ",\n    \"warm_start\": {{\n      \"note\": \"near-1x by construction: each warm point still simulates its full post-warmup workload tail and pays the restore; the savings are the setup passes and warmup events recorded here\",\n      \"configs\": {}, \"cold_ms\": {}, \"warm_ms\": {}, \"speedup\": {},\n      \"warm_events_skipped_per_config\": {}, \"cold_setups\": {}, \"warm_setups\": {}\n    }}",
            w.configs,
            json_f64(w.cold_ms),
            json_f64(w.warm_ms),
            json_f64(w.speedup()),
            w.warm_events_skipped,
            w.cold_setups,
            w.warm_setups,
        ));
    }
    s.push_str("\n  }\n}\n");
    s
}

/// A minimal JSON value, parsed by [`parse`]. Covers exactly what the
/// bench files use; no registry dependency required.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escape sequences decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Walks nested objects by key path.
    pub fn path(&self, path: &[&str]) -> Option<&Value> {
        let mut cur = self;
        for key in path {
            let Value::Obj(fields) = cur else { return None };
            cur = &fields.iter().find(|(k, _)| k == key)?.1;
        }
        Some(cur)
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message describing the first syntax error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Value::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Value::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
        None => Err("unexpected end of input".into()),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    other => return Err(format!("unsupported escape \\{}", other as char)),
                }
            }
            other => out.push(other as char),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let micro = vec![
            MicroResult {
                name: "xbar_10k_reads",
                ops_per_sec: 3_400_000.0,
                events_per_sec: 10_300_000.5,
                wall_ms: 2.9,
                shards: None,
            },
            MicroResult {
                name: "link_10k_writes",
                ops_per_sec: 1_700_000.0,
                events_per_sec: 12_000_000.0,
                wall_ms: 5.8,
                shards: None,
            },
            MicroResult {
                name: "sharded_cascaded3_tx",
                ops_per_sec: 2_000_000.0,
                events_per_sec: 2_000_000.0,
                wall_ms: 7.0,
                shards: Some(2),
            },
        ];
        let sweeps = vec![("fig9a".to_string(), 6_000u64), ("fig9b".to_string(), 9_000u64)];
        let warm = WarmStartResult {
            configs: 6,
            cold_ms: 1000.0,
            warm_ms: 800.0,
            warm_events_skipped: 12_345,
            cold_setups: 6,
            warm_setups: 1,
        };
        let text = render_json(&micro, &sweeps, Some(&warm));
        let doc = parse(&text).expect("well-formed");
        assert_eq!(
            doc.path(&["current", "warm_start", "configs"]).and_then(Value::as_f64),
            Some(6.0)
        );
        assert_eq!(
            doc.path(&["current", "warm_start", "speedup"]).and_then(Value::as_f64),
            Some(1.25)
        );
        assert_eq!(
            doc.path(&["current", "warm_start", "warm_events_skipped_per_config"])
                .and_then(Value::as_f64),
            Some(12_345.0)
        );
        assert_eq!(
            doc.path(&["current", "shards", "sharded_cascaded3_tx"]).and_then(Value::as_f64),
            Some(2.0)
        );
        assert!(doc.path(&["current", "shards", "xbar_10k_reads"]).is_none());
        assert!(doc.path(&["host", "cpus"]).and_then(Value::as_f64).is_some_and(|n| n >= 1.0));
        let bare = render_json(&micro, &sweeps, None);
        assert!(parse(&bare).expect("well-formed").path(&["current", "warm_start"]).is_none());
        assert_eq!(
            doc.path(&["current", "ops_per_sec", "xbar_10k_reads"]).and_then(Value::as_f64),
            Some(3_400_000.0)
        );
        assert_eq!(
            doc.path(&["pre_change", "ops_per_sec", "link_10k_writes"]).and_then(Value::as_f64),
            Some(PRE_CHANGE_OPS_PER_SEC[1].1)
        );
        assert_eq!(
            doc.path(&["current", "sweep_wall_ms", "fig9b"]).and_then(Value::as_f64),
            Some(9_000.0)
        );
        assert_eq!(doc.path(&["schema"]), Some(&Value::Str("pcisim-bench-v1".into())));
    }

    #[test]
    fn parser_handles_the_grammar() {
        let doc = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#)
            .expect("parses");
        assert_eq!(doc.path(&["b", "c"]), Some(&Value::Bool(true)));
        assert_eq!(doc.path(&["e"]), Some(&Value::Str("x\ny".into())));
        let Some(Value::Arr(items)) = doc.path(&["a"]) else { panic!("array expected") };
        assert_eq!(items[2], Value::Num(-300.0));
        assert!(parse("{").is_err());
        assert!(parse("{} junk").is_err());
    }

    #[test]
    fn micro_benchmarks_run_and_report_positive_rates() {
        let results = run_micro_benchmarks(1);
        assert_eq!(results.len(), 11);
        for r in &results {
            assert!(r.ops_per_sec > 0.0, "{}: {r:?}", r.name);
            assert!(r.events_per_sec >= r.ops_per_sec, "{}: events >= ops", r.name);
        }
    }

    #[test]
    fn non_finite_rates_render_as_null_not_bare_nan() {
        let micro = vec![MicroResult {
            name: "broken",
            ops_per_sec: f64::NAN,
            events_per_sec: f64::INFINITY,
            wall_ms: 0.0,
            shards: None,
        }];
        let text = render_json(&micro, &[], None);
        let doc = parse(&text).expect("null must keep the document well-formed");
        assert_eq!(doc.path(&["current", "ops_per_sec", "broken"]), Some(&Value::Null));
        assert_eq!(doc.path(&["current", "events_per_sec", "broken"]), Some(&Value::Null));
        assert_eq!(
            doc.path(&["floors", "events_per_sec"]).and_then(Value::as_f64),
            Some(EVENTS_PER_SEC_FLOOR)
        );
    }
}
