//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--full] [--jobs N] [--shards N] [--warm-start] [--trace PATH]
//!       [--checkpoint PATH] [--bench-json PATH] [--bench-check PATH]
//!       [fig9a] [fig9b] [fig9c] [fig9d] [table2] [sector] [ext] [faults] [topology]
//!       [msix] [pmd] [shard] [cxl] [virtio] [all]
//! ```
//!
//! `ext` runs the extension experiments beyond the paper's evaluation:
//! the legacy-crossbar baseline, dual-disk fabric contention, and the
//! NIC transmit sweep.
//!
//! `faults` (alias `--faults`) runs the deterministic fault campaign:
//! `dd` goodput under link-level error injection, swept over the
//! `error_interval` ladder at several generation/width points.
//!
//! `topology` (alias `--topology`) runs the multi-endpoint contention
//! experiment: two NIC transmit streams behind one shared upstream link
//! vs. split across two root ports — bandwidth share and DMA p99 tail
//! latency per placement.
//!
//! `msix` (alias `--msix`) runs the interrupt-delivery experiment: the
//! same NIC transmit load over legacy INTx vs. per-queue MSI-X vectors,
//! plus queue-count and per-vector moderation sweeps.
//!
//! `pmd` (alias `--pmd`) runs the heavy-traffic poll-mode experiment:
//! the classic interrupt-driven receive driver vs. the busy-poll driver
//! (interrupts fully masked — zero doorbells) on identical million-flow
//! heavy-tailed traffic, then a warm-forked offered-load ladder. Along
//! the way it asserts serial ≡ sharded bit-identity and that replaying
//! the recorded binary trace reproduces the live generator bit-for-bit.
//!
//! `cxl` (alias `--cxl`) runs the CXL.mem memory-expansion experiment:
//! host load/store streams against local DRAM vs a CXL-attached expander
//! (open-loop window sweep), the placement penalty of putting the
//! expander behind a switch (dependent pointer chase), and 2–4-way HDM
//! interleaving aggregate bandwidth — asserting serial ≡ sharded
//! bit-identity on the interleaved tree.
//!
//! `virtio` (alias `--virtio`) runs the virtio-over-PCIe experiment:
//! virtio-blk against the IDE `dd` baseline on per-request latency,
//! virtio-net transmit against the e1000e NIC on payload throughput,
//! and a queue-depth sweep of the blk virtqueue — asserting serial ≡
//! sharded bit-identity on the mixed blk + net + IDE fleet.
//!
//! `shard` (alias `--shard`) runs the shard-scaling experiment: the same
//! multi-endpoint `dd` run partitioned across 1, 2, … worker shards
//! (conservative link-lookahead sync), printing aggregate events/sec per
//! shard count and asserting every count reproduces the serial quiesce
//! tick and stats FNV bit-for-bit. `--shards N` raises the top of the
//! ladder (default 4).
//!
//! `--jobs N` fans the independent configurations of each Fig. 9 / Table II
//! sweep across N worker threads (default: all available cores). Every
//! configuration runs its own `Simulation`, and results are re-assembled in
//! input order, so the printed tables are bit-identical to `--jobs 1`.
//!
//! `--warm-start` forks every `dd` / fault sweep point from a checkpoint
//! taken after one warmed-up reference run instead of building and
//! enumerating each point from scratch. Tables are bit-identical to cold
//! runs; enumeration and the driver probe execute once per block size.
//!
//! `--checkpoint PATH` demonstrates file-backed checkpoint/restore: it
//! warms up the validation system, writes the checkpoint to PATH,
//! rebuilds the tree from the warm seed, restores from the file and runs
//! to completion, printing the cold-vs-restored comparison.
//!
//! `--trace PATH` additionally re-runs the Table II point with full event
//! tracing: a Chrome/Perfetto trace is written to PATH and a per-stage
//! latency attribution of the MMIO read is printed.
//!
//! `--bench-json PATH` measures the `simulator_speed` microbenchmark
//! scenarios and writes a machine-readable speed report (events/sec,
//! per-sweep wall-clock, host metadata) to PATH.
//!
//! `--bench-check PATH` re-measures the scenarios and exits non-zero if
//! ops/sec regressed more than 30% against the `current` section of the
//! JSON at PATH (the CI smoke gate). No figures run in this mode.
//!
//! By default block sizes are scaled down 16× (4–32 MB instead of the
//! paper's 64–512 MB) so the whole suite finishes in seconds; `--full`
//! runs the paper's sizes.

use std::time::Instant;

use pcisim_bench::{benchjson, reference, table};
use pcisim_kernel::tick::ns;
use pcisim_pcie::params::{Generation, LinkWidth};
use pcisim_system::prelude::*;

const MB: u64 = 1024 * 1024;

struct Opts {
    full: bool,
    jobs: usize,
    warm_start: bool,
    shards: usize,
}

fn block_sizes(opts: &Opts) -> Vec<u64> {
    if opts.full {
        vec![64 * MB, 128 * MB, 256 * MB, 512 * MB]
    } else {
        vec![4 * MB, 8 * MB, 16 * MB, 32 * MB]
    }
}

fn fmt_block(bytes: u64) -> String {
    format!("{}MB", bytes / MB)
}

/// Runs every `DdExperiment` in `configs` across the sweep runner —
/// warm-started from one checkpoint per block size under `--warm-start`,
/// cold otherwise — asserting completion, and returns outcomes in input
/// order. Both paths produce bit-identical tables.
fn dd_sweep(opts: &Opts, label: &str, configs: &[DdExperiment]) -> Vec<DdOutcome> {
    let outcomes = if opts.warm_start {
        run_dd_sweep_warm(configs, opts.jobs)
    } else {
        run_sweep(configs, opts.jobs, run_dd_experiment)
    };
    for (out, config) in outcomes.iter().zip(configs) {
        assert!(out.completed, "{label} run must complete: {config:?}");
    }
    outcomes
}

fn fig9a(opts: &Opts) {
    println!("\n== Fig. 9(a): dd throughput vs block size, switch latency sweep ==");
    println!(
        "   paper: sim within {:.0}% of phys (~{:.1} Gb/s); 150→50 ns switch gains ~{} Mb/s (~3%)",
        reference::PHYS_BAND_FRACTION * 100.0,
        reference::PHYS_DD_GBPS,
        reference::SWITCH_LATENCY_GAIN_MBPS
    );
    const LATS: [u64; 3] = [50, 100, 150];
    let blocks = block_sizes(opts);
    let configs: Vec<DdExperiment> = blocks
        .iter()
        .flat_map(|&block| {
            LATS.iter().map(move |&lat| DdExperiment {
                block_bytes: block,
                switch_latency: ns(lat),
                ..DdExperiment::default()
            })
        })
        .collect();
    let outcomes = dd_sweep(opts, "fig9a", &configs);
    let mut rows = Vec::new();
    for (bi, &block) in blocks.iter().enumerate() {
        let mut row = vec![fmt_block(block)];
        for li in 0..LATS.len() {
            row.push(format!("{:.3}", outcomes[bi * LATS.len() + li].throughput_gbps));
        }
        row.push(format!("{:.2}", reference::PHYS_DD_GBPS));
        rows.push(row);
    }
    println!(
        "{}",
        table::render(&["block", "L50 (Gb/s)", "L100 (Gb/s)", "L150 (Gb/s)", "phys(paper)"], &rows)
    );
}

fn fig9b(opts: &Opts) {
    println!("\n== Fig. 9(b): dd throughput vs link width (all links swept) ==");
    println!(
        "   paper: x1→x2 = {:.2}x; smaller gain to x4; drop at x8 with {:.0}% replays",
        reference::X1_TO_X2_GAIN,
        reference::X8_REPLAY_PCT
    );
    const LANES: [u8; 4] = [1, 2, 4, 8];
    let blocks = block_sizes(opts);
    let configs: Vec<DdExperiment> = blocks
        .iter()
        .flat_map(|&block| {
            LANES.iter().map(move |&lanes| DdExperiment {
                block_bytes: block,
                width_all: Some(LinkWidth::new(lanes)),
                ..DdExperiment::default()
            })
        })
        .collect();
    let outcomes = dd_sweep(opts, "fig9b", &configs);
    let mut rows = Vec::new();
    for (bi, &block) in blocks.iter().enumerate() {
        let mut row = vec![fmt_block(block)];
        let x1 = outcomes[bi * LANES.len()].throughput_gbps;
        for (li, &lanes) in LANES.iter().enumerate() {
            let out = &outcomes[bi * LANES.len() + li];
            if lanes == 8 {
                row.push(format!("{:.3} ({:.0}% rep)", out.throughput_gbps, out.replay_pct));
            } else {
                row.push(format!("{:.3}", out.throughput_gbps));
            }
            if lanes == 2 {
                row.push(format!("{:.2}x", out.throughput_gbps / x1));
            }
        }
        rows.push(row);
    }
    println!("{}", table::render(&["block", "x1", "x2", "x1→x2", "x4", "x8"], &rows));
}

fn fig9c(opts: &Opts) {
    println!("\n== Fig. 9(c): x8 links, replay buffer size sweep ==");
    println!("   paper timeout rates: rb1=0%, rb2=6%, rb3~27%, rb4~27%; rb3/4 throughput considerably lower");
    let block = if opts.full { 256 * MB } else { 16 * MB };
    const RBS: [usize; 4] = [1, 2, 3, 4];
    let configs: Vec<DdExperiment> = RBS
        .iter()
        .map(|&rb| DdExperiment {
            block_bytes: block,
            width_all: Some(LinkWidth::X8),
            replay_buffer: rb,
            ..DdExperiment::default()
        })
        .collect();
    let outcomes = dd_sweep(opts, "fig9c", &configs);
    let mut rows = Vec::new();
    for (&rb, out) in RBS.iter().zip(&outcomes) {
        let paper = reference::FIG9C_TIMEOUT_PCT.iter().find(|&&(b, _)| b == rb).unwrap().1;
        rows.push(vec![
            rb.to_string(),
            format!("{:.3}", out.throughput_gbps),
            format!("{:.1}%", out.timeout_pct),
            format!("{:.1}%", out.replay_pct),
            format!("{paper:.0}%"),
        ]);
    }
    println!(
        "{}",
        table::render(&["replay buf", "dd (Gb/s)", "timeout%", "replay%", "paper timeout%"], &rows)
    );
}

fn fig9d(opts: &Opts) {
    println!("\n== Fig. 9(d): x8 links, switch/root port buffer sweep (replay buffer 4) ==");
    println!(
        "   paper: jump from 16→20, saturation at ~{:.2} Gb/s; timeouts 27%→20%→0%→0%",
        reference::SATURATION_GBPS
    );
    let block = if opts.full { 256 * MB } else { 16 * MB };
    const PBS: [usize; 4] = [16, 20, 24, 28];
    let configs: Vec<DdExperiment> = PBS
        .iter()
        .map(|&pb| DdExperiment {
            block_bytes: block,
            width_all: Some(LinkWidth::X8),
            port_buffers: pb,
            ..DdExperiment::default()
        })
        .collect();
    let outcomes = dd_sweep(opts, "fig9d", &configs);
    let mut rows = Vec::new();
    for (&pb, out) in PBS.iter().zip(&outcomes) {
        let paper = reference::FIG9D_TIMEOUT_PCT.iter().find(|&&(b, _)| b == pb).unwrap().1;
        rows.push(vec![
            pb.to_string(),
            format!("{:.3}", out.throughput_gbps),
            format!("{:.1}%", out.timeout_pct),
            format!("{:.1}%", out.replay_pct),
            format!("{paper:.0}%"),
        ]);
    }
    println!(
        "{}",
        table::render(&["port buf", "dd (Gb/s)", "timeout%", "replay%", "paper timeout%"], &rows)
    );
}

fn table2(opts: &Opts) {
    println!("\n== Table II: root-complex latency vs MMIO read access latency ==");
    let configs: Vec<MmioExperiment> = reference::TABLE_II
        .iter()
        .map(|&(lat, _)| MmioExperiment { rc_latency: ns(lat), ..MmioExperiment::default() })
        .collect();
    let outcomes = run_sweep(&configs, opts.jobs, run_mmio_experiment);
    let mut rows = Vec::new();
    for (&(lat, paper), out) in reference::TABLE_II.iter().zip(&outcomes) {
        assert!(out.completed, "table2 run must complete");
        rows.push(vec![
            lat.to_string(),
            format!("{:.0}", out.mean_ns),
            format!("{paper:.0}"),
            format!("{:+.0}", out.mean_ns - paper),
        ]);
    }
    println!(
        "{}",
        table::render(&["rc latency (ns)", "measured (ns)", "paper (ns)", "delta"], &rows)
    );
}

fn sector(_opts: &Opts) {
    println!("\n== §VI-B device-level: sector throughput over Gen 2 x1 ==");
    let out = run_sector_microbench(LinkWidth::X1, 256);
    assert!(out.completed);
    println!(
        "measured {:.3} Gb/s   paper {:.3} Gb/s   (wire limit 64/84 x 4 = 3.048 Gb/s)",
        out.throughput_gbps,
        reference::SECTOR_LEVEL_GBPS
    );
}

fn ext(opts: &Opts) {
    use pcisim_kernel::tick::TICKS_PER_SEC;
    use pcisim_system::builder::{
        build_dual_disk_system, build_legacy_system, build_system, LegacySystemConfig, SystemConfig,
    };
    use pcisim_system::workload::dd::DdConfig;

    let block = if opts.full { 64 * MB } else { 4 * MB };

    println!(
        "
== Extension: legacy crossbar baseline vs the PCI-Express model =="
    );
    let mut legacy = build_legacy_system(LegacySystemConfig::default());
    let lr = legacy.attach_dd(DdConfig { block_bytes: block, ..DdConfig::default() });
    legacy.sim.run(TICKS_PER_SEC, u64::MAX);
    let mut pcie = build_system(SystemConfig::validation());
    let pr = pcie.attach_dd(DdConfig { block_bytes: block, ..DdConfig::default() });
    pcie.sim.run(TICKS_PER_SEC, u64::MAX);
    let (l, p) = (lr.borrow().throughput_gbps(), pr.borrow().throughput_gbps());
    println!(
        "legacy IOBus (no PCIe model): {l:.3} Gb/s   PCIe Gen2 x1 reality: {p:.3} Gb/s   ({:.1}x overstated)",
        l / p
    );

    println!(
        "
== Extension: dual-disk contention on the shared root link =="
    );
    let mut rows = Vec::new();
    for width in [
        pcisim_pcie::params::LinkWidth::X1,
        pcisim_pcie::params::LinkWidth::X2,
        pcisim_pcie::params::LinkWidth::X4,
    ] {
        let mut config = SystemConfig::validation();
        config.root_link =
            pcisim_pcie::params::LinkConfig::new(pcisim_pcie::params::Generation::Gen2, width);
        let mut sys = build_dual_disk_system(config);
        let r0 = sys.attach_dd(0, DdConfig { block_bytes: block, ..DdConfig::default() });
        let r1 = sys.attach_dd(1, DdConfig { block_bytes: block, ..DdConfig::default() });
        sys.sim.run(TICKS_PER_SEC, u64::MAX);
        let (a, b) = (r0.borrow().throughput_gbps(), r1.borrow().throughput_gbps());
        rows.push(vec![
            width.to_string(),
            format!("{a:.3}"),
            format!("{b:.3}"),
            format!("{:.3}", a + b),
        ]);
    }
    println!("{}", table::render(&["root link", "disk0 Gb/s", "disk1 Gb/s", "aggregate"], &rows));

    println!(
        "
== Extension: NIC transmit sweep (DMA reads through the fabric) =="
    );
    let nic_tx_configs: Vec<NicTxExperiment> = [1u8, 2, 4, 8]
        .iter()
        .map(|&lanes| NicTxExperiment {
            width: LinkWidth::new(lanes),
            frames: if opts.full { 2048 } else { 256 },
            ..NicTxExperiment::default()
        })
        .collect();
    let outcomes = run_sweep(&nic_tx_configs, opts.jobs, run_nic_tx_experiment);
    let mut rows = Vec::new();
    for (config, out) in nic_tx_configs.iter().zip(&outcomes) {
        assert!(out.completed);
        rows.push(vec![
            config.width.to_string(),
            format!("{:.3}", out.throughput_gbps),
            format!("{:.0}", out.frames_per_sec),
        ]);
    }
    println!("{}", table::render(&["width", "Gb/s", "frames/s"], &rows));

    println!("\n== Extension: NIC receive at ~5 Gb/s line rate (DMA writes) ==");
    let nic_rx_configs: Vec<NicRxExperiment> = [1u8, 2, 4, 8]
        .iter()
        .map(|&lanes| NicRxExperiment {
            width: LinkWidth::new(lanes),
            frames: if opts.full { 2048 } else { 256 },
            ..NicRxExperiment::default()
        })
        .collect();
    let outcomes = run_sweep(&nic_rx_configs, opts.jobs, run_nic_rx_experiment);
    let mut rows = Vec::new();
    for (config, out) in nic_rx_configs.iter().zip(&outcomes) {
        assert!(out.completed);
        let total = out.frames_delivered + out.frames_dropped;
        rows.push(vec![
            config.width.to_string(),
            format!("{:.3}", out.delivered_gbps),
            format!("{:.1}%", 100.0 * out.frames_dropped as f64 / total as f64),
        ]);
    }
    println!("{}", table::render(&["width", "delivered Gb/s", "dropped"], &rows));

    println!("\n== Extension: credit-based flow control at x8 (vs the paper's ACK/NAK) ==");
    let mut rows = Vec::new();
    for (name, credits) in [("ack/nak only", None), ("credit FC (16)", Some(16usize))] {
        let out = run_dd_experiment(&DdExperiment {
            block_bytes: block,
            width_all: Some(LinkWidth::X8),
            credit_fc: credits,
            ..DdExperiment::default()
        });
        assert!(out.completed);
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", out.throughput_gbps),
            format!("{:.1}%", out.replay_pct),
            format!("{:.1}%", out.timeout_pct),
        ]);
    }
    println!("{}", table::render(&["flow control", "dd (Gb/s)", "replay%", "timeout%"], &rows));
}

/// The deterministic fault campaign: `dd` goodput under link-level error
/// injection, swept over the `error_interval` ladder at several
/// generation/width points. Injection is a pure function of each
/// interface's transmit count, so the table is bit-identical across runs
/// and `--jobs` values.
fn faults(opts: &Opts) {
    println!("\n== Fault campaign: dd goodput under deterministic link error injection ==");
    println!("   a TLP is corrupted when splitmix64(tx_count) hits a multiple of the interval;");
    println!("   smaller interval = harsher (interval 0 = fault-free baseline)");
    let block = if opts.full { 4 * MB } else { 256 * 1024 };
    const POINTS: [(Generation, Option<LinkWidth>, &str); 3] = [
        (Generation::Gen2, None, "Gen2 x4/x1"),
        (Generation::Gen2, Some(LinkWidth::X4), "Gen2 x4 all"),
        (Generation::Gen3, None, "Gen3 x4/x1"),
    ];
    let configs: Vec<FaultExperiment> = POINTS
        .iter()
        .flat_map(|&(generation, width_all, _)| error_rate_ladder(generation, width_all, block))
        .collect();
    let outcomes = if opts.warm_start {
        run_fault_sweep_warm(&configs, opts.jobs)
    } else {
        run_sweep(&configs, opts.jobs, run_fault_experiment)
    };
    let ladder_len = configs.len() / POINTS.len();
    let mut rows = Vec::new();
    for (pi, &(_, _, label)) in POINTS.iter().enumerate() {
        for li in 0..ladder_len {
            let out = &outcomes[pi * ladder_len + li];
            assert!(out.completed, "fault campaign point must converge: {out:?}");
            rows.push(vec![
                label.to_string(),
                if out.error_interval == 0 {
                    "none".to_string()
                } else {
                    format!("1/{}", out.error_interval)
                },
                format!("{:.3}", out.throughput_gbps),
                out.corrupt_drops.to_string(),
                out.replays.to_string(),
                out.naks.to_string(),
                format!("{:#06x}", out.device_aer_cor),
            ]);
        }
    }
    println!(
        "{}",
        table::render(
            &["links", "err rate", "dd (Gb/s)", "corrupt", "replays", "naks", "dev AER cor"],
            &rows
        )
    );
}

/// The multi-endpoint contention tables: identical dual-NIC transmit
/// streams behind one shared switch uplink vs. split across root ports.
/// Placement is the designer's knob; the fabric model prices it.
fn topology(opts: &Opts) {
    println!("\n== Topology: dual-NIC placement — shared uplink vs. split root ports ==");
    println!("   each NIC offers ~10 Gb/s (1514 B / 1.2 µs); links Gen2 x4");
    let out = run_topology_experiment(&TopologyExperiment {
        frames: if opts.full { 2048 } else { 256 },
        ..TopologyExperiment::default()
    });
    let mut rows = Vec::new();
    for (label, arm) in [("shared uplink", &out.shared), ("split root ports", &out.split)] {
        assert!(arm.completed, "topology arm must complete: {arm:?}");
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", arm.per_stream_gbps[0]),
            format!("{:.3}", arm.per_stream_gbps[1]),
            format!("{:.3}", arm.aggregate_gbps()),
            format!("{:.0}", arm.p99_dma_read_ns[0]),
            format!("{:.0}", arm.p99_dma_read_ns[1]),
        ]);
    }
    println!(
        "{}",
        table::render(
            &["placement", "nic0 Gb/s", "nic1 Gb/s", "aggregate", "nic0 p99 (ns)", "nic1 p99 (ns)"],
            &rows
        )
    );
}

/// The interrupt-delivery tables: the same NIC transmit load serviced
/// over a single legacy INTx line vs. per-queue MSI-X vectors (doorbell
/// memory writes through the fabric), then the queue-count and
/// per-vector moderation sweeps.
fn msix(opts: &Opts) {
    let frames = if opts.full { 2048 } else { 256 };

    println!("\n== MSI-X: interrupt delivery — legacy INTx vs per-queue vectors ==");
    println!("   same offered load; INTx = single queue on the shared line,");
    println!("   MSI-X = per-queue vectors as posted memory writes; links Gen2 x4");
    let mode_configs: Vec<MsixTxExperiment> = vec![
        MsixTxExperiment { frames, use_msix: false, queues: 1, ..MsixTxExperiment::default() },
        MsixTxExperiment { frames, queues: 1, ..MsixTxExperiment::default() },
        MsixTxExperiment { frames, queues: 4, ..MsixTxExperiment::default() },
    ];
    let labels = ["INTx, 1 queue", "MSI-X, 1 queue", "MSI-X, 4 queues"];
    let outcomes = run_sweep(&mode_configs, opts.jobs, run_msix_tx_experiment);
    let mut rows = Vec::new();
    for (label, out) in labels.iter().zip(&outcomes) {
        assert!(out.completed, "msix mode run must complete: {label}");
        rows.push(vec![
            (*label).to_string(),
            format!("{:.3}", out.throughput_gbps),
            format!("{:.0}", out.frames_per_sec),
            out.irqs.to_string(),
            format!("{:.2}", out.irqs as f64 / f64::from(frames)),
        ]);
    }
    println!("{}", table::render(&["mode", "Gb/s", "frames/s", "irqs", "irqs/frame"], &rows));

    println!("\n== MSI-X: queue-count sweep (per-queue vectors, no moderation) ==");
    let queue_configs: Vec<MsixTxExperiment> = [1u32, 2, 4]
        .iter()
        .map(|&queues| MsixTxExperiment { frames, queues, ..MsixTxExperiment::default() })
        .collect();
    let outcomes = run_sweep(&queue_configs, opts.jobs, run_msix_tx_experiment);
    let mut rows = Vec::new();
    for (config, out) in queue_configs.iter().zip(&outcomes) {
        assert!(out.completed, "msix queue sweep must complete: {config:?}");
        rows.push(vec![
            config.queues.to_string(),
            format!("{:.3}", out.throughput_gbps),
            format!("{:.0}", out.frames_per_sec),
            out.irqs.to_string(),
        ]);
    }
    println!("{}", table::render(&["queues", "Gb/s", "frames/s", "irqs"], &rows));

    println!("\n== MSI-X: per-vector moderation sweep (4 queues) ==");
    println!("   holdoff coalesces completions into one doorbell per timer expiry");
    let mod_configs: Vec<MsixTxExperiment> = [0u64, 10, 50]
        .iter()
        .map(|&usecs| MsixTxExperiment {
            frames,
            queues: 4,
            moderation: pcisim_kernel::tick::us(usecs),
            ..MsixTxExperiment::default()
        })
        .collect();
    let outcomes = run_sweep(&mod_configs, opts.jobs, run_msix_tx_experiment);
    let mut rows = Vec::new();
    for (&usecs, out) in [0u64, 10, 50].iter().zip(&outcomes) {
        assert!(out.completed, "msix moderation sweep must complete: {usecs} us");
        rows.push(vec![
            if usecs == 0 { "none".to_string() } else { format!("{usecs} us") },
            format!("{:.3}", out.throughput_gbps),
            out.irqs.to_string(),
            format!("{:.2}", out.irqs as f64 / f64::from(frames)),
            out.irqs_coalesced.to_string(),
        ]);
    }
    println!("{}", table::render(&["holdoff", "Gb/s", "irqs", "irqs/frame", "coalesced"], &rows));
}

/// The heavy-traffic poll-mode tables: the interrupt-driven receive
/// driver vs. the busy-poll driver on identical traffic, then the
/// million-flow offered-load ladder (warm-forked across `--jobs`), with
/// serial-vs-sharded identity and trace record→replay bit-identity
/// asserted on the middle rung.
fn pmd(opts: &Opts) {
    use std::sync::Arc;
    let frames: u32 = if opts.full { 4096 } else { 1024 };
    let base = PmdExperiment {
        traffic: Some(TrafficSpec::Generate(heavy_traffic(0xd04a_11ce, 1 << 20, frames, ns(1500)))),
        ..PmdExperiment::default()
    };

    println!("\n== PMD: interrupt-driven vs busy-poll receive on identical traffic ==");
    println!("   2^20 flows, heavy-tailed frame sizes, Poisson arrivals (mean gap 1.5 us);");
    println!("   poll mode never unmasks IMS — the NIC raises zero doorbells");
    let irq = run_irq_rx_experiment(&base);
    let poll = run_pmd_experiment(&base);
    assert!(irq.completed, "interrupt baseline must settle every frame: {irq:?}");
    assert!(poll.completed, "poll-mode run must settle every frame: {poll:?}");
    assert!(irq.irqs > 0, "the interrupt baseline takes a doorbell per writeback");
    assert_eq!(poll.irqs, 0, "poll mode must run with interrupts fully masked");
    let mut rows = Vec::new();
    for (label, out) in [("interrupt-driven", &irq), ("busy-poll (PMD)", &poll)] {
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", out.rx_gbps),
            out.rx_delivered.to_string(),
            out.rx_dropped.to_string(),
            out.irqs.to_string(),
            out.polls.to_string(),
            format!("{:.0}", out.frame_latency_p50_ns),
            format!("{:.0}", out.frame_latency_p99_ns),
        ]);
    }
    println!(
        "{}",
        table::render(
            &["mode", "rx Gb/s", "delivered", "dropped", "irqs", "polls", "p50 (ns)", "p99 (ns)"],
            &rows
        )
    );
    println!("   poll mode settled {} frames with 0 interrupts", poll.rx_delivered);

    println!("\n== PMD: offered-load ladder (busy-poll, warm-forked sweep) ==");
    println!("   same flow population and size tail, mean inter-arrival gap swept");
    let gaps = [ns(4000), ns(2500), ns(1500), ns(1000), ns(700)];
    let Some(TrafficSpec::Generate(base_cfg)) = base.traffic.clone() else { unreachable!() };
    let configs: Vec<PmdExperiment> = offered_load_ladder(base_cfg, &gaps)
        .into_iter()
        .map(|t| PmdExperiment { traffic: Some(TrafficSpec::Generate(t)), ..base.clone() })
        .collect();
    let outcomes = run_pmd_sweep_warm(&configs, opts.jobs);
    let mut rows = Vec::new();
    for (&gap, out) in gaps.iter().zip(&outcomes) {
        assert!(out.completed, "ladder rung must settle: gap {gap}");
        let total = out.rx_delivered + out.rx_dropped;
        rows.push(vec![
            format!("{}", gap / 1000),
            format!("{:.3}", out.rx_gbps),
            out.rx_delivered.to_string(),
            format!("{:.1}%", 100.0 * out.rx_dropped as f64 / total as f64),
            out.polls.to_string(),
            format!("{:.0}", out.frame_latency_p50_ns),
            format!("{:.0}", out.frame_latency_p99_ns),
        ]);
    }
    println!(
        "{}",
        table::render(
            &["mean gap (ns)", "rx Gb/s", "delivered", "dropped", "polls", "p50 (ns)", "p99 (ns)"],
            &rows
        )
    );

    println!("\n== PMD: identity checks on the middle rung ==");
    let mid = &configs[gaps.len() / 2];
    let serial = run_pmd_sharded(mid, 1);
    let sharded = run_pmd_sharded(mid, 2);
    assert_eq!(serial, sharded, "sharded pmd must reproduce the serial run bit-for-bit");
    println!(
        "   serial == 2-shard: quiesce tick {}, stats fnv {:#018x}",
        serial.quiesce_tick, serial.stats_fnv
    );
    let Some(TrafficSpec::Generate(mid_cfg)) = &mid.traffic else { unreachable!() };
    let trace = record_trace(mid_cfg);
    let live = run_pmd_experiment(mid);
    let replayed = run_pmd_experiment(&PmdExperiment {
        traffic: Some(TrafficSpec::Replay(Arc::new(trace.clone()))),
        ..mid.clone()
    });
    assert_eq!(live, replayed, "trace replay must reproduce the live generator bit-for-bit");
    println!(
        "   record -> replay: {} bytes for {frames} frames, bit-identical (stats fnv {:#018x})",
        trace.len(),
        live.stats_fnv
    );
}

/// The CXL.mem memory-expansion tables: local-DRAM vs CXL-attached
/// load/store latency and bandwidth (open-loop window sweep), the
/// behind-switch placement penalty measured with a fully dependent
/// pointer chase, and the 2–4-way HDM-interleaving aggregate, with
/// serial-vs-sharded bit-identity asserted on the interleaved tree.
fn cxl(opts: &Opts) {
    let requests: u32 = if opts.full { 1024 } else { 256 };

    println!("\n== CXL: local DRAM vs CXL-attached expander — open-loop load stream ==");
    println!("   64 B loads every 100 ns, in-flight window swept; expander on Gen3 x8");
    const WINDOWS: [usize; 4] = [1, 2, 4, 8];
    let arms = [("local DRAM", CxlPlacement::LocalDram), ("CXL direct", CxlPlacement::Direct)];
    let configs: Vec<CxlExperiment> = arms
        .iter()
        .flat_map(|&(_, placement)| {
            WINDOWS.iter().map(move |&outstanding| CxlExperiment {
                placement,
                requests,
                outstanding,
                ..CxlExperiment::default()
            })
        })
        .collect();
    let outcomes = run_sweep(&configs, opts.jobs, run_cxl_experiment);
    let mut rows = Vec::new();
    for (ai, &(label, _)) in arms.iter().enumerate() {
        for (wi, &window) in WINDOWS.iter().enumerate() {
            let out = &outcomes[ai * WINDOWS.len() + wi];
            assert!(out.completed, "cxl curve point must complete: {out:?}");
            rows.push(vec![
                label.to_string(),
                window.to_string(),
                format!("{:.0}", out.mean_ns),
                format!("{:.0}", out.max_ns),
                format!("{:.3}", out.gbps),
                out.stalls.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        table::render(&["target", "window", "mean (ns)", "max (ns)", "Gb/s", "stalls"], &rows)
    );

    println!("\n== CXL: placement penalty — fully dependent pointer chase ==");
    println!("   every load's address comes from the previous completion's data;");
    println!("   the chase rate is the raw round-trip, no overlap to hide it");
    let chase = |placement| CxlExperiment {
        placement,
        mode: CxlHostMode::PointerChase,
        requests,
        chain_blocks: 128,
        ..CxlExperiment::default()
    };
    let chase_configs = vec![
        chase(CxlPlacement::LocalDram),
        chase(CxlPlacement::Direct),
        chase(CxlPlacement::BehindSwitch),
    ];
    let chase_labels = ["local DRAM", "CXL direct", "CXL behind switch"];
    let chase_outcomes = run_sweep(&chase_configs, opts.jobs, run_cxl_experiment);
    for out in &chase_outcomes {
        assert!(out.completed, "cxl chase arm must complete: {out:?}");
    }
    assert!(
        chase_outcomes[1].mean_ns > chase_outcomes[0].mean_ns,
        "expander access must cost more than local DRAM"
    );
    assert!(
        chase_outcomes[2].mean_ns > chase_outcomes[1].mean_ns,
        "the switch hop must add latency"
    );
    let local_mean = chase_outcomes[0].mean_ns;
    let mut rows = Vec::new();
    for (label, out) in chase_labels.iter().zip(&chase_outcomes) {
        rows.push(vec![
            (*label).to_string(),
            format!("{:.0}", out.mean_ns),
            format!("{:.0}", out.min_ns),
            format!("{:.0}", out.max_ns),
            format!("{:+.0}", out.mean_ns - local_mean),
        ]);
    }
    println!(
        "{}",
        table::render(&["placement", "mean (ns)", "min (ns)", "max (ns)", "vs local"], &rows)
    );

    println!("\n== CXL: HDM interleaving — one open-loop stream per expander ==");
    println!("   block-granule windows, one root port per expander; aggregate = sum of streams");
    let ways: [usize; 4] = [1, 2, 3, 4];
    let ileave_configs: Vec<CxlExperiment> = ways
        .iter()
        .map(|&n| CxlExperiment {
            placement: if n == 1 { CxlPlacement::Direct } else { CxlPlacement::Interleaved(n) },
            requests,
            ..CxlExperiment::default()
        })
        .collect();
    let ileave_outcomes = run_sweep(&ileave_configs, opts.jobs, run_cxl_experiment);
    let base = ileave_outcomes[0].gbps;
    let mut rows = Vec::new();
    for (&n, out) in ways.iter().zip(&ileave_outcomes) {
        assert!(out.completed, "cxl interleave point must complete: {out:?}");
        rows.push(vec![
            format!("{n}-way"),
            out.completed_accesses.to_string(),
            format!("{:.0}", out.mean_ns),
            format!("{:.3}", out.gbps),
            format!("{:.2}x", out.gbps / base),
        ]);
    }
    println!(
        "{}",
        table::render(
            &["interleave", "accesses", "mean (ns)", "aggregate Gb/s", "vs 1-way"],
            &rows
        )
    );

    println!("\n== CXL: identity check on the 2-way interleaved tree ==");
    let mid = &ileave_configs[1];
    let serial = run_cxl_sharded(mid, 1);
    let sharded = run_cxl_sharded(mid, 2);
    assert_eq!(serial, sharded, "sharded cxl must reproduce the serial run bit-for-bit");
    println!(
        "   serial == 2-shard: quiesce tick {}, stats fnv {:#018x}",
        serial.quiesce_tick, serial.stats_fnv
    );
}

/// The virtio-over-PCIe tables: virtio-blk vs the IDE `dd` baseline on
/// per-request latency, virtio-net transmit vs the e1000e NIC on payload
/// throughput, and a queue-depth sweep of the blk virtqueue, with
/// serial-vs-sharded bit-identity asserted on the mixed-fleet tree.
fn virtio(opts: &Opts) {
    let requests: u32 = if opts.full { 512 } else { 128 };

    println!("\n== Virtio: virtio-blk vs IDE — per-request completion latency ==");
    println!("   4 KB reads, one request in flight; identical OS submit overhead");
    let blk_arm = |arm| VirtioExperiment { arm, requests, ..VirtioExperiment::default() };
    let lat_configs = vec![blk_arm(VirtioArm::IdeBaseline), blk_arm(VirtioArm::Blk)];
    let lat_labels = ["IDE (PIO regs + INTx)", "virtio-blk (virtqueue)"];
    let lat_outcomes = run_sweep(&lat_configs, opts.jobs, run_virtio_experiment);
    for out in &lat_outcomes {
        assert!(out.completed, "latency arm must complete: {out:?}");
    }
    assert!(
        lat_outcomes[1].mean_ns < lat_outcomes[0].mean_ns,
        "the paravirtual queue must beat the IDE register dance"
    );
    let ide_mean = lat_outcomes[0].mean_ns;
    let mut rows = Vec::new();
    for (label, out) in lat_labels.iter().zip(&lat_outcomes) {
        rows.push(vec![
            (*label).to_string(),
            out.requests.to_string(),
            format!("{:.0}", out.mean_ns),
            format!("{:.0}", out.max_ns),
            format!("{:.2}x", ide_mean / out.mean_ns),
        ]);
    }
    println!(
        "{}",
        table::render(&["driver", "requests", "mean (ns)", "max (ns)", "speedup"], &rows)
    );

    println!("\n== Virtio: virtio-net TX vs e1000e — 1514 B frames, payload Gb/s ==");
    println!("   both on a Gen2 x4 link with a 10 Gb/s wire; virtio at QD8 over MSI-X");
    let nic = run_nic_tx_experiment(&NicTxExperiment {
        width: LinkWidth::X4,
        frames: requests,
        ..NicTxExperiment::default()
    });
    assert!(nic.completed, "e1000e baseline must complete");
    let vnet = |use_msix| VirtioExperiment {
        arm: VirtioArm::NetTx,
        requests,
        queue_depth: 8,
        request_bytes: 1514,
        use_msix,
        ..VirtioExperiment::default()
    };
    let net_configs = vec![vnet(false), vnet(true)];
    let net_outcomes = run_sweep(&net_configs, opts.jobs, run_virtio_experiment);
    for out in &net_outcomes {
        assert!(out.completed, "net arm must complete: {out:?}");
    }
    let mut rows = vec![vec![
        "e1000e (tail doorbell)".to_string(),
        requests.to_string(),
        format!("{:.3}", nic.throughput_gbps),
        "-".to_string(),
    ]];
    for (label, out) in
        ["virtio-net (INTx)", "virtio-net (MSI-X)"].iter().zip(&net_outcomes)
    {
        rows.push(vec![
            (*label).to_string(),
            out.requests.to_string(),
            format!("{:.3}", out.gbps),
            out.irqs.to_string(),
        ]);
    }
    println!("{}", table::render(&["driver", "frames", "Gb/s", "irqs"], &rows));

    println!("\n== Virtio: blk queue-depth sweep — 4 KB reads, one virtqueue ==");
    const DEPTHS: [u32; 5] = [1, 2, 4, 8, 16];
    let qd_configs: Vec<VirtioExperiment> = DEPTHS
        .iter()
        .map(|&queue_depth| VirtioExperiment {
            queue_depth,
            requests,
            ..VirtioExperiment::default()
        })
        .collect();
    let qd_outcomes = run_sweep(&qd_configs, opts.jobs, run_virtio_experiment);
    let base = qd_outcomes[0].gbps;
    let mut rows = Vec::new();
    for (&qd, out) in DEPTHS.iter().zip(&qd_outcomes) {
        assert!(out.completed, "queue-depth point must complete: {out:?}");
        rows.push(vec![
            qd.to_string(),
            format!("{:.0}", out.mean_ns),
            format!("{:.3}", out.gbps),
            out.irqs.to_string(),
            format!("{:.2}x", out.gbps / base),
        ]);
    }
    println!(
        "{}",
        table::render(&["depth", "mean (ns)", "Gb/s", "irqs", "vs QD1"], &rows)
    );

    println!("\n== Virtio: identity check on the mixed fleet (blk + net + IDE) ==");
    let mixed = VirtioExperiment {
        arm: VirtioArm::Mixed,
        requests: 32,
        queue_depth: 2,
        ..VirtioExperiment::default()
    };
    let serial = run_virtio_sharded(&mixed, 1);
    let sharded = run_virtio_sharded(&mixed, 2);
    assert!(serial.completed, "mixed fleet must complete: {serial:?}");
    assert_eq!(serial, sharded, "sharded virtio must reproduce the serial run bit-for-bit");
    println!(
        "   serial == 2-shard: quiesce tick {}, stats fnv {:#018x}",
        serial.quiesce_tick, serial.stats_fnv
    );
}

/// The shard-scaling tables: the same multi-endpoint `dd` run partitioned
/// across 1, 2, … worker shards with conservative link-lookahead sync.
/// Every shard count must reproduce the serial quiesce tick and stats FNV
/// bit-for-bit; what varies is only the aggregate event rate.
fn shard_scaling(opts: &Opts) {
    use pcisim_system::topology::Topology;
    println!("\n== Shard scaling: conservative link-lookahead parallel runs ==");
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "   host has {cpus} core{}: parallel speedup needs shards <= cores; \
         identity holds regardless",
        if cpus == 1 { "" } else { "s" }
    );
    let mut ladder: Vec<usize> = Vec::new();
    let mut n = 1;
    while n < opts.shards.max(1) {
        ladder.push(n);
        n *= 2;
    }
    ladder.push(opts.shards.max(1));
    // The 256-bus architectural limit caps a PCI segment below 256
    // endpoints (every link consumes a bus number): fanout(3,8,8) — 192
    // disks on 247 buses — is the widest 3-level tree the spec admits.
    let arms: Vec<(&str, Topology, u64)> = if opts.full {
        vec![
            ("cascaded(3)", Topology::cascaded(3), 16 * MB),
            ("fanout(3,8,8), 192 disks", Topology::fanout(3, 8, 8), 256 * 1024),
        ]
    } else {
        vec![
            ("cascaded(3)", Topology::cascaded(3), MB),
            ("fanout(2,4,4), 32 disks", Topology::fanout(2, 4, 4), 256 * 1024),
        ]
    };
    for (label, topo, block) in arms {
        println!("\n   {label}, one {}KB dd stream per disk:", block / 1024);
        let mut rows = Vec::new();
        let mut base: Option<ShardScalingOutcome> = None;
        for &shards in &ladder {
            let out = run_shard_scaling(topo.clone(), shards, block);
            if let Some(b) = &base {
                assert_eq!(out.quiesce_tick, b.quiesce_tick, "{label}: quiesce tick must match");
                assert_eq!(out.stats_fnv, b.stats_fnv, "{label}: stats FNV must match");
            }
            rows.push(vec![
                out.shards.to_string(),
                out.cut_links.to_string(),
                out.events.to_string(),
                format!("{:.1}", out.wall_secs * 1e3),
                format!("{:.0}", out.events_per_sec()),
                base.as_ref().map_or("1.00x".to_string(), |b| {
                    format!("{:.2}x", out.events_per_sec() / b.events_per_sec())
                }),
            ]);
            if base.is_none() {
                base = Some(out);
            }
        }
        let b = base.expect("ladder is non-empty");
        println!(
            "   bit-identical at every shard count: quiesce tick {}, stats fnv {:#018x}",
            b.quiesce_tick, b.stats_fnv
        );
        println!(
            "{}",
            table::render(
                &["shards", "cut links", "events", "wall ms", "events/s", "vs serial"],
                &rows
            )
        );
    }
}

/// Re-runs the Table II 150 ns point with tracing, dumps Perfetto JSON to
/// `path` and prints the per-stage latency attribution (the paper's "where
/// does the access latency go" question, answered from the trace).
fn trace_dump(path: &str) {
    println!("\n== Traced run: Table II @ rc=150 ns, full event trace ==");
    let out = run_mmio_experiment(&MmioExperiment {
        rc_latency: ns(150),
        reads: 8,
        cpu_overhead: 0,
        trace: true,
    });
    assert!(out.completed, "traced run must complete");
    let log = out.trace.expect("trace requested");
    std::fs::write(path, log.to_perfetto_json()).expect("write trace file");
    println!("Perfetto trace written to {path} (open in ui.perfetto.dev).\n");
    println!("{}", log.attribution().render());
}

/// Demonstrates file-backed checkpoint/restore: warms up the validation
/// `dd` system, saves it to `path`, rebuilds the tree from the warm seed
/// (no enumeration, no driver probe), restores from the file and resumes
/// to completion — asserting the restored run is bit-identical to an
/// uninterrupted cold run.
fn checkpoint_demo(path: &str) {
    use pcisim_kernel::sim::RunOutcome;
    use pcisim_kernel::tick::TICKS_PER_SEC;
    use pcisim_system::builder::{build_system, build_system_warm, SystemConfig};
    use pcisim_system::workload::dd::DdConfig;

    println!("\n== Checkpoint demo: warm up, save, restore from file, resume ==");
    let block = MB;

    // Cold reference: one uninterrupted run.
    let mut cold = build_system(SystemConfig::validation());
    let cold_report = cold.attach_dd(DdConfig { block_bytes: block, ..DdConfig::default() });
    assert_eq!(cold.sim.run(TICKS_PER_SEC, u64::MAX), RunOutcome::QueueEmpty);

    // Warm up a second system to WARMUP_TICK and save it to disk.
    let mut warm = build_system(SystemConfig::validation());
    let seed = warm.warm_seed();
    let _ = warm.attach_dd(DdConfig { block_bytes: block, ..DdConfig::default() });
    assert_eq!(warm.sim.run(WARMUP_TICK, u64::MAX), RunOutcome::TimeLimit);
    let bytes = warm.checkpoint_to(path).expect("checkpoint written");

    // Rebuild from the seed, restore the file, resume.
    let mut restored = build_system_warm(SystemConfig::validation(), &seed);
    let report = restored.attach_dd(DdConfig { block_bytes: block, ..DdConfig::default() });
    restored.restore_from(path).expect("checkpoint restores");
    assert_eq!(restored.sim.run(TICKS_PER_SEC, u64::MAX), RunOutcome::QueueEmpty);

    let (c, r) = (cold_report.borrow().clone(), report.borrow().clone());
    assert_eq!(cold.sim.now(), restored.sim.now(), "restored run must match the cold run");
    assert_eq!(c.throughput_gbps().to_bits(), r.throughput_gbps().to_bits());
    println!("checkpoint: {bytes} bytes (taken at tick {WARMUP_TICK}) -> {path}");
    println!("cold run:     {:.3} Gb/s, done at tick {}", c.throughput_gbps(), cold.sim.now());
    println!(
        "restored run: {:.3} Gb/s, done at tick {} (bit-identical)",
        r.throughput_gbps(),
        restored.sim.now()
    );
}

/// Number of microbenchmark samples; `PCISIM_BENCH_SAMPLES` overrides the
/// default of 3 (the same knob the criterion shim honours).
fn bench_samples() -> u32 {
    std::env::var("PCISIM_BENCH_SAMPLES").ok().and_then(|s| s.parse().ok()).unwrap_or(3)
}

/// Measures the microbenchmark scenarios plus the warm-start cold/warm
/// comparison and writes the speed report.
fn bench_json(path: &str, sweep_wall_ms: &[(String, u64)]) {
    println!("\n== simulator_speed microbenchmarks (for {path}) ==");
    let micro = benchjson::run_micro_benchmarks(bench_samples());
    for m in &micro {
        println!(
            "{:>16}: {:>12.0} ops/s  {:>12.0} events/s  ({:.2} ms)",
            m.name, m.ops_per_sec, m.events_per_sec, m.wall_ms
        );
    }
    let warm = benchjson::run_warm_start_benchmark(bench_samples());
    println!(
        "{:>16}: cold {:>8.1} ms vs warm {:>8.1} ms over {} configs ({:.2}x; warm arm \
         skips {} setup passes + {} warmup events/point, still runs each workload tail)",
        "warm_start",
        warm.cold_ms,
        warm.warm_ms,
        warm.configs,
        warm.speedup(),
        warm.cold_setups - warm.warm_setups,
        warm.warm_events_skipped,
    );
    std::fs::write(path, benchjson::render_json(&micro, sweep_wall_ms, Some(&warm)))
        .expect("write bench json");
    println!("speed report written to {path}");
}

/// CI smoke gate: re-measures the scenarios and compares against the
/// `current` section of the checked-in JSON. Exits non-zero on a >30%
/// ops/sec regression, on any scenario dipping under the absolute
/// events/sec floor, or on a `null`/non-finite baseline entry (a `null`
/// means a broken measurement was checked in — regenerate the file with
/// `--bench-json` instead of gating against garbage).
fn bench_check(path: &str) -> i32 {
    const MAX_REGRESSION: f64 = 0.30;
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench baseline {path}: {e}"));
    let doc = benchjson::parse(&text).unwrap_or_else(|e| panic!("bad JSON in {path}: {e}"));
    let floor = match doc.path(&["floors", "events_per_sec"]) {
        // Baselines written before the floor existed fall back to the
        // compiled-in value.
        None => benchjson::EVENTS_PER_SEC_FLOOR,
        Some(v) => v.as_f64().filter(|f| f.is_finite() && *f > 0.0).unwrap_or_else(|| {
            panic!("floors.events_per_sec in {path} is {v:?}, not a positive finite number")
        }),
    };
    let micro = benchjson::run_micro_benchmarks(bench_samples());
    let mut failed = false;
    println!("== bench smoke: measured vs baseline ({path}), events/s floor {floor:.0} ==");
    for m in &micro {
        let mut verdict = "ok";
        if m.events_per_sec < floor {
            failed = true;
            verdict = "UNDER FLOOR";
        }
        match doc.path(&["current", "ops_per_sec", m.name]) {
            None => {
                println!(
                    "{:>22}: {:>12.0} ops/s  {:>12.0} events/s — no baseline entry {verdict}",
                    m.name, m.ops_per_sec, m.events_per_sec
                );
            }
            Some(entry) => {
                let base =
                    entry.as_f64().filter(|b| b.is_finite() && *b > 0.0).unwrap_or_else(|| {
                        panic!(
                            "baseline ops_per_sec for {} in {path} is {entry:?} — a null or \
                             non-finite baseline means a broken measurement was checked in; \
                             regenerate with --bench-json",
                            m.name
                        )
                    });
                let ratio = m.ops_per_sec / base;
                if ratio < 1.0 - MAX_REGRESSION {
                    failed = true;
                    verdict = "REGRESSION";
                }
                println!(
                    "{:>22}: {:>12.0} ops/s vs baseline {:>12.0} ({:>5.2}x) {verdict}",
                    m.name, m.ops_per_sec, base, ratio
                );
            }
        }
    }
    if failed {
        eprintln!(
            "bench smoke FAILED: ops/sec regressed more than {:.0}% or events/sec \
             fell under the {floor:.0} floor",
            MAX_REGRESSION * 100.0
        );
        1
    } else {
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let value_of = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .cloned()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        })
    };
    let jobs = value_of("--jobs")
        .map(|v| v.parse::<usize>().unwrap_or_else(|_| panic!("--jobs needs a number, got {v}")))
        .unwrap_or_else(default_jobs);
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| "repro_trace.json".into()));
    let bench_json_path = value_of("--bench-json");
    let checkpoint_path = value_of("--checkpoint");
    if let Some(path) = value_of("--bench-check") {
        std::process::exit(bench_check(&path));
    }
    let warm_start = args.iter().any(|a| a == "--warm-start");
    let shards = value_of("--shards")
        .map(|v| v.parse::<usize>().unwrap_or_else(|_| panic!("--shards needs a number, got {v}")))
        .unwrap_or(4);
    let opts = Opts { full, jobs, warm_start, shards };
    const VALUE_FLAGS: [&str; 6] =
        ["--trace", "--jobs", "--shards", "--bench-json", "--bench-check", "--checkpoint"];
    let mut skip_next = false;
    let picked: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if VALUE_FLAGS.contains(a) {
                skip_next = true;
                return false;
            }
            *a != "--full" && *a != "--warm-start"
        })
        .collect();
    let run_all = picked.is_empty() || picked.contains(&"all");

    println!(
        "pcisim repro — {} mode (block sizes {}), {jobs} sweep worker{}{}",
        if full { "full" } else { "quick" },
        if full {
            "64–512 MB as in the paper"
        } else {
            "scaled down 16x; pass --full for the paper's sizes"
        },
        if jobs == 1 { "" } else { "s" },
        if warm_start { ", warm-started dd/fault sweeps" } else { "" },
    );
    let mut sweep_wall_ms: Vec<(String, u64)> = Vec::new();
    let mut timed = |name: &str, f: &dyn Fn(&Opts)| {
        let start = Instant::now();
        f(&opts);
        sweep_wall_ms.push((name.to_string(), start.elapsed().as_millis() as u64));
    };
    if run_all || picked.contains(&"sector") {
        timed("sector", &sector);
    }
    if run_all || picked.contains(&"fig9a") {
        timed("fig9a", &fig9a);
    }
    if run_all || picked.contains(&"fig9b") {
        timed("fig9b", &fig9b);
    }
    if run_all || picked.contains(&"fig9c") {
        timed("fig9c", &fig9c);
    }
    if run_all || picked.contains(&"fig9d") {
        timed("fig9d", &fig9d);
    }
    if run_all || picked.contains(&"table2") {
        timed("table2", &table2);
    }
    if run_all || picked.contains(&"ext") {
        timed("ext", &ext);
    }
    if run_all || picked.contains(&"faults") || picked.contains(&"--faults") {
        timed("faults", &faults);
    }
    if run_all || picked.contains(&"topology") || picked.contains(&"--topology") {
        timed("topology", &topology);
    }
    if run_all || picked.contains(&"msix") || picked.contains(&"--msix") {
        timed("msix", &msix);
    }
    if run_all || picked.contains(&"pmd") || picked.contains(&"--pmd") {
        timed("pmd", &pmd);
    }
    if run_all || picked.contains(&"shard") || picked.contains(&"--shard") {
        timed("shard", &shard_scaling);
    }
    if run_all || picked.contains(&"cxl") || picked.contains(&"--cxl") {
        timed("cxl", &cxl);
    }
    if run_all || picked.contains(&"virtio") || picked.contains(&"--virtio") {
        timed("virtio", &virtio);
    }
    if let Some(path) = trace_path {
        trace_dump(&path);
    }
    if let Some(path) = checkpoint_path {
        checkpoint_demo(&path);
    }
    if let Some(path) = bench_json_path {
        bench_json(&path, &sweep_wall_ms);
    }
}
