//! Fig. 9(d): dd over x8 links while sweeping switch/root port buffers
//! 16–28 with the replay buffer restored to 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcisim_pcie::params::LinkWidth;
use pcisim_system::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9d_port_buffers");
    g.sample_size(10);
    for pb in [16usize, 20, 24, 28] {
        g.bench_with_input(BenchmarkId::from_parameter(pb), &pb, |b, &pb| {
            b.iter(|| {
                let out = run_dd_experiment(&DdExperiment {
                    block_bytes: 1024 * 1024,
                    width_all: Some(LinkWidth::X8),
                    port_buffers: pb,
                    ..DdExperiment::default()
                });
                assert!(out.completed);
                out.throughput_gbps
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
