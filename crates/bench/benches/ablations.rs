//! Ablations over design choices the paper calls out:
//!
//! * posted vs non-posted DMA writes (§VI-B blames the missing posted
//!   writes for part of the bandwidth gap);
//! * immediate vs batched acknowledgements (§V-C's ACK timer);
//! * the width-scaled vs x1-evaluated replay-timeout formula;
//! * Gen 2 vs Gen 3 encoding overhead at the device-level microbench.

use criterion::{criterion_group, criterion_main, Criterion};
use pcisim_pcie::params::LinkWidth;
use pcisim_system::prelude::*;

fn posted_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_posted_writes");
    g.sample_size(10);
    for (name, posted) in [("non_posted", false), ("posted", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let out = run_dd_experiment(&DdExperiment {
                    block_bytes: 1024 * 1024,
                    posted_writes: posted,
                    ..DdExperiment::default()
                });
                assert!(out.completed);
                out.throughput_gbps
            });
        });
    }
    g.finish();
}

fn ack_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ack_batching");
    g.sample_size(10);
    for (name, immediate) in [("batched", false), ("immediate", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let out = run_dd_experiment(&DdExperiment {
                    block_bytes: 1024 * 1024,
                    ack_immediate: immediate,
                    ..DdExperiment::default()
                });
                assert!(out.completed);
                out.throughput_gbps
            });
        });
    }
    g.finish();
}

fn sector_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sector_width");
    g.sample_size(10);
    for lanes in [1u8, 4, 8] {
        g.bench_function(format!("x{lanes}"), |b| {
            b.iter(|| {
                let out = run_sector_microbench(LinkWidth::new(lanes), 64);
                assert!(out.completed);
                out.throughput_gbps
            });
        });
    }
    g.finish();
}

fn cut_through(c: &mut Criterion) {
    use pcisim_system::builder::{build_system, SystemConfig};
    use pcisim_system::workload::dd::DdConfig;
    let mut g = c.benchmark_group("ablation_cut_through");
    g.sample_size(10);
    for (name, cut) in [("store_and_forward", false), ("cut_through", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut config = SystemConfig::validation();
                config.root_link.cut_through = cut;
                config.device_link.cut_through = cut;
                let mut built = build_system(config);
                let report =
                    built.attach_dd(DdConfig { block_bytes: 1024 * 1024, ..DdConfig::default() });
                built.sim.run(pcisim_kernel::tick::TICKS_PER_SEC, u64::MAX);
                let r = report.borrow();
                assert!(r.done);
                r.throughput_gbps()
            });
        });
    }
    g.finish();
}

fn credit_flow_control(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_credit_fc");
    g.sample_size(10);
    for (name, credits) in [("acknak_only", None), ("credit_fc_16", Some(16))] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let out = run_dd_experiment(&DdExperiment {
                    block_bytes: 1024 * 1024,
                    width_all: Some(LinkWidth::X8),
                    credit_fc: credits,
                    ..DdExperiment::default()
                });
                assert!(out.completed);
                out.throughput_gbps
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    posted_writes,
    ack_batching,
    sector_width,
    cut_through,
    credit_flow_control
);
criterion_main!(benches);
