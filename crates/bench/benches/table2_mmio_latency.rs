//! Table II: 4-byte MMIO register reads from the NIC while sweeping the
//! root-complex latency 50–150 ns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcisim_kernel::tick::ns;
use pcisim_system::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_mmio_latency");
    g.sample_size(10);
    for lat in [50u64, 75, 100, 125, 150] {
        g.bench_with_input(BenchmarkId::from_parameter(lat), &lat, |b, &lat| {
            b.iter(|| {
                let out = run_mmio_experiment(&MmioExperiment {
                    rc_latency: ns(lat),
                    reads: 16,
                    ..MmioExperiment::default()
                });
                assert!(out.completed);
                out.mean_ns
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
