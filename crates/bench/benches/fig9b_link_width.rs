//! Fig. 9(b): dd throughput while sweeping every link's width x1–x8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcisim_pcie::params::LinkWidth;
use pcisim_system::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9b_link_width");
    g.sample_size(10);
    for lanes in [1u8, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("width", format!("x{lanes}")), &lanes, |b, &lanes| {
            b.iter(|| {
                let out = run_dd_experiment(&DdExperiment {
                    block_bytes: 1024 * 1024,
                    width_all: Some(LinkWidth::new(lanes)),
                    ..DdExperiment::default()
                });
                assert!(out.completed);
                out.throughput_gbps
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
