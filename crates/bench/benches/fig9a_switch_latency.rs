//! Fig. 9(a): dd throughput while sweeping the switch processing latency
//! (50–150 ns) on the validation topology, criterion-sampled at a reduced
//! block size. The `repro` binary prints the full table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcisim_kernel::tick::ns;
use pcisim_system::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9a_switch_latency");
    g.sample_size(10);
    for lat in [50u64, 100, 150] {
        g.bench_with_input(BenchmarkId::from_parameter(lat), &lat, |b, &lat| {
            b.iter(|| {
                let out = run_dd_experiment(&DdExperiment {
                    block_bytes: 1024 * 1024,
                    switch_latency: ns(lat),
                    ..DdExperiment::default()
                });
                assert!(out.completed);
                out.throughput_gbps
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
