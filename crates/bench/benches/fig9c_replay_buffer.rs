//! Fig. 9(c): dd over x8 links while sweeping the replay buffer size 1–4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcisim_pcie::params::LinkWidth;
use pcisim_system::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9c_replay_buffer");
    g.sample_size(10);
    for rb in [1usize, 2, 3, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(rb), &rb, |b, &rb| {
            b.iter(|| {
                let out = run_dd_experiment(&DdExperiment {
                    block_bytes: 1024 * 1024,
                    width_all: Some(LinkWidth::X8),
                    replay_buffer: rb,
                    ..DdExperiment::default()
                });
                assert!(out.completed);
                out.throughput_gbps
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
