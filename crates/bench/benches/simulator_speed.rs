//! Raw simulator performance: events per second through the kernel and
//! TLPs per second through a saturated link — the numbers that bound how
//! large a block the `repro --full` runs can afford.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pcisim_kernel::packet::Command;
use pcisim_kernel::prelude::*;
use pcisim_kernel::testutil::{Requester, Responder, REQUESTER_PORT, RESPONDER_PORT};
use pcisim_pcie::link::{PcieLink, PORT_DOWN_MASTER, PORT_UP_SLAVE};
use pcisim_pcie::params::{Generation, LinkConfig, LinkWidth};

fn xbar_traffic(c: &mut Criterion) {
    const N: u64 = 10_000;
    let mut g = c.benchmark_group("simulator_speed");
    g.throughput(Throughput::Elements(N));
    g.bench_function("xbar_10k_reads", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let script = (0..N).map(|i| (Command::ReadReq, 0x1000 + (i % 64) * 64, 64)).collect();
            let (req, done) = Requester::new("gen", script);
            let r = sim.add(Box::new(req));
            let x = sim.add(Box::new(
                Crossbar::builder("xbar")
                    .num_ports(2)
                    .queue_capacity(32)
                    .route(AddrRange::new(0x1000, 0x10000), PortId(1))
                    .build(),
            ));
            let (resp, _) = Responder::new("dev", ns(10));
            let d = sim.add(Box::new(resp));
            sim.connect((r, PortId(0)), (x, PortId(0)));
            sim.connect((x, PortId(1)), (d, PortId(0)));
            sim.run_to_quiesce();
            assert_eq!(done.borrow().len(), N as usize);
        });
    });
    g.bench_function("link_10k_writes", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let script =
                (0..N).map(|i| (Command::WriteReq, 0x4000_0000 + (i % 64) * 64, 64)).collect();
            let (req, done) = Requester::new("gen", script);
            let r = sim.add(Box::new(req));
            let l = sim.add(Box::new(PcieLink::new(
                "link",
                LinkConfig::new(Generation::Gen2, LinkWidth::X8),
            )));
            let (resp, _) = Responder::new("dev", 0);
            let d = sim.add(Box::new(resp));
            sim.connect((r, REQUESTER_PORT), (l, PORT_UP_SLAVE));
            sim.connect((l, PORT_DOWN_MASTER), (d, RESPONDER_PORT));
            sim.run_to_quiesce();
            assert_eq!(done.borrow().len(), N as usize);
        });
    });
    g.finish();
}

criterion_group!(benches, xbar_traffic);
criterion_main!(benches);
