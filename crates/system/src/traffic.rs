//! System-level traffic orchestration.
//!
//! The generator itself lives in [`pcisim_devices::traffic`] (it feeds the
//! NIC's receive path directly, so sharded builds keep the stream on the
//! device's shard); this module re-exports it and adds the experiment-side
//! conveniences: canonical heavy-traffic shapes and offered-load ladders
//! for the `repro pmd` sweeps.

pub use pcisim_devices::traffic::{
    record_trace, ArrivalProcess, FrameEvent, SizeDist, TrafficConfig, TrafficFeed, TrafficGen,
    TrafficSpec,
};

use pcisim_kernel::tick::Tick;

/// The canonical heavy-traffic shape: millions of flows, heavy-tailed
/// (bounded-Pareto) frame sizes, Poisson arrivals with mean gap
/// `mean_gap`. Deterministic in `seed`.
pub fn heavy_traffic(seed: u64, flows: u32, frames: u32, mean_gap: Tick) -> TrafficConfig {
    TrafficConfig {
        seed,
        flows,
        frames,
        // Ethernet frame bounds with the classic alpha ~ 1.3 tail.
        size: SizeDist::Pareto { min: 64, max: 1514, alpha_milli: 1300 },
        arrival: ArrivalProcess::Poisson(mean_gap),
    }
}

/// An offered-load ladder: the same flow population and size distribution
/// swept across mean inter-arrival gaps, highest load (smallest gap)
/// last. Each rung is an independent deterministic stream reusing the
/// base seed, so rungs are comparable point-for-point across runs.
pub fn offered_load_ladder(base: TrafficConfig, gaps: &[Tick]) -> Vec<TrafficConfig> {
    gaps.iter()
        .map(|&gap| TrafficConfig {
            arrival: match base.arrival {
                ArrivalProcess::Periodic(_) => ArrivalProcess::Periodic(gap),
                ArrivalProcess::Poisson(_) => ArrivalProcess::Poisson(gap),
                ArrivalProcess::Bursty { burst, spacing, .. } => {
                    ArrivalProcess::Bursty { burst, spacing, gap }
                }
            },
            ..base
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcisim_kernel::tick::ns;

    #[test]
    fn ladder_preserves_everything_but_the_gap() {
        let base = heavy_traffic(42, 1 << 20, 10_000, ns(800));
        let rungs = offered_load_ladder(base, &[ns(1600), ns(800), ns(400)]);
        assert_eq!(rungs.len(), 3);
        for (rung, gap) in rungs.iter().zip([ns(1600), ns(800), ns(400)]) {
            assert_eq!(rung.arrival, ArrivalProcess::Poisson(gap));
            assert_eq!(rung.seed, base.seed);
            assert_eq!(rung.flows, base.flows);
            assert_eq!(rung.size, base.size);
        }
    }

    #[test]
    fn ladder_keeps_bursty_shape() {
        let base = TrafficConfig {
            arrival: ArrivalProcess::Bursty { burst: 8, spacing: ns(50), gap: ns(1000) },
            ..heavy_traffic(1, 1024, 256, ns(500))
        };
        let rungs = offered_load_ladder(base, &[ns(2000)]);
        assert_eq!(
            rungs[0].arrival,
            ArrivalProcess::Bursty { burst: 8, spacing: ns(50), gap: ns(2000) }
        );
    }
}
