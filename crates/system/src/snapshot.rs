//! System-level checkpoint/restore and warm-start seeds.
//!
//! The kernel's [`Simulation::checkpoint`]/[`Simulation::restore`] carry
//! the complete dynamic state of a component tree; this module adds the
//! system-side plumbing around them:
//!
//! * [`SystemHandle`] — one trait over every built system
//!   ([`BuiltSystem`], [`TopologySystem`], [`DualDiskSystem`]) exposing
//!   `checkpoint`/`restore` plus file-backed `checkpoint_to`/
//!   `restore_from`. The on-disk format is the kernel's checksummed
//!   checkpoint, whose body leads with the topology fingerprint — a
//!   checkpoint written from one tree refuses to restore into a
//!   differently shaped one.
//! * [`WarmSeed`] — the plain-data record of what the functional
//!   enumeration software and driver probe computed for a tree. Building
//!   a second, identically shaped tree from a seed
//!   ([`build_topology_warm`](crate::topology::build_topology_warm) /
//!   [`build_system_warm`](crate::builder::build_system_warm)) skips both
//!   walks; restoring a checkpoint then supplies every config-space
//!   image. The seed is `Send + Sync`, so one warmed-up reference run can
//!   fork every point of a parallel sweep.

use std::path::Path;

use pcisim_devices::driver::{InterruptMode, ProbeInfo};
use pcisim_kernel::sim::Simulation;
use pcisim_kernel::snapshot::SnapshotError;
use pcisim_pci::enumeration::EnumerationReport;

use crate::builder::{BuiltSystem, DualDiskSystem};
use crate::topology::{TopologySystem, MSI_VECTOR};

/// What one functional enumeration + driver-probe pass over a topology
/// computed, captured as plain data so it can be shared across sweep
/// worker threads and replayed into identically shaped trees.
///
/// A seed deliberately holds no `Rc` handles into the tree it came from:
/// cloning it is cheap and the clone is independent of the originating
/// simulation's lifetime.
#[derive(Debug, Clone)]
pub struct WarmSeed {
    /// What the enumeration software found (BDFs, BARs, bus ranges).
    pub report: EnumerationReport,
    /// The driver probe result — present when the tree carries exactly
    /// one endpoint, mirroring [`TopologySystem::probe`].
    pub probe: Option<ProbeInfo>,
    /// Interrupt line of each endpoint, in depth-first endpoint order.
    pub irqs: Vec<u8>,
}

/// Checkpoint/restore over any built system.
///
/// `checkpoint` serializes the complete dynamic state — simulated time,
/// the calendar queue (armed timers included, with event-handle slots
/// preserved), the PacketId allocator, the trace ring, every component
/// section, and all config-space images via the PCI host — into a
/// self-contained, versioned, FNV-checksummed byte image. `restore`
/// applies such an image to a freshly built tree with the same topology
/// fingerprint; afterwards the simulation continues bit-for-bit like the
/// one that was saved.
pub trait SystemHandle {
    /// The simulation holding every component of this system.
    fn sim_mut(&mut self) -> &mut Simulation;

    /// Serializes the system's complete dynamic state.
    fn checkpoint(&mut self) -> Vec<u8> {
        self.sim_mut().checkpoint()
    }

    /// Applies a checkpoint taken from an identically shaped tree.
    ///
    /// # Errors
    ///
    /// Any malformed, truncated, corrupted, version-skewed or
    /// wrong-topology input yields a typed [`SnapshotError`]; on error
    /// the system may be partially overwritten and must be discarded.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.sim_mut().restore(bytes)
    }

    /// Writes a checkpoint to `path` and returns the byte count.
    ///
    /// # Errors
    ///
    /// File-system failures surface as [`SnapshotError::Io`].
    fn checkpoint_to(&mut self, path: impl AsRef<Path>) -> Result<usize, SnapshotError> {
        let path = path.as_ref();
        let bytes = self.checkpoint();
        std::fs::write(path, &bytes)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
        Ok(bytes.len())
    }

    /// Reads a checkpoint file written by [`SystemHandle::checkpoint_to`]
    /// and applies it.
    ///
    /// # Errors
    ///
    /// File-system failures surface as [`SnapshotError::Io`]; a file from
    /// a differently shaped tree is rejected with
    /// [`SnapshotError::TopologyMismatch`], and any corruption with the
    /// matching typed variant — never a panic.
    fn restore_from(&mut self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| SnapshotError::Io(format!("{}: {e}", path.display())))?;
        self.restore(&bytes)
    }
}

impl SystemHandle for Simulation {
    fn sim_mut(&mut self) -> &mut Simulation {
        self
    }
}

impl SystemHandle for BuiltSystem {
    fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }
}

impl SystemHandle for TopologySystem {
    fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }
}

impl SystemHandle for DualDiskSystem {
    fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }
}

impl TopologySystem {
    /// Captures the warm-start seed of this system: everything the
    /// enumeration software and driver probe computed, as plain data.
    pub fn warm_seed(&self) -> WarmSeed {
        WarmSeed {
            report: self.report.clone(),
            probe: self.probe.clone(),
            irqs: self.endpoints.iter().map(|e| e.irq).collect(),
        }
    }
}

impl BuiltSystem {
    /// Captures the warm-start seed of this system (see
    /// [`TopologySystem::warm_seed`]).
    pub fn warm_seed(&self) -> WarmSeed {
        let irq = match self.probe.interrupt {
            InterruptMode::Legacy(irq) => irq,
            // Message-signaled modes route from the base vector; MSI-X
            // per-queue vectors are base + vector index.
            InterruptMode::Msi | InterruptMode::Msix { .. } => MSI_VECTOR,
        };
        WarmSeed { report: self.report.clone(), probe: Some(self.probe.clone()), irqs: vec![irq] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_system, build_system_warm, SystemConfig};
    use crate::workload::dd::DdConfig;
    use pcisim_kernel::sim::RunOutcome;
    use pcisim_kernel::tick::{us, TICKS_PER_SEC};

    fn warm_system() -> (BuiltSystem, WarmSeed) {
        let mut built = build_system(SystemConfig::validation());
        let seed = built.warm_seed();
        let _ = built.attach_dd(DdConfig { block_bytes: 64 * 1024, ..DdConfig::default() });
        assert_eq!(built.sim.run(us(100), u64::MAX), RunOutcome::TimeLimit);
        (built, seed)
    }

    #[test]
    fn checkpoint_file_round_trips_through_disk() {
        let (mut built, seed) = warm_system();
        let dir = std::env::temp_dir().join("pcisim_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.ckpt");
        let written = built.checkpoint_to(&path).expect("checkpoint written");
        assert_eq!(written, std::fs::metadata(&path).unwrap().len() as usize);

        let mut fresh = build_system_warm(SystemConfig::validation(), &seed);
        let report = fresh.attach_dd(DdConfig { block_bytes: 64 * 1024, ..DdConfig::default() });
        fresh.restore_from(&path).expect("checkpoint restores");
        assert_eq!(fresh.sim.run(TICKS_PER_SEC, u64::MAX), RunOutcome::QueueEmpty);
        assert!(report.borrow().done);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_typed_io_error() {
        let (mut built, _) = warm_system();
        let err = built.restore_from("/nonexistent/pcisim.ckpt").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "{err:?}");
    }

    #[test]
    fn mismatched_tree_is_rejected() {
        let (mut built, _) = warm_system();
        let snap = built.checkpoint();
        // A dual-disk tree has a different shape; the fingerprint gate
        // must refuse the checkpoint.
        let mut other = crate::builder::build_dual_disk_system(SystemConfig::validation());
        let err = other.restore(&snap).unwrap_err();
        assert!(matches!(err, SnapshotError::TopologyMismatch { .. }), "{err:?}");
    }
}
