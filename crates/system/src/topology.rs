//! Declarative PCI-Express tree topologies (paper §V, Fig. 2/6).
//!
//! The paper's root complex carries **three root ports**, and its whole
//! point is *future system exploration* — so the system builder takes a
//! [`Topology`]: a tree with N root ports on the root complex, switches
//! nestable to arbitrary depth with per-node timing/buffering, and any
//! mix of IDE-disk / NIC endpoints at the leaves.
//!
//! A topology is built in two stages:
//!
//! 1. [`Topology::plan`] walks the tree in the exact depth-first order
//!    the enumeration software will, creating every VP2P and endpoint
//!    configuration space and registering it at the BDF enumeration will
//!    discover it at (each bridge consumes one bus number when visited,
//!    populated or not);
//! 2. [`build_topology`] runs real enumeration + driver setup over the
//!    registry, then instantiates and wires the simulation: memory bus,
//!    DRAM, interrupt controller, PCI host, IOCache, the root complex,
//!    and one [`PcieLink`] per tree edge.
//!
//! The paper's validation chain (disk behind a switch on root port 0) is
//! [`Topology::validation`]; [`build_system`](crate::builder::build_system)
//! is now a thin wrapper over this module and reproduces the original
//! golden anchors bit-identically.

use std::collections::HashMap;

use pcisim_devices::cxl::{
    program_hdm, CxlExpander, CxlExpanderConfig, CXL_DMA_PORT, CXL_PIO_PORT,
};
use pcisim_devices::driver::{probe_with_policy, InterruptMode, MsiPolicy, ProbeInfo};
use pcisim_devices::ide::{IdeDisk, IdeDiskConfig, IDE_DMA_PORT, IDE_PIO_PORT};
use pcisim_devices::intc::{InterruptController, INTC_FABRIC_PORT};
use pcisim_devices::nic::{Nic, NicConfig, NIC_DMA_PORT, NIC_PIO_PORT};
use pcisim_devices::virtio::{
    Virtio, VirtioClass, VirtioConfig, VIRTIO_DMA_PORT, VIRTIO_PIO_PORT,
};
use pcisim_kernel::addr::AddrRange;
use pcisim_kernel::component::{Component, ComponentId, PortId};
use pcisim_kernel::dram::{Dram, DRAM_PORT};
use pcisim_kernel::iocache::{IoCache, IOCACHE_DEV_SIDE, IOCACHE_MEM_SIDE};
use pcisim_kernel::shard::{EdgeSpec, Placement, ShardPlan, ShardedSimulator};
use pcisim_kernel::sim::Simulation;
use pcisim_kernel::tick::{ns, us, Tick};
use pcisim_kernel::trace::TraceCategory;
use pcisim_kernel::xbar::Crossbar;
use pcisim_pci::caps::PortType;
use pcisim_pci::config::SharedConfigSpace;
use pcisim_pci::ecam::Bdf;
use pcisim_pci::enumeration::{enumerate, EnumerationReport};
use pcisim_pci::host::{shared_registry, PciHost, SharedRegistry, PCI_HOST_PORT};
use pcisim_pcie::link::{
    link_event_dest_end, link_lookahead, PcieLink, PcieLinkHalf, PORT_DOWN_MASTER, PORT_DOWN_SLAVE,
    PORT_UP_MASTER, PORT_UP_SLAVE,
};
use pcisim_pcie::params::{Generation, LinkConfig, LinkWidth};
use pcisim_pcie::router::{
    make_vp2p, port_downstream_master, port_downstream_slave, PcieRouter, RouterConfig,
    PORT_UPSTREAM_MASTER, PORT_UPSTREAM_SLAVE,
};

use crate::builder::DeviceSpec;
use crate::platform;
use crate::snapshot::WarmSeed;
use crate::workload::cxl::{CxlHostApp, CxlHostConfig, CxlHostReportHandle, CXL_HOST_MEM_PORT};
use crate::workload::dd::{DdApp, DdConfig, DdReportHandle, DD_IRQ_PORT, DD_MEM_PORT};
use crate::workload::mmio::{MmioProbe, MmioProbeConfig, MmioReportHandle, MMIO_MEM_PORT};
use crate::workload::nic_rx::{
    NicRxApp, NicRxConfig, NicRxReportHandle, NIC_RX_IRQ_PORT, NIC_RX_MEM_PORT,
};
use crate::workload::nic_tx::{
    NicTxApp, NicTxConfig, NicTxReportHandle, NIC_TX_IRQ_PORT, NIC_TX_MEM_PORT,
};
use crate::workload::pmd::{PmdApp, PmdConfig, PmdReportHandle, PMD_MEM_PORT};
use crate::workload::virtio::{
    virtio_app_irq_port, VirtioApp, VirtioAppConfig, VirtioReportHandle, VIRTIO_APP_IRQ_PORT,
    VIRTIO_APP_MEM_PORT,
};

/// MSI vectors (when requested) live above the legacy IRQ range.
pub(crate) const MSI_VECTOR: u8 = 96;

/// A subtree hanging off a downstream port: the link to it plus what sits
/// at the far end.
#[derive(Debug, Clone)]
pub struct Attachment {
    /// The PCI-Express link forming this tree edge.
    pub link: LinkConfig,
    /// Component name of the link; auto-named `link{n}` (DFS order) when
    /// `None`. Names must be unique per topology — they prefix stats keys.
    pub link_name: Option<String>,
    /// What the link connects to.
    pub node: Node,
}

impl Attachment {
    /// An attachment with an auto-assigned link name.
    pub fn new(link: LinkConfig, node: Node) -> Self {
        Self { link, link_name: None, node }
    }

    /// An attachment with an explicit link component name.
    pub fn named(name: impl Into<String>, link: LinkConfig, node: Node) -> Self {
        Self { link, link_name: Some(name.into()), node }
    }
}

/// One node of the topology tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// A switch: nestable to arbitrary depth. Empty port slots (`None`)
    /// still register a VP2P and consume a bus number, exactly as real
    /// hardware exposes unpopulated downstream ports.
    Switch {
        /// Timing/buffering of the switch.
        config: RouterConfig,
        /// Component name; auto-named `sw{n}` when `None`.
        name: Option<String>,
        /// Downstream ports in slot order.
        ports: Vec<Option<Attachment>>,
    },
    /// A leaf endpoint device.
    Endpoint {
        /// Which device model sits here.
        device: DeviceSpec,
        /// Component name; auto-named `ep{n}` when `None`.
        name: Option<String>,
    },
}

impl Node {
    /// A switch node with an auto-assigned name.
    pub fn switch(config: RouterConfig, ports: Vec<Option<Attachment>>) -> Self {
        Node::Switch { config, name: None, ports }
    }

    /// An endpoint node with an explicit component name.
    pub fn endpoint(name: impl Into<String>, device: DeviceSpec) -> Self {
        Node::Endpoint { device, name: Some(name.into()) }
    }
}

/// A declarative PCI-Express tree plus the platform knobs shared by every
/// topology (memory side, interrupt delivery, tracing).
#[derive(Debug, Clone)]
pub struct Topology {
    /// Root complex timing/buffering.
    pub rc: RouterConfig,
    /// Root ports in slot order; `None` registers the VP2P but wires
    /// nothing behind it (the paper's RC exposes three root ports with
    /// only one populated in the validation setup).
    pub root_ports: Vec<Option<Attachment>>,
    /// Memory-bus forwarding latency.
    pub membus_frontend: Tick,
    /// DRAM access latency.
    pub dram_latency: Tick,
    /// DRAM sustained bandwidth in bytes/second (0 = infinite).
    pub dram_bandwidth: u64,
    /// IOCache outstanding-miss limit.
    pub iocache_mshrs: usize,
    /// PCI host configuration-access service latency.
    pub pcihost_latency: Tick,
    /// Give the (single) endpoint a functional MSI capability and have
    /// the driver enable it. Panics at build time when the tree carries
    /// more than one endpoint.
    pub use_msi: bool,
    /// Have the driver enable the endpoint's MSI-X structure instead:
    /// the (single) NIC endpoint is forced `msix_capable`, the interrupt
    /// controller routes one doorbell word per vector starting at the
    /// base MSI vector, and [`EndpointHandle::cpu_irq_ports`] exposes one
    /// CPU notification port per vector. Panics at build time when the
    /// tree carries more than one endpoint.
    pub use_msix: bool,
    /// Structured-trace category mask applied to the built simulation.
    pub trace_mask: u32,
}

impl Topology {
    /// A topology over `root_ports` with the paper's platform defaults
    /// (the memory-side values of `SystemConfig::validation()`).
    pub fn new(rc: RouterConfig, root_ports: Vec<Option<Attachment>>) -> Self {
        Self {
            rc,
            root_ports,
            membus_frontend: ns(5),
            dram_latency: ns(30),
            dram_bandwidth: 25_600_000_000,
            iocache_mshrs: 16,
            pcihost_latency: ns(20),
            use_msi: false,
            use_msix: false,
            trace_mask: 0,
        }
    }

    /// The root complex configuration every preset uses: paper timing
    /// with the completion-timeout knob armed at the spec's low end.
    fn preset_rc() -> RouterConfig {
        RouterConfig { completion_timeout: Some(us(50)), ..RouterConfig::default() }
    }

    /// The paper's validation chain as a one-liner: IDE disk behind a
    /// switch on root port 0, Gen 2 x4 root link, Gen 2 x1 device link,
    /// two empty root ports and one empty switch port.
    pub fn validation() -> Self {
        let disk = Node::endpoint("disk", DeviceSpec::Disk(IdeDiskConfig::default()));
        let switch = Node::Switch {
            config: RouterConfig::default(),
            name: Some("switch".into()),
            ports: vec![
                Some(Attachment::named(
                    "dev_link",
                    LinkConfig::new(Generation::Gen2, LinkWidth::X1),
                    disk,
                )),
                None,
            ],
        };
        let root = Attachment::named(
            "root_link",
            LinkConfig::new(Generation::Gen2, LinkWidth::X4),
            switch,
        );
        Self::new(Self::preset_rc(), vec![Some(root), None, None])
    }

    /// The paper's three root ports, all populated: the validation chain
    /// (disk behind a switch) on port 0, a NIC directly on port 1, a
    /// second disk directly on port 2.
    pub fn three_root_ports() -> Self {
        let x4 = || LinkConfig::new(Generation::Gen2, LinkWidth::X4);
        let x1 = || LinkConfig::new(Generation::Gen2, LinkWidth::X1);
        let disk0 = Node::endpoint("disk0", DeviceSpec::Disk(IdeDiskConfig::default()));
        let switch = Node::Switch {
            config: RouterConfig::default(),
            name: Some("switch".into()),
            ports: vec![Some(Attachment::named("dev_link0", x1(), disk0)), None],
        };
        let nic1 = Node::endpoint("nic1", DeviceSpec::Nic(NicConfig::default()));
        let disk2 = Node::endpoint("disk2", DeviceSpec::Disk(IdeDiskConfig::default()));
        Self::new(
            Self::preset_rc(),
            vec![
                Some(Attachment::named("root_link0", x4(), switch)),
                Some(Attachment::named("root_link1", x1(), nic1)),
                Some(Attachment::named("root_link2", x1(), disk2)),
            ],
        )
    }

    /// A cascaded-switch chain: `levels` switches in series under root
    /// port 0 with the disk at the leaf. `levels >= 1`.
    pub fn cascaded(levels: usize) -> Self {
        assert!(levels >= 1, "a cascade needs at least one switch");
        let x1 = || LinkConfig::new(Generation::Gen2, LinkWidth::X1);
        let mut node = Node::endpoint("disk0", DeviceSpec::Disk(IdeDiskConfig::default()));
        for level in (0..levels).rev() {
            node = Node::Switch {
                config: RouterConfig::default(),
                name: Some(format!("sw{level}")),
                ports: vec![Some(Attachment::named(format!("link{}", level + 1), x1(), node))],
            };
        }
        let root =
            Attachment::named("link0", LinkConfig::new(Generation::Gen2, LinkWidth::X4), node);
        Self::new(Self::preset_rc(), vec![Some(root), None, None])
    }

    /// A three-level fan-out tree: `root_ports` first-level switches, each
    /// carrying `switches` leaf switches, each carrying `endpoints` disk
    /// endpoints. The widest shape a PCI segment admits is bounded by the
    /// 256-bus architectural limit (every point-to-point link below a
    /// downstream port consumes a bus number), so e.g. `fanout(3, 8, 8)`
    /// — 192 endpoints on 247 buses — is near the ceiling.
    ///
    /// # Panics
    ///
    /// Panics when the shape would need more than 256 buses (1 + each
    /// first-level subtree's `2 + switches * (2 + endpoints)`).
    pub fn fanout(root_ports: usize, switches: usize, endpoints: usize) -> Self {
        assert!(root_ports >= 1 && switches >= 1 && endpoints >= 1);
        let buses = 1 + root_ports * (2 + switches * (2 + endpoints));
        assert!(buses <= 256, "fanout({root_ports}, {switches}, {endpoints}) needs {buses} buses");
        let x1 = || LinkConfig::new(Generation::Gen2, LinkWidth::X1);
        let x4 = || LinkConfig::new(Generation::Gen2, LinkWidth::X4);
        let ports = (0..root_ports)
            .map(|r| {
                let leaves = (0..switches)
                    .map(|s| {
                        let eps = (0..endpoints)
                            .map(|e| {
                                let disk = Node::endpoint(
                                    format!("disk{r}_{s}_{e}"),
                                    DeviceSpec::Disk(IdeDiskConfig::default()),
                                );
                                Some(Attachment::new(x1(), disk))
                            })
                            .collect();
                        let leaf = Node::Switch {
                            config: RouterConfig::default(),
                            name: None,
                            ports: eps,
                        };
                        Some(Attachment::new(x4(), leaf))
                    })
                    .collect();
                let mid =
                    Node::Switch { config: RouterConfig::default(), name: None, ports: leaves };
                Some(Attachment::new(x4(), mid))
            })
            .collect();
        Self::new(Self::preset_rc(), ports)
    }

    /// A CXL.mem expander directly on root port 0 (Gen 3 x8 — the class
    /// of link CXL 1.1 runs over), two empty root ports beside it.
    pub fn cxl_direct(cfg: CxlExpanderConfig) -> Self {
        let mem = Node::endpoint("mem0", DeviceSpec::CxlExpander(cfg));
        let root =
            Attachment::named("cxl_link0", LinkConfig::new(Generation::Gen3, LinkWidth::X8), mem);
        Self::new(Self::preset_rc(), vec![Some(root), None, None])
    }

    /// The same expander one switch hop away: quantifies the per-switch
    /// span added to every CXL.mem access (the behind-switch penalty).
    pub fn cxl_behind_switch(cfg: CxlExpanderConfig) -> Self {
        let x8 = || LinkConfig::new(Generation::Gen3, LinkWidth::X8);
        let mem = Node::endpoint("mem0", DeviceSpec::CxlExpander(cfg));
        let switch = Node::Switch {
            config: RouterConfig::default(),
            name: Some("switch".into()),
            ports: vec![Some(Attachment::named("cxl_dev_link", x8(), mem)), None],
        };
        let root = Attachment::named("cxl_link0", x8(), switch);
        Self::new(Self::preset_rc(), vec![Some(root), None, None])
    }

    /// `n` expanders (2–4), one per root port: the host stream interleaves
    /// across their HDM windows, aggregating bandwidth.
    pub fn cxl_interleaved(n: usize, cfg: CxlExpanderConfig) -> Self {
        assert!((2..=4).contains(&n), "interleaving takes 2-4 expanders, got {n}");
        let ports = (0..n)
            .map(|i| {
                let mem = Node::endpoint(format!("mem{i}"), DeviceSpec::CxlExpander(cfg.clone()));
                Some(Attachment::named(
                    format!("cxl_link{i}"),
                    LinkConfig::new(Generation::Gen3, LinkWidth::X8),
                    mem,
                ))
            })
            .collect();
        Self::new(Self::preset_rc(), ports)
    }

    /// Two NICs behind one switch on root port 0: both streams share the
    /// single upstream link (the contention arm of `repro --topology`).
    pub fn dual_nic_shared(nic: NicConfig) -> Self {
        let x4 = || LinkConfig::new(Generation::Gen2, LinkWidth::X4);
        let ports = (0..2)
            .map(|i| {
                let node = Node::endpoint(format!("nic{i}"), DeviceSpec::Nic(nic.clone()));
                Some(Attachment::named(format!("dev_link{i}"), x4(), node))
            })
            .collect();
        let switch =
            Node::Switch { config: RouterConfig::default(), name: Some("switch".into()), ports };
        let root = Attachment::named("root_link", x4(), switch);
        Self::new(Self::preset_rc(), vec![Some(root), None, None])
    }

    /// The same two NICs split across root ports 0 and 1: each stream
    /// owns its root link (the no-contention arm of `repro --topology`).
    pub fn dual_nic_split(nic: NicConfig) -> Self {
        let x4 = || LinkConfig::new(Generation::Gen2, LinkWidth::X4);
        let ports = (0..2)
            .map(|i| {
                let node = Node::endpoint(format!("nic{i}"), DeviceSpec::Nic(nic.clone()));
                Some(Attachment::named(format!("root_link{i}"), x4(), node))
            })
            .chain(std::iter::once(None))
            .collect();
        Self::new(Self::preset_rc(), ports)
    }

    /// A virtio-blk function directly on root port 0 (Gen 2 x1, the IDE
    /// disk's class of link, so `repro virtio` compares like for like).
    pub fn virtio_blk_direct(cfg: VirtioConfig) -> Self {
        let dev = Node::endpoint("vblk0", DeviceSpec::Virtio(cfg));
        let root =
            Attachment::named("root_link", LinkConfig::new(Generation::Gen2, LinkWidth::X1), dev);
        Self::new(Self::preset_rc(), vec![Some(root), None, None])
    }

    /// A virtio-net function directly on root port 0 (Gen 2 x4, the
    /// e1000e NIC's class of link).
    pub fn virtio_net_direct(cfg: VirtioConfig) -> Self {
        let dev = Node::endpoint("vnet0", DeviceSpec::Virtio(cfg));
        let root =
            Attachment::named("root_link", LinkConfig::new(Generation::Gen2, LinkWidth::X4), dev);
        Self::new(Self::preset_rc(), vec![Some(root), None, None])
    }

    /// A mixed endpoint fleet: virtio-blk and virtio-net behind a switch
    /// on root port 0, the IDE disk on root port 1 — the tree the virtio
    /// determinism anchor and the shard ladder pin down.
    pub fn virtio_mixed(blk: VirtioConfig, net: VirtioConfig) -> Self {
        assert_eq!(blk.class, VirtioClass::Blk, "first config must be the blk function");
        assert_eq!(net.class, VirtioClass::Net, "second config must be the net function");
        let x4 = || LinkConfig::new(Generation::Gen2, LinkWidth::X4);
        let vblk = Node::endpoint("vblk0", DeviceSpec::Virtio(blk));
        let vnet = Node::endpoint("vnet0", DeviceSpec::Virtio(net));
        let switch = Node::Switch {
            config: RouterConfig::default(),
            name: Some("switch".into()),
            ports: vec![
                Some(Attachment::named("vblk_link", x4(), vblk)),
                Some(Attachment::named("vnet_link", x4(), vnet)),
            ],
        };
        let disk = Node::endpoint("disk", DeviceSpec::Disk(IdeDiskConfig::default()));
        let ports = vec![
            Some(Attachment::named("root_link", x4(), switch)),
            Some(Attachment::named(
                "disk_link",
                LinkConfig::new(Generation::Gen2, LinkWidth::X1),
                disk,
            )),
            None,
        ];
        Self::new(Self::preset_rc(), ports)
    }

    /// The tree a [`SystemConfig`](crate::builder::SystemConfig)
    /// describes: the device on root port 0, behind a switch when one is
    /// configured, with two empty root ports beside it.
    pub fn from_system_config(config: &crate::builder::SystemConfig) -> Self {
        let device_name = match &config.device {
            DeviceSpec::Disk(_) => "disk",
            DeviceSpec::Nic(_) => "nic",
            DeviceSpec::CxlExpander(_) => "mem0",
            DeviceSpec::Virtio(cfg) => match cfg.class {
                VirtioClass::Blk => "vblk0",
                VirtioClass::Net => "vnet0",
            },
        };
        let device = Node::endpoint(device_name, config.device.clone());
        let node = match &config.switch {
            Some(switch) => Node::Switch {
                config: switch.clone(),
                name: Some("switch".into()),
                ports: vec![
                    Some(Attachment::named("dev_link", config.device_link.clone(), device)),
                    None,
                ],
            },
            None => device,
        };
        let root = Attachment::named("root_link", config.root_link.clone(), node);
        Self {
            rc: config.rc.clone(),
            root_ports: vec![Some(root), None, None],
            membus_frontend: config.membus_frontend,
            dram_latency: config.dram_latency,
            dram_bandwidth: config.dram_bandwidth,
            iocache_mshrs: config.iocache_mshrs,
            pcihost_latency: config.pcihost_latency,
            use_msi: config.use_msi,
            use_msix: config.use_msix,
            trace_mask: config.trace_mask,
        }
    }

    /// Enables structured tracing of every category.
    pub fn with_tracing(mut self) -> Self {
        self.trace_mask = TraceCategory::ALL;
        self
    }

    /// Number of endpoints in the tree.
    pub fn endpoint_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Endpoint { .. } => 1,
                Node::Switch { ports, .. } => ports.iter().flatten().map(|a| count(&a.node)).sum(),
            }
        }
        self.root_ports.iter().flatten().map(|a| count(&a.node)).sum()
    }

    /// Registers every configuration space of the tree at the BDF the
    /// depth-first enumeration will assign, and returns the plan the
    /// builder (and the conformance tests) work from.
    ///
    /// # Panics
    ///
    /// Panics when the tree has no root ports or needs more than 256
    /// buses.
    pub fn plan(&self) -> PlannedTopology {
        assert!(!self.root_ports.is_empty(), "a topology needs at least one root port");
        let mut plan = Planner {
            registry: shared_registry(),
            routers: Vec::new(),
            endpoints: Vec::new(),
            devices: Vec::new(),
            order: Vec::new(),
            next_bus: 1,
            next_switch: 0,
            next_link: 0,
            next_endpoint: 0,
            next_cxl: 0,
            next_virtio: 0,
            use_msi: self.use_msi,
            use_msix: self.use_msix,
        };

        // The root complex: one VP2P per root port, registered on bus 0
        // at slots 1.., populated or not.
        let rc_vp2ps: Vec<_> = (0..self.root_ports.len())
            .map(|i| {
                let link = port_link(&self.root_ports, i);
                let id = 0x9c90u16.wrapping_add(2 * i as u16); // Intel Wildcat root ports (§V-A)
                let vp2p = make_vp2p(0x8086, id, PortType::RootPort, link.generation, link.width);
                plan.registry.borrow_mut().register(Bdf::new(0, (i + 1) as u8, 0), vp2p.clone());
                vp2p
            })
            .collect();
        plan.routers.push(PlannedRouter {
            name: "rc".into(),
            config: self.rc.clone(),
            upstream_vp2p: None,
            downstream_vp2ps: rc_vp2ps,
            parent: None,
        });

        // Depth-first over the ports, mirroring the enumerator's walk:
        // every registered bridge consumes a bus number when visited.
        for (i, port) in self.root_ports.iter().enumerate() {
            let bus = plan.take_bus();
            if let Some(att) = port {
                plan.place(att, 0, i, bus);
            }
        }

        let Planner { registry, routers, endpoints, devices, order, .. } = plan;
        PlannedTopology { registry, routers, endpoints, order, devices }
    }
}

/// The link config VP2P `i` of a port list advertises: its own attachment
/// when populated, the first populated sibling's otherwise (matching the
/// paper setup, where all three root ports advertise the root link).
fn port_link(ports: &[Option<Attachment>], i: usize) -> LinkConfig {
    ports[i]
        .as_ref()
        .or_else(|| ports.iter().flatten().next())
        .map(|a| a.link.clone())
        .unwrap_or_else(|| LinkConfig::new(Generation::Gen2, LinkWidth::X1))
}

/// A tree edge: which router's downstream pair the child hangs off, and
/// the link forming the edge.
#[derive(Debug, Clone)]
pub struct PlannedEdge {
    /// Index into [`PlannedTopology::routers`] of the parent.
    pub router: usize,
    /// Downstream pair on the parent.
    pub pair: usize,
    /// Component name of the link.
    pub link_name: String,
    /// Link configuration of the edge.
    pub link: LinkConfig,
}

/// A router (the root complex or a switch) of a planned topology.
#[derive(Debug, Clone)]
pub struct PlannedRouter {
    /// Component name.
    pub name: String,
    /// Timing/buffering.
    pub config: RouterConfig,
    /// `None` for the root complex, the upstream VP2P for a switch.
    pub upstream_vp2p: Option<SharedConfigSpace>,
    /// One VP2P per downstream pair, in slot order.
    pub downstream_vp2ps: Vec<SharedConfigSpace>,
    /// Edge from the parent; `None` for the root complex.
    pub parent: Option<PlannedEdge>,
}

/// An endpoint of a planned topology.
#[derive(Debug, Clone)]
pub struct PlannedEndpoint {
    /// Component name.
    pub name: String,
    /// Where enumeration will find it.
    pub bdf: Bdf,
    /// Edge from the parent router.
    pub parent: PlannedEdge,
    /// The endpoint's configuration space.
    pub config_space: SharedConfigSpace,
    /// Whether the endpoint is the IDE disk (else a NIC or expander).
    pub is_disk: bool,
    /// Whether the endpoint is a CXL.mem expander.
    pub is_cxl: bool,
    /// Whether the endpoint is a virtio-blk function.
    pub is_virtio_blk: bool,
    /// Whether the endpoint is a virtio-net function.
    pub is_virtio_net: bool,
    /// The HDM decoder window assigned to the expander (empty for every
    /// other device class).
    pub hdm: AddrRange,
    /// The host-DRAM window the guest driver lays this function's
    /// virtqueues out in (empty for every other device class).
    pub virtio_ring: AddrRange,
}

/// Depth-first visit order of the tree below the root complex.
#[derive(Debug, Clone, Copy)]
pub enum PlannedItem {
    /// Index into [`PlannedTopology::routers`] (never 0).
    Switch(usize),
    /// Index into [`PlannedTopology::endpoints`].
    Endpoint(usize),
}

/// The registered form of a [`Topology`]: every configuration space
/// created and registered at its post-enumeration BDF, plus the flat
/// router/endpoint lists the builder and the conformance tests walk.
pub struct PlannedTopology {
    /// The PCI host registry holding every config space.
    pub registry: SharedRegistry,
    /// Routers in depth-first pre-order; `[0]` is the root complex.
    pub routers: Vec<PlannedRouter>,
    /// Endpoints in depth-first order.
    pub endpoints: Vec<PlannedEndpoint>,
    /// Depth-first visit order of everything below the root complex.
    pub order: Vec<PlannedItem>,
    /// Device components, parallel to `endpoints` (consumed by the
    /// builder).
    devices: Vec<EndpointDevice>,
}

impl PlannedTopology {
    /// Runs BIOS-style enumeration over the planned registry and returns
    /// the report, without building a simulation. Conformance tests use
    /// this to check bus/BAR invariants on arbitrary trees cheaply.
    pub fn enumerate(&self) -> Result<EnumerationReport, pcisim_pci::enumeration::EnumerateError> {
        enumerate(&mut self.registry.clone(), platform::enumeration_config())
    }
}

enum EndpointDevice {
    Disk(Box<IdeDisk>),
    Nic(Box<Nic>),
    Cxl(Box<CxlExpander>),
    Virtio(Box<Virtio>),
}

struct Planner {
    registry: SharedRegistry,
    routers: Vec<PlannedRouter>,
    endpoints: Vec<PlannedEndpoint>,
    devices: Vec<EndpointDevice>,
    order: Vec<PlannedItem>,
    next_bus: u16,
    next_switch: u16,
    next_link: u32,
    next_endpoint: u32,
    next_cxl: usize,
    next_virtio: usize,
    use_msi: bool,
    use_msix: bool,
}

impl Planner {
    fn take_bus(&mut self) -> u8 {
        let bus = self.next_bus;
        assert!(bus < 256, "topology needs more than 256 buses");
        self.next_bus += 1;
        bus as u8
    }

    fn edge(&mut self, att: &Attachment, router: usize, pair: usize) -> PlannedEdge {
        let link_name = att.link_name.clone().unwrap_or_else(|| {
            let n = self.next_link;
            format!("link{n}")
        });
        self.next_link += 1;
        PlannedEdge { router, pair, link_name, link: att.link.clone() }
    }

    /// Places the node of `att` on `bus`, hanging off `(router, pair)`.
    fn place(&mut self, att: &Attachment, router: usize, pair: usize, bus: u8) {
        let edge = self.edge(att, router, pair);
        match &att.node {
            Node::Endpoint { device, name } => {
                let name = name.clone().unwrap_or_else(|| format!("ep{}", self.next_endpoint));
                self.next_endpoint += 1;
                let intx = Some((0, 0)); // irq patched after enumeration
                let (dev, cs, hdm, virtio_ring) = match device {
                    DeviceSpec::Disk(cfg) => {
                        let (disk, cs) = IdeDisk::new(
                            name.clone(),
                            IdeDiskConfig { intx, msi_capable: self.use_msi, ..cfg.clone() },
                        );
                        (
                            EndpointDevice::Disk(Box::new(disk)),
                            cs,
                            AddrRange::empty(),
                            AddrRange::empty(),
                        )
                    }
                    DeviceSpec::Nic(cfg) => {
                        let (nic, cs) = Nic::new(
                            name.clone(),
                            NicConfig {
                                intx,
                                msi_capable: self.use_msi,
                                msix_capable: cfg.msix_capable || self.use_msix,
                                ..cfg.clone()
                            },
                        );
                        (
                            EndpointDevice::Nic(Box::new(nic)),
                            cs,
                            AddrRange::empty(),
                            AddrRange::empty(),
                        )
                    }
                    DeviceSpec::CxlExpander(cfg) => {
                        // Each expander gets the next HDM window of the
                        // platform region, programmed through config space
                        // like a BAR assignment.
                        let (exp, cs) = CxlExpander::new(name.clone(), cfg.clone());
                        let window = platform::cxl_hdm_window(self.next_cxl);
                        self.next_cxl += 1;
                        program_hdm(&mut cs.borrow_mut(), window);
                        (EndpointDevice::Cxl(Box::new(exp)), cs, window, AddrRange::empty())
                    }
                    DeviceSpec::Virtio(cfg) => {
                        // Each virtio function gets the next virtqueue
                        // window of host DRAM; the guest driver lays its
                        // rings out inside it.
                        let (dev, cs) = Virtio::new(
                            name.clone(),
                            VirtioConfig {
                                intx,
                                msix_capable: cfg.msix_capable || self.use_msix,
                                ..cfg.clone()
                            },
                        );
                        let ring = platform::virtio_ring_window(self.next_virtio);
                        self.next_virtio += 1;
                        (EndpointDevice::Virtio(Box::new(dev)), cs, AddrRange::empty(), ring)
                    }
                };
                let bdf = Bdf::new(bus, 0, 0);
                self.registry.borrow_mut().register(bdf, cs.clone());
                self.order.push(PlannedItem::Endpoint(self.endpoints.len()));
                self.endpoints.push(PlannedEndpoint {
                    name,
                    bdf,
                    parent: edge,
                    config_space: cs,
                    is_disk: matches!(device, DeviceSpec::Disk(_)),
                    is_cxl: matches!(device, DeviceSpec::CxlExpander(_)),
                    is_virtio_blk: matches!(
                        device,
                        DeviceSpec::Virtio(c) if c.class == VirtioClass::Blk
                    ),
                    is_virtio_net: matches!(
                        device,
                        DeviceSpec::Virtio(c) if c.class == VirtioClass::Net
                    ),
                    hdm,
                    virtio_ring,
                });
                self.devices.push(dev);
            }
            Node::Switch { config, name, ports } => {
                let k = self.next_switch;
                self.next_switch += 1;
                let name = name.clone().unwrap_or_else(|| format!("sw{k}"));
                let up_id = 0xaa01u16.wrapping_add(k.wrapping_mul(0x10));
                let up = make_vp2p(
                    0x8086,
                    up_id,
                    PortType::SwitchUpstream,
                    att.link.generation,
                    att.link.width,
                );
                self.registry.borrow_mut().register(Bdf::new(bus, 0, 0), up.clone());
                // The switch's internal bus, where its downstream VP2Ps
                // live.
                let internal = self.take_bus();
                let downstream_vp2ps: Vec<_> = (0..ports.len())
                    .map(|j| {
                        let link = port_link(ports, j);
                        let down = make_vp2p(
                            0x8086,
                            up_id.wrapping_add(1 + j as u16),
                            PortType::SwitchDownstream,
                            link.generation,
                            link.width,
                        );
                        self.registry
                            .borrow_mut()
                            .register(Bdf::new(internal, j as u8, 0), down.clone());
                        down
                    })
                    .collect();
                let index = self.routers.len();
                self.order.push(PlannedItem::Switch(index));
                self.routers.push(PlannedRouter {
                    name,
                    config: config.clone(),
                    upstream_vp2p: Some(up),
                    downstream_vp2ps,
                    parent: Some(edge),
                });
                for (j, port) in ports.iter().enumerate() {
                    let child_bus = self.take_bus();
                    if let Some(child) = port {
                        self.place(child, index, j, child_bus);
                    }
                }
            }
        }
    }
}

/// One endpoint of a built [`TopologySystem`]: everything a workload
/// needs to attach to it.
#[derive(Debug, Clone)]
pub struct EndpointHandle {
    /// Component name of the device.
    pub name: String,
    /// Where enumeration found it.
    pub bdf: Bdf,
    /// Its first memory BAR.
    pub bar0: u64,
    /// Its interrupt line (legacy INTx or the MSI vector).
    pub irq: u8,
    /// Whether it is the IDE disk (else a NIC or expander).
    pub is_disk: bool,
    /// Whether it is a CXL.mem expander.
    pub is_cxl: bool,
    /// Whether it is a virtio-blk function.
    pub is_virtio_blk: bool,
    /// Whether it is a virtio-net function.
    pub is_virtio_net: bool,
    /// The expander's HDM decoder window (empty for other devices).
    pub hdm: AddrRange,
    /// The function's virtqueue window in host DRAM (empty for other
    /// devices).
    pub virtio_ring: AddrRange,
    /// Reserved memory-bus endpoint for this endpoint's CPU workload.
    pub cpu_mem_port: (ComponentId, PortId),
    /// Interrupt-controller endpoint delivering this endpoint's IRQ.
    pub cpu_irq_port: (ComponentId, PortId),
    /// One interrupt-controller endpoint per MSI-X vector (vector `v` at
    /// index `v`); a single entry — `cpu_irq_port` — for legacy INTx/MSI.
    pub cpu_irq_ports: Vec<(ComponentId, PortId)>,
}

/// A wired, enumerated, driver-initialized system built from a
/// [`Topology`], awaiting workloads.
pub struct TopologySystem {
    /// The simulation holding every component.
    pub sim: Simulation,
    /// The PCI host registry (for further functional config access).
    pub registry: SharedRegistry,
    /// What the enumeration software found.
    pub report: EnumerationReport,
    /// The driver probe result — present when the tree carries exactly
    /// one endpoint (multi-endpoint trees are set up from the report).
    pub probe: Option<ProbeInfo>,
    /// One handle per endpoint, in depth-first order.
    pub endpoints: Vec<EndpointHandle>,
}

impl TopologySystem {
    /// The endpoint with component name `name`.
    ///
    /// # Panics
    ///
    /// Panics when no endpoint carries that name.
    pub fn endpoint(&self, name: &str) -> &EndpointHandle {
        self.endpoints
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("no endpoint named {name}"))
    }

    /// Attaches a `dd` workload (named `dd{index}`) to endpoint `index`,
    /// which must be a disk.
    pub fn attach_dd(&mut self, index: usize, mut config: DdConfig) -> DdReportHandle {
        let ep = &self.endpoints[index];
        assert!(ep.is_disk, "endpoint {index} ({}) is not a disk", ep.name);
        config.disk_bar = ep.bar0;
        // Distinct DMA buffers so DRAM traffic does not alias.
        config.dma_target = platform::DRAM_BASE + index as u64 * 0x1000_0000;
        let (dd, report) = DdApp::new(format!("dd{index}"), config);
        let id = self.sim.add(Box::new(dd));
        self.sim.connect((id, DD_MEM_PORT), ep.cpu_mem_port);
        self.sim.connect((id, DD_IRQ_PORT), ep.cpu_irq_port);
        report
    }

    /// Attaches a NIC transmit workload (named `nictx{index}`) to
    /// endpoint `index`, which must be a NIC.
    pub fn attach_nic_tx(&mut self, index: usize, mut config: NicTxConfig) -> NicTxReportHandle {
        let ep = &self.endpoints[index];
        assert!(!ep.is_disk, "endpoint {index} ({}) is not a NIC", ep.name);
        config.nic_bar = ep.bar0;
        let (app, report) = NicTxApp::new(format!("nictx{index}"), config);
        let id = self.sim.add(Box::new(app));
        self.sim.connect((id, NIC_TX_MEM_PORT), ep.cpu_mem_port);
        self.sim.connect((id, NIC_TX_IRQ_PORT), ep.cpu_irq_port);
        report
    }

    /// Attaches a NIC receive workload (named `nicrx{index}`) to endpoint
    /// `index`, which must be a NIC with `rx_stream` configured.
    pub fn attach_nic_rx(&mut self, index: usize, mut config: NicRxConfig) -> NicRxReportHandle {
        let ep = &self.endpoints[index];
        assert!(!ep.is_disk, "endpoint {index} ({}) is not a NIC", ep.name);
        config.nic_bar = ep.bar0;
        let (app, report) = NicRxApp::new(format!("nicrx{index}"), config);
        let id = self.sim.add(Box::new(app));
        self.sim.connect((id, NIC_RX_MEM_PORT), ep.cpu_mem_port);
        self.sim.connect((id, NIC_RX_IRQ_PORT), ep.cpu_irq_port);
        report
    }

    /// Attaches the MMIO latency probe (named `mmio_probe{index}`)
    /// against endpoint `index`'s BAR0.
    pub fn attach_mmio_probe(
        &mut self,
        index: usize,
        mut config: MmioProbeConfig,
    ) -> MmioReportHandle {
        let ep = &self.endpoints[index];
        config.target = ep.bar0 + 0x0008;
        let (probe, report) = MmioProbe::new(format!("mmio_probe{index}"), config);
        let id = self.sim.add(Box::new(probe));
        self.sim.connect((id, MMIO_MEM_PORT), ep.cpu_mem_port);
        report
    }

    /// Attaches a poll-mode driver workload (named `pmd{index}`) to
    /// endpoint `index`, which must be a NIC. Only the memory port is
    /// wired — the poll-mode datapath never takes an interrupt.
    pub fn attach_pmd(&mut self, index: usize, mut config: PmdConfig) -> PmdReportHandle {
        let ep = &self.endpoints[index];
        assert!(!ep.is_disk, "endpoint {index} ({}) is not a NIC", ep.name);
        config.nic_bar = ep.bar0;
        let (app, report) = PmdApp::new(format!("pmd{index}"), config);
        let id = self.sim.add(Box::new(app));
        self.sim.connect((id, PMD_MEM_PORT), ep.cpu_mem_port);
        report
    }

    /// Attaches a CXL.mem host load/store stream (named `cxlhost{index}`)
    /// against endpoint `index`'s HDM window, which must be an expander.
    pub fn attach_cxl_host(
        &mut self,
        index: usize,
        mut config: CxlHostConfig,
    ) -> CxlHostReportHandle {
        let ep = &self.endpoints[index];
        assert!(ep.is_cxl, "endpoint {index} ({}) is not a CXL expander", ep.name);
        config.window = ep.hdm;
        config.use_cxl = true;
        let (app, report) = CxlHostApp::new(format!("cxlhost{index}"), config);
        let id = self.sim.add(Box::new(app));
        self.sim.connect((id, CXL_HOST_MEM_PORT), ep.cpu_mem_port);
        report
    }

    /// Attaches the same engine (named `dramhost{index}`) against a local
    /// DRAM slice with plain Memory Read/Write TLPs — the local arm of the
    /// local-vs-CXL comparison, using endpoint `index`'s reserved CPU
    /// port.
    pub fn attach_dram_host(
        &mut self,
        index: usize,
        mut config: CxlHostConfig,
    ) -> CxlHostReportHandle {
        let ep = &self.endpoints[index];
        config.window =
            AddrRange::with_size(platform::DRAM_BASE + 0x2000_0000, platform::CXL_HDM_STRIDE);
        config.use_cxl = false;
        let (app, report) = CxlHostApp::new(format!("dramhost{index}"), config);
        let id = self.sim.add(Box::new(app));
        self.sim.connect((id, CXL_HOST_MEM_PORT), ep.cpu_mem_port);
        report
    }

    /// Attaches a virtio guest driver (named `vdrv{index}`) to endpoint
    /// `index`, which must be a virtio function. The device class, BAR0
    /// and virtqueue window come from the handle; under MSI-X every
    /// table vector's doorbell port is wired.
    pub fn attach_virtio(
        &mut self,
        index: usize,
        mut config: VirtioAppConfig,
    ) -> VirtioReportHandle {
        let ep = &self.endpoints[index];
        assert!(
            ep.is_virtio_blk || ep.is_virtio_net,
            "endpoint {index} ({}) is not a virtio function",
            ep.name
        );
        config.class = if ep.is_virtio_blk { VirtioClass::Blk } else { VirtioClass::Net };
        config.bar0 = ep.bar0;
        config.ring_base = ep.virtio_ring.start();
        if config.use_msix {
            assert!(ep.cpu_irq_ports.len() > 1, "MSI-X vectors not enabled for {}", ep.name);
        }
        let use_msix = config.use_msix;
        let (mem, irq) = (ep.cpu_mem_port, ep.cpu_irq_port);
        let vector_ports = ep.cpu_irq_ports.clone();
        let (app, report) = VirtioApp::new(format!("vdrv{index}"), config);
        let id = self.sim.add(Box::new(app));
        self.sim.connect((id, VIRTIO_APP_MEM_PORT), mem);
        if use_msix {
            for (v, port) in vector_ports.iter().enumerate() {
                self.sim.connect((id, virtio_app_irq_port(v as u16)), *port);
            }
        } else {
            self.sim.connect((id, VIRTIO_APP_IRQ_PORT), irq);
        }
        report
    }
}

/// Builds the full system for a [`Topology`]: plans and registers the
/// tree, runs enumeration and driver setup, then instantiates and wires
/// every component.
///
/// # Panics
///
/// Panics when enumeration or the driver probe fails, or when `use_msi`
/// is set on a tree that does not carry exactly one endpoint.
pub fn build_topology(topo: Topology) -> TopologySystem {
    let plan = topo.plan();
    let (report, probe, irqs) = enumerate_and_probe(&topo, &plan);
    build_planned(&topo, plan, report, probe, irqs)
}

/// Shared functional front half of every build: runs enumeration over the
/// planned registry and the driver setup that assigns interrupts.
fn enumerate_and_probe(
    topo: &Topology,
    plan: &PlannedTopology,
) -> (EnumerationReport, Option<ProbeInfo>, Vec<u8>) {
    let report = enumerate(&mut plan.registry.clone(), platform::enumeration_config())
        .expect("topology must enumerate");

    // Driver setup. A single endpoint goes through the real driver probe
    // (which may enable MSI); multi-endpoint trees are set up from the
    // enumeration report with legacy INTx, like a kernel bringing up
    // several stock devices.
    let mut probe = None;
    let mut irqs: Vec<u8> = Vec::with_capacity(plan.endpoints.len());
    if plan.endpoints.len() == 1 {
        let msi_policy = if topo.use_msix {
            MsiPolicy::RequestMsix
        } else if topo.use_msi {
            MsiPolicy::Request {
                address: platform::INTC_BASE + u64::from(MSI_VECTOR) * 4,
                data: u16::from(MSI_VECTOR),
            }
        } else {
            MsiPolicy::LegacyOnly
        };
        let table = if plan.endpoints[0].is_disk {
            pcisim_devices::driver::IDE_DEVICE_TABLE
        } else if plan.endpoints[0].is_cxl {
            pcisim_devices::driver::CXL_DEVICE_TABLE
        } else if plan.endpoints[0].is_virtio_blk {
            pcisim_devices::driver::VIRTIO_BLK_DEVICE_TABLE
        } else if plan.endpoints[0].is_virtio_net {
            pcisim_devices::driver::VIRTIO_NET_DEVICE_TABLE
        } else {
            pcisim_devices::driver::E1000E_DEVICE_TABLE
        };
        let info = probe_with_policy(&mut plan.registry.clone(), &report, table, msi_policy)
            .expect("topology must probe");
        irqs.push(match info.interrupt {
            InterruptMode::Legacy(irq) => irq,
            InterruptMode::Msi => {
                assert!(topo.use_msi, "MSI must only engage when requested");
                MSI_VECTOR
            }
            InterruptMode::Msix { .. } => {
                assert!(topo.use_msix, "MSI-X must only engage when requested");
                MSI_VECTOR
            }
        });
        probe = Some(info);
    } else {
        assert!(!topo.use_msi, "use_msi needs a single-endpoint topology");
        assert!(!topo.use_msix, "use_msix needs a single-endpoint topology");
        for ep in &plan.endpoints {
            let info = report.at(ep.bdf).expect("endpoint enumerated");
            irqs.push(info.irq.expect("interrupt pin wired"));
        }
    }
    (report, probe, irqs)
}

/// Builds the system for a [`Topology`] *without* running enumeration or
/// the driver probe, replaying a [`WarmSeed`] captured from a previous
/// build of an identically shaped tree instead.
///
/// Because the functional walks are skipped, every configuration space
/// stays at its reset values: the returned system is only meaningful once
/// a checkpoint from the seeding run is restored into it (the checkpoint
/// carries every config-space image through the PCI host section). The
/// tree's *configuration* — link widths, latencies, buffer depths — comes
/// entirely from `topo`, which is what makes warm-started parameter
/// sweeps possible: one warmed-up reference run forks into many
/// differently parameterized points.
pub fn build_topology_warm(topo: &Topology, seed: &WarmSeed) -> TopologySystem {
    let plan = topo.plan();
    assert_eq!(
        plan.endpoints.len(),
        seed.irqs.len(),
        "warm seed records {} endpoints, tree has {}",
        seed.irqs.len(),
        plan.endpoints.len()
    );
    build_planned(topo, plan, seed.report.clone(), seed.probe.clone(), seed.irqs.clone())
}

/// One simulation per shard plus the placement table built alongside it.
/// The serial builder is the one-shard special case, so every topology —
/// sharded or not — is wired by the same code in the same component
/// order, which is what makes `--shards N` bit-identical to `--shards 1`.
///
/// Every shard carries the full-length arena: the owning shard gets the
/// real component, every other shard an empty *remote* slot under the
/// same name, so global component ids, names and the connection table
/// (and hence the topology fingerprint) agree across shards.
struct SimSet {
    sims: Vec<Simulation>,
    placements: Vec<Placement>,
}

impl SimSet {
    fn new(n: usize) -> Self {
        Self { sims: (0..n).map(|_| Simulation::new()).collect(), placements: Vec::new() }
    }

    /// Adds `comp` to shard `shard`, remote slots elsewhere.
    fn add(&mut self, shard: u32, comp: Box<dyn Component>) -> ComponentId {
        let name = comp.name().to_owned();
        let mut comp = Some(comp);
        let mut id = None;
        for (i, sim) in self.sims.iter_mut().enumerate() {
            let cid = if i == shard as usize {
                sim.add(comp.take().expect("one owner per component"))
            } else {
                sim.add_remote(&name)
            };
            debug_assert!(id.is_none_or(|p| p == cid), "gids must be global");
            id = Some(cid);
        }
        self.placements.push(Placement::Shard(shard));
        id.expect("at least one shard")
    }

    /// Adds a cut link's two halves under one shared gid: `h0` (physical
    /// end 0, the upstream side) to shard `s0`, `h1` to `s1`.
    fn add_split(
        &mut self,
        s0: u32,
        h0: Box<dyn Component>,
        s1: u32,
        h1: Box<dyn Component>,
    ) -> ComponentId {
        assert_ne!(s0, s1, "a split link's halves must live in different shards");
        debug_assert_eq!(h0.name(), h1.name());
        let name = h0.name().to_owned();
        let (mut h0, mut h1) = (Some(h0), Some(h1));
        let mut id = None;
        for (i, sim) in self.sims.iter_mut().enumerate() {
            let cid = if i == s0 as usize {
                sim.add(h0.take().expect("one owner per half"))
            } else if i == s1 as usize {
                sim.add(h1.take().expect("one owner per half"))
            } else {
                sim.add_remote(&name)
            };
            debug_assert!(id.is_none_or(|p| p == cid), "gids must be global");
            id = Some(cid);
        }
        self.placements.push(Placement::Split { end0: s0, end1: s1 });
        id.expect("at least one shard")
    }

    /// Replicates a connection into every shard's table.
    fn connect(&mut self, a: (ComponentId, PortId), b: (ComponentId, PortId)) {
        for sim in &mut self.sims {
            sim.connect(a, b);
        }
    }
}

/// Which shard each tree node of a plan runs in. The root complex (and
/// the whole host cluster) is always shard 0.
struct Assignment {
    /// Shard per [`PlannedTopology::routers`] index.
    router_shard: Vec<u32>,
    /// Shard per [`PlannedTopology::endpoints`] index.
    endpoint_shard: Vec<u32>,
}

impl Assignment {
    fn serial(plan: &PlannedTopology) -> Self {
        Self {
            router_shard: vec![0; plan.routers.len()],
            endpoint_shard: vec![0; plan.endpoints.len()],
        }
    }
}

/// Host-cluster weight preloaded into shard 0's bin: the memory side,
/// interrupt controller, PCI host, IOCache and root complex, plus the
/// CPU-side workloads that always run there.
const HOST_PRELOAD: usize = 6;

/// Partitions a planned tree over `shards` bins at link boundaries.
///
/// Units start as the root-port subtrees; the largest unit is split at
/// its root switch (the switch stays a singleton unit, its child subtrees
/// become units of their own) until there are at least `2 * shards` units
/// or nothing splittable remains. Units then go to bins by LPT greedy —
/// largest first, into the least-loaded bin — with the host cluster
/// preloaded into bin 0. Every link whose two sides land in different
/// bins becomes a cut; the whole procedure is deterministic, so a given
/// `(topology, shards)` pair always yields the same partition.
fn partition_plan(plan: &PlannedTopology, shards: usize) -> Assignment {
    assert!(shards >= 1, "at least one shard required");
    let mut assignment = Assignment::serial(plan);
    if shards == 1 {
        return assignment;
    }

    // Children of each router, in depth-first order.
    let mut children: Vec<Vec<PlannedItem>> = vec![Vec::new(); plan.routers.len()];
    for item in &plan.order {
        let parent = match item {
            PlannedItem::Switch(i) => {
                plan.routers[*i].parent.as_ref().expect("switch has a parent").router
            }
            PlannedItem::Endpoint(i) => plan.endpoints[*i].parent.router,
        };
        children[parent].push(*item);
    }
    fn subtree(children: &[Vec<PlannedItem>], item: PlannedItem, out: &mut Vec<PlannedItem>) {
        out.push(item);
        if let PlannedItem::Switch(i) = item {
            for c in &children[i] {
                subtree(children, *c, out);
            }
        }
    }

    struct Unit {
        root: PlannedItem,
        items: Vec<PlannedItem>,
    }
    let mut units: Vec<Unit> = children[0]
        .iter()
        .map(|&root| {
            let mut items = Vec::new();
            subtree(&children, root, &mut items);
            Unit { root, items }
        })
        .collect();

    // Split the largest splittable unit until there are enough units for
    // the bins to balance (2x gives LPT room to even out sizes).
    while units.len() < 2 * shards {
        let Some(pos) = units
            .iter()
            .enumerate()
            .filter(|(_, u)| {
                matches!(u.root, PlannedItem::Switch(i) if !children[i].is_empty())
                    && u.items.len() > 1
            })
            .max_by_key(|(_, u)| u.items.len())
            .map(|(p, _)| p)
        else {
            break;
        };
        let unit = units.swap_remove(pos);
        let PlannedItem::Switch(r) = unit.root else { unreachable!() };
        units.push(Unit { root: unit.root, items: vec![unit.root] });
        for &c in &children[r] {
            let mut items = Vec::new();
            subtree(&children, c, &mut items);
            units.push(Unit { root: c, items });
        }
    }

    // LPT greedy, host cluster preloaded in bin 0. Stable sort keeps the
    // tree order among equal-weight units.
    units.sort_by_key(|u| std::cmp::Reverse(u.items.len()));
    let mut load = vec![0usize; shards];
    load[0] = HOST_PRELOAD;
    for unit in &units {
        let bin = (0..shards).min_by_key(|&b| load[b]).expect("at least one bin") as u32;
        load[bin as usize] += unit.items.len();
        for &item in &unit.items {
            match item {
                PlannedItem::Switch(i) => assignment.router_shard[i] = bin,
                PlannedItem::Endpoint(i) => assignment.endpoint_shard[i] = bin,
            }
        }
    }
    assignment
}

/// Shared back half of [`build_topology`]/[`build_topology_warm`]:
/// instantiates and wires every component from the plan plus the
/// (freshly computed or seed-replayed) enumeration and probe results.
fn build_planned(
    topo: &Topology,
    plan: PlannedTopology,
    report: EnumerationReport,
    probe: Option<ProbeInfo>,
    irqs: Vec<u8>,
) -> TopologySystem {
    let assignment = Assignment::serial(&plan);
    let (set, parts) = build_planned_multi(topo, plan, report, probe, irqs, &assignment, 1);
    let SimSet { mut sims, .. } = set;
    let mut sim = sims.pop().expect("one shard");
    sim.set_trace_mask(topo.trace_mask);
    TopologySystem {
        sim,
        registry: parts.registry,
        report: parts.report,
        probe: parts.probe,
        endpoints: parts.endpoints,
    }
}

/// The build products shared by the serial and sharded front ends.
struct BuiltParts {
    registry: SharedRegistry,
    report: EnumerationReport,
    probe: Option<ProbeInfo>,
    endpoints: Vec<EndpointHandle>,
    edges: Vec<EdgeSpec>,
}

/// Instantiates and wires every component of the plan across `shards`
/// simulations according to `assignment`. Tree links whose two sides land
/// in different shards become [`PcieLinkHalf`] pairs sharing the fused
/// link's name and gid, with a directed [`EdgeSpec`] pair whose lookahead
/// horizon is [`link_lookahead`] of the cut link's configuration.
fn build_planned_multi(
    topo: &Topology,
    plan: PlannedTopology,
    report: EnumerationReport,
    probe: Option<ProbeInfo>,
    irqs: Vec<u8>,
    assignment: &Assignment,
    shards: usize,
) -> (SimSet, BuiltParts) {
    // Patch each device's interrupt target now that the IRQs are known.
    let mut devices = plan.devices;
    for (dev, &irq) in devices.iter_mut().zip(&irqs) {
        let intx = Some((irq, platform::INTC_BASE));
        match dev {
            EndpointDevice::Disk(disk) => disk.set_intx(intx),
            EndpointDevice::Nic(nic) => nic.set_intx(intx),
            EndpointDevice::Cxl(exp) => exp.set_intx(intx),
            EndpointDevice::Virtio(dev) => dev.set_intx(intx),
        }
    }

    // HDM routing: every router on the path from the root complex down to
    // an expander forwards its window out the right downstream pair. The
    // routes are plan-derived configuration (like the VP2P windows), not
    // run-time state, and `add_hdm_route` rejects — loudly, at build time —
    // any window that a bridge forwarding range would shadow.
    let mut hdm_routes: Vec<Vec<(AddrRange, usize)>> = vec![Vec::new(); plan.routers.len()];
    for ep in &plan.endpoints {
        if ep.hdm.is_empty() {
            continue;
        }
        let mut edge = Some(&ep.parent);
        while let Some(e) = edge {
            hdm_routes[e.router].push((ep.hdm, e.pair));
            edge = plan.routers[e.router].parent.as_ref();
        }
    }

    // --- Components: memory side first, then the PCIe tree depth-first.
    let mut set = SimSet::new(shards);
    let mut edges: Vec<EdgeSpec> = Vec::new();
    let mut intc = InterruptController::new("gic", platform::intc_range());
    // Per-endpoint interrupt vector lists: one legacy line or MSI vector,
    // or — under MSI-X — one doorbell word per table entry, base + index.
    let vector_lists: Vec<Vec<u8>> = irqs
        .iter()
        .enumerate()
        .map(|(i, &irq)| match &probe {
            Some(p) if i == 0 => match p.interrupt {
                InterruptMode::Msix { vectors } => {
                    (0..vectors).map(|v| MSI_VECTOR + v as u8).collect()
                }
                _ => vec![irq],
            },
            _ => vec![irq],
        })
        .collect();
    let mut irq_ports: HashMap<u8, PortId> = HashMap::new();
    let cpu_irqs: Vec<Vec<PortId>> = vector_lists
        .iter()
        .map(|list| {
            list.iter()
                .map(|&irq| *irq_ports.entry(irq).or_insert_with(|| intc.route_irq(irq)))
                .collect()
        })
        .collect();

    // Port map: 0 = first CPU workload, 1 = DRAM, 2 = INTC, 3 = PCI
    // host, 4 = RC upstream slave (both PCI windows), 5 = IOCache memory
    // side, 6.. = further CPU workloads.
    let num_ports = 6 + plan.endpoints.len().saturating_sub(1);
    let mut membus = Crossbar::builder("membus")
        .num_ports(num_ports)
        .frontend_latency(topo.membus_frontend)
        .queue_capacity(64)
        .route(platform::dram_range(), PortId(1))
        .route(platform::intc_range(), PortId(2))
        .route(platform::config_range(), PortId(3))
        .route(platform::mem_range(), PortId(4))
        .route(platform::io_range(), PortId(4));
    // The HDM region routes toward the root complex only when the tree
    // actually carries an expander, so CXL-free topologies keep their
    // exact historical route table (and golden fingerprints).
    if plan.endpoints.iter().any(|e| e.is_cxl) {
        membus = membus.route(platform::cxl_hdm_range(), PortId(4));
    }
    let membus_id = set.add(0, Box::new(membus.build()));
    // Virtqueues live in DRAM and are walked through real reads, so trees
    // carrying a virtio function need the functional backing store. Gated
    // so virtio-free topologies keep their exact historical DRAM snapshot
    // layout (and golden fingerprints).
    let functional_dram = plan.endpoints.iter().any(|e| e.is_virtio_blk || e.is_virtio_net);
    let dram_id = set.add(
        0,
        Box::new(
            Dram::builder("dram", platform::dram_range())
                .latency(topo.dram_latency)
                .bandwidth(topo.dram_bandwidth)
                .functional(functional_dram)
                .build(),
        ),
    );
    let intc_id = set.add(0, Box::new(intc));
    let host_id = set.add(
        0,
        Box::new(PciHost::new(
            "pcihost",
            platform::PCI_CONFIG_BASE,
            platform::PCI_CONFIG_SIZE,
            topo.pcihost_latency,
            plan.registry.clone(),
        )),
    );
    let iocache_id =
        set.add(0, Box::new(IoCache::builder("iocache").mshrs(topo.iocache_mshrs).build()));

    let rc = &plan.routers[0];
    let mut rc_router =
        PcieRouter::root_complex(rc.name.clone(), rc.config.clone(), rc.downstream_vp2ps.clone());
    for &(range, pair) in &hdm_routes[0] {
        rc_router.add_hdm_route(range, pair);
    }
    let rc_id = set.add(0, Box::new(rc_router));

    set.connect((membus_id, PortId(1)), (dram_id, DRAM_PORT));
    set.connect((membus_id, PortId(2)), (intc_id, INTC_FABRIC_PORT));
    set.connect((membus_id, PortId(3)), (host_id, PCI_HOST_PORT));
    set.connect((membus_id, PortId(4)), (rc_id, PORT_UPSTREAM_SLAVE));
    set.connect((rc_id, PORT_UPSTREAM_MASTER), (iocache_id, IOCACHE_DEV_SIDE));
    set.connect((iocache_id, IOCACHE_MEM_SIDE), (membus_id, PortId(5)));

    // PCIe tree: every edge gets a link whose AER endpoints are the
    // parent port's VP2P and the child's upstream config space. Links
    // whose two sides land in different shards are built as half-link
    // pairs over a directed mailbox edge pair; each half carries only the
    // config space its own shard touches, so no `Rc` state crosses a cut.
    let mut router_ids = vec![rc_id];
    let mut devices = devices.into_iter();
    let mut endpoint_handles = Vec::with_capacity(plan.endpoints.len());
    for item in &plan.order {
        let (edge, child_cs, child_shard) = match item {
            PlannedItem::Switch(i) => {
                let r = &plan.routers[*i];
                (
                    r.parent.as_ref().expect("switch has a parent"),
                    r.upstream_vp2p.clone().unwrap(),
                    assignment.router_shard[*i],
                )
            }
            PlannedItem::Endpoint(i) => {
                let ep = &plan.endpoints[*i];
                (&ep.parent, ep.config_space.clone(), assignment.endpoint_shard[*i])
            }
        };
        let parent_shard = assignment.router_shard[edge.router];
        let parent_id = router_ids[edge.router];
        let parent_cs = plan.routers[edge.router].downstream_vp2ps[edge.pair].clone();
        let link_id = if parent_shard == child_shard {
            let mut link = PcieLink::new(edge.link_name.clone(), edge.link.clone());
            link.attach_aer(Some(parent_cs), Some(child_cs));
            set.add(parent_shard, Box::new(link))
        } else {
            let horizon = link_lookahead(&edge.link);
            assert!(horizon > 0, "cut link {} has zero lookahead", edge.link_name);
            let fwd = edges.len() as u32;
            edges.push(EdgeSpec {
                from_shard: parent_shard,
                to_shard: child_shard,
                dest: ComponentId(0), // patched below, once the gid is known
                horizon,
            });
            let rev = edges.len() as u32;
            edges.push(EdgeSpec {
                from_shard: child_shard,
                to_shard: parent_shard,
                dest: ComponentId(0),
                horizon,
            });
            let mut up = PcieLinkHalf::new_upstream(edge.link_name.clone(), edge.link.clone(), fwd);
            up.attach_aer(Some(parent_cs));
            let mut down =
                PcieLinkHalf::new_downstream(edge.link_name.clone(), edge.link.clone(), rev);
            down.attach_aer(Some(child_cs));
            let id = set.add_split(parent_shard, Box::new(up), child_shard, Box::new(down));
            edges[fwd as usize].dest = id;
            edges[rev as usize].dest = id;
            id
        };
        set.connect((parent_id, port_downstream_master(edge.pair)), (link_id, PORT_UP_SLAVE));
        set.connect((parent_id, port_downstream_slave(edge.pair)), (link_id, PORT_UP_MASTER));
        match item {
            PlannedItem::Switch(i) => {
                let r = &plan.routers[*i];
                debug_assert_eq!(router_ids.len(), *i);
                let mut switch = PcieRouter::switch(
                    r.name.clone(),
                    r.config.clone(),
                    r.upstream_vp2p.clone().unwrap(),
                    r.downstream_vp2ps.clone(),
                );
                for &(range, pair) in &hdm_routes[*i] {
                    switch.add_hdm_route(range, pair);
                }
                let id = set.add(child_shard, Box::new(switch));
                router_ids.push(id);
                set.connect((link_id, PORT_DOWN_MASTER), (id, PORT_UPSTREAM_SLAVE));
                set.connect((link_id, PORT_DOWN_SLAVE), (id, PORT_UPSTREAM_MASTER));
            }
            PlannedItem::Endpoint(i) => {
                let ep = &plan.endpoints[*i];
                let (dev_id, pio, dma) = match devices.next().expect("device per endpoint") {
                    EndpointDevice::Disk(disk) => {
                        (set.add(child_shard, disk), IDE_PIO_PORT, IDE_DMA_PORT)
                    }
                    EndpointDevice::Nic(nic) => {
                        (set.add(child_shard, nic), NIC_PIO_PORT, NIC_DMA_PORT)
                    }
                    EndpointDevice::Cxl(exp) => {
                        (set.add(child_shard, exp), CXL_PIO_PORT, CXL_DMA_PORT)
                    }
                    EndpointDevice::Virtio(dev) => {
                        (set.add(child_shard, dev), VIRTIO_PIO_PORT, VIRTIO_DMA_PORT)
                    }
                };
                set.connect((link_id, PORT_DOWN_MASTER), (dev_id, pio));
                set.connect((link_id, PORT_DOWN_SLAVE), (dev_id, dma));
                let info = report.at(ep.bdf).expect("endpoint enumerated");
                let bar0 = match &probe {
                    Some(p) => p.bar0,
                    None => info.bars.iter().find(|b| !b.is_io).expect("memory BAR").base,
                };
                let mem_port = if *i == 0 { PortId(0) } else { PortId((5 + *i) as u16) };
                endpoint_handles.push(EndpointHandle {
                    name: ep.name.clone(),
                    bdf: ep.bdf,
                    bar0,
                    irq: irqs[*i],
                    is_disk: ep.is_disk,
                    is_cxl: ep.is_cxl,
                    is_virtio_blk: ep.is_virtio_blk,
                    is_virtio_net: ep.is_virtio_net,
                    hdm: ep.hdm,
                    virtio_ring: ep.virtio_ring,
                    cpu_mem_port: (membus_id, mem_port),
                    cpu_irq_port: (intc_id, cpu_irqs[*i][0]),
                    cpu_irq_ports: cpu_irqs[*i].iter().map(|&p| (intc_id, p)).collect(),
                });
            }
        }
    }

    let parts =
        BuiltParts { registry: plan.registry, report, probe, endpoints: endpoint_handles, edges };
    (set, parts)
}

/// A wired, enumerated, driver-initialized system partitioned across N
/// shards, awaiting workloads — the sharded sibling of
/// [`TopologySystem`]. Workloads always attach to shard 0 (they model
/// CPU-side code talking to the memory bus and interrupt controller,
/// which live there). [`ShardedTopologySystem::into_driver`] seals the
/// system into a [`ShardedSimulator`].
pub struct ShardedTopologySystem {
    set: SimSet,
    edges: Vec<EdgeSpec>,
    trace_mask: u32,
    /// The PCI host registry (for further functional config access —
    /// only before the driver runs; config spaces are not synchronized
    /// across shards mid-run).
    pub registry: SharedRegistry,
    /// What the enumeration software found.
    pub report: EnumerationReport,
    /// The driver probe result — present when the tree carries exactly
    /// one endpoint.
    pub probe: Option<ProbeInfo>,
    /// One handle per endpoint, in depth-first order.
    pub endpoints: Vec<EndpointHandle>,
}

impl ShardedTopologySystem {
    /// Number of shards the tree was partitioned across.
    pub fn shard_count(&self) -> usize {
        self.set.sims.len()
    }

    /// Number of cut links (half the directed edge count).
    pub fn cut_count(&self) -> usize {
        self.edges.len() / 2
    }

    /// The endpoint with component name `name`.
    ///
    /// # Panics
    ///
    /// Panics when no endpoint carries that name.
    pub fn endpoint(&self, name: &str) -> &EndpointHandle {
        self.endpoints
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("no endpoint named {name}"))
    }

    /// Adds a CPU-side workload component to shard 0 (remote slots
    /// elsewhere) and wires it — the sharded mirror of the
    /// [`TopologySystem`] attach helpers.
    fn attach_cpu_side(
        &mut self,
        comp: Box<dyn Component>,
        wires: &[(PortId, (ComponentId, PortId))],
    ) -> ComponentId {
        let id = self.set.add(0, comp);
        for (port, peer) in wires {
            self.set.connect((id, *port), *peer);
        }
        id
    }

    /// Attaches a `dd` workload (named `dd{index}`) to endpoint `index`,
    /// which must be a disk. See [`TopologySystem::attach_dd`].
    pub fn attach_dd(&mut self, index: usize, mut config: DdConfig) -> DdReportHandle {
        let ep = &self.endpoints[index];
        assert!(ep.is_disk, "endpoint {index} ({}) is not a disk", ep.name);
        config.disk_bar = ep.bar0;
        config.dma_target = platform::DRAM_BASE + index as u64 * 0x1000_0000;
        let (mem, irq) = (ep.cpu_mem_port, ep.cpu_irq_port);
        let (dd, report) = DdApp::new(format!("dd{index}"), config);
        self.attach_cpu_side(Box::new(dd), &[(DD_MEM_PORT, mem), (DD_IRQ_PORT, irq)]);
        report
    }

    /// Attaches a NIC transmit workload (named `nictx{index}`) to
    /// endpoint `index`, which must be a NIC.
    pub fn attach_nic_tx(&mut self, index: usize, mut config: NicTxConfig) -> NicTxReportHandle {
        let ep = &self.endpoints[index];
        assert!(!ep.is_disk, "endpoint {index} ({}) is not a NIC", ep.name);
        config.nic_bar = ep.bar0;
        let (mem, irq) = (ep.cpu_mem_port, ep.cpu_irq_port);
        let (app, report) = NicTxApp::new(format!("nictx{index}"), config);
        self.attach_cpu_side(Box::new(app), &[(NIC_TX_MEM_PORT, mem), (NIC_TX_IRQ_PORT, irq)]);
        report
    }

    /// Attaches a NIC receive workload (named `nicrx{index}`) to endpoint
    /// `index`, which must be a NIC with `rx_stream` configured.
    pub fn attach_nic_rx(&mut self, index: usize, mut config: NicRxConfig) -> NicRxReportHandle {
        let ep = &self.endpoints[index];
        assert!(!ep.is_disk, "endpoint {index} ({}) is not a NIC", ep.name);
        config.nic_bar = ep.bar0;
        let (mem, irq) = (ep.cpu_mem_port, ep.cpu_irq_port);
        let (app, report) = NicRxApp::new(format!("nicrx{index}"), config);
        self.attach_cpu_side(Box::new(app), &[(NIC_RX_MEM_PORT, mem), (NIC_RX_IRQ_PORT, irq)]);
        report
    }

    /// Attaches the MMIO latency probe (named `mmio_probe{index}`)
    /// against endpoint `index`'s BAR0.
    pub fn attach_mmio_probe(
        &mut self,
        index: usize,
        mut config: MmioProbeConfig,
    ) -> MmioReportHandle {
        let ep = &self.endpoints[index];
        config.target = ep.bar0 + 0x0008;
        let mem = ep.cpu_mem_port;
        let (probe, report) = MmioProbe::new(format!("mmio_probe{index}"), config);
        self.attach_cpu_side(Box::new(probe), &[(MMIO_MEM_PORT, mem)]);
        report
    }

    /// Attaches a poll-mode driver workload (named `pmd{index}`) to
    /// endpoint `index`, which must be a NIC. Only the memory port is
    /// wired — the poll-mode datapath never takes an interrupt.
    pub fn attach_pmd(&mut self, index: usize, mut config: PmdConfig) -> PmdReportHandle {
        let ep = &self.endpoints[index];
        assert!(!ep.is_disk, "endpoint {index} ({}) is not a NIC", ep.name);
        config.nic_bar = ep.bar0;
        let mem = ep.cpu_mem_port;
        let (app, report) = PmdApp::new(format!("pmd{index}"), config);
        self.attach_cpu_side(Box::new(app), &[(PMD_MEM_PORT, mem)]);
        report
    }

    /// Attaches a CXL.mem host load/store stream (named `cxlhost{index}`)
    /// against endpoint `index`'s HDM window, which must be an expander.
    pub fn attach_cxl_host(
        &mut self,
        index: usize,
        mut config: CxlHostConfig,
    ) -> CxlHostReportHandle {
        let ep = &self.endpoints[index];
        assert!(ep.is_cxl, "endpoint {index} ({}) is not a CXL expander", ep.name);
        config.window = ep.hdm;
        config.use_cxl = true;
        let mem = ep.cpu_mem_port;
        let (app, report) = CxlHostApp::new(format!("cxlhost{index}"), config);
        self.attach_cpu_side(Box::new(app), &[(CXL_HOST_MEM_PORT, mem)]);
        report
    }

    /// Attaches the same engine (named `dramhost{index}`) against a local
    /// DRAM slice with plain Memory Read/Write TLPs — the local arm of the
    /// local-vs-CXL comparison. See [`TopologySystem::attach_dram_host`].
    pub fn attach_dram_host(
        &mut self,
        index: usize,
        mut config: CxlHostConfig,
    ) -> CxlHostReportHandle {
        let ep = &self.endpoints[index];
        config.window =
            AddrRange::with_size(platform::DRAM_BASE + 0x2000_0000, platform::CXL_HDM_STRIDE);
        config.use_cxl = false;
        let mem = ep.cpu_mem_port;
        let (app, report) = CxlHostApp::new(format!("dramhost{index}"), config);
        self.attach_cpu_side(Box::new(app), &[(CXL_HOST_MEM_PORT, mem)]);
        report
    }

    /// Attaches a virtio guest driver (named `vdrv{index}`) to endpoint
    /// `index`, which must be a virtio function. See
    /// [`TopologySystem::attach_virtio`].
    pub fn attach_virtio(
        &mut self,
        index: usize,
        mut config: VirtioAppConfig,
    ) -> VirtioReportHandle {
        let ep = &self.endpoints[index];
        assert!(
            ep.is_virtio_blk || ep.is_virtio_net,
            "endpoint {index} ({}) is not a virtio function",
            ep.name
        );
        config.class = if ep.is_virtio_blk { VirtioClass::Blk } else { VirtioClass::Net };
        config.bar0 = ep.bar0;
        config.ring_base = ep.virtio_ring.start();
        if config.use_msix {
            assert!(ep.cpu_irq_ports.len() > 1, "MSI-X vectors not enabled for {}", ep.name);
        }
        let use_msix = config.use_msix;
        let mut wires = vec![(VIRTIO_APP_MEM_PORT, ep.cpu_mem_port)];
        if use_msix {
            for (v, port) in ep.cpu_irq_ports.iter().enumerate() {
                wires.push((virtio_app_irq_port(v as u16), *port));
            }
        } else {
            wires.push((VIRTIO_APP_IRQ_PORT, ep.cpu_irq_port));
        }
        let (app, report) = VirtioApp::new(format!("vdrv{index}"), config);
        self.attach_cpu_side(Box::new(app), &wires);
        report
    }

    /// Seals the system into the conservative parallel driver. Call after
    /// every workload is attached.
    pub fn into_driver(self) -> ShardedSimulator {
        let SimSet { mut sims, placements } = self.set;
        for sim in &mut sims {
            sim.set_trace_mask(self.trace_mask);
        }
        ShardedSimulator::new(
            sims,
            ShardPlan { placements, edges: self.edges, route_end: link_event_dest_end },
        )
    }
}

/// Builds the full system for a [`Topology`] partitioned across `shards`
/// simulations. `shards == 1` degenerates to the serial build driven
/// through the sharded API (useful as the bit-identity reference). The
/// partition is chosen by [`partition_plan`]: deterministic, cut only at
/// link boundaries, host cluster in shard 0.
///
/// # Panics
///
/// Same contract as [`build_topology`], plus `shards >= 1`.
pub fn build_topology_sharded(topo: Topology, shards: usize) -> ShardedTopologySystem {
    let plan = topo.plan();
    let (report, probe, irqs) = enumerate_and_probe(&topo, &plan);
    let assignment = partition_plan(&plan, shards);
    let (set, parts) = build_planned_multi(&topo, plan, report, probe, irqs, &assignment, shards);
    ShardedTopologySystem {
        set,
        edges: parts.edges,
        trace_mask: topo.trace_mask,
        registry: parts.registry,
        report: parts.report,
        probe: parts.probe,
        endpoints: parts.endpoints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::dd::DdConfig;
    use crate::workload::nic_tx::NicTxConfig;
    use pcisim_kernel::sim::RunOutcome;
    use pcisim_kernel::tick::TICKS_PER_SEC;

    #[test]
    fn validation_preset_matches_the_system_config_layout() {
        let built = build_topology(Topology::validation());
        assert_eq!(built.report.bridges().count(), 6);
        assert_eq!(built.report.endpoints().count(), 1);
        assert_eq!(built.endpoints[0].bdf, Bdf::new(3, 0, 0));
        assert!(built.probe.is_some(), "single endpoint goes through the driver probe");
    }

    #[test]
    fn three_root_ports_enumerate_three_endpoints() {
        let built = build_topology(Topology::three_root_ports());
        // 3 root ports + switch up + 2 switch downs = 6 bridges.
        assert_eq!(built.report.bridges().count(), 6);
        assert_eq!(built.report.endpoints().count(), 3);
        assert_eq!(built.endpoint("disk0").bdf, Bdf::new(3, 0, 0));
        assert_eq!(built.endpoint("nic1").bdf, Bdf::new(5, 0, 0));
        assert_eq!(built.endpoint("disk2").bdf, Bdf::new(6, 0, 0));
        let mut bars: Vec<_> = built.endpoints.iter().map(|e| e.bar0).collect();
        bars.dedup();
        assert_eq!(bars.len(), 3, "every endpoint gets its own BAR");
        let mut irqs: Vec<_> = built.endpoints.iter().map(|e| e.irq).collect();
        irqs.dedup();
        assert_eq!(irqs.len(), 3, "every endpoint gets its own interrupt line");
    }

    #[test]
    fn three_root_ports_run_concurrent_workloads_to_quiescence() {
        let mut built = build_topology(Topology::three_root_ports());
        let dd0 = built.attach_dd(0, DdConfig { block_bytes: 256 * 1024, ..DdConfig::default() });
        let tx = built.attach_nic_tx(1, NicTxConfig { frames: 64, ..NicTxConfig::default() });
        let dd2 = built.attach_dd(2, DdConfig { block_bytes: 256 * 1024, ..DdConfig::default() });
        assert_eq!(built.sim.run(TICKS_PER_SEC, u64::MAX), RunOutcome::QueueEmpty);
        assert!(dd0.borrow().done && dd2.borrow().done);
        assert_eq!(tx.borrow().frames, 64);
        // Streams on separate root ports must not serialize behind each
        // other: both disks see the same fabric, so they finish alike.
        let (g0, g2) = (dd0.borrow().throughput_gbps(), dd2.borrow().throughput_gbps());
        assert!((g0 - g2).abs() < 0.5 * g0, "disk0 {g0} vs disk2 {g2} Gb/s");
    }

    #[test]
    fn cascaded_switches_nest_to_depth_three() {
        let built = build_topology(Topology::cascaded(3));
        // 3 root ports + 3 × (switch up + 1 down) = 9 bridges.
        assert_eq!(built.report.bridges().count(), 9);
        assert_eq!(built.report.endpoints().count(), 1);
        let mut built = built;
        let dd = built.attach_dd(0, DdConfig { block_bytes: 64 * 1024, ..DdConfig::default() });
        assert_eq!(built.sim.run(TICKS_PER_SEC, u64::MAX), RunOutcome::QueueEmpty);
        assert!(dd.borrow().done, "dd must complete through three switch hops");
    }

    /// Serial and N-shard runs of the same topology + workloads must be
    /// indistinguishable: quiesce tick, event count, stats, trace.
    fn assert_shards_match_serial(topo: Topology, shards: usize) {
        let mut serial = build_topology(topo.clone().with_tracing());
        let dd_configs: Vec<usize> = (0..serial.endpoints.len()).collect();
        let mut serial_dds = Vec::new();
        for &i in &dd_configs {
            if serial.endpoints[i].is_disk {
                serial_dds.push(
                    serial.attach_dd(i, DdConfig { block_bytes: 16 * 1024, ..DdConfig::default() }),
                );
            }
        }
        let outcome = serial.sim.run(TICKS_PER_SEC, u64::MAX);

        let mut sharded = build_topology_sharded(topo.with_tracing(), shards);
        assert_eq!(sharded.shard_count(), shards);
        let mut sharded_dds = Vec::new();
        for &i in &dd_configs {
            if sharded.endpoints[i].is_disk {
                sharded_dds.push(
                    sharded
                        .attach_dd(i, DdConfig { block_bytes: 16 * 1024, ..DdConfig::default() }),
                );
            }
        }
        let mut driver = sharded.into_driver();
        assert_eq!(driver.run(TICKS_PER_SEC, u64::MAX), outcome);

        assert_eq!(driver.now(), serial.sim.now());
        assert_eq!(driver.events_processed(), serial.sim.events_processed());
        for (s, p) in serial_dds.iter().zip(&sharded_dds) {
            assert_eq!(s.borrow().done, p.borrow().done);
            assert_eq!((s.borrow().bytes, s.borrow().end), (p.borrow().bytes, p.borrow().end));
        }
        let a: Vec<_> = serial.sim.stats().iter().map(|(k, v)| (k.to_owned(), v)).collect();
        let b: Vec<_> = driver.stats().iter().map(|(k, v)| (k.to_owned(), v)).collect();
        assert_eq!(a, b);
        let st = serial.sim.take_trace();
        let sh = driver.take_trace();
        assert_eq!(st.dropped, sh.dropped);
        assert_eq!(st.events, sh.events);
    }

    #[test]
    fn cascaded_three_shards_match_serial_bit_for_bit() {
        assert_shards_match_serial(Topology::cascaded(3), 2);
    }

    #[test]
    fn three_root_ports_across_four_shards_match_serial() {
        assert_shards_match_serial(Topology::three_root_ports(), 4);
    }

    #[test]
    fn fanout_tree_across_shards_matches_serial() {
        assert_shards_match_serial(Topology::fanout(2, 2, 2), 3);
    }

    #[test]
    fn one_shard_drives_the_serial_build_through_the_sharded_api() {
        assert_shards_match_serial(Topology::validation(), 1);
    }

    #[test]
    fn partitioner_splits_fanout_trees_into_balanced_cuts() {
        let topo = Topology::fanout(3, 4, 4);
        let plan = topo.plan();
        let a = partition_plan(&plan, 4);
        // Every bin is used.
        let mut used = [false; 4];
        for &s in a.router_shard.iter().chain(&a.endpoint_shard) {
            used[s as usize] = true;
        }
        assert!(used.iter().all(|&u| u), "all four bins carry tree nodes: {used:?}");
        // The root complex stays in shard 0.
        assert_eq!(a.router_shard[0], 0);
        // Cuts only at link boundaries is structural; check the built
        // system reports a plausible cut count (at least shards - 1).
        let sys = build_topology_sharded(Topology::fanout(3, 4, 4), 4);
        assert!(sys.cut_count() >= 3, "expected >= 3 cuts, got {}", sys.cut_count());
    }

    #[test]
    fn cxl_direct_probes_the_expander_and_assigns_its_hdm_window() {
        let built = build_topology(Topology::cxl_direct(Default::default()));
        assert_eq!(built.report.endpoints().count(), 1);
        let ep = &built.endpoints[0];
        assert!(ep.is_cxl && !ep.is_disk);
        assert_eq!(ep.hdm, platform::cxl_hdm_window(0));
        assert!(built.probe.is_some(), "the CXL device table must match the expander");
    }

    #[test]
    fn cxl_host_chases_pointers_through_the_full_fabric() {
        use crate::workload::cxl::{CxlHostConfig, CxlHostMode};
        let mut built = build_topology(Topology::cxl_direct(Default::default()));
        let host = built.attach_cxl_host(
            0,
            CxlHostConfig {
                mode: CxlHostMode::PointerChase,
                requests: 64,
                chain_blocks: 16,
                ..CxlHostConfig::default()
            },
        );
        assert_eq!(built.sim.run(TICKS_PER_SEC, u64::MAX), RunOutcome::QueueEmpty);
        let r = host.borrow();
        assert!(r.done, "the chase must complete through links, RC and HDM routing");
        assert_eq!(r.completed, 64);
        // Fabric spans (membus + RC + link both ways) sit on top of the
        // 80 ns device latency.
        assert!(r.mean_ns() > 80.0, "got {}", r.mean_ns());
    }

    #[test]
    fn behind_switch_expander_pays_the_extra_hop() {
        use crate::workload::cxl::{CxlHostConfig, CxlHostMode};
        let run = |topo: Topology| {
            let mut built = build_topology(topo);
            let host = built.attach_cxl_host(
                0,
                CxlHostConfig {
                    mode: CxlHostMode::PointerChase,
                    requests: 32,
                    chain_blocks: 8,
                    ..CxlHostConfig::default()
                },
            );
            assert_eq!(built.sim.run(TICKS_PER_SEC, u64::MAX), RunOutcome::QueueEmpty);
            let r = host.borrow();
            assert!(r.done);
            r.mean_ns()
        };
        let direct = run(Topology::cxl_direct(Default::default()));
        let switched = run(Topology::cxl_behind_switch(Default::default()));
        assert!(switched > direct, "switch hop must cost: {switched} vs {direct} ns");
    }

    #[test]
    fn interleaved_expanders_get_disjoint_windows_and_all_complete() {
        use crate::workload::cxl::CxlHostConfig;
        let mut built = build_topology(Topology::cxl_interleaved(4, Default::default()));
        assert_eq!(built.endpoints.len(), 4);
        for i in 0..4 {
            assert_eq!(built.endpoints[i].hdm, platform::cxl_hdm_window(i));
            for j in 0..i {
                assert!(!built.endpoints[i].hdm.overlaps(&built.endpoints[j].hdm));
            }
        }
        let hosts: Vec<_> = (0..4)
            .map(|i| {
                built.attach_cxl_host(i, CxlHostConfig { requests: 32, ..CxlHostConfig::default() })
            })
            .collect();
        assert_eq!(built.sim.run(TICKS_PER_SEC, u64::MAX), RunOutcome::QueueEmpty);
        for h in hosts {
            assert!(h.borrow().done);
            assert_eq!(h.borrow().completed, 32);
        }
    }

    #[test]
    fn cxl_trees_match_serial_across_shards() {
        use crate::workload::cxl::{CxlHostConfig, CxlHostMode};
        let config = CxlHostConfig {
            mode: CxlHostMode::PointerChase,
            requests: 48,
            chain_blocks: 12,
            ..CxlHostConfig::default()
        };

        let mut serial = build_topology(Topology::cxl_behind_switch(Default::default()));
        let sh = serial.attach_cxl_host(0, config.clone());
        assert_eq!(serial.sim.run(TICKS_PER_SEC, u64::MAX), RunOutcome::QueueEmpty);

        let mut sharded =
            build_topology_sharded(Topology::cxl_behind_switch(Default::default()), 2);
        let ph = sharded.attach_cxl_host(0, config);
        let mut driver = sharded.into_driver();
        assert_eq!(driver.run(TICKS_PER_SEC, u64::MAX), RunOutcome::QueueEmpty);

        assert_eq!(driver.now(), serial.sim.now());
        let a: Vec<_> = serial.sim.stats().iter().map(|(k, v)| (k.to_owned(), v)).collect();
        let b: Vec<_> = driver.stats().iter().map(|(k, v)| (k.to_owned(), v)).collect();
        assert_eq!(a, b);
        assert_eq!(sh.borrow().latencies, ph.borrow().latencies);
    }

    #[test]
    fn virtio_blk_direct_probes_and_reads_through_the_fabric() {
        use crate::workload::virtio::VirtioAppConfig;
        let mut built = build_topology(Topology::virtio_blk_direct(VirtioConfig::default()));
        let ep = &built.endpoints[0];
        assert!(ep.is_virtio_blk && !ep.is_virtio_net && !ep.is_disk);
        assert_eq!(ep.virtio_ring, platform::virtio_ring_window(0));
        assert!(built.probe.is_some(), "the virtio-blk device table must match");
        let drv = built.attach_virtio(
            0,
            VirtioAppConfig { requests: 8, queue_depth: 2, ..VirtioAppConfig::default() },
        );
        assert_eq!(built.sim.run(TICKS_PER_SEC, u64::MAX), RunOutcome::QueueEmpty);
        let r = drv.borrow();
        assert!(r.done, "all chains must retire");
        assert_eq!(r.requests, 8);
        assert_eq!(r.bytes, 8 * 4096);
        assert_eq!(r.irqs, 8, "one completion interrupt per chain");
        // Every chain pays at least the 1 us device access latency.
        assert!(r.lat_min >= us(1), "lat_min {}", r.lat_min);
    }

    #[test]
    fn virtio_net_tx_and_msix_retire_frames() {
        use crate::workload::virtio::VirtioAppConfig;
        let cfg = VirtioConfig { class: VirtioClass::Net, ..Default::default() };
        let mut topo = Topology::virtio_net_direct(cfg);
        topo.use_msix = true;
        let mut built = build_topology(topo);
        let drv = built.attach_virtio(
            0,
            VirtioAppConfig {
                requests: 16,
                queue_depth: 4,
                request_bytes: 1514,
                use_msix: true,
                ..VirtioAppConfig::default()
            },
        );
        assert_eq!(built.sim.run(TICKS_PER_SEC, u64::MAX), RunOutcome::QueueEmpty);
        let r = drv.borrow();
        assert!(r.done, "all frames must transmit");
        assert_eq!(r.requests, 16);
        assert_eq!(r.bytes, 16 * 1514);
    }

    #[test]
    fn virtio_mixed_tree_runs_blk_and_net_concurrently() {
        use crate::workload::virtio::VirtioAppConfig;
        let net = VirtioConfig { class: VirtioClass::Net, ..Default::default() };
        let mut built =
            build_topology(Topology::virtio_mixed(VirtioConfig::default(), net));
        assert_eq!(built.endpoints.len(), 3);
        assert!(built.endpoint("vblk0").is_virtio_blk);
        assert!(built.endpoint("vnet0").is_virtio_net);
        assert!(built.endpoint("disk").is_disk);
        let blk = built.attach_virtio(
            0,
            VirtioAppConfig { requests: 4, ..VirtioAppConfig::default() },
        );
        let tx = built.attach_virtio(
            1,
            VirtioAppConfig { requests: 8, request_bytes: 1514, ..VirtioAppConfig::default() },
        );
        let dd = built.attach_dd(2, DdConfig { block_bytes: 64 * 1024, ..DdConfig::default() });
        assert_eq!(built.sim.run(TICKS_PER_SEC, u64::MAX), RunOutcome::QueueEmpty);
        assert!(blk.borrow().done && tx.borrow().done && dd.borrow().done);
    }

    #[test]
    fn empty_ports_consume_bus_numbers_like_real_hardware() {
        let plan = Topology::validation().plan();
        // RP0 → bus 1 (switch), internal bus 2, port 0 → bus 3 (disk),
        // port 1 → bus 4 (empty), RP1 → bus 5, RP2 → bus 6.
        assert_eq!(plan.endpoints[0].bdf, Bdf::new(3, 0, 0));
        let report = enumerate(&mut plan.registry.clone(), platform::enumeration_config())
            .expect("validation plan enumerates");
        assert_eq!(report.bus_count, 7);
    }
}
