//! The virtio guest-driver workload engine.
//!
//! Models the software half of a virtio-pci driver: it walks the device
//! status handshake over MMIO, lays the split virtqueue — descriptor
//! table, avail ring, used ring — out in host DRAM with plain memory
//! writes, then submits descriptor chains and rings the queue's notify
//! doorbell. Completions are serviced interrupt-driven: the IRQ (legacy
//! INTx or an MSI-X vector) triggers a read of the used ring's index
//! word from DRAM, and the *index delta* — not the interrupt count — is
//! what advances the workload, so the model stays correct when several
//! chain retirements coalesce. Every step of the dance crosses the
//! simulated fabric as a TLP; nothing is functional.
//!
//! One engine drives all three datapaths: virtio-blk reads/writes
//! (3-descriptor chains: header, payload, status byte), virtio-net
//! transmit (2 read-only descriptors), and virtio-net receive (2
//! write-only buffers reposted as the device fills them from its
//! traffic source).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use pcisim_devices::intc::irq_message_addr;
use pcisim_devices::virtio::{
    common, status, VirtioClass, BLK_HEADER_BYTES, BLK_SECTOR_SIZE, BLK_T_IN, BLK_T_OUT,
    DESC_F_NEXT, DESC_F_WRITE, ISR_OFFSET, MSIX_TABLE_OFFSET, NET_HEADER_BYTES, NOTIFY_MULTIPLIER,
    NOTIFY_OFFSET,
};
use pcisim_kernel::component::{Component, Event, PortId, RecvResult};
use pcisim_kernel::packet::{Command, Packet};
use pcisim_kernel::sim::Ctx;
use pcisim_kernel::snapshot::{SnapshotError, StateReader, StateWriter};
use pcisim_kernel::stats::StatsBuilder;
use pcisim_kernel::tick::{gbps, ns, us, Tick};
use pcisim_pci::caps::msix;

/// Port wired to the memory bus (MMIO + DRAM master).
pub const VIRTIO_APP_MEM_PORT: PortId = PortId(0);
/// Port wired to the interrupt controller under legacy INTx (the
/// vector-0 port under MSI-X; see [`virtio_app_irq_port`]).
pub const VIRTIO_APP_IRQ_PORT: PortId = PortId(1);

/// Port MSI-X vector `v` of the function is delivered on.
pub fn virtio_app_irq_port(v: u16) -> PortId {
    PortId(1 + v)
}

/// Parameters of one virtio driver run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtioAppConfig {
    /// Which device class the driver binds (decides the chain shape).
    pub class: VirtioClass,
    /// Net only: drive the receive queue (posting writable buffers)
    /// instead of the transmit queue.
    pub rx: bool,
    /// Blk only: issue writes instead of reads.
    pub write: bool,
    /// Total descriptor chains to push through the queue.
    pub requests: u32,
    /// Chains kept in flight (the queue depth of the benchmark).
    pub queue_depth: u32,
    /// Payload bytes per chain (a blk transfer or a net frame).
    pub request_bytes: u32,
    /// Kernel overhead per submission (request build, doorbell path).
    pub os_submit_overhead: Tick,
    /// BAR0 of the function, from the driver probe.
    pub bar0: u64,
    /// Base of the DRAM window the rings and buffers are laid out in.
    pub ring_base: u64,
    /// Ring entries; must not exceed the device's queue size.
    pub queue_size: u16,
    /// Drive completions through MSI-X vectors instead of INTx: the
    /// driver programs the function's MSI-X table over MMIO and routes
    /// the config vector to entry 0, queue `q` to entry `1 + q`.
    pub use_msix: bool,
    /// Interrupt-controller doorbell window the MSI-X entries target.
    pub doorbell_base: u64,
    /// Platform vector number of MSI-X table entry 0.
    pub base_vector: u8,
    /// Blk: device capacity the sector pattern wraps within.
    pub capacity_sectors: u64,
}

impl Default for VirtioAppConfig {
    fn default() -> Self {
        Self {
            class: VirtioClass::Blk,
            rx: false,
            write: false,
            requests: 32,
            queue_depth: 1,
            request_bytes: 4096,
            os_submit_overhead: us(2),
            bar0: 0x4000_0000,
            ring_base: crate::platform::virtio_ring_window(0).start(),
            queue_size: 128,
            use_msix: false,
            doorbell_base: crate::platform::INTC_BASE,
            base_vector: crate::topology::MSI_VECTOR,
            capacity_sectors: 1 << 21,
        }
    }
}

/// Result of a virtio driver run, shared with the harness.
#[derive(Debug, Clone, Default)]
pub struct VirtioReport {
    /// Whether every chain retired.
    pub done: bool,
    /// Chains retired.
    pub requests: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Tick the driver handshake finished (first submission follows).
    pub start: Tick,
    /// Tick the last chain retired.
    pub end: Tick,
    /// Completion interrupts taken.
    pub irqs: u64,
    /// Sum of doorbell-to-retirement latencies.
    pub lat_sum: Tick,
    /// Fastest chain.
    pub lat_min: Tick,
    /// Slowest chain.
    pub lat_max: Tick,
}

impl VirtioReport {
    /// Payload throughput in Gb/s over the submission window.
    pub fn throughput_gbps(&self) -> f64 {
        gbps(self.bytes, self.end.saturating_sub(self.start))
    }

    /// Mean doorbell-to-retirement latency in ticks.
    pub fn mean_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.lat_sum as f64 / self.requests as f64
        }
    }
}

/// Shared handle to a [`VirtioReport`].
pub type VirtioReportHandle = Rc<RefCell<VirtioReport>>;

/// One micro-op of the driver's serialized MMIO/DRAM program. The
/// engine issues one at a time and advances on its completion, which is
/// how a CPU core doing uncached device writes behaves.
#[derive(Debug, Clone)]
enum Op {
    /// Non-posted write (MMIO register, doorbell, or DRAM ring word).
    Write { addr: u64, data: Vec<u8> },
    /// MMIO read of the ISR status byte (read-to-clear INTx ack).
    ReadIsr,
    /// DRAM read of the used ring's index word.
    ReadUsedIdx,
    /// Handshake done: stamp `start` and fan out the initial window.
    MarkStart,
    /// Doorbell acknowledged: stamp the submission tick for latency.
    MarkSubmitted,
}

const K_STEP: u32 = 0;
const K_SUBMIT: u32 = 1;

/// The virtio guest driver + benchmark loop, as one CPU-side component.
pub struct VirtioApp {
    name: String,
    config: VirtioAppConfig,
    ops: VecDeque<Op>,
    /// An op's request is on the wire awaiting its completion.
    inflight: bool,
    /// A used-index read is queued or in flight.
    used_check_queued: bool,
    /// Chains whose submission has been scheduled or issued.
    issued: u32,
    /// Chains retired off the used ring.
    completed: u32,
    /// Driver's shadow of the avail index (incremented at build time).
    avail_idx: u16,
    /// Used index at the last check.
    last_used: u16,
    /// Doorbell ticks of in-flight chains, retired FIFO (the device
    /// walks a queue's chains strictly in order).
    submit_ticks: VecDeque<Tick>,
    report: VirtioReportHandle,
    stalled: Option<Packet>,
}

impl VirtioApp {
    /// Creates the workload; returns the component and its report handle.
    pub fn new(name: impl Into<String>, config: VirtioAppConfig) -> (Self, VirtioReportHandle) {
        assert!(config.requests > 0 && config.queue_depth > 0);
        assert!(config.request_bytes > 0 && config.request_bytes <= 4096);
        let per_chain = Self::descs_per_chain(&config);
        assert!(
            config.queue_depth * per_chain <= u32::from(config.queue_size),
            "queue depth {} needs {} descriptors, ring has {}",
            config.queue_depth,
            config.queue_depth * per_chain,
            config.queue_size
        );
        if config.rx {
            assert_eq!(config.class, VirtioClass::Net, "rx mode is a net datapath");
        }
        let report: VirtioReportHandle = Rc::new(RefCell::new(VirtioReport::default()));
        (
            Self {
                name: name.into(),
                config,
                ops: VecDeque::new(),
                inflight: false,
                used_check_queued: false,
                issued: 0,
                completed: 0,
                avail_idx: 0,
                last_used: 0,
                submit_ticks: VecDeque::new(),
                report: report.clone(),
                stalled: None,
            },
            report,
        )
    }

    fn descs_per_chain(config: &VirtioAppConfig) -> u32 {
        match config.class {
            VirtioClass::Blk => 3,
            VirtioClass::Net => 2,
        }
    }

    /// The virtqueue the benchmark drives.
    fn target_queue(&self) -> u16 {
        match (self.config.class, self.config.rx) {
            (VirtioClass::Blk, _) => 0,
            (VirtioClass::Net, true) => 0,
            (VirtioClass::Net, false) => 1,
        }
    }

    // --- Ring layout inside the DRAM window (per driven queue `q`):
    // descriptor table, avail ring and used ring in the queue's 16 KB
    // region, then header / status / payload buffer slots above the
    // ring area.

    fn desc_base(&self) -> u64 {
        self.config.ring_base + u64::from(self.target_queue()) * 0x4000
    }

    fn avail_base(&self) -> u64 {
        self.desc_base() + 0x1000
    }

    fn used_base(&self) -> u64 {
        self.desc_base() + 0x2000
    }

    fn hdr_addr(&self, slot: u32) -> u64 {
        self.config.ring_base + 0x2_0000 + u64::from(slot) * 0x100
    }

    fn status_addr(&self, slot: u32) -> u64 {
        self.config.ring_base + 0x3_0000 + u64::from(slot) * 0x40
    }

    fn payload_addr(&self, slot: u32) -> u64 {
        self.config.ring_base + 0x4_0000 + u64::from(slot) * 0x1000
    }

    fn head_desc(&self, slot: u32) -> u16 {
        (slot * Self::descs_per_chain(&self.config)) as u16
    }

    fn push_mmio_write(&mut self, offset: u64, value: u32) {
        self.ops.push_back(Op::Write {
            addr: self.config.bar0 + offset,
            data: value.to_le_bytes().to_vec(),
        });
    }

    fn push_dram_write(&mut self, addr: u64, data: Vec<u8>) {
        self.ops.push_back(Op::Write { addr, data });
    }

    /// One 16-byte descriptor table entry.
    fn push_desc(&mut self, index: u16, addr: u64, len: u32, flags: u16, next: u16) {
        let mut d = Vec::with_capacity(16);
        d.extend_from_slice(&addr.to_le_bytes());
        d.extend_from_slice(&len.to_le_bytes());
        d.extend_from_slice(&flags.to_le_bytes());
        d.extend_from_slice(&next.to_le_bytes());
        self.push_dram_write(self.desc_base() + u64::from(index) * 16, d);
    }

    /// The whole driver bring-up: status handshake, MSI-X table, queue
    /// registers, descriptor pre-programming, DRIVER_OK.
    fn build_setup(&mut self) {
        let q = self.target_queue();
        self.push_mmio_write(common::DEVICE_STATUS, status::ACKNOWLEDGE);
        self.push_mmio_write(common::DEVICE_STATUS, status::ACKNOWLEDGE | status::DRIVER);
        self.push_mmio_write(
            common::DEVICE_STATUS,
            status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK,
        );
        if self.config.use_msix {
            let vectors = pcisim_devices::virtio::num_msix_vectors(self.config.class);
            for v in 0..vectors {
                let entry = MSIX_TABLE_OFFSET + u64::from(v) * u64::from(msix::ENTRY_SIZE);
                let target = irq_message_addr(
                    self.config.doorbell_base,
                    self.config.base_vector + v as u8,
                );
                self.push_mmio_write(entry + msix::ENTRY_ADDR_LO, target as u32);
                self.push_mmio_write(entry + msix::ENTRY_ADDR_HI, (target >> 32) as u32);
                self.push_mmio_write(entry + msix::ENTRY_DATA, 0x4000 | u32::from(v));
                self.push_mmio_write(entry + msix::ENTRY_VECTOR_CTRL, 0);
            }
            self.push_mmio_write(common::CONFIG_MSIX_VECTOR, 0);
        }
        self.push_mmio_write(common::QUEUE_SELECT, u32::from(q));
        let (desc, avail, used) = (self.desc_base(), self.avail_base(), self.used_base());
        self.push_mmio_write(common::QUEUE_DESC_LO, desc as u32);
        self.push_mmio_write(common::QUEUE_DESC_HI, (desc >> 32) as u32);
        self.push_mmio_write(common::QUEUE_AVAIL_LO, avail as u32);
        self.push_mmio_write(common::QUEUE_AVAIL_HI, (avail >> 32) as u32);
        self.push_mmio_write(common::QUEUE_USED_LO, used as u32);
        self.push_mmio_write(common::QUEUE_USED_HI, (used >> 32) as u32);
        if self.config.use_msix {
            self.push_mmio_write(common::QUEUE_MSIX_VECTOR, u32::from(1 + q));
        }
        self.push_mmio_write(common::QUEUE_ENABLE, 1);

        // Descriptor slots are programmed once and reused round-robin;
        // only ring indices (and blk headers) change per request.
        let bytes = self.config.request_bytes;
        for slot in 0..self.config.queue_depth {
            let head = self.head_desc(slot);
            match (self.config.class, self.config.rx, self.config.write) {
                (VirtioClass::Blk, _, write) => {
                    let data_flags = DESC_F_NEXT | if write { 0 } else { DESC_F_WRITE };
                    self.push_desc(head, self.hdr_addr(slot), BLK_HEADER_BYTES, DESC_F_NEXT, head + 1);
                    self.push_desc(head + 1, self.payload_addr(slot), bytes, data_flags, head + 2);
                    self.push_desc(head + 2, self.status_addr(slot), 1, DESC_F_WRITE, 0);
                }
                (VirtioClass::Net, false, _) => {
                    self.push_desc(head, self.hdr_addr(slot), NET_HEADER_BYTES, DESC_F_NEXT, head + 1);
                    self.push_desc(head + 1, self.payload_addr(slot), bytes, 0, 0);
                }
                (VirtioClass::Net, true, _) => {
                    self.push_desc(
                        head,
                        self.hdr_addr(slot),
                        NET_HEADER_BYTES,
                        DESC_F_NEXT | DESC_F_WRITE,
                        head + 1,
                    );
                    self.push_desc(head + 1, self.payload_addr(slot), bytes, DESC_F_WRITE, 0);
                }
            }
        }

        self.push_mmio_write(
            common::DEVICE_STATUS,
            status::ACKNOWLEDGE | status::DRIVER | status::FEATURES_OK | status::DRIVER_OK,
        );
        self.ops.push_back(Op::MarkStart);
    }

    /// Appends the op sequence submitting chain `seq`: (blk) header
    /// rewrite, avail ring entry, avail index publish, doorbell.
    fn build_submission(&mut self, seq: u32) {
        let slot = seq % self.config.queue_depth;
        if self.config.class == VirtioClass::Blk {
            let sectors = u64::from(self.config.request_bytes.div_ceil(BLK_SECTOR_SIZE));
            let span = self.config.capacity_sectors.saturating_sub(sectors).max(1);
            let sector = (u64::from(seq) * sectors) % span;
            let blk_type = if self.config.write { BLK_T_OUT } else { BLK_T_IN };
            let mut hdr = Vec::with_capacity(16);
            hdr.extend_from_slice(&blk_type.to_le_bytes());
            hdr.extend_from_slice(&0u32.to_le_bytes());
            hdr.extend_from_slice(&sector.to_le_bytes());
            self.push_dram_write(self.hdr_addr(slot), hdr);
        }
        let ring_slot = u64::from(self.avail_idx % self.config.queue_size);
        let head = self.head_desc(slot);
        self.push_dram_write(self.avail_base() + 4 + ring_slot * 2, head.to_le_bytes().to_vec());
        self.avail_idx = self.avail_idx.wrapping_add(1);
        self.push_dram_write(self.avail_base() + 2, self.avail_idx.to_le_bytes().to_vec());
        let q = self.target_queue();
        self.push_mmio_write(
            NOTIFY_OFFSET + u64::from(q) * u64::from(NOTIFY_MULTIPLIER),
            u32::from(q),
        );
        self.ops.push_back(Op::MarkSubmitted);
    }

    /// Issues the next op unless one is already on the wire; immediate
    /// marks execute inline.
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        while !self.inflight {
            let Some(op) = self.ops.pop_front() else { return };
            match op {
                Op::Write { addr, data } => {
                    let id = ctx.alloc_packet_id();
                    let pkt =
                        Packet::request(id, Command::WriteReq, addr, data.len() as u32, ctx.self_id())
                            .with_payload(data);
                    self.inflight = true;
                    if let Err(back) = ctx.try_send_request(VIRTIO_APP_MEM_PORT, pkt) {
                        self.stalled = Some(back);
                    }
                }
                Op::ReadIsr => {
                    let id = ctx.alloc_packet_id();
                    let pkt = Packet::request(
                        id,
                        Command::ReadReq,
                        self.config.bar0 + ISR_OFFSET,
                        4,
                        ctx.self_id(),
                    );
                    self.inflight = true;
                    if let Err(back) = ctx.try_send_request(VIRTIO_APP_MEM_PORT, pkt) {
                        self.stalled = Some(back);
                    }
                }
                Op::ReadUsedIdx => {
                    let id = ctx.alloc_packet_id();
                    let pkt = Packet::request(
                        id,
                        Command::ReadReq,
                        self.used_base() + 2,
                        2,
                        ctx.self_id(),
                    );
                    self.inflight = true;
                    if let Err(back) = ctx.try_send_request(VIRTIO_APP_MEM_PORT, pkt) {
                        self.stalled = Some(back);
                    }
                }
                Op::MarkStart => {
                    self.report.borrow_mut().start = ctx.now();
                    let window = self.config.queue_depth.min(self.config.requests);
                    for _ in 0..window {
                        let seq = self.issued;
                        self.issued += 1;
                        ctx.schedule(
                            self.config.os_submit_overhead,
                            Event::Timer { kind: K_SUBMIT, data: u64::from(seq) },
                        );
                    }
                }
                Op::MarkSubmitted => {
                    self.submit_ticks.push_back(ctx.now());
                }
            }
        }
    }

    /// Services a used-index read: the delta retires chains in order.
    fn service_used(&mut self, ctx: &mut Ctx<'_>, idx: u16) {
        self.used_check_queued = false;
        let delta = idx.wrapping_sub(self.last_used);
        self.last_used = idx;
        for _ in 0..delta {
            self.completed += 1;
            let submitted = self.submit_ticks.pop_front().unwrap_or_else(|| ctx.now());
            let lat = ctx.now().saturating_sub(submitted);
            let mut r = self.report.borrow_mut();
            r.requests += 1;
            r.bytes += u64::from(self.config.request_bytes);
            r.lat_sum += lat;
            r.lat_min = if r.requests == 1 { lat } else { r.lat_min.min(lat) };
            r.lat_max = r.lat_max.max(lat);
        }
        if delta == 0 {
            return;
        }
        if self.completed >= self.config.requests {
            let mut r = self.report.borrow_mut();
            r.end = ctx.now();
            r.done = true;
            return;
        }
        while self.issued < self.config.requests
            && self.issued - self.completed < self.config.queue_depth
        {
            let seq = self.issued;
            self.issued += 1;
            ctx.schedule(
                self.config.os_submit_overhead,
                Event::Timer { kind: K_SUBMIT, data: u64::from(seq) },
            );
        }
    }
}

impl Component for VirtioApp {
    fn name(&self) -> &str {
        &self.name
    }

    fn init(&mut self, ctx: &mut Ctx<'_>) {
        self.build_setup();
        // Small boot offset so time zero artefacts cannot hide costs.
        ctx.schedule(ns(10), Event::Timer { kind: K_STEP, data: 0 });
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        match ev {
            Event::Timer { kind: K_STEP, .. } => self.pump(ctx),
            Event::Timer { kind: K_SUBMIT, data } => {
                self.build_submission(data as u32);
                self.pump(ctx);
            }
            other => panic!("{}: unexpected event {other:?}", self.name),
        }
    }

    fn recv_response(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) -> RecvResult {
        assert_eq!(port, VIRTIO_APP_MEM_PORT);
        assert!(self.inflight, "{}: completion with nothing in flight", self.name);
        self.inflight = false;
        match pkt.cmd() {
            Command::WriteResp => {}
            Command::ReadResp => {
                let addr = pkt.addr();
                let data = pkt.take_payload();
                if addr == self.used_base() + 2 {
                    let idx = data
                        .as_ref()
                        .map(|p| u16::from_le_bytes([p[0], *p.get(1).unwrap_or(&0)]))
                        .unwrap_or(0);
                    self.service_used(ctx, idx);
                }
                // The ISR read needs no decoding: reading it cleared it.
                if let Some(buf) = data {
                    ctx.recycle_payload(buf);
                }
            }
            other => panic!("{}: unexpected completion {other:?}", self.name),
        }
        ctx.schedule(0, Event::Timer { kind: K_STEP, data: 0 });
        RecvResult::Accepted
    }

    fn recv_request(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) -> RecvResult {
        assert!(port.0 >= 1, "{}: interrupts arrive on the vector ports", self.name);
        assert_eq!(pkt.cmd(), Command::Message);
        if let Some(buf) = pkt.take_payload() {
            ctx.recycle_payload(buf);
        }
        self.report.borrow_mut().irqs += 1;
        if !self.used_check_queued {
            self.used_check_queued = true;
            if !self.config.use_msix {
                self.ops.push_back(Op::ReadIsr);
            }
            self.ops.push_back(Op::ReadUsedIdx);
            ctx.schedule(0, Event::Timer { kind: K_STEP, data: 0 });
        }
        RecvResult::Accepted
    }

    fn retry_granted(&mut self, ctx: &mut Ctx<'_>, port: PortId) {
        assert_eq!(port, VIRTIO_APP_MEM_PORT);
        if let Some(pkt) = self.stalled.take() {
            if let Err(back) = ctx.try_send_request(VIRTIO_APP_MEM_PORT, pkt) {
                self.stalled = Some(back);
            }
        }
    }

    fn report_stats(&self, out: &mut StatsBuilder) {
        let r = self.report.borrow();
        out.scalar("requests", r.requests as f64);
        out.scalar("bytes", r.bytes as f64);
        out.scalar("done", f64::from(u8::from(r.done)));
        out.scalar("irqs", r.irqs as f64);
        out.scalar("throughput_gbps", r.throughput_gbps());
        out.scalar("mean_latency_ns", r.mean_latency());
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.ops.len());
        for op in &self.ops {
            match op {
                Op::Write { addr, data } => {
                    w.u8(0);
                    w.u64(*addr);
                    w.bytes(data);
                }
                Op::ReadIsr => w.u8(1),
                Op::ReadUsedIdx => w.u8(2),
                Op::MarkStart => w.u8(3),
                Op::MarkSubmitted => w.u8(4),
            }
        }
        w.bool(self.inflight);
        w.bool(self.used_check_queued);
        w.u32(self.issued);
        w.u32(self.completed);
        w.u16(self.avail_idx);
        w.u16(self.last_used);
        w.usize(self.submit_ticks.len());
        for &t in &self.submit_ticks {
            w.u64(t);
        }
        let r = self.report.borrow();
        w.bool(r.done);
        w.u64(r.requests);
        w.u64(r.bytes);
        w.u64(r.start);
        w.u64(r.end);
        w.u64(r.irqs);
        w.u64(r.lat_sum);
        w.u64(r.lat_min);
        w.u64(r.lat_max);
        match &self.stalled {
            Some(pkt) => {
                w.bool(true);
                pkt.encode(w);
            }
            None => w.bool(false),
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let ops = r.usize()?;
        self.ops = (0..ops)
            .map(|_| {
                Ok(match r.u8()? {
                    0 => Op::Write { addr: r.u64()?, data: r.bytes()?.to_vec() },
                    1 => Op::ReadIsr,
                    2 => Op::ReadUsedIdx,
                    3 => Op::MarkStart,
                    4 => Op::MarkSubmitted,
                    other => {
                        return Err(SnapshotError::Corrupt(format!("unknown virtio op {other}")));
                    }
                })
            })
            .collect::<Result<_, _>>()?;
        self.inflight = r.bool()?;
        self.used_check_queued = r.bool()?;
        self.issued = r.u32()?;
        self.completed = r.u32()?;
        self.avail_idx = r.u16()?;
        self.last_used = r.u16()?;
        let ticks = r.usize()?;
        self.submit_ticks = (0..ticks).map(|_| r.u64()).collect::<Result<_, _>>()?;
        {
            let mut rep = self.report.borrow_mut();
            rep.done = r.bool()?;
            rep.requests = r.u64()?;
            rep.bytes = r.u64()?;
            rep.start = r.u64()?;
            rep.end = r.u64()?;
            rep.irqs = r.u64()?;
            rep.lat_sum = r.u64()?;
            rep.lat_min = r.u64()?;
            rep.lat_max = r.u64()?;
        }
        self.stalled = if r.bool()? { Some(Packet::decode(r)?) } else { None };
        Ok(())
    }
}
